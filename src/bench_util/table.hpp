#pragma once
// ASCII table / CSV emitters for the benchmark harness.  Every figure and
// table of the paper is regenerated as a printed series (one row per x
// value, one column per curve) so results can be diffed and re-plotted.

#include <iosfwd>
#include <string>
#include <vector>

namespace gpusel::bench {

/// Column-aligned ASCII table with an optional title.
class Table {
public:
    explicit Table(std::string title) : title_(std::move(title)) {}

    void set_header(std::vector<std::string> header) { header_ = std::move(header); }
    void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

    /// Renders with aligned columns -- or as CSV when the environment
    /// variable GPUSEL_BENCH_CSV is set (so every figure harness can feed
    /// a plotting script without code changes).
    void print(std::ostream& os) const;
    /// Renders as CSV (header + rows, comma-separated).
    void print_csv(std::ostream& os) const;

private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/// Number formatting helpers for table cells.
[[nodiscard]] std::string fmt_eng(double v, int precision = 3);  ///< 3.21e+09 style
[[nodiscard]] std::string fmt_fixed(double v, int precision = 3);
[[nodiscard]] std::string fmt_pct(double v, int precision = 3);  ///< value*100 with '%'

}  // namespace gpusel::bench
