#pragma once
// Experiment runner helpers shared by all bench binaries: repetition with
// mean/stddev aggregation (the paper runs every experiment on 10 distinct
// datasets and reports average plus variation, Sec. V-A/B), environment-
// variable scaling of problem sizes, and throughput conversion.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "stats/summary.hpp"

namespace gpusel::bench {

/// Reads a size_t environment variable with a default.
[[nodiscard]] std::size_t env_size(const char* name, std::size_t fallback);

/// Benchmark scale knobs, all overridable from the environment:
///   GPUSEL_BENCH_MAX_LOG_N  largest log2(n) in sweeps   (default 22)
///   GPUSEL_BENCH_MIN_LOG_N  smallest log2(n) in sweeps  (default 16)
///   GPUSEL_BENCH_REPS       repetitions per data point  (default 3;
///                           the paper uses 10)
struct Scale {
    std::size_t min_log_n = 16;
    std::size_t max_log_n = 22;
    std::size_t reps = 3;

    [[nodiscard]] static Scale from_env();
    [[nodiscard]] std::vector<std::size_t> sizes(std::size_t step = 2) const;
};

/// Runs `fn(rep)` `reps` times; each call returns a simulated duration in
/// ns, aggregated into a Summary.
[[nodiscard]] stats::Summary repeat_ns(std::size_t reps,
                                       const std::function<double(std::size_t)>& fn);

/// elements-per-second throughput from a duration summary.
[[nodiscard]] double throughput(std::size_t n, double ns);

}  // namespace gpusel::bench
