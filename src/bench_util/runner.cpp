#include "bench_util/runner.hpp"

#include <cstdlib>

namespace gpusel::bench {

std::size_t env_size(const char* name, std::size_t fallback) {
    const char* v = std::getenv(name);
    if (v == nullptr || *v == '\0') return fallback;
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(v, &end, 10);
    if (end == v) return fallback;
    return static_cast<std::size_t>(parsed);
}

Scale Scale::from_env() {
    Scale s;
    s.min_log_n = env_size("GPUSEL_BENCH_MIN_LOG_N", s.min_log_n);
    s.max_log_n = env_size("GPUSEL_BENCH_MAX_LOG_N", s.max_log_n);
    s.reps = env_size("GPUSEL_BENCH_REPS", s.reps);
    if (s.max_log_n < s.min_log_n) s.max_log_n = s.min_log_n;
    if (s.reps == 0) s.reps = 1;
    return s;
}

std::vector<std::size_t> Scale::sizes(std::size_t step) const {
    std::vector<std::size_t> out;
    for (std::size_t lg = min_log_n; lg <= max_log_n; lg += step) {
        out.push_back(std::size_t{1} << lg);
    }
    return out;
}

stats::Summary repeat_ns(std::size_t reps, const std::function<double(std::size_t)>& fn) {
    stats::Accumulator acc;
    for (std::size_t r = 0; r < reps; ++r) acc.add(fn(r));
    return acc.summary();
}

double throughput(std::size_t n, double ns) {
    return static_cast<double>(n) / (ns * 1e-9);
}

}  // namespace gpusel::bench
