#include "bench_util/table.hpp"

#include <algorithm>
#include <cstdlib>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace gpusel::bench {

void Table::print(std::ostream& os) const {
    if (const char* csv = std::getenv("GPUSEL_BENCH_CSV"); csv != nullptr && *csv != '\0') {
        if (!title_.empty()) os << "# " << title_ << '\n';
        print_csv(os);
        os << '\n';
        return;
    }
    std::vector<std::size_t> widths;
    auto grow = [&widths](const std::vector<std::string>& row) {
        if (widths.size() < row.size()) widths.resize(row.size(), 0);
        for (std::size_t i = 0; i < row.size(); ++i) {
            widths[i] = std::max(widths[i], row[i].size());
        }
    };
    grow(header_);
    for (const auto& r : rows_) grow(r);

    if (!title_.empty()) os << "== " << title_ << " ==\n";
    auto emit = [&](const std::vector<std::string>& row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i != 0) os << "  ";
            os << (i == 0 ? std::left : std::right) << std::setw(static_cast<int>(widths[i]))
               << row[i];
        }
        os << '\n';
    };
    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (std::size_t w : widths) total += w + 2;
        os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
    }
    for (const auto& r : rows_) emit(r);
    os << '\n';
}

void Table::print_csv(std::ostream& os) const {
    auto emit = [&os](const std::vector<std::string>& row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            os << (i == 0 ? "" : ",") << row[i];
        }
        os << '\n';
    };
    if (!header_.empty()) emit(header_);
    for (const auto& r : rows_) emit(r);
}

std::string fmt_eng(double v, int precision) {
    std::ostringstream os;
    os << std::scientific << std::setprecision(precision) << v;
    return os.str();
}

std::string fmt_fixed(double v, int precision) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string fmt_pct(double v, int precision) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v * 100.0 << "%";
    return os.str();
}

}  // namespace gpusel::bench
