#include "simt/pool.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdlib>
#include <cstring>

#include "simt/fault.hpp"

namespace gpusel::simt {

namespace {

/// GPUSEL_POOL_POISON=1 fills every checkout with 0xA5 so code that relied
/// on DeviceBuffer's zero-initialized vectors fails loudly under tests.
bool poison_enabled() {
    static const bool on = [] {
        const char* env = std::getenv("GPUSEL_POOL_POISON");
        return env != nullptr && env[0] == '1';
    }();
    return on;
}

}  // namespace

int MemoryPool::class_of(std::size_t bytes) noexcept {
    const std::size_t clamped = std::max(bytes, kMinBlockBytes);
    return std::bit_width(clamped - 1);  // smallest c with 2^c >= clamped
}

PoolBlock* MemoryPool::take_from_class(int cls, int stream) {
    auto& list = free_[static_cast<std::size_t>(cls)];
    // Prefer the most recently released block of the same stream (LIFO for
    // warmth); stream order makes that reuse unconditionally safe.
    for (std::size_t i = list.size(); i-- > 0;) {
        if (list[i]->last_stream == stream) {
            PoolBlock* blk = list[i];
            list.erase(list.begin() + static_cast<std::ptrdiff_t>(i));
            return blk;
        }
    }
    // Cross-stream reuse only when it cannot introduce a wait: the block's
    // release timestamp must already lie in the acquiring stream's past.
    // Without a clock hook (standalone pool) there is no stream semantics
    // to preserve, so any idle block qualifies.
    for (std::size_t i = list.size(); i-- > 0;) {
        if (!stream_clock_ || list[i]->release_ns <= stream_clock_(stream)) {
            PoolBlock* blk = list[i];
            list.erase(list.begin() + static_cast<std::ptrdiff_t>(i));
            ++cross_stream_;
            return blk;
        }
    }
    return nullptr;
}

PoolBlock* MemoryPool::acquire(std::size_t bytes, int stream, bool zeroed) {
    if (bytes == 0) return nullptr;
    // Injected allocation fault: fail before touching any free list, so a
    // faulted checkout has zero side effects (like a cudaMallocAsync error).
    if (fault_hook_ && fault_hook_()) throw AllocFault(bytes);
    const int cls = class_of(bytes);

    // Exact class first, then a bounded walk upward.  Small requests stop
    // after kSmallFitSpan classes so a 4-byte cursor never pins a
    // multi-megabyte data block; large requests may take any bigger block.
    const int last_cls =
        bytes >= kLargeRequestBytes ? kNumClasses - 1 : std::min(cls + kSmallFitSpan,
                                                                 kNumClasses - 1);
    PoolBlock* blk = nullptr;
    for (int c = cls; c <= last_cls && blk == nullptr; ++c) {
        blk = take_from_class(c, stream);
    }

    bool reused = false;
    int prev_stream = stream;
    bool gated = true;
    if (blk == nullptr) {
        const std::size_t capacity = std::size_t{1} << cls;
        auto owned = std::make_unique<PoolBlock>();
        owned->storage = std::make_unique<std::byte[]>(capacity);
        owned->capacity = capacity;
        owned->size_class = cls;
        blk = owned.get();
        blocks_.push_back(std::move(owned));
        reserved_bytes_ += capacity;
        ++fresh_;
        tracker_->on_alloc(bytes);
    } else {
        reused = true;
        prev_stream = blk->last_stream;
        // Same-stream reuse rides stream order; cross-stream reuse is
        // gated only when the clock hook proved the previous user done.
        gated = prev_stream == stream ||
                (stream_clock_ && blk->release_ns <= stream_clock_(stream));
        ++hits_;
        tracker_->on_reuse(bytes);
    }

    blk->last_stream = stream;
    blk->charged = bytes;
    const bool san_on = san_ != nullptr && san_->enabled();
    if (zeroed) {
        if (!blk->zeroed) std::memset(blk->storage.get(), 0, blk->capacity);
        blk->zeroed = true;
    } else {
        // SimTSan forces the poison fill: uninit-read detection needs every
        // non-zeroed checkout to start with a recognizable pattern.
        if (poison_enabled() || san_on) {
            std::memset(blk->storage.get(), static_cast<int>(kPoisonByte), blk->capacity);
        }
        blk->zeroed = false;
    }
    if (san_on) {
        // Canary-fill the free tail and register the user region.  Zeroed
        // checkouts are fully initialized by construction; poisoned ones
        // arm the uninit-read shadow.
        if (blk->capacity > bytes) {
            std::memset(blk->storage.get() + bytes, static_cast<int>(kCanaryByte),
                        blk->capacity - bytes);
        }
        san_->register_region(blk->storage.get(), bytes, /*mark_uninit=*/!zeroed, nullptr, 0,
                              blk->storage.get() + bytes, blk->capacity - bytes);
    }
    if (ssan_ != nullptr && ssan_->enabled()) {
        if (reused) ssan_->on_pool_reuse(blk->storage.get(), stream, prev_stream, gated);
        ssan_->register_region(blk->storage.get(), bytes);
    }
    return blk;
}

void MemoryPool::release(PoolBlock* block, int stream) {
    if (block == nullptr) return;
    // Record-only final canary sweep; release happens in destructors.
    if (san_ != nullptr) san_->unregister_region(block->storage.get());
    // Record-only too: snapshots the releasing stream's clock as the
    // block's tombstone and flags accesses not ordered before the release.
    if (ssan_ != nullptr && ssan_->enabled()) {
        ssan_->on_pool_release(block->storage.get(), stream);
    }
    tracker_->on_recycle(block->charged);
    block->charged = 0;
    block->last_stream = stream;
    block->release_ns = stream_clock_ ? stream_clock_(stream) : 0.0;
    block->zeroed = false;  // conservatively: the checkout may have written
    free_[static_cast<std::size_t>(block->size_class)].push_back(block);
}

std::size_t MemoryPool::trim() {
    std::size_t dropped = 0;
    for (auto& list : free_) {
        for (PoolBlock* blk : list) {
            dropped += blk->capacity;
            if (ssan_ != nullptr) ssan_->forget(blk->storage.get());
            auto it = std::find_if(blocks_.begin(), blocks_.end(),
                                   [blk](const auto& owned) { return owned.get() == blk; });
            assert(it != blocks_.end());
            blocks_.erase(it);
        }
        list.clear();
    }
    reserved_bytes_ -= dropped;
    return dropped;
}

std::map<int, std::size_t> MemoryPool::idle_bytes_by_stream() const {
    std::map<int, std::size_t> by;
    for (const auto& list : free_) {
        for (const PoolBlock* blk : list) by[blk->last_stream] += blk->capacity;
    }
    return by;
}

MemoryPool::Stats MemoryPool::stats_snapshot() const noexcept {
    Stats s;
    s.fresh = fresh_;
    s.hits = hits_;
    s.cross_stream = cross_stream_;
    s.reserved_bytes = reserved_bytes_;
    for (const auto& list : free_) {
        for (const PoolBlock* blk : list) s.idle_bytes += blk->capacity;
    }
    return s;
}

}  // namespace gpusel::simt
