#pragma once
// Multi-device topology for the simulator: a DeviceGroup owns N simulated
// Devices plus a modeled all-to-all interconnect (NVLink/PCIe-style).  A
// transfer between two devices is not free host magic -- it is two real
// kernel launches (a read-only "link_send" pass on the source's dedicated
// link-out stream and a materializing "link_recv" pass on the destination's
// link-in stream) whose bytes are charged like global-memory traffic, plus
// a wire-time term (latency + bytes/bandwidth) that serializes per directed
// link.  Because the endpoints are real launches with real read/write
// notes, SimTSan and StreamSan see cross-device traffic exactly like any
// other kernel: a consumer that reads the landing buffer without waiting on
// the transfer's ready event is a reportable read_write_race, and an
// overwrite of the staging buffer while the send is in flight is a
// write_write/race on the source side.
//
// Per-link byte totals are additionally folded into TraceCounter samples
// (cumulative bytes, one track per directed link at kLinkTrackBase + pair
// index) and per-transfer TraceInstant annotations, so the chrome-trace
// export renders the interconnect as its own set of tracks next to the
// compute streams (docs/sharding.md).

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <vector>

#include "simt/arch.hpp"
#include "simt/counters.hpp"
#include "simt/device.hpp"

namespace gpusel::simt {

/// Trace track id of the first directed link; link (from, to) renders at
/// kLinkTrackBase + from * num_devices + to.  Chosen above the server
/// telemetry tracks (1000-1003) so merged traces never collide.
inline constexpr int kLinkTrackBase = 1100;

/// One directed interconnect link's characteristics.  The defaults model a
/// PCIe-gen3-x16-class link: far slower than device memory, so sharding
/// decisions that ignore transfer volume show up in the simulated clock.
struct LinkSpec {
    /// Wire bandwidth in GB/s (numerically bytes per nanosecond).
    double bandwidth_gbs = 12.0;
    /// Fixed per-transfer latency (DMA setup + flight time), nanoseconds.
    double latency_ns = 1500.0;
};

/// Shape of a device group: how many devices, which architecture they are,
/// how they are wired, and (for tests) an optional override of the modeled
/// per-device memory capacity so out-of-core behaviour is reachable without
/// gigabyte-scale host allocations.
struct TopologySpec {
    int num_devices = 2;
    ArchSpec arch;
    LinkSpec link;
    /// Modeled per-device memory capacity in bytes; 0 means "use
    /// arch.mem_capacity_gb".  The sharded front-end chunks inputs against
    /// this figure, so tests shrink it to exercise 8x-memory inputs cheaply.
    std::size_t mem_capacity_bytes = 0;
    DeviceOptions device_opts;
};

/// What one transfer() did, in simulated time.  ready_ns is the event
/// timestamp recorded on the destination's link-in stream after the
/// landing write: consumers MUST wait_event(consumer_stream, ready_ns)
/// before reading the destination range -- the group does not do it for
/// them (and the StreamSan broken-scenario tests rely on omitting it).
struct TransferRecord {
    std::size_t bytes = 0;
    /// Wire occupancy interval on the directed link.
    double link_start_ns = 0.0;
    double link_end_ns = 0.0;
    /// Event timestamp on the source's link-out stream after the send pass:
    /// wait_event on it before overwriting or releasing the source range.
    double src_done_ns = 0.0;
    /// Event timestamp on the destination's link-in stream; the ordering
    /// edge consumers must adopt via Device::wait_event.
    double ready_ns = 0.0;
};

/// A group of simulated devices joined by a modeled interconnect.
class DeviceGroup {
public:
    explicit DeviceGroup(TopologySpec spec);

    [[nodiscard]] int size() const noexcept { return static_cast<int>(devices_.size()); }
    [[nodiscard]] Device& device(int i) { return *devices_.at(static_cast<std::size_t>(i)); }
    [[nodiscard]] const Device& device(int i) const {
        return *devices_.at(static_cast<std::size_t>(i));
    }
    [[nodiscard]] const TopologySpec& spec() const noexcept { return spec_; }

    /// Modeled memory capacity of one device in bytes (the spec override,
    /// or the architecture's datasheet capacity).
    [[nodiscard]] std::size_t mem_capacity_bytes() const noexcept;

    /// Dedicated link streams (created at construction, never leased out).
    /// Sends serialize on the source's link-out stream, landings on the
    /// destination's link-in stream.
    [[nodiscard]] int link_out_stream(int dev) const {
        return link_out_.at(static_cast<std::size_t>(dev));
    }
    [[nodiscard]] int link_in_stream(int dev) const {
        return link_in_.at(static_cast<std::size_t>(dev));
    }

    /// Copies count elements from src[src_base...] on device `from` to
    /// dst[dst_base...] on device `to`.  Ordering: the send waits for an
    /// event recorded on `from_stream` (the producer's stream), the landing
    /// write happens on `to`'s link-in stream, and the returned ready_ns is
    /// the edge consumers must wait_event() on.  Charges the bytes as
    /// global traffic on both endpoints plus wire time on the directed
    /// link (which serializes transfers in the same direction).
    template <typename T>
    TransferRecord transfer(int from, std::span<const T> src, std::size_t src_base, int to,
                            std::span<T> dst, std::size_t dst_base, std::size_t count,
                            int from_stream);

    /// Bytes moved so far over the directed link from -> to.
    [[nodiscard]] std::uint64_t link_bytes(int from, int to) const {
        return link_bytes_.at(pair_index(from, to));
    }
    /// Bytes moved over all links since construction.
    [[nodiscard]] std::uint64_t total_link_bytes() const noexcept;
    /// Number of transfer() calls since construction.
    [[nodiscard]] std::uint64_t transfer_count() const noexcept { return transfer_count_; }

    /// Cumulative per-link byte samples ("C" counter events, one track per
    /// directed link) and per-transfer annotations for the chrome-trace
    /// export; pass to write_chrome_trace or use write_group_trace below.
    [[nodiscard]] const std::vector<TraceCounter>& link_counters() const noexcept {
        return link_counters_;
    }
    [[nodiscard]] const std::vector<TraceInstant>& link_instants() const noexcept {
        return link_instants_;
    }

    /// Host-side join with every stream of every device.
    void synchronize_all();
    /// Latest completion time over all devices (the group's wall clock).
    [[nodiscard]] double elapsed_ns() const noexcept;
    /// Resets every device's simulated clock and the link occupancy state
    /// (for bench loops); profiles and byte totals are left alone.
    void reset_clocks();

private:
    [[nodiscard]] std::size_t pair_index(int from, int to) const {
        return static_cast<std::size_t>(from) * static_cast<std::size_t>(size()) +
               static_cast<std::size_t>(to);
    }

    TopologySpec spec_;
    // Device pins itself (the pool's clock hook captures `this`), so the
    // group owns through stable unique_ptrs.
    std::vector<std::unique_ptr<Device>> devices_;
    std::vector<int> link_in_;
    std::vector<int> link_out_;
    /// Wire-busy-until time per directed pair (transfers in one direction
    /// serialize; opposite directions are independent, full duplex).
    std::vector<double> link_busy_;
    std::vector<std::uint64_t> link_bytes_;
    std::uint64_t transfer_count_ = 0;
    std::vector<TraceCounter> link_counters_;
    std::vector<TraceInstant> link_instants_;
};

/// Merged chrome-trace export for a whole group: device i's stream s
/// renders as tid i * kDeviceTrackStride + s, planner logs are merged, and
/// the per-link byte tracks land at kLinkTrackBase.  One file shows the
/// compute overlap across devices and the interconnect occupancy between
/// them.
inline constexpr int kDeviceTrackStride = 100;
void write_group_trace(std::ostream& os, const DeviceGroup& group);

}  // namespace gpusel::simt
