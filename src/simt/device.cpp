#include "simt/device.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <utility>

namespace gpusel::simt {

unsigned default_host_workers() noexcept {
    if (const char* env = std::getenv("GPUSEL_WORKERS")) {
        const long v = std::strtol(env, nullptr, 10);
        if (v >= 0 && v <= 1024) return static_cast<unsigned>(v);
    }
    const unsigned hc = std::thread::hardware_concurrency();
    return hc > 1 ? hc - 1 : 0;
}

Device::Device(ArchSpec spec, DeviceOptions opts)
    : arch_(std::move(spec)), opts_(opts), pool_(opts.host_workers) {
    mem_pool_.set_stream_clock([this](int stream) { return stream_clock(stream); });
}

KernelProfile Device::launch(std::string name, const LaunchConfig& cfg, const KernelFn& fn) {
    if (cfg.grid_dim <= 0) throw std::invalid_argument("grid_dim must be positive");

    KernelProfile profile;
    profile.name = std::move(name);
    profile.grid_dim = cfg.grid_dim;
    profile.block_dim = cfg.block_dim;
    profile.origin = cfg.origin;
    profile.unroll = cfg.unroll;

    const auto blocks = static_cast<std::size_t>(cfg.grid_dim);
    std::vector<KernelCounters> per_block(blocks);
    std::vector<std::size_t> shared_used(blocks, 0);
    pool_.parallel_for(blocks, [&](std::size_t b) {
        BlockCtx blk(arch_, static_cast<int>(b), cfg.grid_dim, cfg.block_dim,
                     arch_.shared_mem_per_block);
        fn(blk);
        per_block[b] = blk.counters();
        shared_used[b] = blk.shared_bytes_used();
    });
    for (std::size_t b = 0; b < blocks; ++b) {
        profile.counters += per_block[b];
        if (shared_used[b] > profile.shared_bytes) profile.shared_bytes = shared_used[b];
    }

    profile.sim_ns = simulate_time(arch_, profile).total_ns;
    // In-order within the launch's stream; streams overlap.
    const auto stream = static_cast<std::size_t>(cfg.stream);
    if (stream >= stream_clock_.size()) throw std::invalid_argument("unknown stream");
    stream_clock_[stream] += profile.sim_ns;
    clock_ns_ = *std::max_element(stream_clock_.begin(), stream_clock_.end());
    totals_ += profile.counters;
    ++launch_count_;
    if (opts_.record_profiles) profiles_.push_back(profile);
    return profile;
}

int Device::create_stream() {
    // A new stream cannot run work before it exists: it starts at the
    // current device completion time (causality), and overlaps with
    // everything launched afterwards.
    stream_clock_.push_back(clock_ns_);
    return static_cast<int>(stream_clock_.size() - 1);
}

double Device::stream_clock(int stream) const {
    const auto s = static_cast<std::size_t>(stream);
    if (s >= stream_clock_.size()) throw std::invalid_argument("unknown stream");
    return stream_clock_[s];
}

void Device::wait_event(int stream, double event_ns) {
    const auto s = static_cast<std::size_t>(stream);
    if (s >= stream_clock_.size()) throw std::invalid_argument("unknown stream");
    stream_clock_[s] = std::max(stream_clock_[s], event_ns);
}

void Device::synchronize() {
    for (auto& c : stream_clock_) c = clock_ns_;
}

void Device::device_enqueue(ControlThunk thunk) { queue_.push_back(std::move(thunk)); }

void Device::drain() {
    if (draining_) return;  // re-entrant drain is a no-op; the outer loop continues
    draining_ = true;
    while (!queue_.empty()) {
        ControlThunk t = std::move(queue_.front());
        queue_.pop_front();
        t(*this);
    }
    draining_ = false;
}

KernelCounters Device::counter_totals() const { return totals_; }

}  // namespace gpusel::simt
