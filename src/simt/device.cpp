#include "simt/device.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <utility>

namespace gpusel::simt {

unsigned default_host_workers() noexcept {
    if (const char* env = std::getenv("GPUSEL_WORKERS")) {
        const long v = std::strtol(env, nullptr, 10);
        if (v >= 0 && v <= 1024) return static_cast<unsigned>(v);
    }
    const unsigned hc = std::thread::hardware_concurrency();
    return hc > 1 ? hc - 1 : 0;
}

Device::Device(ArchSpec spec, DeviceOptions opts)
    : arch_(std::move(spec)), opts_(opts), pool_(opts.host_workers) {
    mem_pool_.set_stream_clock([this](int stream) { return stream_clock(stream); });
    // Pooled checkouts draw from the same deterministic fault stream as
    // fresh allocations and launches.
    mem_pool_.set_fault_hook([this] { return injector_.should_fail_alloc(); });
    if (const auto env_spec = FaultSpec::from_env()) set_faults(*env_spec);
    if (const SanMode m = Sanitizer::mode_from_env(); m != SanMode::off) set_sanitizer(m);
    if (const StreamSanMode m = StreamSan::mode_from_env(); m != StreamSanMode::off) {
        set_stream_sanitizer(m);
    }
}

void Device::maybe_fail_alloc(std::size_t bytes) {
    if (injector_.should_fail_alloc()) throw AllocFault(bytes);
}

KernelProfile Device::launch(std::string name, const LaunchConfig& cfg, const KernelFn& fn) {
    if (cfg.grid_dim <= 0) throw std::invalid_argument("grid_dim must be positive");
    if (static_cast<std::size_t>(cfg.stream) >= stream_clock_.size()) {
        throw std::invalid_argument("unknown stream");
    }
    // Fault check before any side effect: a failed launch never ran, never
    // advanced a clock and never counted -- like a cudaLaunchKernel error.
    if (injector_.enabled() && injector_.should_fail_launch()) throw LaunchFault(name);
    // StreamSan launch node: ticks the stream's vector clock (and in strict
    // mode surfaces any hazard deferred from a noexcept hook).  After the
    // fault check: a faulted launch never happened, so it is no HB node.
    if (ssan_) ssan_->on_launch_begin(cfg.stream, name);

    KernelProfile profile;
    profile.name = std::move(name);
    profile.grid_dim = cfg.grid_dim;
    profile.block_dim = cfg.block_dim;
    profile.origin = cfg.origin;
    profile.unroll = cfg.unroll;
    profile.stream = cfg.stream;

    const auto blocks = static_cast<std::size_t>(cfg.grid_dim);
    std::vector<KernelCounters> per_block(blocks);
    std::vector<std::size_t> shared_used(blocks, 0);
    // SimTSan launch bracket: a new race-detection epoch before any block
    // runs; a strict-mode violation inside a block propagates out of
    // parallel_for as SanError, aborting the launch like a device trap.
    if (san_) san_->begin_launch(profile.name);
    pool_.parallel_for(blocks, [&](std::size_t b) {
        BlockCtx blk(arch_, static_cast<int>(b), cfg.grid_dim, cfg.block_dim,
                     arch_.shared_mem_per_block, san_.get(), ssan_.get());
        fn(blk);
        per_block[b] = blk.counters();
        shared_used[b] = blk.shared_bytes_used();
    });
    for (std::size_t b = 0; b < blocks; ++b) {
        profile.counters += per_block[b];
        if (shared_used[b] > profile.shared_bytes) profile.shared_bytes = shared_used[b];
    }

    profile.sim_ns = simulate_time(arch_, profile).total_ns;
    // In-order within the launch's stream; streams overlap.  An injected
    // stream stall delays subsequent work on this stream (interference
    // from unrelated tenants) without changing the launch's own profile.
    const auto stream = static_cast<std::size_t>(cfg.stream);
    profile.start_ns = stream_clock_[stream];
    stream_clock_[stream] += profile.sim_ns;
    if (injector_.enabled()) stream_clock_[stream] += injector_.stall_penalty_ns();
    clock_ns_ = *std::max_element(stream_clock_.begin(), stream_clock_.end());
    totals_ += profile.counters;
    ++launch_count_;
    if (opts_.record_profiles) profiles_.push_back(profile);
    // Canary sweep after the launch's bookkeeping: the launch *did* run, so
    // its counters and clock stand even when the sweep throws (strict mode).
    if (san_) san_->end_launch();
    // StreamSan hazard analysis over the launch's folded read/write sets;
    // same placement contract as the canary sweep (may throw in strict).
    if (ssan_) {
        ssan_->on_launch_end(cfg.stream, stream_clock_[stream]);
        robustness_.streamsan_hazards = ssan_->total_hazards();
    }
    return profile;
}

int Device::create_stream() {
    // A new stream cannot run work before it exists: it starts at the
    // current device completion time (causality), and overlaps with
    // everything launched afterwards.
    stream_clock_.push_back(clock_ns_);
    const int s = static_cast<int>(stream_clock_.size() - 1);
    // Matching HB edge: the new stream is ordered after everything enqueued
    // so far, exactly as its clock starting at clock_ns_ implies.
    if (ssan_) ssan_->on_stream_acquired(s);
    return s;
}

int Device::lease_stream() {
    if (!stream_free_.empty()) {
        const int s = stream_free_.back();
        stream_free_.pop_back();
        // A re-leased stream behaves like a newly created one: its first
        // launch starts no earlier than the device completion time at the
        // moment of the lease.
        stream_clock_[static_cast<std::size_t>(s)] = clock_ns_;
        if (ssan_) ssan_->on_stream_acquired(s);
        return s;
    }
    return create_stream();
}

void Device::release_stream(int stream) {
    const auto s = static_cast<std::size_t>(stream);
    if (stream <= 0 || s >= stream_clock_.size()) {
        throw std::invalid_argument("release_stream: not a leasable stream");
    }
    stream_free_.push_back(stream);
}

double Device::stream_clock(int stream) const {
    const auto s = static_cast<std::size_t>(stream);
    if (s >= stream_clock_.size()) throw std::invalid_argument("unknown stream");
    return stream_clock_[s];
}

void Device::wait_event(int stream, double event_ns) {
    const auto s = static_cast<std::size_t>(stream);
    if (s >= stream_clock_.size()) throw std::invalid_argument("unknown stream");
    // HB edge: joins the recorded event's snapshot into the waiting
    // stream's clock.  A wait on a timestamp no record_event() produced is
    // itself a hazard (wait_unrecorded / hb_cycle) and may throw in strict.
    if (ssan_) {
        ssan_->on_event_wait(stream, event_ns, clock_ns_);
        robustness_.streamsan_hazards = ssan_->total_hazards();
    }
    stream_clock_[s] = std::max(stream_clock_[s], event_ns);
}

void Device::advance_stream(int stream, double ns) {
    const auto s = static_cast<std::size_t>(stream);
    if (s >= stream_clock_.size()) throw std::invalid_argument("unknown stream");
    stream_clock_[s] = std::max(stream_clock_[s], ns);
}

void Device::synchronize() {
    // Host-side join with every stream: a full HB barrier.
    if (ssan_) ssan_->on_synchronize();
    for (auto& c : stream_clock_) c = clock_ns_;
}

void Device::device_enqueue(ControlThunk thunk) { queue_.push_back(std::move(thunk)); }

void Device::drain() {
    if (draining_) return;  // re-entrant drain is a no-op; the outer loop continues
    // Exception-safe: if a thunk throws (e.g. an unhandled injected
    // fault), the queue is abandoned and the flag reset, so the device
    // stays usable for the next cascade instead of silently refusing to
    // drain forever.
    struct DrainGuard {
        Device* dev;
        ~DrainGuard() {
            dev->queue_.clear();
            dev->draining_ = false;
        }
    } guard{this};
    draining_ = true;
    while (!queue_.empty()) {
        ControlThunk t = std::move(queue_.front());
        queue_.pop_front();
        t(*this);
    }
}

KernelCounters Device::counter_totals() const { return totals_; }

}  // namespace gpusel::simt
