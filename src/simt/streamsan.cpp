#include "simt/streamsan.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <utility>

namespace gpusel::simt {

namespace {
/// Empty-range sentinel for the per-launch fold scratch (lo > hi == none).
constexpr std::size_t kNoLo = std::numeric_limits<std::size_t>::max();
}  // namespace

std::string_view to_string(HazardKind kind) noexcept {
    switch (kind) {
        case HazardKind::write_write_race: return "write_write_race";
        case HazardKind::read_write_race: return "read_write_race";
        case HazardKind::pool_reuse: return "pool_reuse";
        case HazardKind::release_in_flight: return "release_in_flight";
        case HazardKind::wait_unrecorded: return "wait_unrecorded";
        case HazardKind::hb_cycle: return "hb_cycle";
    }
    return "unknown";
}

std::string StreamHazard::message() const {
    std::string msg = "StreamSan: ";
    msg += to_string(kind);
    if (!kernel.empty()) {
        msg += " in '";
        msg += kernel;
        msg += "'";
    }
    msg += " on stream " + std::to_string(stream);
    if (other_stream >= 0) msg += " vs stream " + std::to_string(other_stream);
    if (hi > lo) {
        msg += " over bytes [" + std::to_string(lo) + ", " + std::to_string(hi) + ")";
    }
    if (!detail.empty()) {
        msg += ": ";
        msg += detail;
    }
    return msg;
}

StreamSan::StreamSan(StreamSanMode mode, bool concurrent)
    : mode_(mode), concurrent_(concurrent) {
    // Timestamp 0.0 is the timeline origin: waiting on it (the default
    // event value of never-forked fans) is always satisfied and carries no
    // ordering, exactly like a zero-initialized vector clock.
    events_.emplace(0.0, std::vector<std::uint64_t>{});
}

StreamSanMode StreamSan::mode_from_env() {
    const char* env = std::getenv("GPUSEL_STREAMSAN");
    if (env == nullptr) return StreamSanMode::off;
    const std::string v(env);
    if (v.empty() || v == "0" || v == "off") return StreamSanMode::off;
    if (v == "1" || v == "strict" || v == "on") return StreamSanMode::strict;
    if (v == "2" || v == "collect") return StreamSanMode::collect;
    throw std::invalid_argument("GPUSEL_STREAMSAN must be one of 0/off, 1/strict/on, 2/collect: \"" +
                                v + "\"");
}

void StreamSan::register_region(const void* base, std::size_t bytes) {
    if (base == nullptr || bytes == 0) return;
    const auto addr = reinterpret_cast<std::uintptr_t>(base);
    Region& r = regions_[addr];
    r.base = addr;
    r.bytes = bytes;
    r.last_write = Epoch{};
    r.reads.clear();
    r.seq = 0;  // stale: the first touch of the next launch resets the fold
    reg_gen_ = next_gen();
    scache_clear();  // map insertion may rebalance: cached gaps are stale
}

void StreamSan::unregister_region(const void* base) noexcept {
    if (base == nullptr) return;
    const auto addr = reinterpret_cast<std::uintptr_t>(base);
    const auto it = regions_.find(addr);
    if (it == regions_.end()) return;
    // A region may disappear mid-launch only through a destructor on the
    // host thread; drop it from the pending fold list too.
    if (in_launch_) {
        const auto pos = std::find(accessed_.begin(), accessed_.end(), &it->second);
        if (pos != accessed_.end()) accessed_.erase(pos);
    }
    regions_.erase(it);
    reg_gen_ = next_gen();
    scache_clear();  // the erased node's cache entry would dangle
}

void StreamSan::ensure_stream(int stream) {
    const auto need = static_cast<std::size_t>(stream) + 1;
    if (vc_.size() < need) vc_.resize(need);
    for (auto& clock : vc_) {
        if (clock.size() < need) clock.resize(need, 0);
    }
}

void StreamSan::on_stream_acquired(int stream) {
    if (stream < 0) return;
    ensure_stream(stream);
    // Causality rule of create_stream()/lease_stream(): the stream's first
    // work starts at the device completion time, after everything enqueued
    // so far -- join every clock into the new stream's.
    std::vector<std::uint64_t>& mine = vc_[static_cast<std::size_t>(stream)];
    for (const std::vector<std::uint64_t>& other : vc_) {
        for (std::size_t t = 0; t < other.size(); ++t) {
            if (other[t] > mine[t]) mine[t] = other[t];
        }
    }
}

void StreamSan::on_launch_begin(int stream, std::string_view kernel) {
    throw_pending();
    if (stream < 0) return;
    ensure_stream(stream);
    const auto s = static_cast<std::size_t>(stream);
    ++vc_[s][s];
    ++launch_seq_;
    cur_stream_ = stream;
    cur_kernel_.assign(kernel);
    accessed_.clear();
    in_launch_ = true;
}

void StreamSan::first_touch_slow(Region* r) {
    // Serial mode needs no lock; concurrent block workers race on the
    // first touch of a region, so re-check under the mutex and publish
    // `seq` last (release) so fold loops only run over reset scratch.
    if (!concurrent_) {
        r->seq = launch_seq_;
        r->r_lo = kNoLo;
        r->r_hi = 0;
        r->w_lo = kNoLo;
        r->w_hi = 0;
        accessed_.push_back(r);
        return;
    }
    std::lock_guard<std::mutex> lock(touch_mu_);
    if (std::atomic_ref<std::uint64_t>(r->seq).load(std::memory_order_relaxed) == launch_seq_) {
        return;
    }
    std::atomic_ref<std::size_t>(r->r_lo).store(kNoLo, std::memory_order_relaxed);
    std::atomic_ref<std::size_t>(r->r_hi).store(0, std::memory_order_relaxed);
    std::atomic_ref<std::size_t>(r->w_lo).store(kNoLo, std::memory_order_relaxed);
    std::atomic_ref<std::size_t>(r->w_hi).store(0, std::memory_order_relaxed);
    accessed_.push_back(r);
    std::atomic_ref<std::uint64_t>(r->seq).store(launch_seq_, std::memory_order_release);
}

void StreamSan::note_access_concurrent(Region* r, std::size_t lo, std::size_t hi, bool write) {
    // Block workers on several threads fold into the same scratch: CAS
    // min/max with relaxed ordering (the launch-end analysis happens after
    // the scheduler's own join, which supplies the synchronization).
    if (std::atomic_ref<std::uint64_t>(r->seq).load(std::memory_order_acquire) != launch_seq_) {
        first_touch_slow(r);
    }
    auto fold_min = [](std::size_t& slot, std::size_t v) {
        std::atomic_ref<std::size_t> a(slot);
        std::size_t cur = a.load(std::memory_order_relaxed);
        while (v < cur && !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
        }
    };
    auto fold_max = [](std::size_t& slot, std::size_t v) {
        std::atomic_ref<std::size_t> a(slot);
        std::size_t cur = a.load(std::memory_order_relaxed);
        while (v > cur && !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
        }
    };
    if (write) {
        fold_min(r->w_lo, lo);
        fold_max(r->w_hi, hi);
    } else {
        fold_min(r->r_lo, lo);
        fold_max(r->r_hi, hi);
    }
}

StreamSan::Region* StreamSan::find_slow(const void* p, std::size_t bytes) noexcept {
    const auto addr = reinterpret_cast<std::uintptr_t>(p);
    const auto insert = [this](std::uintptr_t lo, std::uintptr_t hi, Region* region) noexcept {
        if (!concurrent_) {
            scache_[scache_next_++ & 3u] = SerialEntry{lo, hi, region};
            return;
        }
        RegionCache& rc = tl_cache_;
        if (rc.owner != this || rc.gen != reg_gen_) {
            rc = RegionCache{};
            rc.owner = this;
            rc.gen = reg_gen_;
        }
        cache_insert(lo, hi, region);
    };
    // First region with base > addr; the candidate is its predecessor.
    auto it = regions_.upper_bound(addr);
    std::uintptr_t gap_lo = 0;
    if (it != regions_.begin()) {
        auto prev = std::prev(it);
        Region& r = prev->second;
        if (addr >= r.base && addr + bytes <= r.base + r.bytes) {
            insert(r.base, r.base + r.bytes, &r);
            return &r;
        }
        gap_lo = r.base + r.bytes;
    }
    // Not inside any region: cache the gap so sibling accesses miss fast.
    const std::uintptr_t gap_hi =
        it != regions_.end() ? it->second.base : std::numeric_limits<std::uintptr_t>::max();
    if (gap_lo <= addr && addr + bytes <= gap_hi) insert(gap_lo, gap_hi, nullptr);
    return nullptr;
}

void StreamSan::on_launch_end(int stream, double end_ns) {
    if (!in_launch_) return;
    in_launch_ = false;
    if (stream < 0 || static_cast<std::size_t>(stream) >= vc_.size()) return;
    const auto s = static_cast<std::size_t>(stream);
    const std::uint64_t clk = vc_[s][s];

    StreamHazard first;
    bool have_first = false;
    auto note_hazard = [&](StreamHazard h) {
        if (!have_first) {
            first = h;
            have_first = true;
        }
        report(std::move(h), /*allow_throw=*/false);
    };
    auto overlap = [](std::size_t alo, std::size_t ahi, std::size_t blo, std::size_t bhi) {
        return alo < bhi && blo < ahi;
    };

    for (Region* r : accessed_) {
        const bool wrote = r->w_lo < r->w_hi;
        const bool read = r->r_lo < r->r_hi;
        if (wrote) {
            const Epoch& lw = r->last_write;
            if (lw.stream >= 0 && lw.stream != stream && overlap(r->w_lo, r->w_hi, lw.lo, lw.hi) &&
                !ordered_before(lw, stream)) {
                note_hazard({HazardKind::write_write_race, cur_kernel_, stream, lw.stream,
                             std::max(r->w_lo, lw.lo), std::min(r->w_hi, lw.hi), end_ns,
                             "unordered cross-stream writes (earlier write by '" + lw.kernel +
                                 "'); no event edge orders the two launches"});
            }
            for (const Epoch& rd : r->reads) {
                if (rd.stream >= 0 && rd.stream != stream &&
                    overlap(r->w_lo, r->w_hi, rd.lo, rd.hi) && !ordered_before(rd, stream)) {
                    note_hazard({HazardKind::read_write_race, cur_kernel_, stream, rd.stream,
                                 std::max(r->w_lo, rd.lo), std::min(r->w_hi, rd.hi), end_ns,
                                 "write overlaps an unordered earlier read by '" + rd.kernel +
                                     "' on another stream"});
                }
            }
        }
        if (read) {
            const Epoch& lw = r->last_write;
            if (lw.stream >= 0 && lw.stream != stream && overlap(r->r_lo, r->r_hi, lw.lo, lw.hi) &&
                !ordered_before(lw, stream)) {
                note_hazard({HazardKind::read_write_race, cur_kernel_, stream, lw.stream,
                             std::max(r->r_lo, lw.lo), std::min(r->r_hi, lw.hi), end_ns,
                             "read overlaps an unordered earlier write by '" + lw.kernel +
                                 "' on another stream"});
            }
        }
        // Fold this launch into the history: replace, never union (a
        // union could pair a stale range with a newer clock and report an
        // ordered access as racy).
        if (wrote) r->last_write = Epoch{stream, clk, r->w_lo, r->w_hi, cur_kernel_};
        if (read) {
            Epoch* mine = nullptr;
            for (Epoch& rd : r->reads) {
                if (rd.stream == stream) mine = &rd;
            }
            if (mine == nullptr) {
                r->reads.push_back(Epoch{});
                mine = &r->reads.back();
            }
            *mine = Epoch{stream, clk, r->r_lo, r->r_hi, cur_kernel_};
        }
        r->seq = 0;  // scratch is consumed
    }
    accessed_.clear();
    if (have_first && mode_ == StreamSanMode::strict) throw_hazard(std::move(first));
}

void StreamSan::on_event_record(int stream, double event_ns) {
    if (stream < 0) return;
    ensure_stream(stream);
    std::vector<std::uint64_t>& snap = events_[event_ns];
    const std::vector<std::uint64_t>& vc = vc_[static_cast<std::size_t>(stream)];
    if (snap.size() < vc.size()) snap.resize(vc.size(), 0);
    for (std::size_t t = 0; t < vc.size(); ++t) {
        if (vc[t] > snap[t]) snap[t] = vc[t];
    }
}

void StreamSan::on_event_wait(int stream, double event_ns, double completion_ns) {
    if (stream < 0) return;
    ensure_stream(stream);
    const auto it = events_.find(event_ns);
    if (it == events_.end()) {
        const bool future = event_ns > completion_ns;
        report({future ? HazardKind::hb_cycle : HazardKind::wait_unrecorded, cur_kernel_, stream,
                -1, 0, 0, event_ns,
                future ? "wait on timestamp " + std::to_string(event_ns) +
                             " beyond the device completion time " +
                             std::to_string(completion_ns) +
                             ": only unenqueued work could record it (cyclic fork/join)"
                       : "wait on timestamp " + std::to_string(event_ns) +
                             " that no record_event() produced"},
               /*allow_throw=*/true);
        return;
    }
    std::vector<std::uint64_t>& mine = vc_[static_cast<std::size_t>(stream)];
    const std::vector<std::uint64_t>& snap = it->second;
    if (mine.size() < snap.size()) mine.resize(snap.size(), 0);
    for (std::size_t t = 0; t < snap.size(); ++t) {
        if (snap[t] > mine[t]) mine[t] = snap[t];
    }
}

void StreamSan::on_synchronize() {
    std::vector<std::uint64_t> all(vc_.size(), 0);
    for (const std::vector<std::uint64_t>& clock : vc_) {
        for (std::size_t t = 0; t < clock.size(); ++t) {
            if (clock[t] > all[t]) all[t] = clock[t];
        }
    }
    for (std::vector<std::uint64_t>& clock : vc_) clock = all;
}

void StreamSan::reset_timeline() noexcept {
    try {
        events_.clear();
        events_.emplace(0.0, std::vector<std::uint64_t>{});
    } catch (...) {
        // allocation failure leaves the seed entry absent; waits on 0.0
        // would then report, which is still a safe (loud) failure mode.
    }
}

void StreamSan::on_pool_release(const void* base, int stream) noexcept {
    if (base == nullptr) return;
    const auto addr = reinterpret_cast<std::uintptr_t>(base);
    const auto it = regions_.find(addr);
    if (it == regions_.end()) return;
    try {
        if (stream >= 0) {
            ensure_stream(stream);
            Region& r = it->second;
            // Every recorded access from another stream must already be
            // ordered before this release, or the block returns to the
            // free list while that stream may still be touching it.
            auto unordered = [&](const Epoch& e) {
                return e.stream >= 0 && e.stream != stream && !ordered_before(e, stream);
            };
            const Epoch* culprit = nullptr;
            if (unordered(r.last_write)) culprit = &r.last_write;
            for (const Epoch& rd : r.reads) {
                if (culprit == nullptr && unordered(rd)) culprit = &rd;
            }
            if (culprit != nullptr) {
                report({HazardKind::release_in_flight, culprit->kernel, stream, culprit->stream,
                        culprit->lo, culprit->hi, 0.0,
                        "pooled block released on stream " + std::to_string(stream) +
                            " while an access from stream " + std::to_string(culprit->stream) +
                            " is not ordered before the release"},
                       /*allow_throw=*/false);
            }
            tombstones_[addr] = vc_[static_cast<std::size_t>(stream)];
        }
    } catch (...) {
        // record-only path: allocation failure drops the tombstone, which
        // can only make a later reuse *more* suspicious, never less.
    }
    unregister_region(base);
}

void StreamSan::on_pool_reuse(const void* base, int acq_stream, int prev_stream, bool gated) {
    if (base == nullptr || acq_stream < 0) return;
    ensure_stream(acq_stream);
    const auto addr = reinterpret_cast<std::uintptr_t>(base);
    const auto it = tombstones_.find(addr);
    if (acq_stream == prev_stream || gated) {
        // Stream order / the stream-ordered allocator's internal event:
        // the previous user's timeline joins into the acquiring stream.
        if (it != tombstones_.end()) {
            std::vector<std::uint64_t>& mine = vc_[static_cast<std::size_t>(acq_stream)];
            const std::vector<std::uint64_t>& snap = it->second;
            if (mine.size() < snap.size()) mine.resize(snap.size(), 0);
            for (std::size_t t = 0; t < snap.size(); ++t) {
                if (snap[t] > mine[t]) mine[t] = snap[t];
            }
            tombstones_.erase(it);
        }
        return;
    }
    if (it != tombstones_.end()) tombstones_.erase(it);
    report({HazardKind::pool_reuse, std::string(), acq_stream, prev_stream, 0, 0, 0.0,
            "pooled block last released on stream " + std::to_string(prev_stream) +
                " re-issued to stream " + std::to_string(acq_stream) +
                " with no ordering between them (un-gated cross-stream reuse)"},
           /*allow_throw=*/true);
}

void StreamSan::forget(const void* base) noexcept {
    if (base == nullptr) return;
    tombstones_.erase(reinterpret_cast<std::uintptr_t>(base));
}

void StreamSan::report(StreamHazard h, bool allow_throw) {
    total_.fetch_add(1, std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(sink_mu_);
        if (hazards_.size() < kMaxStored) hazards_.push_back(h);
    }
    if (mode_ == StreamSanMode::collect && trace_instants_.size() < 4096) {
        trace_instants_.push_back(
            TraceInstant{h.sim_ns, kStreamSanTrack, std::string(to_string(h.kind)), h.message()});
    }
    if (mode_ == StreamSanMode::strict) {
        if (allow_throw) throw_hazard(std::move(h));
        if (!has_pending_) {
            pending_ = std::move(h);
            has_pending_ = true;
        }
    }
}

void StreamSan::throw_hazard(StreamHazard h) { throw StreamSanError(std::move(h)); }

void StreamSan::throw_pending() {
    if (!has_pending_) return;
    has_pending_ = false;
    throw_hazard(std::move(pending_));
}

std::vector<StreamHazard> StreamSan::hazards() const {
    std::lock_guard<std::mutex> lock(sink_mu_);
    return hazards_;
}

void StreamSan::clear() {
    std::lock_guard<std::mutex> lock(sink_mu_);
    hazards_.clear();
    trace_instants_.clear();
    total_.store(0, std::memory_order_relaxed);
    checks_.store(0, std::memory_order_relaxed);
    checks_serial_ = 0;
    has_pending_ = false;
}

}  // namespace gpusel::simt
