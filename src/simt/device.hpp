#pragma once
// The simulated GPU device: kernel launches, the simulated clock, memory
// allocation, profiles, and the dynamic-parallelism launch queue.
//
// A Device executes kernels (callables over BlockCtx) block-by-block,
// merges the per-block event counters into a KernelProfile, asks the timing
// model for a simulated duration, and advances the simulated clock.  The
// device-side launch queue models CUDA Dynamic Parallelism (Sec. IV-E of
// the paper): control thunks enqueued from "device code" run strictly in
// order after the current kernel finished, exactly like tail-recursive
// child launches on one CUDA stream, and their kernels are charged the
// (cheaper) device-launch latency instead of a host round trip.

#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "simt/arch.hpp"
#include "simt/block.hpp"
#include "simt/counters.hpp"
#include "simt/fault.hpp"
#include "simt/memory.hpp"
#include "simt/pool.hpp"
#include "simt/sanitizer.hpp"
#include "simt/streamsan.hpp"
#include "simt/thread_pool.hpp"
#include "simt/timing.hpp"

namespace gpusel::simt {

/// Launch configuration (the <<<grid, block, shared, stream>>> tuple plus
/// simulator-specific knobs).
struct LaunchConfig {
    int grid_dim = 1;
    int block_dim = 256;
    LaunchOrigin origin = LaunchOrigin::host;
    /// Declared unroll depth, forwarded to the timing model (Sec. IV-H d).
    int unroll = 1;
    /// Stream to enqueue on (0 = default stream).  Launches on one stream
    /// serialize; launches on different streams may overlap in simulated
    /// time (see Device::elapsed_ns).
    int stream = 0;
};

struct DeviceOptions {
    /// Host worker threads used to execute blocks in parallel; 0 = inline
    /// (deterministic, the default for tests and single-core hosts).
    unsigned host_workers = 0;
    /// Keep a full KernelProfile per launch (needed for breakdown figures);
    /// disable for very long parameter sweeps to save host memory.
    bool record_profiles = true;
};

/// Worker count throughput-oriented callers (benches, sweeps) should pass
/// as DeviceOptions::host_workers: the GPUSEL_WORKERS environment variable
/// if set, otherwise hardware_concurrency() - 1 (the caller participates
/// in parallel_for, so this saturates the machine; 0 on single-core
/// hosts).  Tests keep the deterministic default of 0.
[[nodiscard]] unsigned default_host_workers() noexcept;

class Device {
public:
    using KernelFn = std::function<void(BlockCtx&)>;
    using ControlThunk = std::function<void(Device&)>;

    explicit Device(ArchSpec spec, DeviceOptions opts = {});
    // The memory pool's clock hook captures `this`; the device is pinned.
    Device(const Device&) = delete;
    Device& operator=(const Device&) = delete;
    Device(Device&&) = delete;
    Device& operator=(Device&&) = delete;

    [[nodiscard]] const ArchSpec& arch() const noexcept { return arch_; }
    [[nodiscard]] AllocationTracker& tracker() noexcept { return tracker_; }
    /// The device's stream-aware memory arena (see simt/pool.hpp).
    [[nodiscard]] MemoryPool& pool() noexcept { return mem_pool_; }

    /// Allocates a global-memory array of n Ts (fresh, non-pooled backing;
    /// prefer pooled() for scratch that is released and re-acquired).
    /// Throws AllocFault if an injected allocation fault fires.
    template <typename T>
    [[nodiscard]] DeviceBuffer<T> alloc(std::size_t n) {
        maybe_fail_alloc(n * sizeof(T));
        return DeviceBuffer<T>(tracker_, n, san_.get(), ssan_.get());
    }

    /// Checks out a pooled global-memory array of n Ts, ordered on `stream`.
    template <typename T>
    [[nodiscard]] PooledBuffer<T> pooled(std::size_t n, int stream = 0, bool zeroed = false) {
        return PooledBuffer<T>(mem_pool_, n, stream, zeroed);
    }

    /// Launches a kernel: executes `fn` for each block, merges counters,
    /// applies the timing model and advances the simulated clock.
    /// Returns the launch's profile (a stable copy kept by the device when
    /// profile recording is on).
    KernelProfile launch(std::string name, const LaunchConfig& cfg, const KernelFn& fn);

    /// Enqueues a device-side control thunk (dynamic parallelism).  Thunks
    /// run in FIFO order from drain(); kernels they launch should use
    /// LaunchOrigin::device.
    void device_enqueue(ControlThunk thunk);
    /// Runs queued control thunks (which may enqueue more) until the queue
    /// is empty.  This is the simulator's equivalent of cudaDeviceSynchronize
    /// after a dynamic-parallelism cascade.
    void drain();

    // ---- streams & events --------------------------------------------------
    // The simulated clock is per stream: a launch on stream s starts when
    // the previous work on s finished, so independent streams overlap
    // (idealized full overlap, like concurrent kernels that fit the
    // device side by side).  elapsed_ns() reports the latest completion
    // over all streams (the wall-clock a host would observe after
    // cudaDeviceSynchronize).

    /// Creates a new stream and returns its id (>= 1; 0 is the default
    /// stream, which always exists).
    [[nodiscard]] int create_stream();
    /// Checks a stream out of the device's reusable lease set: returns a
    /// previously released stream id if one exists, otherwise creates a
    /// fresh stream.  A re-leased stream rejoins at the current device
    /// completion time (same causality rule as create_stream), so repeated
    /// batched runs on one device do not grow the stream table without
    /// bound.
    [[nodiscard]] int lease_stream();
    /// Returns a leased stream to the reuse set.  The caller must have
    /// joined the stream's work (wait_event / synchronize) first; the
    /// stream id may be handed to an unrelated later lease.
    void release_stream(int stream);
    /// Number of stream slots that exist on this device (default stream
    /// included; released leases still count until re-used).
    [[nodiscard]] int stream_count() const noexcept {
        return static_cast<int>(stream_clock_.size());
    }
    /// Simulated completion time of all work enqueued on one stream so far.
    [[nodiscard]] double stream_clock(int stream) const;
    /// Records an event on a stream: a timestamp of the work enqueued so
    /// far.  Returns the event's simulated time.  Under StreamSan the
    /// event's happens-before snapshot is keyed by this timestamp, which is
    /// what makes a later wait_event() on it a real ordering edge.
    [[nodiscard]] double record_event(int stream) {
        const double ns = stream_clock(stream);
        if (ssan_) ssan_->on_event_record(stream, ns);
        return ns;
    }
    /// Makes `stream` wait for an event timestamp (cudaStreamWaitEvent):
    /// subsequent launches on `stream` start no earlier than `event_ns`.
    void wait_event(int stream, double event_ns);
    /// Fast-forwards an idle stream's clock to `ns` without modelling a
    /// cross-stream event edge (a host-driven scheduling decision, e.g. the
    /// server aligning a dispatch round to its deadline).  Unlike
    /// wait_event this is NOT an ordering edge: StreamSan ignores it.
    void advance_stream(int stream, double ns);
    /// Host-side synchronization with every stream: advances all stream
    /// clocks to the global completion time.
    void synchronize();

    // ---- simulated clock & bookkeeping -----------------------------------
    [[nodiscard]] double elapsed_ns() const noexcept { return clock_ns_; }
    void reset_clock() noexcept {
        clock_ns_ = 0.0;
        for (auto& c : stream_clock_) c = 0.0;
        // Event timestamps recorded before the reset are no longer
        // meaningful; drop their snapshots so a recycled timestamp value
        // cannot alias a pre-reset event.
        if (ssan_) ssan_->reset_timeline();
    }
    [[nodiscard]] const std::vector<KernelProfile>& profiles() const noexcept { return profiles_; }
    void clear_profiles() { profiles_.clear(); }
    /// Sum of all counters since the last clear_profiles()/construction.
    [[nodiscard]] KernelCounters counter_totals() const;
    /// Number of launches performed since construction (independent of
    /// profile recording).
    [[nodiscard]] std::uint64_t launch_count() const noexcept { return launch_count_; }

    // ---- fault injection & robustness bookkeeping -------------------------
    // The Device owns the fault source (simt/fault.hpp) so allocation and
    // launch faults share one deterministic draw stream, and owns the
    // robustness tallies so every front-end running on this device reports
    // its recovery actions into one place.

    /// Installs a fault schedule (replacing any previous one).  The
    /// constructor installs GPUSEL_FAULTS from the environment if set.
    void set_faults(const FaultSpec& spec) { injector_ = FaultInjector(spec); }
    /// Removes the fault schedule; subsequent operations never fault.
    void clear_faults() { injector_ = FaultInjector(); }
    [[nodiscard]] const FaultInjector& fault_injector() const noexcept { return injector_; }
    /// Injected-fault tallies (what went wrong).
    [[nodiscard]] const FaultCounters& fault_counters() const noexcept {
        return injector_.counters();
    }
    /// Recovery-action tallies (what the selection stack did about it).
    /// Mutable: the pipeline increments these as it retries/resamples.
    [[nodiscard]] RobustnessCounters& robustness() noexcept { return robustness_; }
    [[nodiscard]] const RobustnessCounters& robustness() const noexcept { return robustness_; }

    // ---- backend planner log ---------------------------------------------
    // The core planner (core/planner.hpp) records one PlannerEvent per
    // planned selection; the chrome-trace export renders them as instant
    // events on the stream they applied to.  Host-side bookkeeping only:
    // no launch, no clock advance, no counter merge.

    /// Appends a planner decision to the log, stamping the current stream
    /// clock so the trace event lands where the selection starts.
    void note_planner_event(PlannerEvent ev) {
        ev.sim_ns = ev.stream >= 0 && ev.stream < stream_count() ? stream_clock(ev.stream) : 0.0;
        planner_log_.push_back(std::move(ev));
    }
    [[nodiscard]] const std::vector<PlannerEvent>& planner_log() const noexcept {
        return planner_log_;
    }
    void clear_planner_log() { planner_log_.clear(); }
    /// Snapshot hook for the planner's RobustnessCounters feedback: the
    /// resample+fallback total the planner saw at its previous decision.
    /// A delta since then means the last planned descent thrashed.
    [[nodiscard]] std::uint64_t& planner_thrash_mark() noexcept {
        return planner_feedback_.thrash_mark;
    }
    /// Full planner feedback context, including the shape of the problem
    /// the mark was taken against (core/planner.cpp gates the thrash delta
    /// on shape similarity so one workload's counters do not bias a later
    /// unrelated workload -- the staleness fix, docs/planner.md).
    [[nodiscard]] PlannerFeedbackState& planner_feedback() noexcept { return planner_feedback_; }

    // ---- backend quarantine ----------------------------------------------
    // Bitmask of backends (1 << BackendKind) currently quarantined by a
    // supervisor -- the server's per-backend circuit breaker
    // (src/server/breaker.hpp) trips a backend after repeated faults and
    // the planner then routes around it (plan() treats quarantined
    // backends as infeasible).  0 (the default) changes nothing.

    [[nodiscard]] std::uint32_t backend_quarantine() const noexcept {
        return backend_quarantine_;
    }
    void set_backend_quarantine(std::uint32_t mask) noexcept { backend_quarantine_ = mask; }

    // ---- SimTSan ----------------------------------------------------------
    // The Device owns the sanitizer (simt/sanitizer.hpp) so one shadow
    // registry covers every buffer, pool checkout and launch on this
    // device.  The constructor installs GPUSEL_SAN from the environment;
    // set_sanitizer() enables it programmatically.  NOTE: buffers allocated
    // before set_sanitizer() are not shadow-tracked (no canaries either) --
    // enable the sanitizer before allocating, as the env path does.

    /// Installs (or with SanMode::off removes) the sanitizer.  A device
    /// with host_workers == 0 runs every block inline, so its sanitizer
    /// takes the faster single-threaded shadow path.
    void set_sanitizer(SanMode mode) {
        san_ = mode == SanMode::off
                   ? nullptr
                   : std::make_unique<Sanitizer>(mode, /*concurrent=*/opts_.host_workers != 0);
        mem_pool_.set_sanitizer(san_.get());
    }
    /// The active sanitizer, or nullptr when off.
    [[nodiscard]] Sanitizer* sanitizer() noexcept { return san_.get(); }
    [[nodiscard]] const Sanitizer* sanitizer() const noexcept { return san_.get(); }

    // ---- StreamSan --------------------------------------------------------
    // Happens-before hazard analysis over the stream/event/pool graph
    // (simt/streamsan.hpp).  The constructor installs GPUSEL_STREAMSAN from
    // the environment; set_stream_sanitizer() enables it programmatically.
    // Same caveat as SimTSan: buffers allocated before enabling are not
    // tracked -- enable before allocating, as the env path does.

    /// Installs (or with StreamSanMode::off removes) the stream sanitizer.
    /// Concurrent mode (host_workers != 0) makes the per-launch read/write
    /// set folding safe against blocks running on worker threads.
    void set_stream_sanitizer(StreamSanMode mode) {
        ssan_ = mode == StreamSanMode::off
                    ? nullptr
                    : std::make_unique<StreamSan>(mode, /*concurrent=*/opts_.host_workers != 0);
        mem_pool_.set_stream_sanitizer(ssan_.get());
    }
    /// The active stream sanitizer, or nullptr when off.
    [[nodiscard]] StreamSan* stream_sanitizer() noexcept { return ssan_.get(); }
    [[nodiscard]] const StreamSan* stream_sanitizer() const noexcept { return ssan_.get(); }

private:
    /// Draws an allocation fault for a fresh (non-pooled) allocation.
    void maybe_fail_alloc(std::size_t bytes);

    ArchSpec arch_;
    DeviceOptions opts_;
    AllocationTracker tracker_;
    MemoryPool mem_pool_{tracker_};
    ThreadPool pool_;
    std::deque<ControlThunk> queue_;
    bool draining_ = false;
    std::vector<KernelProfile> profiles_;
    KernelCounters totals_;
    double clock_ns_ = 0.0;                      ///< max completion over all streams
    std::vector<double> stream_clock_ = {0.0};   ///< per-stream completion time
    std::vector<int> stream_free_;               ///< released lease_stream() ids
    std::uint64_t launch_count_ = 0;
    FaultInjector injector_;
    RobustnessCounters robustness_;
    std::vector<PlannerEvent> planner_log_;
    PlannerFeedbackState planner_feedback_;
    std::uint32_t backend_quarantine_ = 0;
    std::unique_ptr<Sanitizer> san_;
    std::unique_ptr<StreamSan> ssan_;
};

}  // namespace gpusel::simt
