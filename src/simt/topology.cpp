#include "simt/topology.hpp"

#include <algorithm>
#include <cstdint>
#include <ostream>
#include <string>

#include "simt/block.hpp"
#include "simt/timing.hpp"
#include "simt/trace.hpp"

namespace gpusel::simt {

DeviceGroup::DeviceGroup(TopologySpec spec) : spec_(std::move(spec)) {
    if (spec_.num_devices < 1) spec_.num_devices = 1;
    devices_.reserve(static_cast<std::size_t>(spec_.num_devices));
    link_in_.reserve(devices_.capacity());
    link_out_.reserve(devices_.capacity());
    for (int i = 0; i < spec_.num_devices; ++i) {
        devices_.push_back(std::make_unique<Device>(spec_.arch, spec_.device_opts));
        // Dedicated link streams, created before any lease so their ids are
        // stable and never handed to compute work.
        link_in_.push_back(devices_.back()->create_stream());
        link_out_.push_back(devices_.back()->create_stream());
    }
    const auto pairs =
        static_cast<std::size_t>(spec_.num_devices) * static_cast<std::size_t>(spec_.num_devices);
    link_busy_.assign(pairs, 0.0);
    link_bytes_.assign(pairs, 0);
}

std::size_t DeviceGroup::mem_capacity_bytes() const noexcept {
    if (spec_.mem_capacity_bytes != 0) return spec_.mem_capacity_bytes;
    return static_cast<std::size_t>(spec_.arch.mem_capacity_gb * (1ull << 30));
}

std::uint64_t DeviceGroup::total_link_bytes() const noexcept {
    std::uint64_t total = 0;
    for (const auto b : link_bytes_) total += b;
    return total;
}

void DeviceGroup::synchronize_all() {
    for (auto& d : devices_) d->synchronize();
}

double DeviceGroup::elapsed_ns() const noexcept {
    double latest = 0.0;
    for (const auto& d : devices_) latest = std::max(latest, d->elapsed_ns());
    return latest;
}

void DeviceGroup::reset_clocks() {
    for (auto& d : devices_) d->reset_clock();
    std::fill(link_busy_.begin(), link_busy_.end(), 0.0);
}

template <typename T>
TransferRecord DeviceGroup::transfer(int from, std::span<const T> src, std::size_t src_base,
                                     int to, std::span<T> dst, std::size_t dst_base,
                                     std::size_t count, int from_stream) {
    Device& sdev = device(from);
    Device& ddev = device(to);
    const std::size_t bytes = count * sizeof(T);
    const int out = link_out_[static_cast<std::size_t>(from)];
    const int in = link_in_[static_cast<std::size_t>(to)];
    const auto src_view = src.subspan(src_base, count);
    const auto dst_view = dst.subspan(dst_base, count);

    // The send happens after the producer's work on from_stream (a real
    // happens-before edge, so StreamSan accepts the read below).
    const double src_ready = sdev.record_event(from_stream);
    sdev.wait_event(out, src_ready);

    // Source endpoint: a coalesced read-only pass over the staging range.
    // Charges the bytes as global reads and leaves a StreamSan read note on
    // the source buffer, so overwriting it while the send is in flight is a
    // reportable hazard.
    constexpr int kBlockDim = 256;
    const int sgrid = suggest_grid(sdev.arch(), count, kBlockDim);
    sdev.launch("link_send",
                {.grid_dim = sgrid, .block_dim = kBlockDim, .stream = out}, [&](BlockCtx& blk) {
                    blk.warp_tiles(count, [&](WarpCtx& w, std::size_t base, std::size_t) {
                        T regs[kWarpSize];
                        w.load(src_view, base, regs);
                    });
                });

    // Wire time: transfers in one direction serialize on the link; the
    // payload leaves when both the send pass and the wire are free.
    const double send_done = sdev.stream_clock(out);
    double& busy = link_busy_[pair_index(from, to)];
    const double wire_start = std::max(send_done, busy);
    const double wire_end = wire_start + spec_.link.latency_ns +
                            (spec_.link.bandwidth_gbs > 0.0
                                 ? static_cast<double>(bytes) / spec_.link.bandwidth_gbs
                                 : 0.0);
    busy = wire_end;

    // Couple both link streams to the wire-arrival time.  advance_stream is
    // a scheduling fact, deliberately NOT an ordering edge: the only edge
    // consumers may rely on is the ready_ns event recorded after the
    // landing write.
    sdev.advance_stream(out, wire_end);
    ddev.advance_stream(in, wire_end);

    // Destination endpoint: materialize the payload.  The store charges
    // global writes and records the StreamSan write note on the landing
    // buffer; values are carried over the modeled wire (plain host reads of
    // the peer's memory -- the simulator's stand-in for DMA delivery).
    const int dgrid = suggest_grid(ddev.arch(), count, kBlockDim);
    ddev.launch("link_recv",
                {.grid_dim = dgrid, .block_dim = kBlockDim, .stream = in}, [&](BlockCtx& blk) {
                    blk.warp_tiles(count, [&](WarpCtx& w, std::size_t base, std::size_t cnt) {
                        T regs[kWarpSize];
                        for (std::size_t l = 0; l < cnt; ++l) regs[l] = src_view[base + l];
                        w.store(dst_view, base, regs);
                    });
                });
    const double src_done = sdev.record_event(out);
    const double ready = ddev.record_event(in);

    // Bookkeeping for the trace's per-link tracks.
    const std::size_t pair = pair_index(from, to);
    link_bytes_[pair] += bytes;
    ++transfer_count_;
    const int track = kLinkTrackBase + static_cast<int>(pair);
    const std::string link_name =
        "link" + std::to_string(from) + "->" + std::to_string(to) + "_bytes";
    link_counters_.push_back({.sim_ns = wire_end,
                              .track = track,
                              .name = link_name,
                              .value = static_cast<double>(link_bytes_[pair])});
    link_instants_.push_back({.sim_ns = wire_start,
                              .track = track,
                              .name = "transfer",
                              .detail = "bytes=" + std::to_string(bytes) +
                                        " from=" + std::to_string(from) +
                                        " to=" + std::to_string(to)});

    return {.bytes = bytes, .link_start_ns = wire_start, .link_end_ns = wire_end,
            .src_done_ns = src_done, .ready_ns = ready};
}

template TransferRecord DeviceGroup::transfer<float>(int, std::span<const float>, std::size_t,
                                                     int, std::span<float>, std::size_t,
                                                     std::size_t, int);
template TransferRecord DeviceGroup::transfer<double>(int, std::span<const double>, std::size_t,
                                                      int, std::span<double>, std::size_t,
                                                      std::size_t, int);
template TransferRecord DeviceGroup::transfer<std::int32_t>(int, std::span<const std::int32_t>,
                                                            std::size_t, int,
                                                            std::span<std::int32_t>, std::size_t,
                                                            std::size_t, int);
template TransferRecord DeviceGroup::transfer<std::uint32_t>(int, std::span<const std::uint32_t>,
                                                             std::size_t, int,
                                                             std::span<std::uint32_t>,
                                                             std::size_t, std::size_t, int);

void write_group_trace(std::ostream& os, const DeviceGroup& group) {
    std::vector<KernelProfile> merged;
    std::vector<PlannerEvent> planner;
    for (int i = 0; i < group.size(); ++i) {
        const Device& dev = group.device(i);
        for (KernelProfile p : dev.profiles()) {
            p.stream += i * kDeviceTrackStride;
            p.name = "dev" + std::to_string(i) + ":" + p.name;
            merged.push_back(std::move(p));
        }
        for (PlannerEvent ev : dev.planner_log()) {
            ev.stream += i * kDeviceTrackStride;
            planner.push_back(std::move(ev));
        }
    }
    write_chrome_trace(os, merged, planner, group.link_counters(), group.link_instants());
}

}  // namespace gpusel::simt
