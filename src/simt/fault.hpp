#pragma once
// Deterministic, seed-driven fault injection for the simulated device.
//
// Real GPUs fail in ways unit tests on healthy hosts never exercise:
// cudaMalloc returns cudaErrorMemoryAllocation under fragmentation or
// pressure, kernel launches fail transiently (sticky contexts, ECC
// retirement), and streams stall behind unrelated work.  The FaultInjector
// reproduces those failure modes *deterministically*: every potential
// fault site draws a pseudo-random number from a counter-keyed SplitMix64
// stream, so the same FaultSpec::seed replays the exact same fault
// schedule -- a failing soak scenario is a (seed, spec) pair, not a flake.
//
// Wiring (see simt/device.cpp):
//   * Device::launch draws a launch fault before any side effect (no clock
//     advance, no counter merge) and throws LaunchFault -- the launch never
//     happened, exactly like a failed cudaLaunchKernel.
//   * MemoryPool::acquire consults a fault hook before reserving memory
//     and throws AllocFault; Device::alloc draws from the same stream.
//   * Stream stalls do not fail anything: a stalled launch completes but
//     its stream clock additionally advances by FaultSpec::stall_ns,
//     modeling interference from unrelated work.
//
// Configuration: programmatic (Device::set_faults) or via the environment
// variable GPUSEL_FAULTS, a comma-separated key=value list, e.g.
//     GPUSEL_FAULTS="seed=7,alloc=0.01,launch=0.005,stall=0.02,stall_ns=1500"
// (grammar in FaultSpec::parse and docs/robustness.md).

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace gpusel::simt {

/// Thrown by MemoryPool::acquire / Device::alloc when an injected
/// allocation fault fires (the simulator's cudaErrorMemoryAllocation).
class AllocFault : public std::runtime_error {
public:
    explicit AllocFault(std::size_t bytes)
        : std::runtime_error("injected allocation fault (" + std::to_string(bytes) + " bytes)"),
          bytes_(bytes) {}
    [[nodiscard]] std::size_t bytes() const noexcept { return bytes_; }

private:
    std::size_t bytes_;
};

/// Thrown by Device::launch before any side effect when an injected
/// launch fault fires (the simulator's cudaErrorLaunchFailure).
class LaunchFault : public std::runtime_error {
public:
    explicit LaunchFault(const std::string& kernel)
        : std::runtime_error("injected launch fault (kernel '" + kernel + "')") {}
};

/// Fault schedule parameters.  Rates are per-operation probabilities in
/// [0, 1]; bursts make a triggered fault repeat on the next `burst - 1`
/// operations of the same kind too, modeling transient conditions that a
/// single immediate retry cannot clear.
struct FaultSpec {
    std::uint64_t seed = 1;    ///< keys the deterministic draw stream
    double alloc_rate = 0.0;   ///< P(allocation fails)
    double launch_rate = 0.0;  ///< P(kernel launch fails)
    double stall_rate = 0.0;   ///< P(launch's stream stalls)
    double stall_ns = 1000.0;  ///< extra simulated ns per stall
    int alloc_burst = 1;       ///< consecutive failures per alloc fault
    int launch_burst = 1;      ///< consecutive failures per launch fault

    [[nodiscard]] bool any() const noexcept {
        return alloc_rate > 0.0 || launch_rate > 0.0 || stall_rate > 0.0;
    }

    /// Parses the GPUSEL_FAULTS grammar:
    ///   spec  := entry ("," entry)*
    ///   entry := key "=" value
    ///   key   := seed | alloc | launch | stall | stall_ns
    ///          | alloc_burst | launch_burst
    /// Rates must be in [0, 1], bursts >= 1, stall_ns >= 0.
    /// Throws std::invalid_argument on malformed input.
    [[nodiscard]] static FaultSpec parse(std::string_view spec);

    /// FaultSpec from the GPUSEL_FAULTS environment variable, or nullopt
    /// when unset/empty.  Malformed values throw (fail loudly, not
    /// silently fault-free).
    [[nodiscard]] static std::optional<FaultSpec> from_env();
};

/// Tally of injected faults (what the injector *did*, as opposed to the
/// RobustnessCounters in counters.hpp which record what the selection
/// stack did about it).
struct FaultCounters {
    std::uint64_t alloc_faults = 0;
    std::uint64_t launch_faults = 0;
    std::uint64_t stalls = 0;
};

/// Deterministic fault source.  Each query advances a private draw
/// counter; the decision is a pure function of (seed, kind, draw index),
/// independent of host timing, thread scheduling, or allocator addresses.
class FaultInjector {
public:
    FaultInjector() = default;
    explicit FaultInjector(FaultSpec spec) : spec_(spec), enabled_(spec.any()) {}

    [[nodiscard]] bool enabled() const noexcept { return enabled_; }
    [[nodiscard]] const FaultSpec& spec() const noexcept { return spec_; }
    [[nodiscard]] const FaultCounters& counters() const noexcept { return counters_; }

    /// True if the next allocation must fail.  Advances the draw stream.
    [[nodiscard]] bool should_fail_alloc();
    /// True if the next kernel launch must fail.  Advances the draw stream.
    [[nodiscard]] bool should_fail_launch();
    /// Extra simulated ns the current launch's stream stalls (0 = none).
    [[nodiscard]] double stall_penalty_ns();

private:
    /// Uniform double in [0, 1) keyed by (seed, kind, draw index).
    [[nodiscard]] double draw(std::uint64_t kind);

    FaultSpec spec_{};
    bool enabled_ = false;
    std::uint64_t draws_ = 0;
    int alloc_burst_left_ = 0;
    int launch_burst_left_ = 0;
    FaultCounters counters_{};
};

}  // namespace gpusel::simt
