#pragma once
// Event counters for the SIMT simulator.
//
// Every instrumented operation a kernel performs (global/shared memory
// traffic, atomics, warp votes, barriers, abstract ALU work) is tallied into
// a KernelCounters instance.  Counters are kept per block context while a
// kernel runs -- so the hot path is a plain integer increment without any
// synchronization -- and merged into the launch-wide KernelProfile when the
// block retires.
//
// The timing model (timing.hpp) converts a KernelProfile into simulated
// nanoseconds for a given ArchSpec.  The counters themselves are exact: they
// are produced by executing the real algorithm on the real data.

#include <cstdint>
#include <iosfwd>
#include <string>

namespace gpusel::simt {

/// Exact event tallies for one kernel launch (or any aggregation thereof).
struct KernelCounters {
    // -- global memory traffic ------------------------------------------
    /// Bytes read with warp-coalesced access patterns.
    std::uint64_t global_bytes_read = 0;
    /// Bytes written with warp-coalesced access patterns.
    std::uint64_t global_bytes_written = 0;
    /// Bytes read through gather (scattered) accesses.
    std::uint64_t scattered_bytes_read = 0;
    /// Bytes written through scatter accesses.
    std::uint64_t scattered_bytes_written = 0;

    // -- shared memory ---------------------------------------------------
    /// Bytes moved to/from block shared memory (non-atomic accesses).
    std::uint64_t shared_bytes_accessed = 0;

    // -- atomics ----------------------------------------------------------
    /// Atomic ops issued on shared-memory operands.
    std::uint64_t shared_atomic_ops = 0;
    /// Intra-warp same-address conflicts among shared atomics
    /// (lanes beyond the first touching an address in the same warp op).
    std::uint64_t shared_atomic_collisions = 0;
    /// Atomic ops issued on global-memory operands.
    std::uint64_t global_atomic_ops = 0;
    /// Intra-warp same-address conflicts among global atomics.
    std::uint64_t global_atomic_collisions = 0;

    // -- warp / block level ops ------------------------------------------
    /// Warp vote operations (__ballot_sync equivalents).
    std::uint64_t warp_ballots = 0;
    /// Warp shuffle/broadcast operations.
    std::uint64_t warp_shuffles = 0;
    /// Block-wide barriers (__syncthreads equivalents).
    std::uint64_t block_barriers = 0;

    // -- abstract compute --------------------------------------------------
    /// Scalar instruction equivalents (comparisons, index arithmetic, ...).
    std::uint64_t instructions = 0;

    KernelCounters& operator+=(const KernelCounters& o) noexcept;
    friend KernelCounters operator+(KernelCounters a, const KernelCounters& b) noexcept {
        a += b;
        return a;
    }
    bool operator==(const KernelCounters&) const = default;

    /// Total global memory traffic in bytes (coalesced + scattered).
    [[nodiscard]] std::uint64_t total_global_bytes() const noexcept {
        return global_bytes_read + global_bytes_written + scattered_bytes_read +
               scattered_bytes_written;
    }
    /// Total atomic operations in both memory spaces.
    [[nodiscard]] std::uint64_t total_atomic_ops() const noexcept {
        return shared_atomic_ops + global_atomic_ops;
    }
};

std::ostream& operator<<(std::ostream& os, const KernelCounters& c);

/// Tallies of the selection stack's self-healing actions (retry on
/// injected faults, resampling on stalled levels, deterministic fallback
/// descent) plus the backend planner's decision counts.  Owned by the
/// Device so every front-end reports into one place; surfaced in the
/// benchmark JSON so robustness regressions show up in the perf trajectory
/// alongside the pool counters.  The recovery tallies are all-zero on a
/// healthy, fault-free run over non-adversarial data; the backend_* fields
/// count planner decisions and grow on every planned selection.
struct RobustnessCounters {
    /// Allocation faults recovered by pool-trim + retry.
    std::uint64_t alloc_retries = 0;
    /// Kernel-launch faults recovered by relaunching (with a fresh sample
    /// salt where the kernel was the splitter sampler).
    std::uint64_t launch_retries = 0;
    /// Stalled bucketing levels retried with a fresh splitter sample.
    std::uint64_t resamples = 0;
    /// Descents that exhausted resampling and entered deterministic
    /// fallback mode.
    std::uint64_t fallbacks = 0;
    /// Deterministic tripartition levels executed in fallback mode.
    std::uint64_t fallback_levels = 0;
    /// StreamSan hazards observed so far (simt/streamsan.hpp); zero on a
    /// correctly synchronized run.  Refreshed by the Device at launch and
    /// event boundaries while the stream sanitizer is active.
    std::uint64_t streamsan_hazards = 0;

    // -- backend planner (core/planner.hpp) -------------------------------
    // One tally per planned selection, keyed by the backend the planner
    // chose.  Not "self-healing" in the retry sense, but reported here so
    // the bench JSON's robustness block shows which algorithm actually ran
    // alongside the recovery counters it was chosen from.
    /// Selections the planner routed to the sample-select recursion.
    std::uint64_t backend_sample = 0;
    /// Selections the planner routed to the radix digit descent.
    std::uint64_t backend_radix = 0;
    /// Selections the planner routed to the fused-bitonic small-n path.
    std::uint64_t backend_bitonic = 0;
    /// Decisions forced by the GPUSEL_BACKEND environment override.
    std::uint64_t backend_env_overrides = 0;

    RobustnessCounters& operator+=(const RobustnessCounters& o) noexcept {
        alloc_retries += o.alloc_retries;
        launch_retries += o.launch_retries;
        resamples += o.resamples;
        fallbacks += o.fallbacks;
        fallback_levels += o.fallback_levels;
        streamsan_hazards += o.streamsan_hazards;
        backend_sample += o.backend_sample;
        backend_radix += o.backend_radix;
        backend_bitonic += o.backend_bitonic;
        backend_env_overrides += o.backend_env_overrides;
        return *this;
    }
    bool operator==(const RobustnessCounters&) const = default;
    [[nodiscard]] bool all_zero() const noexcept { return *this == RobustnessCounters{}; }
};

std::ostream& operator<<(std::ostream& os, const RobustnessCounters& c);

/// One backend-planner decision (core/planner.hpp), recorded on the Device
/// so the chrome-trace export (simt/trace.hpp) can render it as an instant
/// event on the stream it applied to.  Kept at the simt layer as plain
/// strings/ints -- the simulator knows nothing about the core backends.
/// Recording is host-side bookkeeping: no launch, no clock advance, so
/// kernel event streams are untouched.
struct PlannerEvent {
    /// Stream clock at decision time (the instant event's timestamp).
    double sim_ns = 0.0;
    /// Stream the planned selection runs on.
    int stream = 0;
    /// Backend name ("sample" / "radix" / "bitonic").
    std::string backend;
    /// One-line rationale ("duplicate-heavy probe", "env override", ...).
    std::string reason;
    /// Problem shape the decision was made for.
    std::uint64_t n = 0;
    std::uint64_t k = 0;
    /// True when GPUSEL_BACKEND forced the choice.
    bool env_forced = false;
};

/// Planner feedback context kept on the Device (core/planner.cpp reads and
/// writes it).  thrash_mark snapshots resamples+fallbacks at the previous
/// decision; prev_n/prev_elem_size record the shape of the problem that
/// decision was made for, so a counter delta is only attributed to "the
/// sampler thrashes on inputs like this one" when the next problem is
/// shape-similar -- counters accumulated by one workload no longer bias a
/// later unrelated workload in the same process (docs/planner.md).
struct PlannerFeedbackState {
    std::uint64_t thrash_mark = 0;
    /// Shape of the previously planned problem; prev_n == 0 means no
    /// decision has been recorded yet.
    std::uint64_t prev_n = 0;
    std::uint64_t prev_elem_size = 0;
};

/// One sample of a numeric track for the chrome-trace export ("ph":"C"
/// counter events): the server's queue-depth track, EWMA service estimate,
/// ...  Host-side bookkeeping like PlannerEvent; the simulator assigns no
/// meaning to name/track.
struct TraceCounter {
    double sim_ns = 0.0;
    /// Trace thread id the counter renders under (picked above the stream
    /// tids by the exporter's caller).
    int track = 0;
    /// Counter series name ("queue_depth", "inflight", ...).
    std::string name;
    double value = 0.0;
};

/// One point annotation for the chrome-trace export ("ph":"i" instant
/// events): admission decisions (admit/shed/deadline-reject/degrade),
/// breaker transitions, drain milestones.
struct TraceInstant {
    double sim_ns = 0.0;
    int track = 0;
    /// Event name ("shed", "degrade", "breaker_open", ...).
    std::string name;
    /// Free-form detail rendered into the event args ("tenant=3", ...).
    std::string detail;
};

/// Where a kernel launch originated.  Device-side launches model CUDA
/// Dynamic Parallelism (tail recursion stays on the GPU, Sec. IV-E of the
/// paper) and are charged a different launch latency.
enum class LaunchOrigin { host, device };

/// Full record of one kernel launch: configuration, exact event counts and
/// the simulated duration assigned by the timing model.
struct KernelProfile {
    std::string name;
    int grid_dim = 0;
    int block_dim = 0;
    std::size_t shared_bytes = 0;
    LaunchOrigin origin = LaunchOrigin::host;
    /// Loop unrolling depth declared by the kernel (Sec. IV-H d); consumed
    /// by the timing model's latency-hiding/occupancy terms.
    int unroll = 1;
    /// Stream the launch was enqueued on (0 = default stream).
    int stream = 0;
    KernelCounters counters;
    /// Simulated execution time (set by the Device at launch retirement).
    double sim_ns = 0.0;
    /// Simulated start time: the launch's stream clock before this launch
    /// ran (set by the Device).  Launches on different streams may have
    /// overlapping [start_ns, start_ns + sim_ns) intervals.
    double start_ns = 0.0;

    [[nodiscard]] std::uint64_t threads_launched() const noexcept {
        return static_cast<std::uint64_t>(grid_dim) * static_cast<std::uint64_t>(block_dim);
    }
};

std::ostream& operator<<(std::ostream& os, const KernelProfile& p);

}  // namespace gpusel::simt
