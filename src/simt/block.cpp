#include "simt/block.hpp"

#include <algorithm>
#include <stdexcept>

#include "simt/simd.hpp"

namespace gpusel::simt {

namespace {
/// Per-thread reusable shared-memory arena.  Blocks run to completion on
/// one host thread, so at most one BlockCtx per thread normally exists;
/// reusing the buffer avoids a 48-96 KiB allocate-and-zero per simulated
/// block.  The in-use flag guards the rare nested-BlockCtx case (a kernel
/// body constructing another block), which falls back to a private buffer.
thread_local std::vector<std::byte> tl_arena;
thread_local bool tl_arena_in_use = false;
}  // namespace

BlockCtx::BlockCtx(const ArchSpec& arch, int block_idx, int grid_dim, int block_dim,
                   std::size_t shared_limit, Sanitizer* san, StreamSan* ssan)
    : arch_(arch),
      block_idx_(block_idx),
      grid_dim_(grid_dim),
      block_dim_(block_dim),
      shared_limit_(shared_limit),
      san_(san),
      ssan_(ssan) {
    if (block_dim <= 0 || block_dim % kWarpSize != 0) {
        throw std::invalid_argument("block_dim must be a positive multiple of the warp size");
    }
    if (block_dim > arch.max_threads_per_block) {
        throw std::invalid_argument("block_dim exceeds max_threads_per_block");
    }
    // Claim the arena only after validation: a throwing constructor never
    // runs the destructor that would release the in-use flag.
    if (!tl_arena_in_use) {
        tl_arena_in_use = true;
        using_tl_arena_ = true;
        if (tl_arena.size() < shared_limit_) tl_arena.resize(shared_limit_);
        shared_mem_ = tl_arena.data();
    } else {
        own_mem_.resize(shared_limit_);
        shared_mem_ = own_mem_.data();
    }
}

BlockCtx::~BlockCtx() {
    // Retire the scalar-access coalescer before the launch-end analysis
    // runs.  note_* cannot report (analysis is deferred to on_launch_end);
    // the only throw source is an allocation inside the first-touch path,
    // and dropping that note on OOM merely misses a race -- the soundness
    // stance StreamSan already takes.
    try {
        ssan_flush();
    } catch (...) {
    }
    if (using_tl_arena_) tl_arena_in_use = false;
}

void BlockCtx::shared_conflict(std::size_t g, bool is_write, bool is_atomic,
                               const char* primitive, std::uint64_t cell) {
    const auto c_warp = static_cast<std::uint32_t>((cell >> 1) & 0xffU);
    SanViolation v;
    v.kind = ViolationKind::shared_epoch;
    v.primitive = primitive;
    v.offset = g * kSanGranule;
    v.block = block_idx_;
    v.detail = std::string(is_atomic ? "atomic" : (is_write ? "write" : "read")) + " by warp " +
               std::to_string(current_warp_) + " of a word written by warp " +
               std::to_string(static_cast<int>(c_warp) - 2) + " with no sync() in between";
    san_->report(std::move(v));
}

int BlockCtx::distinct(const std::int32_t* idx, int n, std::size_t universe) {
    if (mark_.size() < universe) mark_.resize(universe, 0);
    ++epoch_;
    if (epoch_ == 0) {  // wrapped: reset marks
        std::fill(mark_.begin(), mark_.end(), 0);
        epoch_ = 1;
    }
    int d = 0;
    for (int l = 0; l < n; ++l) {
        const auto b = static_cast<std::size_t>(idx[l]);
        if (mark_[b] != epoch_) {
            mark_[b] = epoch_;
            ++d;
        }
    }
    return d;
}

std::uint32_t WarpCtx::ballot(const bool* pred) const {
    ++blk_->counters_.warp_ballots;
    std::uint32_t mask = 0;
    for (int l = 0; l < lanes_; ++l) {
        if (pred[l]) mask |= (1u << l);
    }
    return mask;
}

void WarpCtx::touch_shared(std::uint64_t bytes) const {
    blk_->counters_.shared_bytes_accessed += bytes;
}

void WarpCtx::add_instr(std::uint64_t n) const { blk_->counters_.instructions += n; }

void WarpCtx::san_check_targets(AtomicSpace space, std::span<std::int32_t> counters,
                                const std::int32_t* which, const bool* active,
                                const char* primitive) const {
    Sanitizer* san = blk_->san_;
    StreamSan* ssan = blk_->ssan_;
    if (san == nullptr && ssan == nullptr) return;
    for (int l = 0; l < lanes_; ++l) {
        if (active != nullptr && !active[l]) continue;
        const auto b = static_cast<std::size_t>(which[l]);
        if (which[l] < 0 || b >= counters.size()) {
            if (san == nullptr) continue;  // OOB reporting is SimTSan's job
            san->oob(space == AtomicSpace::shared ? ViolationKind::shared_oob
                                                  : ViolationKind::global_oob,
                     primitive, b, counters.size(), blk_->block_idx_);
        }
        if (space == AtomicSpace::global) {
            if (san != nullptr) {
                san->global_atomic(&counters[b], sizeof(std::int32_t), blk_->block_idx_,
                                   primitive);
            }
            // Atomic RMW counts as a write for cross-stream ordering.
            if (ssan != nullptr) ssan->note_write(&counters[b], sizeof(std::int32_t));
        }
    }
    // OOB always throws, so every which[l] is in range here; the shared
    // shadow pass runs batched with the span setup hoisted out of the loop.
    if (san != nullptr && space == AtomicSpace::shared) {
        blk_->shared_access_lanes(counters, which, active, lanes_, primitive);
    }
}

namespace {
/// Applies one atomic add; global space uses std::atomic_ref because blocks
/// of a launch may execute concurrently on host threads.
inline std::int32_t apply_fetch_add(AtomicSpace space, std::int32_t& ctr, std::int32_t val) {
    if (space == AtomicSpace::global) {
        return std::atomic_ref<std::int32_t>(ctr).fetch_add(val, std::memory_order_relaxed);
    }
    const std::int32_t old = ctr;
    ctr += val;
    return old;
}
}  // namespace

void WarpCtx::atomic_add(AtomicSpace space, std::span<std::int32_t> counters,
                         const std::int32_t* bucket, std::int32_t val) const {
    san_check_targets(space, counters, bucket, nullptr, "atomic_add");
    auto& c = blk_->counters_;
    int d;
    if (space == AtomicSpace::shared && counters.size() <= simd::kMaxHistogramBins) {
        // Shared-space counters are block-private (blocks run sequentially
        // on one thread), so the adds need no atomic_ref; the fused
        // accumulate also returns the distinct count in the same pass.
        d = simd::histogram_accumulate(counters.data(), counters.size(), bucket, val, lanes_);
    } else {
        d = blk_->distinct(bucket, lanes_, counters.size());
        for (int l = 0; l < lanes_; ++l) {
            apply_fetch_add(space, counters[static_cast<std::size_t>(bucket[l])], val);
        }
    }
    const auto ops = static_cast<std::uint64_t>(lanes_);
    const auto coll = static_cast<std::uint64_t>(lanes_ - d);
    if (space == AtomicSpace::shared) {
        c.shared_atomic_ops += ops;
        c.shared_atomic_collisions += coll;
    } else {
        c.global_atomic_ops += ops;
        c.global_atomic_collisions += coll;
    }
}

void WarpCtx::atomic_add_aggregated(AtomicSpace space, std::span<std::int32_t> counters,
                                    const std::int32_t* bucket, int index_bits,
                                    std::int32_t val) const {
    san_check_targets(space, counters, bucket, nullptr, "atomic_add_aggregated");
    auto& c = blk_->counters_;
    // Fig. 6: one ballot per bucket-index bit to intersect the lane masks.
    c.warp_ballots += static_cast<std::uint64_t>(index_bits);

    if (space == AtomicSpace::shared && counters.size() <= simd::kMaxHistogramBins) {
        // Block-private counters: the per-group aggregated adds sum to the
        // same per-bucket totals as a plain histogram, and the group count
        // is the distinct count, so the fused pass covers both.
        const int groups =
            simd::histogram_accumulate(counters.data(), counters.size(), bucket, val, lanes_);
        c.shared_atomic_ops += static_cast<std::uint64_t>(groups);
        return;
    }

    // Group lanes by bucket; the group leader issues a single atomic with
    // the aggregated value.  One pass using the epoch scratch; slot_ maps
    // a marked bucket to its group index, so the pass is O(lanes) instead
    // of O(lanes * groups).
    auto& mark = blk_->mark_;
    auto& slot = blk_->slot_;
    if (mark.size() < counters.size()) {
        mark.resize(counters.size(), 0);
        slot.resize(counters.size(), 0);
    }
    ++blk_->epoch_;
    if (blk_->epoch_ == 0) {
        std::fill(mark.begin(), mark.end(), 0);
        blk_->epoch_ = 1;
    }
    // leader_of[g] / group_val[g] for up to kWarpSize groups.
    std::int32_t group_bucket[kWarpSize];
    std::int32_t group_val[kWarpSize];
    int groups = 0;
    for (int l = 0; l < lanes_; ++l) {
        const auto b = static_cast<std::size_t>(bucket[l]);
        if (mark[b] != blk_->epoch_) {
            mark[b] = blk_->epoch_;
            slot[b] = groups;
            group_bucket[groups] = bucket[l];
            group_val[groups] = val;
            ++groups;
        } else {
            group_val[slot[b]] += val;
        }
    }
    if (space == AtomicSpace::shared) {
        c.shared_atomic_ops += static_cast<std::uint64_t>(groups);
    } else {
        c.global_atomic_ops += static_cast<std::uint64_t>(groups);
    }
    for (int g = 0; g < groups; ++g) {
        apply_fetch_add(space, counters[static_cast<std::size_t>(group_bucket[g])], group_val[g]);
    }
}

void WarpCtx::fetch_add(AtomicSpace space, std::span<std::int32_t> counters,
                        const std::int32_t* which, std::int32_t* old_out, bool aggregated,
                        int index_bits, const bool* active) const {
    san_check_targets(space, counters, which, active, "fetch_add");
    auto& c = blk_->counters_;
    if (!aggregated) {
        std::int32_t targets[kWarpSize];
        int n_active = 0;
        for (int l = 0; l < lanes_; ++l) {
            if (active == nullptr || active[l]) targets[n_active++] = which[l];
        }
        const int d = n_active > 0 ? blk_->distinct(targets, n_active, counters.size()) : 0;
        const auto ops = static_cast<std::uint64_t>(n_active);
        const auto coll = static_cast<std::uint64_t>(n_active - d);
        if (space == AtomicSpace::shared) {
            c.shared_atomic_ops += ops;
            c.shared_atomic_collisions += coll;
        } else {
            c.global_atomic_ops += ops;
            c.global_atomic_collisions += coll;
        }
        for (int l = 0; l < lanes_; ++l) {
            if (active == nullptr || active[l]) {
                old_out[l] =
                    apply_fetch_add(space, counters[static_cast<std::size_t>(which[l])], 1);
            }
        }
        return;
    }

    // Aggregated: index_bits ballots partition the active lanes into
    // same-counter groups; the leader fetch-adds the group size once and
    // lanes receive lane-ordered sub-offsets.
    c.warp_ballots += static_cast<std::uint64_t>(index_bits);
    std::int32_t group_bucket[kWarpSize];
    std::int32_t group_size[kWarpSize];
    std::int32_t lane_group[kWarpSize];
    std::int32_t lane_sub[kWarpSize];
    int groups = 0;
    for (int l = 0; l < lanes_; ++l) {
        if (active != nullptr && !active[l]) {
            lane_group[l] = -1;
            continue;
        }
        int g = -1;
        for (int j = 0; j < groups; ++j) {
            if (group_bucket[j] == which[l]) {
                g = j;
                break;
            }
        }
        if (g < 0) {
            g = groups++;
            group_bucket[g] = which[l];
            group_size[g] = 0;
        }
        lane_group[l] = g;
        lane_sub[l] = group_size[g]++;
    }
    if (space == AtomicSpace::shared) {
        c.shared_atomic_ops += static_cast<std::uint64_t>(groups);
    } else {
        c.global_atomic_ops += static_cast<std::uint64_t>(groups);
    }
    std::int32_t group_base[kWarpSize];
    for (int g = 0; g < groups; ++g) {
        group_base[g] = apply_fetch_add(
            space, counters[static_cast<std::size_t>(group_bucket[g])], group_size[g]);
    }
    for (int l = 0; l < lanes_; ++l) {
        if (lane_group[l] >= 0) old_out[l] = group_base[lane_group[l]] + lane_sub[l];
    }
}

}  // namespace gpusel::simt
