#include "simt/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <string_view>

namespace gpusel::simt::simd {

namespace {

/// Highest tier the executing CPU supports (the compile-time tier can
/// exceed it when binaries move between machines).
Level cpu_level() noexcept {
#if defined(__GNUC__) || defined(__clang__)
#if defined(GPUSEL_SIMD_AVX512)
    if (__builtin_cpu_supports("avx512f")) return Level::avx512;
#endif
#if defined(GPUSEL_SIMD_AVX2)
    if (__builtin_cpu_supports("avx2")) return Level::avx2;
#endif
#if defined(GPUSEL_SIMD_SSE2)
    if (__builtin_cpu_supports("sse2")) return Level::sse2;
#endif
    return Level::scalar;
#else
    return compiled_level();
#endif
}

Level min_level(Level a, Level b) noexcept {
    return static_cast<int>(a) < static_cast<int>(b) ? a : b;
}

/// GPUSEL_SIMD parse: "off"/"0"/"scalar" disable, or a tier name caps the
/// dispatch; unset/unknown leaves the fastest supported tier active.
Level env_cap() noexcept {
    const char* env = std::getenv("GPUSEL_SIMD");
    if (env == nullptr) return Level::avx512;
    const std::string_view v{env};
    if (v == "off" || v == "0" || v == "scalar" || v == "none") return Level::scalar;
    if (v == "sse2") return Level::sse2;
    if (v == "avx2") return Level::avx2;
    return Level::avx512;
}

/// Hardware-and-environment ceiling, computed once.
Level hard_cap() noexcept {
    static const Level cap = min_level(min_level(compiled_level(), cpu_level()), env_cap());
    return cap;
}

/// In-process override (tests sweep tiers); relaxed is fine -- callers
/// that flip it synchronize externally.
std::atomic<Level> g_soft_cap{Level::avx512};

}  // namespace

Level active_level() noexcept {
    return min_level(hard_cap(), g_soft_cap.load(std::memory_order_relaxed));
}

void set_level(Level cap) noexcept { g_soft_cap.store(cap, std::memory_order_relaxed); }

void set_enabled(bool on) noexcept { set_level(on ? Level::avx512 : Level::scalar); }

const char* level_name(Level l) noexcept {
    switch (l) {
        case Level::scalar: return "scalar";
        case Level::sse2: return "sse2";
        case Level::avx2: return "avx2";
        case Level::avx512: return "avx512";
    }
    return "unknown";
}

}  // namespace gpusel::simt::simd
