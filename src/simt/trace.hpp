#pragma once
// Profile post-processing: per-kernel aggregation and a chrome://tracing
// export of a device's launch history.  The simulated clock is per stream:
// every KernelProfile records the stream it ran on and its start time on
// that stream's clock, so the export renders one track (tid) per stream
// and overlapping launches on different streams show side by side.

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "simt/counters.hpp"

namespace gpusel::simt {

/// Aggregate statistics for all launches of one kernel name.
struct KernelAggregate {
    std::uint64_t launches = 0;
    double total_ns = 0.0;
    KernelCounters counters;
};

/// Groups a profile list by kernel name.
[[nodiscard]] std::map<std::string, KernelAggregate> aggregate_by_name(
    const std::vector<KernelProfile>& profiles);

/// Writes the launch history in the Chrome trace-event JSON format
/// (load via chrome://tracing or https://ui.perfetto.dev).  Timestamps are
/// microseconds of simulated time, rebased so the earliest launch starts at
/// zero; each stream renders as its own track (tid = stream id, named via
/// thread_name metadata) and each launch carries its event counters as
/// arguments.
void write_chrome_trace(std::ostream& os, const std::vector<KernelProfile>& profiles);

/// Overload that also renders backend-planner decisions
/// (Device::planner_log()) as instant events ("i" phase) on the stream
/// track each decision applied to, with the chosen backend, rationale and
/// problem shape as event arguments.  Timestamps share the profiles'
/// rebased clock, so a decision appears right where its selection starts.
void write_chrome_trace(std::ostream& os, const std::vector<KernelProfile>& profiles,
                        const std::vector<PlannerEvent>& planner_events);

/// Overload that additionally renders supervisor telemetry tracks: numeric
/// series (TraceCounter -> "C" counter events, e.g. the server's
/// queue-depth track) and point annotations (TraceInstant -> "i" instant
/// events, e.g. admission decisions and breaker transitions).  Counter and
/// instant tracks render under their own tid (TraceCounter/Instant::track,
/// conventionally above the stream ids) with a thread_name of the first
/// event's name on that track.  Same rebased clock as the profiles.
void write_chrome_trace(std::ostream& os, const std::vector<KernelProfile>& profiles,
                        const std::vector<PlannerEvent>& planner_events,
                        const std::vector<TraceCounter>& counters,
                        const std::vector<TraceInstant>& instants);

/// Renders a compact text summary: one line per kernel name with launch
/// count, total simulated time and share of the overall runtime.
[[nodiscard]] std::string format_timeline(const std::vector<KernelProfile>& profiles);

}  // namespace gpusel::simt
