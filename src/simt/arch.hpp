#pragma once
// Architecture descriptions for the SIMT simulator.
//
// An ArchSpec bundles (a) the datasheet characteristics the paper lists in
// Table I for the two evaluation GPUs (Tesla K20Xm / Kepler and Tesla V100 /
// Volta) and (b) the parameters of the analytic timing model that converts
// exact event counts into simulated nanoseconds.
//
// The timing parameters are calibrated so that the *architectural contrasts*
// the paper's evaluation rests on are present:
//   * Kepler: shared-memory atomics are emulated through lock/update/unlock
//     sequences and are slow, with a high same-address collision penalty;
//     global atomics (resolved in L2) are comparatively fast.  Hence the
//     paper's observation that the global-atomics variants win on the K20Xm.
//   * Volta (like Maxwell and later): native shared-memory atomic hardware
//     makes shared atomics very fast and collision-tolerant, while global
//     atomics remain an order of magnitude slower per op.  Hence the >10x
//     advantage of sample-s over sample-g on the V100 and the fact that
//     warp-aggregation is unnecessary there (Sec. V-E).
// See EXPERIMENTS.md for the calibration rationale of each constant.

#include <cstddef>
#include <iosfwd>
#include <string>

namespace gpusel::simt {

inline constexpr int kWarpSize = 32;

/// A simulated GPU architecture: datasheet characteristics plus timing-model
/// parameters.  All throughputs are device-aggregate (they already account
/// for the number of SMs at full occupancy).
struct ArchSpec {
    // ---- identity & Table I characteristics -----------------------------
    std::string name;            ///< e.g. "K20Xm"
    std::string generation;      ///< e.g. "Kepler"
    int num_sms = 0;             ///< streaming multiprocessors
    double clock_ghz = 0.0;      ///< operating frequency
    double dp_tflops = 0.0;      ///< double-precision peak
    double sp_tflops = 0.0;      ///< single-precision peak
    double hp_tflops = 0.0;      ///< half/tensor peak (0 = n/a)
    double mem_capacity_gb = 0.0;
    double peak_bandwidth_gbs = 0.0;       ///< datasheet memory bandwidth
    double sustained_bandwidth_gbs = 0.0;  ///< bandwidth-test sustained value
    double l2_cache_mb = 0.0;
    double l1_cache_kb = 0.0;
    std::size_t shared_mem_per_block = 48u << 10;  ///< usable shared memory per block
    int max_threads_per_block = 1024;
    int warp_size = kWarpSize;
    int max_resident_threads_per_sm = 2048;
    bool has_fast_shared_atomics = false;  ///< Maxwell and later

    // ---- timing model parameters ----------------------------------------
    double host_launch_ns = 8000.0;    ///< host-side kernel launch latency
    double device_launch_ns = 2500.0;  ///< dynamic-parallelism launch latency
    /// Efficiency of scattered (gather/scatter) traffic relative to
    /// sustained bandwidth; <1 models partially-wasted transactions.
    double scattered_bw_efficiency = 0.25;
    /// Device-aggregate shared-memory atomic throughput [ops/ns].
    double shared_atomic_ops_per_ns = 1.0;
    /// Device-aggregate global-memory atomic throughput [ops/ns].
    double global_atomic_ops_per_ns = 1.0;
    /// Extra serialized op-equivalents charged per intra-warp same-address
    /// conflict (shared / global operands).
    double shared_collision_penalty = 1.0;
    double global_collision_penalty = 1.0;
    /// Device-aggregate warp-vote throughput [ballots/ns].
    double ballot_ops_per_ns = 10.0;
    /// Device-aggregate scalar-instruction throughput [instructions/ns].
    double instr_per_ns = 100.0;
    /// Cost of one block-wide barrier [ns], charged per barrier per
    /// concurrently-resident block wave.
    double barrier_ns = 20.0;
    /// Device-aggregate shared-memory bandwidth [bytes/ns].
    double shared_bytes_per_ns = 1000.0;
    /// Threads needed device-wide to reach full throughput; fewer threads
    /// scale all throughputs down linearly (latency-bound regime).
    int threads_for_peak = 0;  ///< 0 => num_sms * max_resident_threads_per_sm / 2

    [[nodiscard]] int effective_threads_for_peak() const noexcept {
        // ~512 resident threads per SM already saturate bandwidth/atomics;
        // matches the suggest_grid cap of 2 blocks x 256 threads per SM.
        return threads_for_peak > 0 ? threads_for_peak
                                    : num_sms * max_resident_threads_per_sm / 4;
    }
    /// Memory bandwidth in bytes per nanosecond (== GB/s numerically).
    [[nodiscard]] double sustained_bytes_per_ns() const noexcept {
        return sustained_bandwidth_gbs;
    }
};

/// Table I preset: NVIDIA Tesla K20Xm (Kepler generation).
[[nodiscard]] ArchSpec arch_k20xm();
/// Table I preset: NVIDIA Tesla V100 (Volta generation).
[[nodiscard]] ArchSpec arch_v100();
/// All presets the benchmark harness sweeps over.
[[nodiscard]] const ArchSpec& preset(const std::string& name);

/// Prints the Table I layout for a set of architectures (used by
/// bench_table1_arch and the README).
std::ostream& print_table1(std::ostream& os, const ArchSpec& a, const ArchSpec& b);

}  // namespace gpusel::simt
