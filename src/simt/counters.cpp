#include "simt/counters.hpp"

#include <ostream>

namespace gpusel::simt {

KernelCounters& KernelCounters::operator+=(const KernelCounters& o) noexcept {
    global_bytes_read += o.global_bytes_read;
    global_bytes_written += o.global_bytes_written;
    scattered_bytes_read += o.scattered_bytes_read;
    scattered_bytes_written += o.scattered_bytes_written;
    shared_bytes_accessed += o.shared_bytes_accessed;
    shared_atomic_ops += o.shared_atomic_ops;
    shared_atomic_collisions += o.shared_atomic_collisions;
    global_atomic_ops += o.global_atomic_ops;
    global_atomic_collisions += o.global_atomic_collisions;
    warp_ballots += o.warp_ballots;
    warp_shuffles += o.warp_shuffles;
    block_barriers += o.block_barriers;
    instructions += o.instructions;
    return *this;
}

std::ostream& operator<<(std::ostream& os, const KernelCounters& c) {
    os << "{gmem r/w " << c.global_bytes_read << "/" << c.global_bytes_written
       << " B, scattered r/w " << c.scattered_bytes_read << "/" << c.scattered_bytes_written
       << " B, smem " << c.shared_bytes_accessed << " B, atomics s/g " << c.shared_atomic_ops
       << "/" << c.global_atomic_ops << " (coll " << c.shared_atomic_collisions << "/"
       << c.global_atomic_collisions << "), ballots " << c.warp_ballots << ", shfl "
       << c.warp_shuffles << ", barriers " << c.block_barriers << ", instr " << c.instructions
       << "}";
    return os;
}

std::ostream& operator<<(std::ostream& os, const RobustnessCounters& c) {
    os << "{alloc_retries " << c.alloc_retries << ", launch_retries " << c.launch_retries
       << ", resamples " << c.resamples << ", fallbacks " << c.fallbacks << ", fallback_levels "
       << c.fallback_levels << ", streamsan_hazards " << c.streamsan_hazards << ", backend s/r/b "
       << c.backend_sample << "/" << c.backend_radix << "/" << c.backend_bitonic << " (env "
       << c.backend_env_overrides << ")}";
    return os;
}

std::ostream& operator<<(std::ostream& os, const KernelProfile& p) {
    os << p.name << " <<<" << p.grid_dim << ", " << p.block_dim << ", " << p.shared_bytes
       << ">>> (" << (p.origin == LaunchOrigin::host ? "host" : "device") << " launch) "
       << p.sim_ns << " ns " << p.counters;
    return os;
}

}  // namespace gpusel::simt
