#pragma once
// Block and warp execution contexts of the SIMT simulator.
//
// A kernel is a callable `void(BlockCtx&)`.  The Device invokes it once per
// thread block of the launch grid.  Inside a block, kernels are written in
// *warp-vectorized* style: instead of per-thread control flow, warp-wide
// primitives operate on per-lane register arrays (T regs[kWarpSize]).  This
// mirrors how the paper's CUDA kernels behave (warp-synchronous phases,
// ballots, shared-memory histograms) while keeping simulation cost at a
// small constant factor over the raw data pass.
//
// Execution of one block is sequential on one host thread, so shared-memory
// operations need no synchronization; `sync()` only records the barrier
// event for the timing model.  Blocks of one launch may run concurrently on
// a host thread pool; they interact only through global-memory atomics,
// which are implemented with std::atomic_ref.
//
// Instrumentation contract: every primitive both *performs* the operation
// and *counts* it.  Kernels must route all global-memory and atomic traffic
// through these primitives; plain reads of captured spans are reserved for
// setup/debug code paths and bench-harness validation.  The contract is
// enforced two ways: statically by tools/lint_kernels.py (raw subscripts
// and naked atomics inside kernel lambdas are build errors) and dynamically
// by SimTSan (simt/sanitizer.hpp), which shadow-checks every primitive for
// cross-block races, shared-memory epoch violations, OOB, uninitialized
// reads and canary clobbers.  Per-element traffic that is charged in bulk
// (block-sequential publish loops, staged shared data) goes through the
// *uncharged* checked accessors ld/st/shared_ld/shared_st below, so event
// counts stay byte-identical with the sanitizer on or off.

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "simt/arch.hpp"
#include "simt/counters.hpp"
#include "simt/sanitizer.hpp"
#include "simt/simd.hpp"
#include "simt/streamsan.hpp"

namespace gpusel::simt {

class BlockCtx;

/// Which memory space an atomic counter lives in (Sec. IV-G of the paper).
enum class AtomicSpace { shared, global };

/// Warp-wide execution context: lockstep operations over up to 32 lanes.
class WarpCtx {
public:
    WarpCtx(BlockCtx& blk, int active_lanes) noexcept : blk_(&blk), lanes_(active_lanes) {}

    [[nodiscard]] int lanes() const noexcept { return lanes_; }
    [[nodiscard]] BlockCtx& block() const noexcept { return *blk_; }

    // ---- global memory ---------------------------------------------------
    /// Coalesced tile load: regs[l] = src[base + l] for all active lanes.
    template <typename T>
    void load(std::span<const T> src, std::size_t base, T* regs) const;
    /// Coalesced tile store: dst[base + l] = regs[l].
    template <typename T>
    void store(std::span<T> dst, std::size_t base, const T* regs) const;
    /// Scattered gather: regs[l] = src[idx[l]].
    template <typename T>
    void gather(std::span<const T> src, const std::size_t* idx, T* regs) const;
    /// Scattered scatter: dst[idx[l]] = regs[l].
    template <typename T>
    void scatter(std::span<T> dst, const std::size_t* idx, const T* regs) const;
    /// Compacted store: lanes with pred[l] write regs[l] to consecutive
    /// slots dst[pos], dst[pos+1], ... in lane order starting at `pos`.
    /// Counts as coalesced traffic (consecutive addresses within the warp).
    template <typename T>
    void store_compacted(std::span<T> dst, std::size_t pos, const bool* pred, const T* regs) const;
    /// Mask form of store_compacted on the SIMD compress-store engine:
    /// lanes whose mask bit is set write regs[l] to dst[pos], dst[pos+1],
    /// ... in lane order (one vcompressps-style tile op instead of a
    /// per-lane loop).  Charges and shadow-checks identically to
    /// store_compacted; returns the count written.
    template <typename T>
    int compress_store(std::span<T> dst, std::size_t pos, std::uint32_t mask, const T* regs) const;
    /// Reversed variant for the right side of a bipartition: selected
    /// lanes land at dst[pos_hi], dst[pos_hi - 1], ... in lane order.
    template <typename T>
    int compress_store_rev(std::span<T> dst, std::size_t pos_hi, std::uint32_t mask,
                           const T* regs) const;
    /// Fused scattered-gather + compacted store: lanes whose mask bit is
    /// set re-read src[src_base + l] (scattered-read traffic, matching the
    /// filter kernels' second data pass) and write the values to
    /// consecutive slots starting at dst[pos].  Returns the count written.
    template <typename T>
    int compress_gather_store(std::span<T> dst, std::size_t pos, std::span<const T> src,
                              std::size_t src_base, std::uint32_t mask) const;

    // ---- warp votes / shuffles -------------------------------------------
    /// __ballot_sync equivalent over the active lanes.
    [[nodiscard]] std::uint32_t ballot(const bool* pred) const;
    /// Broadcast of one lane's value to the whole warp (__shfl_sync).
    template <typename T>
    [[nodiscard]] T shfl(const T* regs, int src_lane) const;
    /// Warp-wide sum via the shfl_down butterfly: log2(warp) shuffle
    /// rounds, result returned to the caller (lane 0's value on hardware).
    template <typename T>
    [[nodiscard]] T reduce_add(const T* regs) const;
    /// In-place inclusive prefix sum across the lanes (shfl_up ladder).
    template <typename T>
    void inclusive_scan_add(T* regs) const;

    // ---- histogram atomics (count kernel, Fig. 4 / Fig. 6) ----------------
    /// Per-lane atomicAdd(counters[bucket[l]], val): one atomic per active
    /// lane; intra-warp same-address conflicts are counted as collisions.
    void atomic_add(AtomicSpace space, std::span<std::int32_t> counters,
                    const std::int32_t* bucket, std::int32_t val = 1) const;
    /// Warp-aggregated variant (Fig. 6): `index_bits` ballot rounds compute
    /// the same-bucket lane masks, then the leader of each group issues a
    /// single atomic.  No collisions by construction.
    void atomic_add_aggregated(AtomicSpace space, std::span<std::int32_t> counters,
                               const std::int32_t* bucket, int index_bits,
                               std::int32_t val = 1) const;

    // ---- offset allocation (filter / bipartition write positions) ---------
    /// Per-lane fetch_add on one of several counters selected by which[l];
    /// old values are returned in old_out[l].  `aggregated` uses
    /// `index_bits` ballots and one atomic per distinct counter, assigning
    /// lane-ordered sub-offsets; otherwise one atomic per lane with
    /// collision accounting.
    void fetch_add(AtomicSpace space, std::span<std::int32_t> counters, const std::int32_t* which,
                   std::int32_t* old_out, bool aggregated, int index_bits,
                   const bool* active = nullptr) const;

    // ---- bookkeeping helpers ----------------------------------------------
    /// Charges shared-memory traffic (bytes) performed by lane-local code.
    void touch_shared(std::uint64_t bytes) const;
    /// Charges abstract ALU work.
    void add_instr(std::uint64_t n) const;

private:
    /// SimTSan prologue for the atomic primitives: bounds-checks every
    /// active lane's target and records the atomic in the global or shared
    /// shadow.  No-op without an active sanitizer.
    void san_check_targets(AtomicSpace space, std::span<std::int32_t> counters,
                           const std::int32_t* which, const bool* active,
                           const char* primitive) const;

    BlockCtx* blk_;
    int lanes_;
};

/// Per-block execution context.
class BlockCtx {
public:
    BlockCtx(const ArchSpec& arch, int block_idx, int grid_dim, int block_dim,
             std::size_t shared_limit, Sanitizer* san = nullptr, StreamSan* ssan = nullptr);
    ~BlockCtx();

    BlockCtx(const BlockCtx&) = delete;
    BlockCtx& operator=(const BlockCtx&) = delete;

    [[nodiscard]] int block_idx() const noexcept { return block_idx_; }
    [[nodiscard]] int grid_dim() const noexcept { return grid_dim_; }
    [[nodiscard]] int block_dim() const noexcept { return block_dim_; }
    [[nodiscard]] int warps_per_block() const noexcept { return block_dim_ / kWarpSize; }
    [[nodiscard]] const ArchSpec& arch() const noexcept { return arch_; }
    [[nodiscard]] KernelCounters& counters() noexcept { return counters_; }

    // ---- shared memory -----------------------------------------------------
    /// Bump-allocates an array of `n` Ts in block shared memory.  Throws
    /// std::runtime_error if the block's shared-memory capacity (the
    /// ArchSpec limit) would be exceeded -- this enforces the paper's
    /// constraint that e.g. approximate selection is limited to b <= 1024
    /// buckets on hardware with small shared memory.
    template <typename T>
    std::span<T> shared_array(std::size_t n);
    [[nodiscard]] std::size_t shared_bytes_used() const noexcept { return shared_used_; }

    /// Block-wide barrier (__syncthreads).  Sequential execution makes this
    /// a pure timing event.
    void sync() noexcept { ++counters_.block_barriers; }

    // ---- warp iteration -----------------------------------------------------
    /// Grid-stride iteration over [0, n) in tiles of `tile` elements
    /// (tile must be a multiple of kWarpSize; it is kWarpSize * unroll for
    /// unrolled kernels).  Invokes fn(WarpCtx&, base, count) for every tile
    /// owned by this block's warps.
    template <typename F>
    void warp_tiles(std::size_t n, std::size_t tile, F&& fn);

    /// Convenience: single-warp tiles.
    template <typename F>
    void warp_tiles(std::size_t n, F&& fn) {
        warp_tiles(n, static_cast<std::size_t>(kWarpSize), std::forward<F>(fn));
    }

    /// Block-local iteration over [0, n): only this block's warps stride
    /// the range (for kernels where each block owns a private index space,
    /// e.g. one sequence per block in batched selection).
    template <typename F>
    void warp_tiles_local(std::size_t n, F&& fn);

    // ---- direct charge helpers (for block-sequential phases such as
    //      prefix sums over shared arrays) ---------------------------------
    void charge_shared(std::uint64_t bytes) noexcept { counters_.shared_bytes_accessed += bytes; }
    void charge_instr(std::uint64_t n) noexcept { counters_.instructions += n; }
    void charge_global_read(std::uint64_t bytes) noexcept { counters_.global_bytes_read += bytes; }
    void charge_global_write(std::uint64_t bytes) noexcept {
        counters_.global_bytes_written += bytes;
    }

    // ---- checked element accessors (SimTSan) -------------------------------
    // Uncharged single-element access for code whose traffic is charged in
    // bulk (publish loops, staging copies, pivots).  With the sanitizer off
    // these compile down to the plain subscript they replace; with it on
    // they bounds-check the span and update the global or shared shadow.
    // Counters are never touched, preserving event-count golden identity.

    /// Checked global-memory read: src[i].
    template <typename T>
    [[nodiscard]] T ld(std::span<const T> src, std::size_t i) {
        if (san_ != nullptr) {
            if (i >= src.size()) {
                san_->oob(ViolationKind::global_oob, "ld", i, src.size(), block_idx_);
            }
            san_->global_read(src.data() + i, sizeof(T), block_idx_, "ld");
        }
        // Bounds-guarded: OOB reporting is SimTSan's job, StreamSan only
        // folds in-bounds traffic into the launch read/write set.
        if (ssan_ != nullptr && i < src.size()) {
            ssan_note_elem(src.data(), src.size() * sizeof(T), src.data() + i, sizeof(T),
                           /*write=*/false);
        }
        return src[i];
    }
    template <typename T>
    [[nodiscard]] T ld(std::span<T> src, std::size_t i) {
        return ld(std::span<const T>(src), i);
    }

    /// Checked global-memory write: dst[i] = v.
    template <typename T, typename U>
    void st(std::span<T> dst, std::size_t i, const U& v) {
        if (san_ != nullptr) {
            if (i >= dst.size()) {
                san_->oob(ViolationKind::global_oob, "st", i, dst.size(), block_idx_);
            }
            san_->global_write(dst.data() + i, sizeof(T), block_idx_, "st");
        }
        if (ssan_ != nullptr && i < dst.size()) {
            ssan_note_elem(dst.data(), dst.size() * sizeof(T), dst.data() + i, sizeof(T),
                           /*write=*/true);
        }
        dst[i] = v;
    }

    /// Checked shared-memory read: sh[i].  Records the access against the
    /// warp/barrier-epoch shadow (a read of a word written by a different
    /// warp in the same epoch is a shared_epoch violation).
    template <typename T>
    [[nodiscard]] T shared_ld(std::span<const T> sh, std::size_t i) {
        if (san_ != nullptr) {
            if (i >= sh.size()) {
                san_->oob(ViolationKind::shared_oob, "shared_ld", i, sh.size(), block_idx_);
            }
            shared_access(sh.data() + i, sizeof(T), /*is_write=*/false, /*is_atomic=*/false,
                          "shared_ld");
        }
        return sh[i];
    }
    template <typename T>
    [[nodiscard]] T shared_ld(std::span<T> sh, std::size_t i) {
        return shared_ld(std::span<const T>(sh), i);
    }

    /// Checked shared-memory write: sh[i] = v.
    template <typename T, typename U>
    void shared_st(std::span<T> sh, std::size_t i, const U& v) {
        if (san_ != nullptr) {
            if (i >= sh.size()) {
                san_->oob(ViolationKind::shared_oob, "shared_st", i, sh.size(), block_idx_);
            }
            shared_access(sh.data() + i, sizeof(T), /*is_write=*/true, /*is_atomic=*/false,
                          "shared_st");
        }
        sh[i] = v;
    }

    /// The device's sanitizer, or nullptr (for test/bench harness checks).
    [[nodiscard]] Sanitizer* sanitizer() const noexcept { return san_; }

    /// Counts distinct values among idx[0..n); used for collision
    /// accounting.  Values must be < universe registered via
    /// ensure_scratch(universe).
    [[nodiscard]] int distinct(const std::int32_t* idx, int n, std::size_t universe);

private:
    friend class WarpCtx;

    /// SimTSan shared-memory shadow update.  Pointers outside the block's
    /// shared arena (stack-local cursors used with AtomicSpace::shared) are
    /// skipped.  Only call with san_ != nullptr.  Inline: this runs on
    /// every shared_ld/shared_st and must vanish into the accessor; the
    /// violation construction is out-of-line in block.cpp.
    void shared_access(const void* p, std::size_t bytes, bool is_write, bool is_atomic,
                       const char* primitive) {
        // Outside the arena there is no shadow to consult: the pointer is a
        // stack-local (e.g. a cursor used with AtomicSpace::shared) and
        // cannot be shared across warps in a way the epoch model cares
        // about.
        const auto* bp = static_cast<const std::byte*>(p);
        if (shared_mem_ == nullptr || bp < shared_mem_ || bp + bytes > shared_mem_ + shared_used_) {
            return;
        }
        const auto off = static_cast<std::size_t>(bp - shared_mem_);
        const std::size_t g_last = (off + bytes - 1) / kSanGranule;
        if (sh_shadow_.size() <= g_last) [[unlikely]] sh_shadow_.resize(g_last + 1, 0);
        // Cell layout: (barrier_epoch+1):32 | (warp+2):8 | atomic:1.  A
        // zero cell means "never written"; +1/+2 biases keep real epoch 0
        // and the block-sequential phase (current_warp_ == -1)
        // distinguishable from it.
        const auto ep = static_cast<std::uint32_t>(counters_.block_barriers) + 1;
        const auto me = static_cast<std::uint32_t>(current_warp_ + 2);
        const std::uint64_t self = (static_cast<std::uint64_t>(ep) << 32) |
                                   (static_cast<std::uint64_t>(me) << 1) |
                                   static_cast<std::uint64_t>(is_atomic ? 1 : 0);
        for (std::size_t g = off / kSanGranule; g <= g_last; ++g) {
            const std::uint64_t cell = sh_shadow_[g];
            if (static_cast<std::uint32_t>(cell >> 32) == ep &&
                static_cast<std::uint32_t>((cell >> 1) & 0xffU) != me &&
                !((cell & 1U) != 0 && is_atomic)) [[unlikely]] {
                shared_conflict(g, is_write, is_atomic, primitive, cell);
            }
            if (is_write || is_atomic) sh_shadow_[g] = self;
        }
    }

    /// Batched shared_access for a warp's per-lane atomic targets inside
    /// one counter span: the arena-bounds test, the shadow sizing and the
    /// cell tag are hoisted out of the per-lane loop, which then touches
    /// exactly one 4-byte-element cell per active lane.  Callers must have
    /// range-checked `which` already (san_check_targets reports OOB, which
    /// always throws, before calling this).
    void shared_access_lanes(std::span<std::int32_t> counters, const std::int32_t* which,
                             const bool* active, int lanes, const char* primitive) {
        static_assert(sizeof(std::int32_t) == kSanGranule);
        const auto* bp = reinterpret_cast<const std::byte*>(counters.data());
        if (shared_mem_ == nullptr || bp < shared_mem_ ||
            bp + counters.size_bytes() > shared_mem_ + shared_used_) {
            return;
        }
        const auto g_base = static_cast<std::size_t>(bp - shared_mem_) / kSanGranule;
        const std::size_t g_max = g_base + counters.size() - 1;
        if (sh_shadow_.size() <= g_max) [[unlikely]] sh_shadow_.resize(g_max + 1, 0);
        const auto ep = static_cast<std::uint32_t>(counters_.block_barriers) + 1;
        const auto me = static_cast<std::uint32_t>(current_warp_ + 2);
        const std::uint64_t self = (static_cast<std::uint64_t>(ep) << 32) |
                                   (static_cast<std::uint64_t>(me) << 1) | std::uint64_t{1};
        for (int l = 0; l < lanes; ++l) {
            if (active != nullptr && !active[l]) continue;
            const std::size_t g = g_base + static_cast<std::size_t>(which[l]);
            const std::uint64_t cell = sh_shadow_[g];
            // Atomic-vs-atomic is exempt, so only a non-atomic cell (LSB 0)
            // by another warp in this epoch conflicts.
            if (static_cast<std::uint32_t>(cell >> 32) == ep &&
                static_cast<std::uint32_t>((cell >> 1) & 0xffU) != me &&
                (cell & 1U) == 0) [[unlikely]] {
                shared_conflict(g, /*is_write=*/true, /*is_atomic=*/true, primitive, cell);
            }
            sh_shadow_[g] = self;
        }
    }

    /// Cold path: builds and reports the shared_epoch violation for a
    /// same-epoch cross-warp cell conflict.
    void shared_conflict(std::size_t g, bool is_write, bool is_atomic, const char* primitive,
                         std::uint64_t cell);

    const ArchSpec& arch_;
    int block_idx_;
    int grid_dim_;
    int block_dim_;
    std::size_t shared_limit_;
    std::size_t shared_used_ = 0;
    /// Simulated shared-memory arena.  Normally a reused thread-local
    /// buffer (blocks are constructed and destroyed on the executing
    /// worker, and allocating + zeroing 48-96 KiB per block dominated
    /// small-kernel launches); falls back to a private allocation when a
    /// second BlockCtx is live on the same thread.  shared_array() zeroes
    /// the handed-out region, so kernels still observe zero-initialized
    /// shared memory either way.
    std::byte* shared_mem_ = nullptr;
    std::vector<std::byte> own_mem_;
    bool using_tl_arena_ = false;
    KernelCounters counters_;
    // epoch-marking scratch for distinct()/aggregation -- O(warp) per call;
    // slot_ maps a marked bucket to its group index within the current call.
    std::vector<std::uint32_t> mark_;
    std::vector<std::int32_t> slot_;
    std::uint32_t epoch_ = 0;
    // ---- SimTSan state ----------------------------------------------------
    Sanitizer* san_ = nullptr;
    /// StreamSan (simt/streamsan.hpp): per-launch read/write-set recording
    /// for cross-stream happens-before analysis; nullptr when off.
    StreamSan* ssan_ = nullptr;
    // Access coalescer: element/tile notes against the same span in the
    // same direction fold into a pending byte envelope, flushed on span
    // replacement and when the block retires.  StreamSan folds per-region
    // envelopes within a launch anyway, so coalescing is semantics-
    // preserving -- it only batches the fold.  Two slots per direction
    // cover the common kernel shapes (load src / store dst per tile, plus
    // one side table) without thrashing.
    struct SsanPend {
        std::uintptr_t span_lo = 0;  ///< span identity; 0 = empty slot
        std::uintptr_t span_hi = 0;
        std::uintptr_t lo = 1;  ///< pending byte range; lo > hi: none
        std::uintptr_t hi = 0;
    };
    SsanPend ssan_pend_[2][2];  ///< [write][slot]
    unsigned ssan_victim_[2] = {0, 0};

    void ssan_note_elem(const void* span_data, std::size_t span_bytes, const void* p,
                        std::size_t bytes, bool write) {
        const auto a = reinterpret_cast<std::uintptr_t>(p);
        const auto s = reinterpret_cast<std::uintptr_t>(span_data);
        SsanPend* row = ssan_pend_[write ? 1 : 0];
        for (int i = 0; i < 2; ++i) {
            SsanPend& e = row[i];
            if (e.span_lo == s && e.span_hi == s + span_bytes) [[likely]] {
                if (a < e.lo) e.lo = a;
                if (a + bytes > e.hi) e.hi = a + bytes;
                return;
            }
        }
        SsanPend& victim = row[ssan_victim_[write ? 1 : 0]++ & 1u];
        ssan_flush_one(victim, write);
        victim.span_lo = s;
        victim.span_hi = s + span_bytes;
        victim.lo = a;
        victim.hi = a + bytes;
    }
    void ssan_flush_one(SsanPend& e, bool write) {
        if (e.lo < e.hi && ssan_ != nullptr) {
            const auto* p = reinterpret_cast<const void*>(e.lo);
            if (write) {
                ssan_->note_write(p, e.hi - e.lo);
            } else {
                ssan_->note_read(p, e.hi - e.lo);
            }
        }
        e = SsanPend{};
    }
    void ssan_flush() {
        for (int w = 0; w < 2; ++w) {
            for (int i = 0; i < 2; ++i) ssan_flush_one(ssan_pend_[w][i], w != 0);
        }
    }
    /// Warp currently executing inside warp_tiles()/warp_tiles_local();
    /// -1 during block-sequential phases (publish loops, prefix sums).
    int current_warp_ = -1;
    /// Per-granule shared-memory shadow: (barrier_epoch+1):32 | (warp+2):8 |
    /// atomic:1.  Grown lazily by shared_access(); per-block, so the reused
    /// thread-local arena never leaks stale shadow state between blocks.
    std::vector<std::uint64_t> sh_shadow_;
};

// ===== inline implementations ==============================================

template <typename T>
std::span<T> BlockCtx::shared_array(std::size_t n) {
    // align to alignof(T)
    std::size_t offset = (shared_used_ + alignof(T) - 1) / alignof(T) * alignof(T);
    std::size_t end = offset + n * sizeof(T);
    if (end > shared_limit_) {
        throw std::runtime_error("shared memory capacity exceeded: need " + std::to_string(end) +
                                 " bytes, block limit is " + std::to_string(shared_limit_));
    }
    // The arena is sized at full capacity in the constructor, so spans
    // handed out earlier stay valid.  Zero the new region: the arena is
    // reused across blocks, and kernels are entitled to fresh (zeroed)
    // shared memory per block.
    shared_used_ = end;
    std::memset(shared_mem_ + offset, 0, end - offset);
    return {reinterpret_cast<T*>(shared_mem_ + offset), n};
}

template <typename F>
void BlockCtx::warp_tiles(std::size_t n, std::size_t tile, F&& fn) {
    const int wpb = warps_per_block();
    const std::size_t total_warps =
        static_cast<std::size_t>(grid_dim_) * static_cast<std::size_t>(wpb);
    const std::size_t stride = total_warps * tile;
    for (int w = 0; w < wpb; ++w) {
        const std::size_t gw = static_cast<std::size_t>(block_idx_) * static_cast<std::size_t>(wpb) +
                               static_cast<std::size_t>(w);
        current_warp_ = w;  // attribute shared-memory accesses to this warp
        for (std::size_t base = gw * tile; base < n; base += stride) {
            const std::size_t count = std::min(tile, n - base);
            WarpCtx warp(*this, static_cast<int>(std::min<std::size_t>(count, kWarpSize)));
            fn(warp, base, count);
        }
    }
    current_warp_ = -1;
}

template <typename F>
void BlockCtx::warp_tiles_local(std::size_t n, F&& fn) {
    const auto wpb = static_cast<std::size_t>(warps_per_block());
    const std::size_t tile = kWarpSize;
    const std::size_t stride = wpb * tile;
    for (std::size_t w = 0; w < wpb; ++w) {
        current_warp_ = static_cast<int>(w);
        for (std::size_t base = w * tile; base < n; base += stride) {
            const std::size_t count = std::min(tile, n - base);
            WarpCtx warp(*this, static_cast<int>(count));
            fn(warp, base, count);
        }
    }
    current_warp_ = -1;
}

template <typename T>
void WarpCtx::load(std::span<const T> src, std::size_t base, T* regs) const {
    if (Sanitizer* san = blk_->san_; san != nullptr) {
        const auto n = static_cast<std::size_t>(lanes_);
        if (base + n > src.size()) {
            san->oob(ViolationKind::global_oob, "load", base + n - 1, src.size(),
                     blk_->block_idx_);
        }
        san->global_read(src.data() + base, n * sizeof(T), blk_->block_idx_, "load");
    }
    if (StreamSan* ssan = blk_->ssan_; ssan != nullptr) {
        const auto n = static_cast<std::size_t>(lanes_);
        if (base + n <= src.size()) {
            blk_->ssan_note_elem(src.data(), src.size() * sizeof(T), src.data() + base,
                                 n * sizeof(T), /*write=*/false);
        }
    }
    for (int l = 0; l < lanes_; ++l) regs[l] = src[base + static_cast<std::size_t>(l)];
    blk_->counters_.global_bytes_read += static_cast<std::uint64_t>(lanes_) * sizeof(T);
}

template <typename T>
void WarpCtx::store(std::span<T> dst, std::size_t base, const T* regs) const {
    if (Sanitizer* san = blk_->san_; san != nullptr) {
        const auto n = static_cast<std::size_t>(lanes_);
        if (base + n > dst.size()) {
            san->oob(ViolationKind::global_oob, "store", base + n - 1, dst.size(),
                     blk_->block_idx_);
        }
        san->global_write(dst.data() + base, n * sizeof(T), blk_->block_idx_, "store");
    }
    if (StreamSan* ssan = blk_->ssan_; ssan != nullptr) {
        const auto n = static_cast<std::size_t>(lanes_);
        if (base + n <= dst.size()) {
            blk_->ssan_note_elem(dst.data(), dst.size() * sizeof(T), dst.data() + base,
                                 n * sizeof(T), /*write=*/true);
        }
    }
    for (int l = 0; l < lanes_; ++l) dst[base + static_cast<std::size_t>(l)] = regs[l];
    blk_->counters_.global_bytes_written += static_cast<std::uint64_t>(lanes_) * sizeof(T);
}

template <typename T>
void WarpCtx::gather(std::span<const T> src, const std::size_t* idx, T* regs) const {
    if (Sanitizer* san = blk_->san_; san != nullptr) {
        for (int l = 0; l < lanes_; ++l) {
            if (idx[l] >= src.size()) {
                san->oob(ViolationKind::global_oob, "gather", idx[l], src.size(),
                         blk_->block_idx_);
            }
            san->global_read(src.data() + idx[l], sizeof(T), blk_->block_idx_, "gather");
        }
    }
    if (StreamSan* ssan = blk_->ssan_; ssan != nullptr && lanes_ > 0) {
        // Envelope of the lane indices: StreamSan folds byte ranges per
        // launch anyway, so one note covers the whole scattered tile.
        const auto [lo, hi] = std::minmax_element(idx, idx + lanes_);
        if (*hi < src.size()) {
            blk_->ssan_note_elem(src.data(), src.size() * sizeof(T), src.data() + *lo,
                                 (*hi - *lo + 1) * sizeof(T), /*write=*/false);
        }
    }
    for (int l = 0; l < lanes_; ++l) regs[l] = src[idx[l]];
    blk_->counters_.scattered_bytes_read += static_cast<std::uint64_t>(lanes_) * sizeof(T);
}

template <typename T>
void WarpCtx::scatter(std::span<T> dst, const std::size_t* idx, const T* regs) const {
    if (Sanitizer* san = blk_->san_; san != nullptr) {
        for (int l = 0; l < lanes_; ++l) {
            if (idx[l] >= dst.size()) {
                san->oob(ViolationKind::global_oob, "scatter", idx[l], dst.size(),
                         blk_->block_idx_);
            }
            san->global_write(dst.data() + idx[l], sizeof(T), blk_->block_idx_, "scatter");
        }
    }
    if (StreamSan* ssan = blk_->ssan_; ssan != nullptr && lanes_ > 0) {
        const auto [lo, hi] = std::minmax_element(idx, idx + lanes_);
        if (*hi < dst.size()) {
            blk_->ssan_note_elem(dst.data(), dst.size() * sizeof(T), dst.data() + *lo,
                                 (*hi - *lo + 1) * sizeof(T), /*write=*/true);
        }
    }
    for (int l = 0; l < lanes_; ++l) dst[idx[l]] = regs[l];
    blk_->counters_.scattered_bytes_written += static_cast<std::uint64_t>(lanes_) * sizeof(T);
}

template <typename T>
void WarpCtx::store_compacted(std::span<T> dst, std::size_t pos, const bool* pred,
                              const T* regs) const {
    if (Sanitizer* san = blk_->san_; san != nullptr) {
        std::size_t count = 0;
        for (int l = 0; l < lanes_; ++l) count += pred[l] ? 1 : 0;
        if (count > 0) {
            if (pos + count > dst.size()) {
                san->oob(ViolationKind::global_oob, "store_compacted", pos + count - 1,
                         dst.size(), blk_->block_idx_);
            }
            san->global_write(dst.data() + pos, count * sizeof(T), blk_->block_idx_,
                              "store_compacted");
        }
    }
    if (StreamSan* ssan = blk_->ssan_; ssan != nullptr) {
        std::size_t count = 0;
        for (int l = 0; l < lanes_; ++l) count += pred[l] ? 1 : 0;
        if (count > 0 && pos + count <= dst.size()) {
            blk_->ssan_note_elem(dst.data(), dst.size() * sizeof(T), dst.data() + pos,
                                 count * sizeof(T), /*write=*/true);
        }
    }
    std::uint64_t written = 0;
    for (int l = 0; l < lanes_; ++l) {
        if (pred[l]) {
            dst[pos + written] = regs[l];
            ++written;
        }
    }
    blk_->counters_.global_bytes_written += written * sizeof(T);
}

template <typename T>
int WarpCtx::compress_store(std::span<T> dst, std::size_t pos, std::uint32_t mask,
                            const T* regs) const {
    if (lanes_ < 32) mask &= (1u << lanes_) - 1u;
    const auto count = static_cast<std::size_t>(std::popcount(mask));
    if (Sanitizer* san = blk_->san_; san != nullptr && count > 0) {
        if (pos + count > dst.size()) {
            san->oob(ViolationKind::global_oob, "compress_store", pos + count - 1, dst.size(),
                     blk_->block_idx_);
        }
        san->global_write(dst.data() + pos, count * sizeof(T), blk_->block_idx_,
                          "compress_store");
    }
    if (StreamSan* ssan = blk_->ssan_; ssan != nullptr && count > 0 && pos + count <= dst.size()) {
        blk_->ssan_note_elem(dst.data(), dst.size() * sizeof(T), dst.data() + pos,
                             count * sizeof(T), /*write=*/true);
    }
    const int n = simd::compress_store(regs, mask, lanes_, dst.data() + pos);
    blk_->counters_.global_bytes_written += static_cast<std::uint64_t>(n) * sizeof(T);
    return n;
}

template <typename T>
int WarpCtx::compress_store_rev(std::span<T> dst, std::size_t pos_hi, std::uint32_t mask,
                                const T* regs) const {
    if (lanes_ < 32) mask &= (1u << lanes_) - 1u;
    const auto count = static_cast<std::size_t>(std::popcount(mask));
    if (Sanitizer* san = blk_->san_; san != nullptr && count > 0) {
        if (pos_hi >= dst.size() || pos_hi + 1 < count) {
            san->oob(ViolationKind::global_oob, "compress_store_rev", pos_hi, dst.size(),
                     blk_->block_idx_);
        }
        san->global_write(dst.data() + (pos_hi + 1 - count), count * sizeof(T),
                          blk_->block_idx_, "compress_store_rev");
    }
    if (StreamSan* ssan = blk_->ssan_;
        ssan != nullptr && count > 0 && pos_hi < dst.size() && pos_hi + 1 >= count) {
        blk_->ssan_note_elem(dst.data(), dst.size() * sizeof(T),
                             dst.data() + (pos_hi + 1 - count), count * sizeof(T),
                             /*write=*/true);
    }
    const int n = simd::compress_store_reverse(regs, mask, lanes_, dst.data() + pos_hi);
    blk_->counters_.global_bytes_written += static_cast<std::uint64_t>(n) * sizeof(T);
    return n;
}

template <typename T>
int WarpCtx::compress_gather_store(std::span<T> dst, std::size_t pos, std::span<const T> src,
                                   std::size_t src_base, std::uint32_t mask) const {
    if (lanes_ < 32) mask &= (1u << lanes_) - 1u;
    const auto count = static_cast<std::size_t>(std::popcount(mask));
    if (Sanitizer* san = blk_->san_; san != nullptr && count > 0) {
        for (int l = 0; l < lanes_; ++l) {
            if (((mask >> l) & 1u) == 0) continue;
            const std::size_t i = src_base + static_cast<std::size_t>(l);
            if (i >= src.size()) {
                san->oob(ViolationKind::global_oob, "compress_gather_store", i, src.size(),
                         blk_->block_idx_);
            }
            san->global_read(src.data() + i, sizeof(T), blk_->block_idx_,
                             "compress_gather_store");
        }
        if (pos + count > dst.size()) {
            san->oob(ViolationKind::global_oob, "compress_gather_store", pos + count - 1,
                     dst.size(), blk_->block_idx_);
        }
        san->global_write(dst.data() + pos, count * sizeof(T), blk_->block_idx_,
                          "compress_gather_store");
    }
    if (StreamSan* ssan = blk_->ssan_; ssan != nullptr && count > 0) {
        const std::size_t lo = src_base + static_cast<std::size_t>(std::countr_zero(mask));
        const std::size_t hi = src_base + static_cast<std::size_t>(std::bit_width(mask)) - 1;
        if (hi < src.size()) {
            blk_->ssan_note_elem(src.data(), src.size() * sizeof(T), src.data() + lo,
                                 (hi - lo + 1) * sizeof(T), /*write=*/false);
        }
        if (pos + count <= dst.size()) {
            blk_->ssan_note_elem(dst.data(), dst.size() * sizeof(T), dst.data() + pos,
                                 count * sizeof(T), /*write=*/true);
        }
    }
    const int n = simd::compress_store(src.data() + src_base, mask, lanes_, dst.data() + pos);
    blk_->counters_.scattered_bytes_read += static_cast<std::uint64_t>(n) * sizeof(T);
    blk_->counters_.global_bytes_written += static_cast<std::uint64_t>(n) * sizeof(T);
    return n;
}

template <typename T>
T WarpCtx::shfl(const T* regs, int src_lane) const {
    ++blk_->counters_.warp_shuffles;
    return regs[src_lane];
}

template <typename T>
T WarpCtx::reduce_add(const T* regs) const {
    // 5 shfl_down rounds on hardware, independent of the value count.
    blk_->counters_.warp_shuffles += 5;
    blk_->counters_.instructions += 5;
    T sum{};
    for (int l = 0; l < lanes_; ++l) sum += regs[l];
    return sum;
}

template <typename T>
void WarpCtx::inclusive_scan_add(T* regs) const {
    // Kogge-Stone shfl_up ladder: 5 rounds.
    blk_->counters_.warp_shuffles += 5;
    blk_->counters_.instructions += 5;
    T running{};
    for (int l = 0; l < lanes_; ++l) {
        running += regs[l];
        regs[l] = running;
    }
}

}  // namespace gpusel::simt
