#pragma once
// Device-wide exclusive prefix sum (exclusive scan) over int32 buffers:
// the general-purpose building block behind the Sec. IV-G reduction step
// ("computing a prefix sum, also sometimes referred to as exclusive scan,
// over all block-local partial sums").  The specialized reduce_kernel in
// core/ handles the bucket-major layout; this substrate provides the plain
// 1-D scan for other consumers (histogram APIs, top-k bookkeeping, user
// code).
//
// Three-phase multi-block algorithm: per-block chunk scans producing block
// sums, a scan of the block sums, and an offset-add pass -- each phase a
// separate, fully instrumented kernel launch.

#include <cstdint>
#include <span>

#include "simt/device.hpp"

namespace gpusel::simt {

/// out[i] = sum of in[0..i); in and out may alias.
void exclusive_scan_i32(Device& dev, std::span<const std::int32_t> in,
                        std::span<std::int32_t> out,
                        LaunchOrigin origin = LaunchOrigin::host, int block_dim = 256,
                        int stream = 0);

/// Convenience: returns the total sum (== exclusive scan's past-the-end
/// value).  Runs the same kernels plus a final readback.
[[nodiscard]] std::int64_t scan_total_i32(Device& dev, std::span<const std::int32_t> in,
                                          std::span<std::int32_t> out,
                                          LaunchOrigin origin = LaunchOrigin::host,
                                          int block_dim = 256, int stream = 0);

}  // namespace gpusel::simt
