#pragma once
// Stream-aware device-memory arena.
//
// MemoryPool hands out raw byte blocks rounded up to power-of-two size
// classes and keeps released blocks on per-class free lists instead of
// returning them to the host allocator.  It models a stream-ordered device
// allocator (cudaMallocAsync-style): a block released while stream S was
// using it may be re-issued
//   - to the same stream immediately (stream order guarantees the previous
//     user finished before the next kernel on S starts), or
//   - to a different stream only if the releasing stream's work had already
//     completed by the acquiring stream's current clock -- so reuse never
//     introduces a cross-stream wait and independent streams keep their
//     idealized full overlap (see Streams.TwoSelectionsOverlapEndToEnd).
// Otherwise the pool falls back to a fresh backing allocation.
//
// AllocationTracker integration: the pool charges the *requested* bytes of
// every checkout (on_alloc for fresh backing, on_reuse for a pool hit) and
// credits them back on release (on_recycle), so current()/peak()/
// peak_above_baseline() keep measuring true in-use auxiliary storage --
// the Sec. IV-A "<= n/4 bytes" claim stays checkable -- while alloc_count()
// counts only real backing allocations and therefore drops when the pool
// is warm.
//
// The pool is host-side bookkeeping only: acquiring or releasing a block
// never launches a kernel and never advances the simulated clock.  Callers
// that need zeroed memory launch their own simulated memset (see
// PipelineContext::zeroed_i32) so event counts are identical to the
// pre-pool code.  Not thread-safe: like DeviceBuffer, allocation happens on
// the host control thread between kernel launches.

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "simt/memory.hpp"

namespace gpusel::simt {

/// One backing allocation managed by the pool.  Blocks live for the pool's
/// lifetime (until trim()) and cycle between "checked out" and a free list.
struct PoolBlock {
    std::unique_ptr<std::byte[]> storage;
    std::size_t capacity = 0;    ///< pow2 bytes actually backing the block
    int size_class = 0;          ///< log2(capacity)
    int last_stream = 0;         ///< stream of the most recent checkout
    double release_ns = 0.0;     ///< releasing stream's clock at release time
    std::size_t charged = 0;     ///< requested bytes charged while checked out
    bool zeroed = false;         ///< contents known to be all-zero
};

class MemoryPool {
public:
    /// Smallest block handed out; sub-64-byte requests round up to this.
    static constexpr std::size_t kMinBlockBytes = 64;
    /// How many size classes above the exact fit a small request may search.
    static constexpr int kSmallFitSpan = 2;
    /// Requests at least this large may reuse any larger free block (a
    /// bigger block serving a big request never strands much capacity).
    static constexpr std::size_t kLargeRequestBytes = 4096;

    struct Stats {
        std::uint64_t fresh = 0;         ///< acquisitions backed by new memory
        std::uint64_t hits = 0;          ///< acquisitions served from a free list
        std::uint64_t cross_stream = 0;  ///< hits whose block last served another stream
        std::size_t reserved_bytes = 0;  ///< total backing capacity owned by the pool
        std::size_t idle_bytes = 0;      ///< capacity currently on free lists
    };

    explicit MemoryPool(AllocationTracker& tracker) : tracker_(&tracker) {}
    MemoryPool(const MemoryPool&) = delete;
    MemoryPool& operator=(const MemoryPool&) = delete;

    /// Installs the simulated-clock callback used to gate cross-stream
    /// reuse.  Without one (standalone unit tests) any idle block of a
    /// matching class is reusable.
    void set_stream_clock(std::function<double(int)> clock) { stream_clock_ = std::move(clock); }

    /// Installs the fault hook consulted before every non-empty checkout;
    /// returning true makes acquire() throw AllocFault without reserving
    /// anything.  Wired by the Device to its FaultInjector.
    void set_fault_hook(std::function<bool()> hook) { fault_hook_ = std::move(hook); }

    /// Installs the sanitizer (may be nullptr).  With one active, every
    /// checkout registers its requested bytes for shadow tracking, forces
    /// the 0xA5 poison fill on non-zeroed blocks (arming uninit-read
    /// detection), and canary-fills the free tail [bytes, capacity);
    /// release() sweeps and unregisters.  Wired by Device::set_sanitizer.
    void set_sanitizer(Sanitizer* san) noexcept { san_ = san; }

    /// Installs the stream sanitizer (may be nullptr).  With one active,
    /// every checkout registers its requested bytes for happens-before
    /// tracking and reports how the block was re-issued (same-stream /
    /// clock-gated / un-gated cross-stream); release() records the
    /// releasing stream's vector clock as the block's tombstone.  Wired by
    /// Device::set_stream_sanitizer.
    void set_stream_sanitizer(StreamSan* ssan) noexcept { ssan_ = ssan; }

    /// Checks out a block of at least `bytes` bytes for `stream`.  Returns
    /// nullptr for a zero-byte request.  If `zeroed`, the block's contents
    /// are all-zero on return via a host-side memset (callers that must
    /// model the zeroing cost launch a simulated memset instead).
    PoolBlock* acquire(std::size_t bytes, int stream, bool zeroed = false);

    /// Returns a checked-out block to its free list.  `stream` is the
    /// stream whose enqueued work last touched the block.
    void release(PoolBlock* block, int stream);

    /// Drops all idle blocks, returning the backing bytes released.
    std::size_t trim();

    [[nodiscard]] Stats stats() const noexcept { return stats_snapshot(); }

    /// Idle (free-list) capacity keyed by the stream that last used each
    /// block.  Under multi-stream batched execution this shows the
    /// per-stream arenas the pool has effectively partitioned itself into:
    /// same-stream reuse is unconditional, so each stream accumulates a
    /// working set of its own recently released blocks.
    [[nodiscard]] std::map<int, std::size_t> idle_bytes_by_stream() const;

private:
    [[nodiscard]] static int class_of(std::size_t bytes) noexcept;
    [[nodiscard]] PoolBlock* take_from_class(int cls, int stream);
    [[nodiscard]] Stats stats_snapshot() const noexcept;

    static constexpr int kNumClasses = 48;

    AllocationTracker* tracker_;
    Sanitizer* san_ = nullptr;
    StreamSan* ssan_ = nullptr;
    std::function<double(int)> stream_clock_;
    std::function<bool()> fault_hook_;
    std::vector<std::unique_ptr<PoolBlock>> blocks_;           ///< owns every block
    std::array<std::vector<PoolBlock*>, kNumClasses> free_{};  ///< idle blocks per class
    std::uint64_t fresh_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t cross_stream_ = 0;
    std::size_t reserved_bytes_ = 0;
};

/// Move-only RAII checkout of a typed array from a MemoryPool.  Mirrors the
/// DeviceBuffer<T> surface (span/data/size/operator[]) so pipeline code is
/// agnostic about which one backs a span.  Must not outlive its pool.
template <typename T>
class PooledBuffer {
    static_assert(std::is_trivially_copyable_v<T>,
                  "pooled device memory holds trivially copyable types only");

public:
    PooledBuffer() = default;
    PooledBuffer(MemoryPool& pool, std::size_t n, int stream = 0, bool zeroed = false)
        : pool_(&pool), n_(n), stream_(stream) {
        block_ = pool.acquire(n * sizeof(T), stream, zeroed);
    }
    PooledBuffer(PooledBuffer&& o) noexcept
        : pool_(o.pool_), block_(o.block_), n_(o.n_), stream_(o.stream_) {
        o.pool_ = nullptr;
        o.block_ = nullptr;
        o.n_ = 0;
    }
    PooledBuffer& operator=(PooledBuffer&& o) noexcept {
        if (this != &o) {
            release();
            pool_ = o.pool_;
            block_ = o.block_;
            n_ = o.n_;
            stream_ = o.stream_;
            o.pool_ = nullptr;
            o.block_ = nullptr;
            o.n_ = 0;
        }
        return *this;
    }
    PooledBuffer(const PooledBuffer&) = delete;
    PooledBuffer& operator=(const PooledBuffer&) = delete;
    ~PooledBuffer() { release(); }

    [[nodiscard]] std::size_t size() const noexcept { return n_; }
    [[nodiscard]] bool empty() const noexcept { return n_ == 0; }
    [[nodiscard]] std::size_t bytes() const noexcept { return n_ * sizeof(T); }
    /// Elements the backing block could hold (>= size()).
    [[nodiscard]] std::size_t capacity() const noexcept {
        return block_ ? block_->capacity / sizeof(T) : 0;
    }
    [[nodiscard]] T* data() noexcept { return reinterpret_cast<T*>(raw()); }
    [[nodiscard]] const T* data() const noexcept { return reinterpret_cast<const T*>(raw()); }
    [[nodiscard]] std::span<T> span() noexcept { return {data(), n_}; }
    [[nodiscard]] std::span<const T> span() const noexcept { return {data(), n_}; }
    T& operator[](std::size_t i) noexcept { return data()[i]; }
    const T& operator[](std::size_t i) const noexcept { return data()[i]; }
    /// Stream the checkout is ordered on.
    [[nodiscard]] int stream() const noexcept { return stream_; }

private:
    [[nodiscard]] std::byte* raw() const noexcept {
        return block_ ? block_->storage.get() : nullptr;
    }
    void release() noexcept {
        if (pool_ && block_) pool_->release(block_, stream_);
        pool_ = nullptr;
        block_ = nullptr;
        n_ = 0;
    }
    MemoryPool* pool_ = nullptr;
    PoolBlock* block_ = nullptr;
    std::size_t n_ = 0;
    int stream_ = 0;
};

}  // namespace gpusel::simt
