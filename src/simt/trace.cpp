#include "simt/trace.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <set>
#include <sstream>

namespace gpusel::simt {

std::map<std::string, KernelAggregate> aggregate_by_name(
    const std::vector<KernelProfile>& profiles) {
    std::map<std::string, KernelAggregate> by;
    for (const auto& p : profiles) {
        auto& a = by[p.name];
        ++a.launches;
        a.total_ns += p.sim_ns;
        a.counters += p.counters;
    }
    return by;
}

void write_chrome_trace(std::ostream& os, const std::vector<KernelProfile>& profiles) {
    write_chrome_trace(os, profiles, {});
}

void write_chrome_trace(std::ostream& os, const std::vector<KernelProfile>& profiles,
                        const std::vector<PlannerEvent>& planner_events) {
    write_chrome_trace(os, profiles, planner_events, {}, {});
}

void write_chrome_trace(std::ostream& os, const std::vector<KernelProfile>& profiles,
                        const std::vector<PlannerEvent>& planner_events,
                        const std::vector<TraceCounter>& counters,
                        const std::vector<TraceInstant>& instants) {
    os << "{\"traceEvents\":[";
    // Rebase on the earliest recorded start so traces taken after
    // clear_profiles() (or on a long-lived device) still begin at t = 0.
    double t0 = 0.0;
    if (!profiles.empty()) {
        t0 = profiles.front().start_ns;
        for (const auto& p : profiles) t0 = std::min(t0, p.start_ns);
    }
    // One named track per stream that actually appears: Chrome/Perfetto
    // render tid as a lane, so overlapping launches on different streams
    // display side by side instead of stacking on one row.
    std::set<int> streams;
    for (const auto& p : profiles) streams.insert(p.stream);
    for (const auto& e : planner_events) streams.insert(e.stream);
    bool first = true;
    for (const int s : streams) {
        if (!first) os << ',';
        first = false;
        os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << s
           << ",\"args\":{\"name\":\"stream " << s << "\"}}";
    }
    for (const auto& p : profiles) {
        if (!first) os << ',';
        first = false;
        const auto& c = p.counters;
        os << "{\"name\":\"" << p.name << "\",\"cat\":\"kernel\",\"ph\":\"X\""
           << ",\"ts\":" << (p.start_ns - t0) / 1000.0 << ",\"dur\":" << p.sim_ns / 1000.0
           << ",\"pid\":0,\"tid\":" << p.stream << ",\"args\":{"
           << "\"grid\":" << p.grid_dim << ",\"block\":" << p.block_dim
           << ",\"origin\":\"" << (p.origin == LaunchOrigin::host ? "host" : "device") << "\""
           << ",\"gmem_read\":" << c.global_bytes_read
           << ",\"gmem_write\":" << c.global_bytes_written
           << ",\"shared_atomics\":" << c.shared_atomic_ops
           << ",\"global_atomics\":" << c.global_atomic_ops
           << ",\"collisions\":" << c.shared_atomic_collisions + c.global_atomic_collisions
           << ",\"ballots\":" << c.warp_ballots << "}}";
    }
    // Planner decisions as instant events: one marker per planned
    // selection at the stream clock the decision was taken on.  Decisions
    // recorded before any launch share the rebased origin (clamped at 0).
    for (const auto& e : planner_events) {
        if (!first) os << ',';
        first = false;
        os << "{\"name\":\"plan[" << e.backend << "]\",\"cat\":\"planner\",\"ph\":\"i\""
           << ",\"s\":\"t\",\"ts\":" << std::max(0.0, e.sim_ns - t0) / 1000.0
           << ",\"pid\":0,\"tid\":" << e.stream << ",\"args\":{"
           << "\"backend\":\"" << e.backend << "\",\"reason\":\"" << e.reason << "\""
           << ",\"n\":" << e.n << ",\"k\":" << e.k
           << ",\"env_forced\":" << (e.env_forced ? "true" : "false") << "}}";
    }
    // Supervisor telemetry: name each counter/instant track after its
    // first event so the service tracks read as lanes in the viewer.
    std::map<int, std::string> track_names;
    for (const auto& c : counters) track_names.emplace(c.track, c.name);
    for (const auto& i : instants) track_names.emplace(i.track, i.name);
    for (const auto& [track, name] : track_names) {
        if (!first) os << ',';
        first = false;
        os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << track
           << ",\"args\":{\"name\":\"" << name << "\"}}";
    }
    for (const auto& c : counters) {
        if (!first) os << ',';
        first = false;
        os << "{\"name\":\"" << c.name << "\",\"cat\":\"service\",\"ph\":\"C\""
           << ",\"ts\":" << std::max(0.0, c.sim_ns - t0) / 1000.0 << ",\"pid\":0,\"tid\":"
           << c.track << ",\"args\":{\"value\":" << c.value << "}}";
    }
    for (const auto& i : instants) {
        if (!first) os << ',';
        first = false;
        os << "{\"name\":\"" << i.name << "\",\"cat\":\"service\",\"ph\":\"i\""
           << ",\"s\":\"t\",\"ts\":" << std::max(0.0, i.sim_ns - t0) / 1000.0
           << ",\"pid\":0,\"tid\":" << i.track << ",\"args\":{\"detail\":\"" << i.detail
           << "\"}}";
    }
    os << "]}";
}

std::string format_timeline(const std::vector<KernelProfile>& profiles) {
    const auto by = aggregate_by_name(profiles);
    double total = 0.0;
    for (const auto& [name, a] : by) total += a.total_ns;

    // sort by descending total time
    std::vector<std::pair<std::string, KernelAggregate>> rows(by.begin(), by.end());
    std::sort(rows.begin(), rows.end(),
              [](const auto& a, const auto& b) { return a.second.total_ns > b.second.total_ns; });

    std::ostringstream os;
    os << std::fixed << std::setprecision(1);
    for (const auto& [name, a] : rows) {
        os << std::left << std::setw(16) << name << std::right << " x" << std::setw(5)
           << a.launches << "  " << std::setw(12) << a.total_ns / 1000.0 << " us  "
           << std::setw(5) << (total > 0 ? a.total_ns / total * 100.0 : 0.0) << "%\n";
    }
    return os.str();
}

}  // namespace gpusel::simt
