#include "simt/trace.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace gpusel::simt {

std::map<std::string, KernelAggregate> aggregate_by_name(
    const std::vector<KernelProfile>& profiles) {
    std::map<std::string, KernelAggregate> by;
    for (const auto& p : profiles) {
        auto& a = by[p.name];
        ++a.launches;
        a.total_ns += p.sim_ns;
        a.counters += p.counters;
    }
    return by;
}

void write_chrome_trace(std::ostream& os, const std::vector<KernelProfile>& profiles) {
    os << "{\"traceEvents\":[";
    double clock_ns = 0.0;
    bool first = true;
    for (const auto& p : profiles) {
        if (!first) os << ',';
        first = false;
        const auto& c = p.counters;
        os << "{\"name\":\"" << p.name << "\",\"cat\":\"kernel\",\"ph\":\"X\""
           << ",\"ts\":" << clock_ns / 1000.0 << ",\"dur\":" << p.sim_ns / 1000.0
           << ",\"pid\":0,\"tid\":0,\"args\":{"
           << "\"grid\":" << p.grid_dim << ",\"block\":" << p.block_dim
           << ",\"origin\":\"" << (p.origin == LaunchOrigin::host ? "host" : "device") << "\""
           << ",\"gmem_read\":" << c.global_bytes_read
           << ",\"gmem_write\":" << c.global_bytes_written
           << ",\"shared_atomics\":" << c.shared_atomic_ops
           << ",\"global_atomics\":" << c.global_atomic_ops
           << ",\"collisions\":" << c.shared_atomic_collisions + c.global_atomic_collisions
           << ",\"ballots\":" << c.warp_ballots << "}}";
        clock_ns += p.sim_ns;
    }
    os << "]}";
}

std::string format_timeline(const std::vector<KernelProfile>& profiles) {
    const auto by = aggregate_by_name(profiles);
    double total = 0.0;
    for (const auto& [name, a] : by) total += a.total_ns;

    // sort by descending total time
    std::vector<std::pair<std::string, KernelAggregate>> rows(by.begin(), by.end());
    std::sort(rows.begin(), rows.end(),
              [](const auto& a, const auto& b) { return a.second.total_ns > b.second.total_ns; });

    std::ostringstream os;
    os << std::fixed << std::setprecision(1);
    for (const auto& [name, a] : rows) {
        os << std::left << std::setw(16) << name << std::right << " x" << std::setw(5)
           << a.launches << "  " << std::setw(12) << a.total_ns / 1000.0 << " us  "
           << std::setw(5) << (total > 0 ? a.total_ns / total * 100.0 : 0.0) << "%\n";
    }
    return os.str();
}

}  // namespace gpusel::simt
