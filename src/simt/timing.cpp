#include "simt/timing.hpp"

#include <algorithm>
#include <cmath>

namespace gpusel::simt {

TimingBreakdown simulate_time(const ArchSpec& arch, const KernelProfile& p) {
    TimingBreakdown t;
    const auto& c = p.counters;

    // -- utilization: too few threads -> latency-bound, throughput scales
    //    roughly linearly with resident parallelism.
    const double threads = static_cast<double>(p.threads_launched());
    const double peak_threads = static_cast<double>(arch.effective_threads_for_peak());
    const double util = std::clamp(threads / peak_threads, 0.02, 1.0);

    // -- unroll effects (Sec. IV-H d): deeper unrolling lets the compiler
    //    overlap loads from consecutive iterations (better latency hiding),
    //    but inflates register pressure and can reduce occupancy.
    const double u = static_cast<double>(std::max(1, p.unroll));
    const double mem_latency_eff = std::min(1.0, 0.88 + 0.04 * u);
    const double occupancy_penalty = u >= 8.0 ? 1.06 : 1.0;

    const double bw = arch.sustained_bytes_per_ns() * util * mem_latency_eff;
    const double coalesced =
        static_cast<double>(c.global_bytes_read + c.global_bytes_written);
    const double scattered =
        static_cast<double>(c.scattered_bytes_read + c.scattered_bytes_written);
    t.mem_ns = occupancy_penalty *
               (coalesced / bw + scattered / (bw * arch.scattered_bw_efficiency));

    t.shared_mem_ns =
        static_cast<double>(c.shared_bytes_accessed) / (arch.shared_bytes_per_ns * util);

    const double shared_eff_ops = static_cast<double>(c.shared_atomic_ops) +
                                  arch.shared_collision_penalty *
                                      static_cast<double>(c.shared_atomic_collisions);
    const double global_eff_ops = static_cast<double>(c.global_atomic_ops) +
                                  arch.global_collision_penalty *
                                      static_cast<double>(c.global_atomic_collisions);
    t.atomic_ns = shared_eff_ops / (arch.shared_atomic_ops_per_ns * util) +
                  global_eff_ops / (arch.global_atomic_ops_per_ns * util);

    t.compute_ns = static_cast<double>(c.instructions) / (arch.instr_per_ns * util) +
                   static_cast<double>(c.warp_ballots + c.warp_shuffles) /
                       (arch.ballot_ops_per_ns * util);

    // -- barriers: blocks beyond one resident wave serialize their barriers.
    if (c.block_barriers > 0 && p.grid_dim > 0 && p.block_dim > 0) {
        const int blocks_per_sm =
            std::max(1, arch.max_resident_threads_per_sm / std::max(1, p.block_dim));
        const int concurrent = std::max(1, std::min(p.grid_dim, arch.num_sms * blocks_per_sm));
        const double waves = std::ceil(static_cast<double>(p.grid_dim) / concurrent);
        const double per_block_barriers =
            static_cast<double>(c.block_barriers) / static_cast<double>(p.grid_dim);
        t.barrier_ns = per_block_barriers * waves * arch.barrier_ns;
    }

    t.launch_ns = p.origin == LaunchOrigin::host ? arch.host_launch_ns : arch.device_launch_ns;

    t.body_ns = std::max({t.mem_ns, t.shared_mem_ns, t.atomic_ns, t.compute_ns});
    if (t.body_ns == t.mem_ns) {
        t.bottleneck = "mem";
    } else if (t.body_ns == t.atomic_ns) {
        t.bottleneck = "atomic";
    } else if (t.body_ns == t.compute_ns) {
        t.bottleneck = "compute";
    } else {
        t.bottleneck = "smem";
    }
    t.total_ns = t.launch_ns + t.body_ns + t.barrier_ns;
    return t;
}

StreamOverlap summarize_overlap(const std::vector<KernelProfile>& profiles) {
    StreamOverlap o;
    if (profiles.empty()) return o;
    std::vector<int> seen;
    double first_start = profiles.front().start_ns;
    double last_end = 0.0;
    for (const auto& p : profiles) {
        if (std::find(seen.begin(), seen.end(), p.stream) == seen.end()) seen.push_back(p.stream);
        first_start = std::min(first_start, p.start_ns);
        last_end = std::max(last_end, p.start_ns + p.sim_ns);
        o.serial_ns += p.sim_ns;
    }
    o.streams = static_cast<int>(seen.size());
    o.wall_ns = last_end - first_start;
    return o;
}

int suggest_grid(const ArchSpec& arch, std::size_t n, int block_dim, int unroll) {
    const auto per_block =
        static_cast<std::size_t>(block_dim) * static_cast<std::size_t>(std::max(1, unroll));
    const std::size_t needed = (n + per_block - 1) / std::max<std::size_t>(1, per_block);
    // Two resident blocks per SM saturate the device (grid-stride loops
    // cover the rest); a small grid also keeps the per-block partial-count
    // arrays of the shared-atomic hierarchy tiny, preserving the paper's
    // n/4 auxiliary-storage bound (Sec. IV-A).
    const std::size_t cap = static_cast<std::size_t>(arch.num_sms) * 2;
    return static_cast<int>(std::clamp<std::size_t>(needed, 1, cap));
}

}  // namespace gpusel::simt
