#include "simt/fault.hpp"

#include <charconv>
#include <cstdlib>
#include <string>

namespace gpusel::simt {
namespace {

// SplitMix64 finalizer (same avalanche as data::SplitMix64): a cheap,
// statistically solid hash from a 64-bit key to a 64-bit value.
std::uint64_t mix64(std::uint64_t x) noexcept {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

double parse_double(std::string_view key, std::string_view value) {
    const std::string buf(value);  // strtod needs a terminator
    char* end = nullptr;
    const double v = std::strtod(buf.c_str(), &end);
    if (end != buf.c_str() + buf.size() || buf.empty()) {
        throw std::invalid_argument("GPUSEL_FAULTS: bad number for '" + std::string(key) +
                                    "': '" + buf + "'");
    }
    return v;
}

std::uint64_t parse_u64(std::string_view key, std::string_view value) {
    std::uint64_t v = 0;
    const auto [ptr, ec] = std::from_chars(value.data(), value.data() + value.size(), v);
    if (ec != std::errc{} || ptr != value.data() + value.size()) {
        throw std::invalid_argument("GPUSEL_FAULTS: bad integer for '" + std::string(key) +
                                    "': '" + std::string(value) + "'");
    }
    return v;
}

double parse_rate(std::string_view key, std::string_view value) {
    const double v = parse_double(key, value);
    if (v < 0.0 || v > 1.0) {
        throw std::invalid_argument("GPUSEL_FAULTS: rate '" + std::string(key) +
                                    "' must be in [0, 1]");
    }
    return v;
}

int parse_burst(std::string_view key, std::string_view value) {
    const auto v = parse_u64(key, value);
    if (v < 1 || v > 1'000'000) {
        throw std::invalid_argument("GPUSEL_FAULTS: burst '" + std::string(key) +
                                    "' must be in [1, 1e6]");
    }
    return static_cast<int>(v);
}

}  // namespace

FaultSpec FaultSpec::parse(std::string_view spec) {
    FaultSpec out;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string_view::npos) comma = spec.size();
        const std::string_view entry = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (entry.empty()) continue;  // tolerate "a=1,,b=2" and trailing commas

        const std::size_t eq = entry.find('=');
        if (eq == std::string_view::npos) {
            throw std::invalid_argument("GPUSEL_FAULTS: entry without '=': '" +
                                        std::string(entry) + "'");
        }
        const std::string_view key = entry.substr(0, eq);
        const std::string_view value = entry.substr(eq + 1);
        if (key == "seed") {
            out.seed = parse_u64(key, value);
        } else if (key == "alloc") {
            out.alloc_rate = parse_rate(key, value);
        } else if (key == "launch") {
            out.launch_rate = parse_rate(key, value);
        } else if (key == "stall") {
            out.stall_rate = parse_rate(key, value);
        } else if (key == "stall_ns") {
            out.stall_ns = parse_double(key, value);
            if (out.stall_ns < 0.0) {
                throw std::invalid_argument("GPUSEL_FAULTS: stall_ns must be >= 0");
            }
        } else if (key == "alloc_burst") {
            out.alloc_burst = parse_burst(key, value);
        } else if (key == "launch_burst") {
            out.launch_burst = parse_burst(key, value);
        } else {
            throw std::invalid_argument("GPUSEL_FAULTS: unknown key '" + std::string(key) + "'");
        }
    }
    return out;
}

std::optional<FaultSpec> FaultSpec::from_env() {
    const char* env = std::getenv("GPUSEL_FAULTS");
    if (env == nullptr || *env == '\0') return std::nullopt;
    return parse(env);
}

double FaultInjector::draw(std::uint64_t kind) {
    // Key the hash by kind as well as index so interleaving of alloc and
    // launch draws does not shift either stream: the n-th alloc decision
    // is the same whether or not a launch draw happened in between.
    const std::uint64_t bits = mix64(spec_.seed ^ (kind * 0xd1342543de82ef95ULL) ^ ++draws_);
    return static_cast<double>(bits >> 11) * 0x1.0p-53;  // uniform [0, 1)
}

bool FaultInjector::should_fail_alloc() {
    if (!enabled_) return false;
    if (alloc_burst_left_ > 0) {
        --alloc_burst_left_;
        ++counters_.alloc_faults;
        return true;
    }
    if (spec_.alloc_rate > 0.0 && draw(1) < spec_.alloc_rate) {
        alloc_burst_left_ = spec_.alloc_burst - 1;
        ++counters_.alloc_faults;
        return true;
    }
    return false;
}

bool FaultInjector::should_fail_launch() {
    if (!enabled_) return false;
    if (launch_burst_left_ > 0) {
        --launch_burst_left_;
        ++counters_.launch_faults;
        return true;
    }
    if (spec_.launch_rate > 0.0 && draw(2) < spec_.launch_rate) {
        launch_burst_left_ = spec_.launch_burst - 1;
        ++counters_.launch_faults;
        return true;
    }
    return false;
}

double FaultInjector::stall_penalty_ns() {
    if (!enabled_ || spec_.stall_rate <= 0.0) return 0.0;
    if (draw(3) < spec_.stall_rate) {
        ++counters_.stalls;
        return spec_.stall_ns;
    }
    return 0.0;
}

}  // namespace gpusel::simt
