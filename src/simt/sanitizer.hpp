#pragma once
// SimTSan: shadow-memory race / contract sanitizer for the SIMT simulator.
//
// The simulator's correctness rests on the instrumentation contract spelled
// out in simt/block.hpp: all global-memory and atomic traffic flows through
// WarpCtx/BlockCtx primitives, blocks interact only through atomics, and
// sync() delimits shared-memory epochs.  Nothing in the fast path checks
// any of this -- a kernel that races across blocks or reads shared memory
// written by another warp without a barrier silently corrupts both results
// and the paper-reproduction counters.  SimTSan is the simulator's
// equivalent of compute-sanitizer/racecheck: an opt-in shadow-memory layer
// that validates every instrumented access.
//
// What it detects (ViolationKind):
//   * global_race   -- non-atomic W/W or R/W to the same 4-byte granule
//                      from two different blocks of the same launch, or an
//                      atomic mixed with a non-atomic access cross-block.
//                      Tracked via per-granule last-writer/last-reader
//                      cells tagged with (launch epoch, block id, atomic).
//   * shared_epoch  -- a shared-memory granule written by one warp and
//                      accessed by a different warp in the same barrier
//                      epoch (no intervening sync()), unless both sides
//                      are atomics.  Tracked per BlockCtx (simt/block.hpp).
//   * global_oob /  -- an instrumented primitive indexing outside its span.
//     shared_oob       OOB is always fatal (it would corrupt host memory),
//                      even in collect mode.
//   * uninit_read   -- a read of a pool checkout that was never written by
//                      an instrumented store and still carries the pool's
//                      0xA5 poison fill (simt/pool.hpp).  Both conditions
//                      are required, so host-side staging writes (which the
//                      shadow cannot see) do not false-positive.
//   * canary        -- a clobbered guard band: DeviceBuffer pads its user
//                      data with 0xC3-filled canary elements and the pool
//                      poisons the free tail of each block; plain
//                      uncounted span accesses that run past the user
//                      region trip the end-of-launch sweep.
//
// Modes (GPUSEL_SAN / Device::set_sanitizer):
//   strict  (GPUSEL_SAN=1)  -- throw SanError at the detection point; the
//            exception surfaces through the PR 3 Status channel as
//            SelectError::sanitizer_violation.
//   collect (GPUSEL_SAN=2)  -- record violations and keep running (soak
//            mode); OOB still throws.
//
// Concurrency: blocks of one launch run on the work-stealing thread pool,
// so shadow cells are touched through relaxed std::atomic_ref.  The region
// registry itself is only mutated on the host control thread between
// launches (the same discipline the memory pool documents), so kernel-side
// lookups need no lock.
//
// Determinism: SimTSan never touches KernelCounters -- event-count golden
// tests stay byte-identical with the sanitizer on or off.
//
// Performance: the check runs on every instrumented access, so the hot
// path is engineered for single-digit nanoseconds -- find()/access() are
// header-inline with cold violation construction out-of-line, shadow
// cells are 4 bytes (16-bit epoch, cleared on wrap), region lookup goes
// through a thread-local four-entry cache that also caches misses, and the
// hot path contains no LOCK-prefixed read-modify-writes.  The acceptance
// bound (<= 3x wall clock on a full selection, bench_simulator_overhead's
// san_slowdown_x counter) is what these choices buy.

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace gpusel::simt {

/// Shadow granularity: one cell per 4-byte word, the "per-word" tracking
/// unit of the race detector.  All simulator element types are 1, 4 or 8
/// bytes and tile-aligned, so a granule never spans two lanes' elements.
inline constexpr std::size_t kSanGranule = 4;
/// Canary fill byte for DeviceBuffer guard bands and pool free tails.
inline constexpr std::byte kCanaryByte{0xC3};
/// Poison fill byte; must match the memory pool's GPUSEL_POOL_POISON fill.
inline constexpr std::byte kPoisonByte{0xA5};
/// Guard-band width (bytes) on each side of a DeviceBuffer's user data.
inline constexpr std::size_t kCanaryBytes = 64;

enum class SanMode { off, strict, collect };

enum class ViolationKind {
    global_race,
    shared_epoch,
    global_oob,
    shared_oob,
    uninit_read,
    canary,
};

[[nodiscard]] std::string_view to_string(ViolationKind kind) noexcept;

/// One detected contract violation, with enough context to locate the bug:
/// which kernel, which primitive, which byte offset, which block.
struct SanViolation {
    ViolationKind kind{};
    std::string kernel;     ///< kernel name of the launch (empty outside one)
    std::string primitive;  ///< WarpCtx/BlockCtx primitive that tripped
    std::size_t offset = 0; ///< byte offset within the region / shared arena
    int block = -1;         ///< reporting block id (-1: end-of-launch sweep)
    std::string detail;     ///< human-readable specifics

    [[nodiscard]] std::string message() const;
};

/// Thrown at the detection point in strict mode (and for OOB in any mode).
/// Propagates out of kernel bodies via ThreadPool::parallel_for and is
/// mapped to SelectError::sanitizer_violation by the pipeline's retry
/// wrappers -- never retried, always surfaced.
class SanError : public std::runtime_error {
public:
    explicit SanError(SanViolation v) : std::runtime_error(v.message()), v_(std::move(v)) {}
    [[nodiscard]] const SanViolation& violation() const noexcept { return v_; }

private:
    SanViolation v_;
};

/// The sanitizer: region registry + per-region shadow + violation sink.
/// Owned by the Device; a null pointer everywhere means "off" and costs
/// one branch per primitive.
class Sanitizer {
public:
    /// `concurrent` declares whether block workers may touch shadow cells
    /// from more than one thread (Device passes host_workers != 0).  The
    /// serial case -- the default for tests and benchmarks -- takes a
    /// branchless, auto-vectorizable scan with no atomic_ref traffic;
    /// detection semantics are identical, races between *simulated* blocks
    /// are found either way.
    explicit Sanitizer(SanMode mode, bool concurrent = true)
        : mode_(mode), concurrent_(concurrent) {}
    Sanitizer(const Sanitizer&) = delete;
    Sanitizer& operator=(const Sanitizer&) = delete;

    /// Parses GPUSEL_SAN: unset/""/"0"/"off" -> off; "1"/"strict"/"on" ->
    /// strict; "2"/"collect" -> collect.  Anything else throws (fail
    /// loudly, like GPUSEL_FAULTS).
    [[nodiscard]] static SanMode mode_from_env();

    [[nodiscard]] SanMode mode() const noexcept { return mode_; }
    [[nodiscard]] bool enabled() const noexcept { return mode_ != SanMode::off; }

    // ---- region registry (host control thread, between launches) ----------
    /// Registers a global-memory region for shadow tracking.  `mark_uninit`
    /// arms uninitialized-read detection (pool checkouts whose contents are
    /// poison, not zeroes).  The optional canary ranges are guard bands
    /// swept at end_launch() and at unregistration.
    void register_region(const void* base, std::size_t bytes, bool mark_uninit,
                         const void* canary_lo = nullptr, std::size_t canary_lo_bytes = 0,
                         const void* canary_hi = nullptr, std::size_t canary_hi_bytes = 0);
    /// Final canary sweep (record-only: unregistration happens in
    /// destructors, which must not throw) and shadow teardown.
    void unregister_region(const void* base) noexcept;

    // ---- launch bracket (host control thread) ------------------------------
    /// Starts a new race-detection epoch; accesses from different blocks
    /// conflict only within one epoch (launches serialize on the host).
    void begin_launch(std::string_view kernel);
    /// Sweeps every registered canary band; throws SanError in strict mode.
    void end_launch();

    // ---- kernel-side hooks (block worker threads) --------------------------
    // Defined inline below the class: these run on every instrumented
    // access and must inline into the BlockCtx/WarpCtx call sites.
    void global_read(const void* p, std::size_t bytes, int block, const char* primitive);
    void global_write(const void* p, std::size_t bytes, int block, const char* primitive);
    void global_atomic(const void* p, std::size_t bytes, int block, const char* primitive);

    /// Reports an out-of-span index on a primitive.  Always throws -- a
    /// clamped or skipped access would silently change kernel semantics.
    [[noreturn]] void oob(ViolationKind kind, const char* primitive, std::size_t index,
                          std::size_t size, int block);

    /// Records a violation detected by a caller-side shadow (the shared-
    /// memory epoch tracker in BlockCtx).  Throws in strict mode.
    void report(SanViolation v);

    // ---- results -----------------------------------------------------------
    /// Stored violations (collect mode keeps at most kMaxStored; the total
    /// count keeps counting).  Safe to read between launches.
    [[nodiscard]] std::vector<SanViolation> violations() const;
    [[nodiscard]] std::uint64_t total_violations() const noexcept {
        return total_.load(std::memory_order_relaxed);
    }
    /// Number of shadow checks performed (a liveness signal for tests).
    /// Deliberately approximate under concurrency: the hot path bumps it
    /// with a plain relaxed load+store rather than a LOCK-prefixed
    /// fetch_add, so concurrent block workers may drop counts.
    [[nodiscard]] std::uint64_t checks() const noexcept {
        return checks_.load(std::memory_order_relaxed);
    }
    void clear();

    static constexpr std::size_t kMaxStored = 128;

private:
    struct Region {
        std::uintptr_t base = 0;
        std::size_t bytes = 0;
        /// Per-granule last-writer / last-reader cells, packed as
        /// (launch_epoch:16) << 16 | (block+1):15 | atomic:1.  0 = never.
        /// 4-byte cells halve the shadow traffic of the per-access loop;
        /// the 16-bit epoch field is safe because begin_launch() wipes all
        /// shadows when it wraps, and block ids alias only past 32766
        /// blocks (far beyond any grid the simulator schedules).
        std::vector<std::uint32_t> writers;
        std::vector<std::uint32_t> readers;
        /// Per-granule "was written by an instrumented store" bitmap; only
        /// allocated when uninit detection is armed.
        std::vector<std::uint64_t> init_bits;
        bool track_uninit = false;
        std::uintptr_t canary_lo = 0;
        std::size_t canary_lo_bytes = 0;
        std::uintptr_t canary_hi = 0;
        std::size_t canary_hi_bytes = 0;
    };

    enum class Access { read, write, atomic };

    /// Relaxed load/store over shadow cells -- plain movs, no LOCK prefix.
    /// Two block threads may interleave on one cell; the worst case is a
    /// missed report of a race the schedule did not actually exhibit,
    /// never a false positive, because a cell is only ever compared
    /// against the *current* launch epoch.
    static std::uint32_t cell_load(std::uint32_t& cell) noexcept {
        return std::atomic_ref<std::uint32_t>(cell).load(std::memory_order_relaxed);
    }
    static void cell_store(std::uint32_t& cell, std::uint32_t v) noexcept {
        std::atomic_ref<std::uint32_t>(cell).store(v, std::memory_order_relaxed);
    }

    /// Region-lookup cache: four entries, round-robin replacement.  Kernel
    /// hot loops hammer a small working set of spans tile after tile --
    /// typically the input data, an output buffer and an oracle/flag array
    /// interleaved per iteration -- so a single entry thrashes on the
    /// alternation while four hold the whole set.  An entry maps [lo, hi)
    /// to its region, or to nullptr for a known gap between regions: the
    /// most-accessed span of all, the staged input, is often a *host*
    /// vector with no region, so misses are cached too.  thread_local
    /// keeps the cache coherent across the block worker pool.
    /// Entries are validated by (owner, gen).  Generations come from a
    /// process-wide counter (next_gen), never a per-instance one: malloc
    /// happily recycles a destroyed Sanitizer's address for the next one,
    /// and a per-instance counter restarting at 1 would let a stale entry
    /// spoof the (owner, gen) check and hand out a dangling Region*.
    struct RegionCache {  // aggregate, zero-initialized at thread start
        const void* owner;   ///< validates all four entries at once
        std::uint64_t gen;
        struct Entry {
            std::uintptr_t lo;  ///< cached answer for addresses in [lo, hi):
            std::uintptr_t hi;
            void* region;       ///< the containing region, or nullptr for a gap
        } e[4];
        unsigned next;  ///< round-robin replacement cursor
    };
    static inline thread_local RegionCache tl_cache_{};

    /// Only call with tl_cache_.owner/gen already normalized to this
    /// sanitizer (find_slow does that before resolving).
    void cache_insert(std::uintptr_t lo, std::uintptr_t hi, void* region) noexcept {
        RegionCache& rc = tl_cache_;
        rc.e[rc.next++ & 3u] = {lo, hi, region};
    }

    /// Region containing [p, p+bytes), or nullptr for unregistered memory
    /// (host vectors, stack locals) -- those are skipped, not errors.
    [[nodiscard]] Region* find(const void* p, std::size_t bytes) noexcept {
        const auto addr = reinterpret_cast<std::uintptr_t>(p);
        const RegionCache& rc = tl_cache_;
        if (rc.owner == this && rc.gen == reg_gen_) [[likely]] {
            // Zeroed entries are inert: lo == hi == 0 never contains a range.
            for (const auto& c : rc.e) {
                if (addr >= c.lo && addr + bytes <= c.hi) return static_cast<Region*>(c.region);
            }
        }
        return find_slow(p, bytes);
    }
    [[nodiscard]] Region* find_slow(const void* p, std::size_t bytes) noexcept;

    /// The per-access hot path; defined inline below the class.
    void access(const void* p, std::size_t bytes, int block, const char* primitive, Access a);

    /// Cross-thread variant of the granule loop: per-cell relaxed
    /// atomic_ref traffic, reports inline.  Out-of-line -- the serial scan
    /// below is the path the acceptance benchmark runs.
    void access_atomic(Region& r, std::size_t g_first, std::size_t g_last, int block,
                       const char* primitive, Access a, std::uint32_t self);
    /// Cold re-walk after the serial scan flagged a possible conflict:
    /// checks each granule precisely (atomic-vs-atomic exemption) and
    /// reports.  Check-only; the caller fills the cells afterwards.
    void conflict_walk(Region& r, std::size_t g_first, std::size_t g_last, int block,
                       const char* primitive, Access a, std::uint32_t self);
    /// Serial read-side uninit sweep: word-wise over the init bitmap, so a
    /// fully-initialized tile costs one mask compare per 64 granules; a
    /// word with unset bits goes to the batched cold helper once, not to
    /// the per-granule slow path 64 times.
    void uninit_scan(Region& r, std::size_t g_first, std::size_t g_last, int block,
                     const char* primitive) {
        for (std::size_t w = g_first / 64; w <= g_last / 64; ++w) {
            const std::size_t lo = w == g_first / 64 ? g_first % 64 : 0;
            const std::size_t hi = w == g_last / 64 ? g_last % 64 : 63;
            const std::uint64_t need =
                (hi == 63 ? ~std::uint64_t{0} : (std::uint64_t{1} << (hi + 1)) - 1) &
                ~((std::uint64_t{1} << lo) - 1);
            const std::uint64_t missing = need & ~r.init_bits[w];
            if (missing != 0) [[unlikely]] uninit_word_slow(r, w, missing, block, primitive);
        }
    }
    /// Serial write-side init marking: whole words at a time.
    static void init_mark(Region& r, std::size_t g_first, std::size_t g_last) {
        for (std::size_t w = g_first / 64; w <= g_last / 64; ++w) {
            const std::size_t lo = w == g_first / 64 ? g_first % 64 : 0;
            const std::size_t hi = w == g_last / 64 ? g_last % 64 : 63;
            r.init_bits[w] |= (hi == 63 ? ~std::uint64_t{0} : (std::uint64_t{1} << (hi + 1)) - 1) &
                              ~((std::uint64_t{1} << lo) - 1);
        }
    }

    /// Cold path: unpacks the conflicting cell and reports a global_race.
    /// `other_is_writer` selects the last-writer vs last-reader wording.
    void report_conflict(std::size_t offset, int block, const char* primitive, Access a,
                         std::uint32_t other, bool other_is_writer);
    /// Cold path for a read of a granule with no init bit set: confirms
    /// the pool poison is still there (reports) or latches the bit so
    /// re-reads of host-staged data skip the compare.
    void uninit_read_slow(Region& r, std::size_t g, int block, const char* primitive);
    /// Serial batch variant: handles all of one bitmap word's missing
    /// granules in a single call.  The common case -- host-staged real
    /// data, no poison left -- latches up to 64 bits with one plain OR.
    void uninit_word_slow(Region& r, std::size_t w, std::uint64_t missing, int block,
                          const char* primitive);

    /// `quick` bounds each band's scan to kQuickSweepBytes (the per-launch
    /// sweep); the full scan runs at unregistration.
    void sweep_canaries(const Region& r, bool allow_throw, bool quick = false);

    /// Per-band byte budget of the end-of-launch quick sweep.
    static constexpr std::size_t kQuickSweepBytes = 64;

    /// Mask of the (block+1) field inside a packed shadow cell.
    static constexpr std::uint32_t kCellBlockMask = 0x0000fffeu;

    [[nodiscard]] static std::uint32_t pack(std::uint32_t epoch, int block, bool atomic) noexcept {
        return ((epoch & 0xffffu) << 16) |
               ((static_cast<std::uint32_t>(block + 1) & 0x7fffu) << 1) | (atomic ? 1u : 0u);
    }

    /// Draws a fresh globally-unique registry generation.
    [[nodiscard]] static std::uint64_t next_gen() noexcept {
        static std::atomic<std::uint64_t> src{1};
        return src.fetch_add(1, std::memory_order_relaxed);
    }

    SanMode mode_;
    bool concurrent_;                           ///< shadow may be touched cross-thread
    std::map<std::uintptr_t, Region> regions_;  ///< keyed by base address
    std::uint64_t reg_gen_ = next_gen();        ///< registry mutation stamp
    std::uint32_t epoch_ = 0;                   ///< current launch ordinal
    std::string kernel_;                        ///< current launch's kernel name
    std::atomic<std::uint64_t> total_{0};
    std::atomic<std::uint64_t> checks_{0};
    mutable std::mutex sink_mu_;                ///< guards violations_ only
    std::vector<SanViolation> violations_;
};

// ===== inline hot path =====================================================
// One branch per granule in the clean case; every violation construction
// lives out-of-line in sanitizer.cpp so this body stays small enough to
// inline into the BlockCtx/WarpCtx accessors.

inline void Sanitizer::access(const void* p, std::size_t bytes, int block, const char* primitive,
                              Access a) {
    Region* r = find(p, bytes);
    if (r == nullptr) return;  // host vector or stack local: not tracked
    // Liveness counter, deliberately not a fetch_add: a LOCK-prefixed
    // increment per check would cost more than the shadow update itself.
    checks_.store(checks_.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
    const std::size_t off = reinterpret_cast<std::uintptr_t>(p) - r->base;
    const std::size_t g_first = off / kSanGranule;
    const std::size_t g_last = (off + bytes - 1) / kSanGranule;
    const std::uint32_t self = pack(epoch_, block, a == Access::atomic);
    if (concurrent_) {
        access_atomic(*r, g_first, g_last, block, primitive, a, self);
        return;
    }

    if (g_first == g_last) {
        // Scalar fast path: ~95% of checked traffic is BlockCtx::ld/st of
        // one element -- a single granule, so no fill loop and no bitmap
        // word-mask math, just one cell compare and one cell store.
        const std::uint32_t epoch_tag = self >> 16;
        const std::uint32_t w = r->writers[g_first];
        bool suspect = (w >> 16) == epoch_tag && ((w ^ self) & kCellBlockMask) != 0;
        if (a == Access::read) {
            if (suspect) [[unlikely]] {
                conflict_walk(*r, g_first, g_first, block, primitive, a, self);
            }
            r->readers[g_first] = self;
            if (r->track_uninit) {
                const std::uint64_t bit = std::uint64_t{1} << (g_first % 64);
                if ((r->init_bits[g_first / 64] & bit) == 0) [[unlikely]] {
                    uninit_word_slow(*r, g_first / 64, bit, block, primitive);
                }
            }
        } else {
            const std::uint32_t rd = r->readers[g_first];
            suspect |= (rd >> 16) == epoch_tag && ((rd ^ self) & kCellBlockMask) != 0;
            if (suspect) [[unlikely]] {
                conflict_walk(*r, g_first, g_first, block, primitive, a, self);
            }
            r->writers[g_first] = self;
            if (r->track_uninit) r->init_bits[g_first / 64] |= std::uint64_t{1} << (g_first % 64);
        }
        return;
    }

    // Serial path: scan for possible conflicts branchlessly (the compiler
    // vectorizes these loops -- no atomic_ref, no early exits), then bulk-
    // fill the touched cells.  A flagged scan re-walks precisely out of
    // line before anything is overwritten, so reports match access_atomic.
    const std::uint32_t epoch_tag = self >> 16;
    std::uint32_t suspect = 0;
    if (a == Access::read) {
        for (std::size_t g = g_first; g <= g_last; ++g) {
            const std::uint32_t w = r->writers[g];
            suspect |= static_cast<std::uint32_t>((w >> 16) == epoch_tag) &
                       static_cast<std::uint32_t>(((w ^ self) & kCellBlockMask) != 0);
        }
    } else {
        // Writes and atomics also conflict with a plain read by another
        // block, so both shadow planes are scanned.
        for (std::size_t g = g_first; g <= g_last; ++g) {
            const std::uint32_t w = r->writers[g];
            const std::uint32_t rd = r->readers[g];
            suspect |= (static_cast<std::uint32_t>((w >> 16) == epoch_tag) &
                        static_cast<std::uint32_t>(((w ^ self) & kCellBlockMask) != 0)) |
                       (static_cast<std::uint32_t>((rd >> 16) == epoch_tag) &
                        static_cast<std::uint32_t>(((rd ^ self) & kCellBlockMask) != 0));
        }
    }
    if (suspect != 0) [[unlikely]] {
        conflict_walk(*r, g_first, g_last, block, primitive, a, self);
    }
    if (a == Access::read) {
        std::fill(r->readers.begin() + static_cast<std::ptrdiff_t>(g_first),
                  r->readers.begin() + static_cast<std::ptrdiff_t>(g_last) + 1, self);
        if (r->track_uninit) uninit_scan(*r, g_first, g_last, block, primitive);
    } else {
        std::fill(r->writers.begin() + static_cast<std::ptrdiff_t>(g_first),
                  r->writers.begin() + static_cast<std::ptrdiff_t>(g_last) + 1, self);
        if (r->track_uninit) init_mark(*r, g_first, g_last);
    }
}

inline void Sanitizer::global_read(const void* p, std::size_t bytes, int block,
                                   const char* primitive) {
    access(p, bytes, block, primitive, Access::read);
}

inline void Sanitizer::global_write(const void* p, std::size_t bytes, int block,
                                    const char* primitive) {
    access(p, bytes, block, primitive, Access::write);
}

inline void Sanitizer::global_atomic(const void* p, std::size_t bytes, int block,
                                     const char* primitive) {
    access(p, bytes, block, primitive, Access::atomic);
}

}  // namespace gpusel::simt
