#pragma once
// Chunked work-stealing host thread pool used to execute simulated thread
// blocks in parallel.  Blocks are independent by construction (they
// communicate only through global-memory atomics, which the simulator
// implements with std::atomic_ref), so a flat parallel_for is all we need
// -- but block costs are uneven (grid-stride tails, per-block trees), so
// static partitioning with stealing beats both a single shared counter
// (one CAS per block serializes small blocks) and static-only splits.
//
// Design: each participant (worker threads + the calling thread) owns a
// slot holding a packed [cursor, end) index range.  Owners take chunks
// from the front of their own range; idle participants steal the back half
// of the largest remaining range.  Both operations are single CAS's on one
// 64-bit word.  Event-count determinism does not depend on the schedule:
// per-block KernelCounters are merged in block order by the Device.
//
// The pool is optional: with `workers == 0` (the default on single-core
// hosts) everything runs inline on the calling thread, which keeps unit
// tests and event-count traces fully deterministic.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "simt/function_ref.hpp"

namespace gpusel::simt {

class ThreadPool {
public:
    /// Creates a pool with `workers` threads; 0 means "execute inline".
    explicit ThreadPool(unsigned workers = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    [[nodiscard]] unsigned worker_count() const noexcept {
        return static_cast<unsigned>(threads_.size());
    }

    /// Runs fn(i) for all i in [0, count), distributing chunked index
    /// ranges over the workers (the caller participates); blocks until
    /// every invocation finished.  Exceptions from fn propagate to the
    /// caller (first one wins); the remaining indices still execute.
    void parallel_for(std::size_t count, function_ref<void(std::size_t)> fn);

private:
    /// One participant's index range, packed cursor:32 | end:32 so both
    /// bounds move under a single CAS.  Padded to its own cache line.
    struct alignas(64) Slot {
        std::atomic<std::uint64_t> range{0};
    };

    static constexpr std::uint64_t pack(std::uint32_t cur, std::uint32_t end) noexcept {
        return (static_cast<std::uint64_t>(cur) << 32) | end;
    }
    static constexpr std::uint32_t cursor_of(std::uint64_t r) noexcept {
        return static_cast<std::uint32_t>(r >> 32);
    }
    static constexpr std::uint32_t end_of(std::uint64_t r) noexcept {
        return static_cast<std::uint32_t>(r);
    }

    void worker_loop(std::size_t self);
    /// Drains work for participant `self`: own chunks first, then steals.
    void run_work(std::size_t self);
    void record_error() noexcept;

    std::vector<std::thread> threads_;
    std::vector<Slot> slots_;  ///< one per participant (workers + caller)

    // Published task state.  The slot stores (release) happen after these
    // writes; a successful take/steal (acquire) therefore sees them.  The
    // referenced function_ref lives on the caller's stack for the whole
    // task (parallel_for returns only after the last index completed).
    std::atomic<const function_ref<void(std::size_t)>*> fn_{nullptr};
    std::atomic<std::size_t> done_{0};
    std::atomic<std::size_t> count_{0};

    std::mutex mutex_;
    std::condition_variable work_cv_;
    std::condition_variable done_cv_;
    std::uint64_t generation_ = 0;  ///< guarded by mutex_
    std::exception_ptr error_;      ///< guarded by mutex_
    bool stop_ = false;             ///< guarded by mutex_
};

}  // namespace gpusel::simt
