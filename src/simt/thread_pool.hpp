#pragma once
// Minimal host thread pool used to execute simulated thread blocks in
// parallel.  Blocks are independent by construction (they communicate only
// through global-memory atomics, which the simulator implements with
// std::atomic_ref), so a flat parallel_for is all we need.
//
// The pool is optional: with `workers == 0` (the default on single-core
// hosts) everything runs inline on the calling thread, which keeps unit
// tests and event-count traces fully deterministic.

#include <cstddef>
#include <functional>
#include <mutex>
#include <condition_variable>
#include <thread>
#include <vector>

namespace gpusel::simt {

class ThreadPool {
public:
    /// Creates a pool with `workers` threads; 0 means "execute inline".
    explicit ThreadPool(unsigned workers = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    [[nodiscard]] unsigned worker_count() const noexcept { return static_cast<unsigned>(threads_.size()); }

    /// Runs fn(i) for all i in [0, count), distributing chunks over the
    /// workers; blocks until every invocation finished.  Exceptions from fn
    /// propagate to the caller (first one wins).
    void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

private:
    struct Task {
        const std::function<void(std::size_t)>* fn = nullptr;
        std::size_t count = 0;
        std::size_t next = 0;      // guarded by mutex_
        std::size_t done = 0;      // guarded by mutex_
        std::exception_ptr error;  // guarded by mutex_
        bool active = false;
    };

    void worker_loop();

    std::vector<std::thread> threads_;
    std::mutex mutex_;
    std::condition_variable work_cv_;
    std::condition_variable done_cv_;
    Task task_;
    bool stop_ = false;
};

}  // namespace gpusel::simt
