#pragma once
// StreamSan: happens-before hazard analysis over the stream/event/pool
// graph (docs/streamsan.md).
//
// SimTSan (simt/sanitizer.hpp) checks hazards *inside* one launch: blocks
// of the same kernel racing on a granule.  Nothing there verifies that two
// launches on *different streams* touching the same buffer are actually
// ordered by a fork/join event edge -- exactly the class of bug the pool's
// cross-stream gating and core::StreamFan are supposed to prevent, and
// exactly what GPU-level detectors (Barracuda, iGUARD) catch with
// synchronization-aware happens-before analysis over the launch graph.
//
// The Device records an ordering log as it executes: launches tick a
// per-stream vector clock, event records snapshot the recording stream's
// clock, event waits join the snapshot into the waiting stream, host
// synchronization joins everything.  Kernel-side instrumentation (the same
// BlockCtx/WarpCtx primitives SimTSan hooks) folds each launch's global-
// memory traffic into per-region byte ranges -- metadata only, no shadow
// memory -- and the end-of-launch analysis compares those ranges against
// each region's access history under the vector-clock partial order.
//
// What it detects (HazardKind):
//   * write_write_race / read_write_race -- two launches on different
//     streams touch overlapping bytes of one region, at least one writes,
//     and no happens-before edge (event, synchronize, stream creation)
//     orders them.
//   * pool_reuse        -- a pooled block last released on stream A is
//     re-issued to stream B with no ordering between them (only possible
//     on a standalone pool with no stream clock; the Device's pool gates
//     cross-stream reuse on completed timelines, which StreamSan models as
//     the allocator's internal event edge).
//   * release_in_flight -- a pooled block is released on stream A while an
//     access from stream B is not yet ordered before the release (the
//     "freed while another stream may still be using it" bug).
//   * wait_unrecorded   -- wait_event() on a timestamp no record_event()
//     produced (a stale or fabricated event).
//   * hb_cycle          -- wait_event() on a *future* timestamp that was
//     never recorded: the wait can only be satisfied by work that has not
//     happened, i.e. a cyclic (deadlocking) fork/join structure on real
//     hardware.
//
// Modes (GPUSEL_STREAMSAN / Device::set_stream_sanitizer):
//   strict  (GPUSEL_STREAMSAN=1) -- throw StreamSanError at the first
//           host-side opportunity; surfaces through the Status channel as
//           SelectError::sanitizer_violation (never retried).  Hazards
//           detected on noexcept paths (pool release in a destructor) are
//           deferred and thrown from the next launch bracket.
//   collect (GPUSEL_STREAMSAN=2) -- record hazards and keep running; each
//           hazard also lands on the `streamsan` chrome-trace track
//           (kStreamSanTrack) for the trace exporters.
//
// Soundness stance: missed races are acceptable (per-stream histories keep
// one epoch per plane, same-timestamp event records merge snapshots),
// false positives are not -- every reported hazard is a pair of accesses
// the vector clocks genuinely cannot order.
//
// Determinism: StreamSan never touches KernelCounters, stream clocks or
// profiles -- event-count golden streams are byte-identical with it on or
// off.  Performance: metadata only (byte-range folding, no per-granule
// shadow), acceptance bound <= 1.5x wall clock on a full selection
// (bench_simulator_overhead's streamsan_slowdown_x counter).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "simt/counters.hpp"

namespace gpusel::simt {

enum class StreamSanMode { off, strict, collect };

enum class HazardKind {
    write_write_race,
    read_write_race,
    pool_reuse,
    release_in_flight,
    wait_unrecorded,
    hb_cycle,
};

[[nodiscard]] std::string_view to_string(HazardKind kind) noexcept;

/// Trace tid the collect-mode hazard track renders under (above the
/// server's supervisor tracks, see server/service.hpp).
inline constexpr int kStreamSanTrack = 1003;

/// One detected ordering hazard, with enough context to locate the bug:
/// which kernel, which streams, which byte range of which region.
struct StreamHazard {
    HazardKind kind{};
    std::string kernel;  ///< kernel/primitive of the later access (may be empty)
    int stream = -1;     ///< stream of the later (reporting) side
    int other_stream = -1;  ///< stream of the earlier, unordered side
    std::size_t lo = 0;  ///< conflicting byte range within the region
    std::size_t hi = 0;
    double sim_ns = 0.0;  ///< simulated time at detection
    std::string detail;   ///< human-readable specifics

    [[nodiscard]] std::string message() const;
};

/// Thrown in strict mode from host-side hooks (launch bracket, event wait,
/// pool acquire).  Mapped to SelectError::sanitizer_violation by the
/// pipeline's retry wrappers -- never retried, always surfaced.
class StreamSanError : public std::runtime_error {
public:
    explicit StreamSanError(StreamHazard h)
        : std::runtime_error(h.message()), h_(std::move(h)) {}
    [[nodiscard]] const StreamHazard& hazard() const noexcept { return h_; }

private:
    StreamHazard h_;
};

/// The analyzer: per-stream vector clocks + per-region access histories +
/// the event table.  Owned by the Device; a null pointer everywhere means
/// "off" and costs one branch per hook.
class StreamSan {
public:
    /// `concurrent` declares whether block workers may note accesses from
    /// more than one thread (Device passes host_workers != 0); the serial
    /// case takes plain loads/stores on the per-launch range scratch.
    explicit StreamSan(StreamSanMode mode, bool concurrent = true);
    StreamSan(const StreamSan&) = delete;
    StreamSan& operator=(const StreamSan&) = delete;

    /// Parses GPUSEL_STREAMSAN: unset/""/"0"/"off" -> off; "1"/"strict"/
    /// "on" -> strict; "2"/"collect" -> collect.  Anything else throws
    /// (fail loudly, like GPUSEL_SAN and GPUSEL_FAULTS).
    [[nodiscard]] static StreamSanMode mode_from_env();

    [[nodiscard]] StreamSanMode mode() const noexcept { return mode_; }
    [[nodiscard]] bool enabled() const noexcept { return mode_ != StreamSanMode::off; }

    // ---- region registry (host control thread, between launches) ----------
    /// Registers a global-memory region for access-history tracking
    /// (DeviceBuffer user data, pool checkout user bytes).
    void register_region(const void* base, std::size_t bytes);
    /// Drops a region and its history (noexcept: called from destructors).
    void unregister_region(const void* base) noexcept;

    // ---- ordering-log hooks (host control thread) --------------------------
    /// A stream slot was created or re-leased.  The simulator's causality
    /// rule is that a (re)acquired stream starts at the device completion
    /// time, i.e. all previously enqueued work is ordered before anything
    /// the new stream runs -- modeled as a join of every clock.
    void on_stream_acquired(int stream);
    /// Launch bracket: ticks the stream's clock component, starts the
    /// per-launch access recording, and drains any deferred strict-mode
    /// hazard from a noexcept detection site.
    void on_launch_begin(int stream, std::string_view kernel);
    /// End-of-launch analysis: folds the recorded read/write ranges into
    /// each touched region's history, reporting unordered cross-stream
    /// conflicts.  `end_ns` stamps collect-mode trace instants.
    void on_launch_end(int stream, double end_ns);
    /// record_event(): snapshots the recording stream's vector clock under
    /// the event's timestamp.  Two records landing on the same simulated
    /// timestamp merge snapshots -- a spurious edge can hide a race but
    /// never fabricates one.
    void on_event_record(int stream, double event_ns);
    /// wait_event(): joins the recorded snapshot into the waiting stream.
    /// An unknown timestamp at or before the device completion time
    /// `completion_ns` is a wait_unrecorded hazard; an unknown *future*
    /// timestamp is an hb_cycle (only unenqueued work could satisfy it).
    void on_event_wait(int stream, double event_ns, double completion_ns);
    /// Host synchronization: joins every stream's clock to the maximum.
    void on_synchronize();
    /// Device::reset_clock(): simulated timestamps restart, so recorded
    /// event snapshots keyed by the old timeline are dropped.
    void reset_timeline() noexcept;

    // ---- pool hooks --------------------------------------------------------
    /// A pooled block's user region is released on `stream`.  Record-only
    /// (releases run in noexcept destructors): flags accesses from other
    /// streams not ordered before the release (release_in_flight), stores
    /// the releasing clock as the block's reuse tombstone, and unregisters
    /// the region.
    void on_pool_release(const void* base, int stream) noexcept;
    /// The same backing block is re-issued.  Same-stream reuse is ordered
    /// by stream order; gated cross-stream reuse models the stream-ordered
    /// allocator's internal event edge (the tombstone clock joins into the
    /// acquiring stream); un-gated cross-stream reuse is a pool_reuse
    /// hazard.  May throw in strict mode (acquire is a throwing context).
    void on_pool_reuse(const void* base, int acq_stream, int prev_stream, bool gated);
    /// Drops a block's reuse tombstone (pool trim).
    void forget(const void* base) noexcept;

    // ---- kernel-side hooks (block worker threads) --------------------------
    // Defined inline below the class: these run on every instrumented
    // access and must inline into the BlockCtx/WarpCtx call sites.  They
    // only fold byte ranges into per-region per-launch scratch; all
    // analysis happens at on_launch_end on the host thread.
    void note_read(const void* p, std::size_t bytes);
    void note_write(const void* p, std::size_t bytes);

    // ---- results -----------------------------------------------------------
    /// Stored hazards (at most kMaxStored; the total keeps counting).
    [[nodiscard]] std::vector<StreamHazard> hazards() const;
    [[nodiscard]] std::uint64_t total_hazards() const noexcept {
        return total_.load(std::memory_order_relaxed);
    }
    /// Number of region range-fold checks performed (liveness signal).
    /// Approximate under concurrency, like Sanitizer::checks().
    [[nodiscard]] std::uint64_t checks() const noexcept {
        return checks_.load(std::memory_order_relaxed) + checks_serial_;
    }
    /// Collect-mode hazard annotations for the chrome-trace export
    /// (rendered on kStreamSanTrack).  Host thread only.
    [[nodiscard]] const std::vector<TraceInstant>& trace_instants() const noexcept {
        return trace_instants_;
    }
    void clear();

    static constexpr std::size_t kMaxStored = 128;

private:
    /// One access epoch: stream `stream`'s clock component was `clk` when
    /// bytes [lo, hi) of the region were touched.  stream < 0 means none.
    struct Epoch {
        int stream = -1;
        std::uint64_t clk = 0;
        std::size_t lo = 0;
        std::size_t hi = 0;
        std::string kernel;
    };

    struct Region {
        std::uintptr_t base = 0;
        std::size_t bytes = 0;
        // History: one epoch per plane/stream.  Overwriting an older epoch
        // of the same plane can miss a race on the dropped range; merging
        // ranges instead could report one that was actually ordered, so
        // histories always replace, never union.
        Epoch last_write;
        std::vector<Epoch> reads;  ///< at most one per stream
        // Per-launch fold scratch, lazily reset when `seq` is stale.
        std::uint64_t seq = 0;
        std::size_t r_lo = 0, r_hi = 0;  ///< read range; r_lo > r_hi means none
        std::size_t w_lo = 0, w_hi = 0;
    };

    /// Region-lookup cache: four entries, round-robin replacement, misses
    /// cached too -- the same design (and rationale) as Sanitizer's cache,
    /// including process-wide generations so a recycled StreamSan address
    /// cannot revalidate a stale entry.
    struct RegionCache {  // aggregate, zero-initialized at thread start
        const void* owner;
        std::uint64_t gen;
        struct Entry {
            std::uintptr_t lo;
            std::uintptr_t hi;
            void* region;
        } e[4];
        unsigned next;
    };
    static inline thread_local RegionCache tl_cache_{};

    void cache_insert(std::uintptr_t lo, std::uintptr_t hi, void* region) noexcept {
        RegionCache& rc = tl_cache_;
        rc.e[rc.next++ & 3u] = {lo, hi, region};
    }

    [[nodiscard]] Region* find(const void* p, std::size_t bytes) noexcept {
        const auto addr = reinterpret_cast<std::uintptr_t>(p);
        const RegionCache& rc = tl_cache_;
        if (rc.owner == this && rc.gen == reg_gen_) [[likely]] {
            for (const auto& c : rc.e) {
                if (addr >= c.lo && addr + bytes <= c.hi) return static_cast<Region*>(c.region);
            }
        }
        return find_slow(p, bytes);
    }
    [[nodiscard]] Region* find_slow(const void* p, std::size_t bytes) noexcept;

    /// Serial-scheduler region cache: with host_workers == 0 every access
    /// runs on the host thread, so the cache can live in the object -- no
    /// TLS indirection and no generation compare on the hot path (registry
    /// mutations clear it directly).  r == nullptr entries cache gaps.
    struct SerialEntry {
        std::uintptr_t lo = 0;
        std::uintptr_t hi = 0;
        Region* r = nullptr;
    };
    SerialEntry scache_[4]{};
    unsigned scache_next_ = 0;
    void scache_clear() noexcept {
        for (SerialEntry& e : scache_) e = SerialEntry{};
    }

    /// Grows every vector clock (and the clock list) to cover `stream`.
    void ensure_stream(int stream);
    /// True when epoch (t, clk) is ordered before stream s's current
    /// position: clk <= VC_s[t].
    [[nodiscard]] bool ordered_before(const Epoch& e, int s) const noexcept {
        const auto t = static_cast<std::size_t>(e.stream);
        const std::vector<std::uint64_t>& vc = vc_[static_cast<std::size_t>(s)];
        return t < vc.size() && e.clk <= vc[t];
    }

    /// The per-access fold; cold first-touch and the concurrent
    /// (atomic_ref) fold out of line.
    void note_access(const void* p, std::size_t bytes, bool write);
    void note_access_concurrent(Region* r, std::size_t lo, std::size_t hi, bool write);
    void first_touch_slow(Region* r);

    /// Records a hazard: counts it, stores up to kMaxStored, emits a
    /// collect-mode trace instant.  `allow_throw` selects strict-mode
    /// behavior: throw here (host throwing context) vs defer to the next
    /// launch bracket (noexcept detection site).
    void report(StreamHazard h, bool allow_throw);
    [[noreturn]] void throw_hazard(StreamHazard h);
    void throw_pending();

    [[nodiscard]] static std::uint64_t next_gen() noexcept {
        static std::atomic<std::uint64_t> src{1};
        return src.fetch_add(1, std::memory_order_relaxed);
    }

    StreamSanMode mode_;
    bool concurrent_;
    std::map<std::uintptr_t, Region> regions_;  ///< keyed by base address
    std::uint64_t reg_gen_ = next_gen();        ///< registry mutation stamp
    std::vector<std::vector<std::uint64_t>> vc_{{0}};  ///< per-stream vector clocks
    std::map<double, std::vector<std::uint64_t>> events_;  ///< recorded snapshots
    /// Reuse tombstones: releasing stream's clock for blocks currently on
    /// a pool free list, keyed by storage base.
    std::map<std::uintptr_t, std::vector<std::uint64_t>> tombstones_;
    std::uint64_t launch_seq_ = 0;       ///< per-launch scratch staleness tag
    bool in_launch_ = false;
    int cur_stream_ = 0;
    std::string cur_kernel_;
    std::vector<Region*> accessed_;      ///< regions touched by the launch
    std::mutex touch_mu_;                ///< concurrent first-touch / accessed_
    std::atomic<std::uint64_t> total_{0};
    std::atomic<std::uint64_t> checks_{0};
    std::uint64_t checks_serial_ = 0;  ///< serial-path counter: plain inc, no RMW
    mutable std::mutex sink_mu_;         ///< guards hazards_ only
    std::vector<StreamHazard> hazards_;
    std::vector<TraceInstant> trace_instants_;
    bool has_pending_ = false;           ///< deferred strict-mode hazard
    StreamHazard pending_;
};

// ===== inline hot path =====================================================
// The fold is four compares and four stores per access in the clean case;
// first-touch (once per region per launch) and everything that can report
// live out of line in streamsan.cpp.

inline void StreamSan::note_access(const void* p, std::size_t bytes, bool write) {
    if (!in_launch_ || bytes == 0) return;
    const auto addr = reinterpret_cast<std::uintptr_t>(p);
    if (!concurrent_) [[likely]] {
        // Serial scheduler: member-resident cache, plain loads and stores.
        Region* r = nullptr;
        bool cached = false;
        for (const SerialEntry& e : scache_) {
            if (addr >= e.lo && addr + bytes <= e.hi) {
                r = e.r;
                cached = true;
                break;
            }
        }
        if (!cached) r = find_slow(p, bytes);
        if (r == nullptr) return;  // host vector or stack local: not tracked
        ++checks_serial_;
        const std::size_t lo = addr - r->base;
        const std::size_t hi = lo + bytes;
        if (r->seq != launch_seq_) first_touch_slow(r);
        if (write) {
            if (lo < r->w_lo) r->w_lo = lo;
            if (hi > r->w_hi) r->w_hi = hi;
        } else {
            if (lo < r->r_lo) r->r_lo = lo;
            if (hi > r->r_hi) r->r_hi = hi;
        }
        return;
    }
    Region* r = find(p, bytes);
    if (r == nullptr) return;
    // Liveness counter; relaxed load+store, not a LOCK-prefixed fetch_add.
    checks_.store(checks_.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
    const std::size_t lo = addr - r->base;
    note_access_concurrent(r, lo, lo + bytes, write);
}

inline void StreamSan::note_read(const void* p, std::size_t bytes) {
    note_access(p, bytes, /*write=*/false);
}

inline void StreamSan::note_write(const void* p, std::size_t bytes) {
    note_access(p, bytes, /*write=*/true);
}

}  // namespace gpusel::simt
