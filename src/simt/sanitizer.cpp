#include "simt/sanitizer.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <limits>

namespace gpusel::simt {

namespace {

bool all_bytes(const void* p, std::size_t n, std::byte b) noexcept {
    const auto* s = static_cast<const std::byte*>(p);
    std::uint64_t pattern;
    std::memset(&pattern, static_cast<int>(b), sizeof(pattern));
    while (n >= 8) {
        std::uint64_t w;
        std::memcpy(&w, s, 8);
        if (w != pattern) return false;
        s += 8;
        n -= 8;
    }
    for (std::size_t i = 0; i < n; ++i) {
        if (s[i] != b) return false;
    }
    return true;
}

/// Offset of the first non-`b` byte in [p, p+n), or n if none.
std::size_t first_mismatch(const void* p, std::size_t n, std::byte b) noexcept {
    const auto* s = static_cast<const std::byte*>(p);
    for (std::size_t i = 0; i < n; ++i) {
        if (s[i] != b) return i;
    }
    return n;
}

}  // namespace

std::string_view to_string(ViolationKind kind) noexcept {
    switch (kind) {
        case ViolationKind::global_race: return "global_race";
        case ViolationKind::shared_epoch: return "shared_epoch";
        case ViolationKind::global_oob: return "global_oob";
        case ViolationKind::shared_oob: return "shared_oob";
        case ViolationKind::uninit_read: return "uninit_read";
        case ViolationKind::canary: return "canary";
    }
    return "unknown";
}

std::string SanViolation::message() const {
    std::string m = "SimTSan: ";
    m += to_string(kind);
    if (!kernel.empty()) {
        m += " in kernel '";
        m += kernel;
        m += "'";
    }
    if (!primitive.empty()) {
        m += ", primitive ";
        m += primitive;
    }
    m += ", byte offset " + std::to_string(offset);
    if (block >= 0) m += ", block " + std::to_string(block);
    if (!detail.empty()) {
        m += ": ";
        m += detail;
    }
    return m;
}

SanMode Sanitizer::mode_from_env() {
    const char* env = std::getenv("GPUSEL_SAN");
    if (env == nullptr) return SanMode::off;
    const std::string_view v(env);
    if (v.empty() || v == "0" || v == "off") return SanMode::off;
    if (v == "1" || v == "strict" || v == "on") return SanMode::strict;
    if (v == "2" || v == "collect") return SanMode::collect;
    throw std::invalid_argument("GPUSEL_SAN must be one of 0/off, 1/strict/on, 2/collect");
}

void Sanitizer::register_region(const void* base, std::size_t bytes, bool mark_uninit,
                                const void* canary_lo, std::size_t canary_lo_bytes,
                                const void* canary_hi, std::size_t canary_hi_bytes) {
    if (base == nullptr || bytes == 0) return;
    const std::size_t granules = (bytes + kSanGranule - 1) / kSanGranule;
    Region r;
    r.base = reinterpret_cast<std::uintptr_t>(base);
    r.bytes = bytes;
    r.writers.assign(granules, 0);
    r.readers.assign(granules, 0);
    r.track_uninit = mark_uninit;
    if (mark_uninit) r.init_bits.assign((granules + 63) / 64, 0);
    r.canary_lo = reinterpret_cast<std::uintptr_t>(canary_lo);
    r.canary_lo_bytes = canary_lo_bytes;
    r.canary_hi = reinterpret_cast<std::uintptr_t>(canary_hi);
    r.canary_hi_bytes = canary_hi_bytes;
    regions_[r.base] = std::move(r);
    reg_gen_ = next_gen();  // invalidate every thread's cached region lookup
}

void Sanitizer::unregister_region(const void* base) noexcept {
    const auto key = reinterpret_cast<std::uintptr_t>(base);
    auto it = regions_.find(key);
    if (it == regions_.end()) return;
    // Destructor context: canary findings are recorded, never thrown.
    try {
        sweep_canaries(it->second, /*allow_throw=*/false);
    } catch (...) {  // report() never throws when allow_throw is false
    }
    regions_.erase(it);
    reg_gen_ = next_gen();  // invalidate every thread's cached region lookup
}

void Sanitizer::begin_launch(std::string_view kernel) {
    ++epoch_;
    if ((epoch_ & 0xffffu) == 0) {
        // The 16-bit epoch field of the packed shadow cells wrapped: stale
        // cells from 65536 launches ago would alias the new epoch, so wipe
        // every shadow (O(shadow bytes) once per 65536 launches) and skip
        // field value 0, which is reserved for "never accessed".
        for (auto& [base, r] : regions_) {
            std::fill(r.writers.begin(), r.writers.end(), 0u);
            std::fill(r.readers.begin(), r.readers.end(), 0u);
        }
        ++epoch_;
    }
    kernel_.assign(kernel);
}

void Sanitizer::end_launch() {
    // Quick sweep: only the first kQuickSweepBytes of each band, so a launch
    // pays O(regions), not O(total canary bytes).  A contiguous overrun
    // starts at the band's first byte, so this catches the common smash the
    // launch after it happens; anything deeper is caught by the full sweep
    // at unregistration.
    for (auto& [base, r] : regions_) sweep_canaries(r, /*allow_throw=*/true, /*quick=*/true);
    kernel_.clear();
}

Sanitizer::Region* Sanitizer::find_slow(const void* p, std::size_t bytes) noexcept {
    const auto addr = reinterpret_cast<std::uintptr_t>(p);
    RegionCache& rc = tl_cache_;
    if (rc.owner != this || rc.gen != reg_gen_) {
        rc = {};  // stale entries from another sanitizer/generation: drop all
        rc.owner = this;
        rc.gen = reg_gen_;
    }
    // upper_bound: first region with base > addr; its predecessor is the
    // only candidate container.  The two neighbors also bound the miss gap.
    auto it = regions_.upper_bound(addr);
    const std::uintptr_t gap_hi =
        it == regions_.end() ? std::numeric_limits<std::uintptr_t>::max() : it->first;
    std::uintptr_t gap_lo = 0;
    if (it != regions_.begin()) {
        --it;
        Region& r = it->second;
        if (addr >= r.base && addr + bytes <= r.base + r.bytes) {
            cache_insert(r.base, r.base + r.bytes, &r);
            return &r;
        }
        gap_lo = r.base + r.bytes;
    }
    // Cache the miss only when [addr, addr+bytes) sits cleanly in the gap
    // between regions (a range straddling a region edge has no gap to
    // name; that never happens for span-derived pointers anyway).
    if (addr >= gap_lo && addr + bytes <= gap_hi) {
        cache_insert(gap_lo, gap_hi, nullptr);
    }
    return nullptr;
}

void Sanitizer::access_atomic(Region& r, std::size_t g_first, std::size_t g_last, int block,
                              const char* primitive, Access a, std::uint32_t self) {
    const bool is_atomic = a == Access::atomic;
    for (std::size_t g = g_first; g <= g_last; ++g) {
        const std::uint32_t w = cell_load(r.writers[g]);
        // Same launch epoch AND different block; the atomic-vs-atomic
        // exemption resolves inside the rare taken branch.
        if ((w >> 16) == (self >> 16) && ((w ^ self) & kCellBlockMask) != 0) [[unlikely]] {
            if (!((w & 1u) != 0 && is_atomic)) {
                report_conflict(g * kSanGranule, block, primitive, a, w, /*other_is_writer=*/true);
            }
        }
        if (a == Access::read) {
            cell_store(r.readers[g], self);
            if (r.track_uninit) {
                const std::uint64_t word = std::atomic_ref<std::uint64_t>(r.init_bits[g / 64])
                                               .load(std::memory_order_relaxed);
                if ((word & (std::uint64_t{1} << (g % 64))) == 0) [[unlikely]] {
                    uninit_read_slow(r, g, block, primitive);
                }
            }
        } else {
            // Writes and atomics also conflict with a plain read by
            // another block.
            const std::uint32_t rd = cell_load(r.readers[g]);
            if ((rd >> 16) == (self >> 16) && ((rd ^ self) & kCellBlockMask) != 0) [[unlikely]] {
                report_conflict(g * kSanGranule, block, primitive, a, rd,
                                /*other_is_writer=*/false);
            }
            cell_store(r.writers[g], self);
            if (r.track_uninit) {
                std::uint64_t& word = r.init_bits[g / 64];
                const std::uint64_t bit = std::uint64_t{1} << (g % 64);
                // fetch_or only on the granule's first write; afterwards
                // the preceding load keeps this LOCK-free in practice.
                if ((std::atomic_ref<std::uint64_t>(word).load(std::memory_order_relaxed) & bit) ==
                    0) {
                    std::atomic_ref<std::uint64_t>(word).fetch_or(bit, std::memory_order_relaxed);
                }
            }
        }
    }
}

void Sanitizer::conflict_walk(Region& r, std::size_t g_first, std::size_t g_last, int block,
                              const char* primitive, Access a, std::uint32_t self) {
    const bool is_atomic = a == Access::atomic;
    for (std::size_t g = g_first; g <= g_last; ++g) {
        const std::uint32_t w = r.writers[g];
        if ((w >> 16) == (self >> 16) && ((w ^ self) & kCellBlockMask) != 0 &&
            !((w & 1u) != 0 && is_atomic)) {
            report_conflict(g * kSanGranule, block, primitive, a, w, /*other_is_writer=*/true);
        }
        if (a != Access::read) {
            const std::uint32_t rd = r.readers[g];
            if ((rd >> 16) == (self >> 16) && ((rd ^ self) & kCellBlockMask) != 0) {
                report_conflict(g * kSanGranule, block, primitive, a, rd,
                                /*other_is_writer=*/false);
            }
        }
    }
}

void Sanitizer::report_conflict(std::size_t offset, int block, const char* primitive, Access a,
                                std::uint32_t other, bool other_is_writer) {
    const int o_block = static_cast<int>((other >> 1) & 0x7fffu) - 1;
    const bool o_atomic = (other & 1u) != 0;
    const bool is_atomic = a == Access::atomic;
    SanViolation v;
    v.kind = ViolationKind::global_race;
    v.kernel = kernel_;
    v.primitive = primitive;
    v.offset = offset;
    v.block = block;
    if (other_is_writer) {
        // Same launch, different block, and at least one side plain.
        v.detail = std::string(a == Access::read ? "read" : is_atomic ? "atomic" : "write") +
                   " conflicts with " + (o_atomic ? "atomic" : "write") + " by block " +
                   std::to_string(o_block);
    } else {
        v.detail = std::string(is_atomic ? "atomic" : "write") +
                   " conflicts with read by block " + std::to_string(o_block);
    }
    report(std::move(v));
}

void Sanitizer::uninit_read_slow(Region& r, std::size_t g, int block, const char* primitive) {
    // Hybrid check: the shadow cannot see host-side staging writes, so only
    // report when the bytes still carry the pool's poison fill.
    const auto* gp = reinterpret_cast<const std::byte*>(r.base) + g * kSanGranule;
    const std::size_t gb = std::min(kSanGranule, r.bytes - g * kSanGranule);
    if (all_bytes(gp, gb, kPoisonByte)) {
        SanViolation v;
        v.kind = ViolationKind::uninit_read;
        v.kernel = kernel_;
        v.primitive = primitive;
        v.offset = g * kSanGranule;
        v.block = block;
        v.detail = "read of a poisoned pool word before any instrumented store";
        report(std::move(v));
    } else {
        // Observed real (host-staged) data: latch the init bit so re-reads
        // skip the poison compare.  A word can only go back to poison
        // through a fresh pool checkout, which reallocates the shadow.
        std::atomic_ref<std::uint64_t>(r.init_bits[g / 64])
            .fetch_or(std::uint64_t{1} << (g % 64), std::memory_order_relaxed);
    }
}

void Sanitizer::uninit_word_slow(Region& r, std::size_t w, std::uint64_t missing, int block,
                                 const char* primitive) {
    // Serial path only (no shadow concurrency): triage a whole bitmap
    // word's unset granules at once.  A granule counts as still-poisoned
    // only when every byte carries the pool fill, so a single u32 compare
    // settles each full granule; anything that is not pure poison is real
    // host-staged data and its bit latches with one plain OR at the end.
    static_assert(kSanGranule == sizeof(std::uint32_t));
    constexpr std::uint32_t kPoisonWord = 0x01010101u * static_cast<std::uint32_t>(kPoisonByte);
    const auto* base = reinterpret_cast<const std::byte*>(r.base);
    std::uint64_t latch = 0;
    for (std::uint64_t m = missing; m != 0; m &= m - 1) {
        const std::uint64_t bit = m & (~m + 1);
        const auto g = w * 64 + static_cast<std::size_t>(std::countr_zero(m));
        const std::size_t lo = g * kSanGranule;
        if (lo + kSanGranule <= r.bytes) [[likely]] {
            std::uint32_t v;
            std::memcpy(&v, base + lo, sizeof v);
            if (v != kPoisonWord) {
                latch |= bit;
                continue;
            }
        }
        // Fully-poisoned granule, or the partial tail granule: the precise
        // per-granule path reports / latches it.
        uninit_read_slow(r, g, block, primitive);
    }
    r.init_bits[w] |= latch;
}

void Sanitizer::oob(ViolationKind kind, const char* primitive, std::size_t index,
                    std::size_t size, int block) {
    SanViolation v;
    v.kind = kind;
    v.kernel = kernel_;
    v.primitive = primitive;
    v.offset = index;
    v.block = block;
    v.detail = "index " + std::to_string(index) + " out of bounds for size " +
               std::to_string(size);
    total_.fetch_add(1, std::memory_order_relaxed);
    {
        const std::lock_guard<std::mutex> lock(sink_mu_);
        if (violations_.size() < kMaxStored) violations_.push_back(v);
    }
    // OOB is fatal in every mode: continuing would corrupt host memory.
    throw SanError(std::move(v));
}

void Sanitizer::report(SanViolation v) {
    total_.fetch_add(1, std::memory_order_relaxed);
    {
        const std::lock_guard<std::mutex> lock(sink_mu_);
        if (violations_.size() < kMaxStored) violations_.push_back(v);
    }
    if (mode_ == SanMode::strict) throw SanError(std::move(v));
}

void Sanitizer::sweep_canaries(const Region& r, bool allow_throw, bool quick) {
    const auto check = [&](std::uintptr_t base, std::size_t bytes, const char* which) {
        if (base == 0 || bytes == 0) return;
        if (quick) bytes = std::min(bytes, kQuickSweepBytes);
        const auto* p = reinterpret_cast<const std::byte*>(base);
        if (all_bytes(p, bytes, kCanaryByte)) return;
        SanViolation v;
        v.kind = ViolationKind::canary;
        v.kernel = kernel_;
        v.primitive = "canary sweep";
        v.offset = first_mismatch(p, bytes, kCanaryByte);
        v.detail = std::string(which) +
                   " guard band clobbered (plain uncounted access past the user region?)";
        if (allow_throw) {
            report(std::move(v));  // one report per band localizes the smash
        } else {
            total_.fetch_add(1, std::memory_order_relaxed);
            const std::lock_guard<std::mutex> lock(sink_mu_);
            if (violations_.size() < kMaxStored) violations_.push_back(std::move(v));
        }
    };
    check(r.canary_lo, r.canary_lo_bytes, "leading");
    check(r.canary_hi, r.canary_hi_bytes, "trailing");
}

std::vector<SanViolation> Sanitizer::violations() const {
    const std::lock_guard<std::mutex> lock(sink_mu_);
    return violations_;
}

void Sanitizer::clear() {
    const std::lock_guard<std::mutex> lock(sink_mu_);
    violations_.clear();
    total_.store(0, std::memory_order_relaxed);
    checks_.store(0, std::memory_order_relaxed);
}

}  // namespace gpusel::simt
