#include "simt/arch.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace gpusel::simt {

ArchSpec arch_k20xm() {
    ArchSpec a;
    a.name = "K20Xm";
    a.generation = "Kepler";
    a.num_sms = 13;
    a.clock_ghz = 0.75;
    a.dp_tflops = 1.2;
    a.sp_tflops = 3.5;
    a.hp_tflops = 0.0;
    a.mem_capacity_gb = 5.0;
    a.peak_bandwidth_gbs = 208.0;
    a.sustained_bandwidth_gbs = 146.0;
    a.l2_cache_mb = 1.5;
    a.l1_cache_kb = 64.0;
    a.shared_mem_per_block = 48u << 10;
    a.max_threads_per_block = 1024;
    a.max_resident_threads_per_sm = 2048;
    a.has_fast_shared_atomics = false;  // pre-Maxwell: lock-emulated shared atomics

    // Timing model calibration (see EXPERIMENTS.md "Calibration"):
    // Kepler resolves global atomics in L2 with decent throughput, while
    // shared atomics are emulated and collapse under same-address conflicts.
    a.host_launch_ns = 10000.0;
    a.device_launch_ns = 5000.0;
    a.scattered_bw_efficiency = 0.20;
    a.shared_atomic_ops_per_ns = 1.8;
    a.global_atomic_ops_per_ns = 2.7;
    a.shared_collision_penalty = 4.0;
    a.global_collision_penalty = 1.0;
    a.ballot_ops_per_ns = 15.0;
    a.instr_per_ns = 300.0;
    a.barrier_ns = 30.0;
    a.shared_bytes_per_ns = 2400.0;
    return a;
}

ArchSpec arch_v100() {
    ArchSpec a;
    a.name = "V100";
    a.generation = "Volta";
    a.num_sms = 80;
    a.clock_ghz = 1.53;
    a.dp_tflops = 7.0;
    a.sp_tflops = 14.0;
    a.hp_tflops = 112.0;  // 8 tensor cores per SM
    a.mem_capacity_gb = 16.0;
    a.peak_bandwidth_gbs = 900.0;
    a.sustained_bandwidth_gbs = 742.0;
    a.l2_cache_mb = 6.0;
    a.l1_cache_kb = 128.0;
    a.shared_mem_per_block = 96u << 10;
    a.max_threads_per_block = 1024;
    a.max_resident_threads_per_sm = 2048;
    a.has_fast_shared_atomics = true;  // native shared atomic hardware

    // Volta: very fast, collision-tolerant shared atomics (warp-aggregation
    // unnecessary, Sec. V-E); global atomics roughly an order of magnitude
    // slower per op, producing the >10x sample-s vs sample-g gap of Fig. 8.
    a.host_launch_ns = 7000.0;
    a.device_launch_ns = 2500.0;
    a.scattered_bw_efficiency = 0.30;
    a.shared_atomic_ops_per_ns = 80.0;
    a.global_atomic_ops_per_ns = 3.5;
    a.shared_collision_penalty = 0.15;
    a.global_collision_penalty = 2.0;
    a.ballot_ops_per_ns = 40.0;
    a.instr_per_ns = 2000.0;
    a.barrier_ns = 15.0;
    a.shared_bytes_per_ns = 15000.0;
    return a;
}

const ArchSpec& preset(const std::string& name) {
    static const ArchSpec k20 = arch_k20xm();
    static const ArchSpec v100 = arch_v100();
    if (name == "K20Xm" || name == "k20xm" || name == "kepler") return k20;
    if (name == "V100" || name == "v100" || name == "volta") return v100;
    throw std::invalid_argument("unknown architecture preset: " + name);
}

namespace {
std::string tflops_str(double v) {
    if (v <= 0.0) return "-";
    std::ostringstream os;
    os << v << " TFLOPs";
    return os.str();
}
}  // namespace

std::ostream& print_table1(std::ostream& os, const ArchSpec& a, const ArchSpec& b) {
    auto row = [&os](const std::string& label, const std::string& va, const std::string& vb) {
        os << std::left << std::setw(18) << label << std::right << std::setw(14) << va
           << std::setw(14) << vb << '\n';
    };
    auto num = [](double v, const char* unit) {
        std::ostringstream s;
        s << v << unit;
        return s.str();
    };
    row("", a.name, b.name);
    row("Architecture", a.generation, b.generation);
    row("DP Performance", tflops_str(a.dp_tflops), tflops_str(b.dp_tflops));
    row("SP Performance", tflops_str(a.sp_tflops), tflops_str(b.sp_tflops));
    row("HP Performance", tflops_str(a.hp_tflops), tflops_str(b.hp_tflops));
    row("SMs", num(a.num_sms, ""), num(b.num_sms, ""));
    row("Operating Freq.", num(a.clock_ghz, " GHz"), num(b.clock_ghz, " GHz"));
    row("Mem. Capacity", num(a.mem_capacity_gb, " GB"), num(b.mem_capacity_gb, " GB"));
    row("Mem. Bandwidth", num(a.peak_bandwidth_gbs, " GB/s"), num(b.peak_bandwidth_gbs, " GB/s"));
    row("Sustained BW", num(a.sustained_bandwidth_gbs, " GB/s"),
        num(b.sustained_bandwidth_gbs, " GB/s"));
    row("L2 Cache Size", num(a.l2_cache_mb, " MB"), num(b.l2_cache_mb, " MB"));
    row("L1 Cache Size", num(a.l1_cache_kb, " KB"), num(b.l1_cache_kb, " KB"));
    return os;
}

}  // namespace gpusel::simt
