#pragma once
// Minimal non-owning, non-allocating callable reference (the C++26
// std::function_ref shape, reduced to what the simulator needs).
//
// ThreadPool::parallel_for runs one short-lived callable across many
// blocks; std::function would heap-allocate and virtual-dispatch per
// launch.  function_ref is two words -- an opaque object pointer and a
// thunk -- so passing a lambda is free and the call inlines to an
// indirect jump.  The referenced callable must outlive the function_ref
// (trivially true for parallel_for, which returns before its argument
// dies).

#include <type_traits>
#include <utility>

namespace gpusel::simt {

template <typename Signature>
class function_ref;

template <typename R, typename... Args>
class function_ref<R(Args...)> {
public:
    template <typename F,
              typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, function_ref> &&
                                          std::is_invocable_r_v<R, F&, Args...>>>
    function_ref(F&& f) noexcept  // NOLINT(google-explicit-constructor)
        : obj_(const_cast<void*>(static_cast<const void*>(std::addressof(f)))),
          call_([](void* obj, Args... args) -> R {
              return (*static_cast<std::remove_reference_t<F>*>(obj))(
                  std::forward<Args>(args)...);
          }) {}

    R operator()(Args... args) const { return call_(obj_, std::forward<Args>(args)...); }

private:
    void* obj_;
    R (*call_)(void*, Args...);
};

}  // namespace gpusel::simt
