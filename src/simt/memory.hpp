#pragma once
// Simulated device global memory.
//
// DeviceBuffer<T> is the only way kernels receive global-memory operands.
// It owns host storage and registers its size with an AllocationTracker so
// that the auxiliary-storage claims of the paper (SampleSelect <= n/4 bytes
// of auxiliary storage for single precision, QuickSelect n/2, Sec. IV-A) can
// be checked against actually-allocated bytes.
//
// When a Sanitizer (simt/sanitizer.hpp) is active, each buffer additionally
// surrounds its user data with 0xC3-filled canary guard bands and registers
// the user region for shadow tracking; the tracker keeps charging only the
// *user* bytes, so the paper's auxiliary-storage bounds stay unchanged
// under SimTSan.

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "simt/sanitizer.hpp"
#include "simt/streamsan.hpp"

namespace gpusel::simt {

/// Tracks current and peak simulated device-memory usage.
///
/// Two notions are kept apart so the memory pool can be measured honestly:
/// *in-use* bytes (current/peak/baseline -- what the paper's auxiliary-
/// storage bounds are about) and *backing allocations* (alloc_count -- how
/// often fresh device memory had to be carved out).  A pool hit re-enters
/// use via on_reuse (counted in current/peak, not in alloc_count); a buffer
/// returning to a pool free list leaves use via on_recycle without being a
/// real deallocation.
///
/// Accounting underflow (more bytes credited back than are in use) is a
/// bookkeeping bug -- historically a bare assert, i.e. UB in release
/// builds under GPUSEL_FAULTS.  It is now recorded as a sticky diagnostic:
/// current() clamps to zero, underflow_count()/underflow_note() report
/// what happened, and the pipeline's retry wrappers surface it through the
/// typed Status channel as SelectError::internal.
class AllocationTracker {
public:
    /// Fresh backing allocation entering use.
    void on_alloc(std::size_t bytes) noexcept {
        current_ += bytes;
        if (current_ > peak_) peak_ = current_;
        ++alloc_count_;
    }
    /// In-use bytes whose backing is actually destroyed.
    void on_free(std::size_t bytes) noexcept {
        if (bytes > current_) {
            record_underflow("on_free", bytes);
            current_ = 0;
            return;
        }
        current_ -= bytes;
    }
    /// Pooled backing re-entering use (pool hit): counts toward the in-use
    /// peak, not toward alloc_count.
    void on_reuse(std::size_t bytes) noexcept {
        current_ += bytes;
        if (current_ > peak_) peak_ = current_;
        ++reuse_count_;
    }
    /// In-use bytes returning to a pool free list (backing retained).
    void on_recycle(std::size_t bytes) noexcept {
        if (bytes > current_) {
            record_underflow("on_recycle", bytes);
            current_ = 0;
            return;
        }
        current_ -= bytes;
    }
    /// Marks the current usage as the baseline; peak_above_baseline() then
    /// reports only *auxiliary* storage allocated after this point.
    void set_baseline() noexcept { baseline_ = current_; peak_ = current_; }
    [[nodiscard]] std::size_t current() const noexcept { return current_; }
    [[nodiscard]] std::size_t peak() const noexcept { return peak_; }
    [[nodiscard]] std::size_t baseline() const noexcept { return baseline_; }
    [[nodiscard]] std::size_t peak_above_baseline() const noexcept {
        return peak_ > baseline_ ? peak_ - baseline_ : 0;
    }
    /// Fresh backing allocations (DeviceBuffer constructions + pool misses).
    [[nodiscard]] std::uint64_t alloc_count() const noexcept { return alloc_count_; }
    /// Pool hits: acquisitions served from a free list.
    [[nodiscard]] std::uint64_t reuse_count() const noexcept { return reuse_count_; }

    /// Accounting underflows observed so far (0 on a healthy run).
    [[nodiscard]] std::uint64_t underflow_count() const noexcept { return underflows_; }
    /// Description of the first underflow, empty when none occurred.
    [[nodiscard]] const std::string& underflow_note() const noexcept { return underflow_note_; }

private:
    void record_underflow(const char* op, std::size_t bytes) noexcept {
        ++underflows_;
        if (underflow_note_.empty()) {
            // Best effort only: string assembly may not throw here.
            try {
                underflow_note_ = std::string("AllocationTracker::") + op + " of " +
                                  std::to_string(bytes) + " bytes exceeds in-use total " +
                                  std::to_string(current_);
            } catch (...) {
            }
        }
    }

    std::size_t current_ = 0;
    std::size_t peak_ = 0;
    std::size_t baseline_ = 0;
    std::uint64_t alloc_count_ = 0;
    std::uint64_t reuse_count_ = 0;
    std::uint64_t underflows_ = 0;
    std::string underflow_note_;
};

/// Owning handle for a global-memory array of T.  Move-only; releases its
/// bytes from the tracker on destruction.  Under an active Sanitizer the
/// vector over-allocates kCanaryBytes of guard band on each side of the
/// user data; span()/data()/operator[] address only the user region and
/// the tracker is charged only the user bytes.
template <typename T>
class DeviceBuffer {
public:
    DeviceBuffer() = default;
    DeviceBuffer(AllocationTracker& tracker, std::size_t n, Sanitizer* san = nullptr,
                 StreamSan* ssan = nullptr)
        : tracker_(&tracker), n_(n) {
        if (san != nullptr && san->enabled() && n > 0) {
            san_ = san;
            pad_ = (kCanaryBytes + sizeof(T) - 1) / sizeof(T);
            data_.resize(n + 2 * pad_);
            std::memset(static_cast<void*>(data_.data()), static_cast<int>(kCanaryByte),
                        pad_ * sizeof(T));
            std::memset(static_cast<void*>(data_.data() + pad_ + n),
                        static_cast<int>(kCanaryByte), pad_ * sizeof(T));
            // vector value-initializes the user region, so it registers as
            // fully initialized (no uninit tracking needed here).
            san_->register_region(data(), bytes(), /*mark_uninit=*/false, data_.data(),
                                  pad_ * sizeof(T), data_.data() + pad_ + n, pad_ * sizeof(T));
        } else {
            data_.resize(n);
        }
        if (ssan != nullptr && ssan->enabled() && n > 0) {
            ssan_ = ssan;
            ssan_->register_region(data(), bytes());
        }
        tracker_->on_alloc(bytes());
    }
    DeviceBuffer(DeviceBuffer&& o) noexcept
        : tracker_(o.tracker_),
          san_(o.san_),
          ssan_(o.ssan_),
          n_(o.n_),
          pad_(o.pad_),
          data_(std::move(o.data_)) {
        o.tracker_ = nullptr;
        o.san_ = nullptr;
        o.ssan_ = nullptr;
        o.n_ = 0;
        o.pad_ = 0;
        o.data_.clear();
    }
    DeviceBuffer& operator=(DeviceBuffer&& o) noexcept {
        if (this != &o) {
            release();
            tracker_ = o.tracker_;
            san_ = o.san_;
            ssan_ = o.ssan_;
            n_ = o.n_;
            pad_ = o.pad_;
            data_ = std::move(o.data_);
            o.tracker_ = nullptr;
            o.san_ = nullptr;
            o.ssan_ = nullptr;
            o.n_ = 0;
            o.pad_ = 0;
            o.data_.clear();
        }
        return *this;
    }
    DeviceBuffer(const DeviceBuffer&) = delete;
    DeviceBuffer& operator=(const DeviceBuffer&) = delete;
    ~DeviceBuffer() { release(); }

    [[nodiscard]] std::size_t size() const noexcept { return n_; }
    [[nodiscard]] bool empty() const noexcept { return n_ == 0; }
    [[nodiscard]] std::size_t bytes() const noexcept { return n_ * sizeof(T); }
    [[nodiscard]] std::span<T> span() noexcept { return {data(), n_}; }
    [[nodiscard]] std::span<const T> span() const noexcept { return {data(), n_}; }
    [[nodiscard]] T* data() noexcept { return data_.data() + pad_; }
    [[nodiscard]] const T* data() const noexcept { return data_.data() + pad_; }
    T& operator[](std::size_t i) noexcept { return data()[i]; }
    const T& operator[](std::size_t i) const noexcept { return data()[i]; }

private:
    void release() noexcept {
        if (san_ != nullptr && !data_.empty()) san_->unregister_region(data());
        san_ = nullptr;
        if (ssan_ != nullptr && !data_.empty()) ssan_->unregister_region(data());
        ssan_ = nullptr;
        if (tracker_) tracker_->on_free(bytes());
        tracker_ = nullptr;
        n_ = 0;
        pad_ = 0;
    }
    AllocationTracker* tracker_ = nullptr;
    Sanitizer* san_ = nullptr;
    StreamSan* ssan_ = nullptr;
    std::size_t n_ = 0;
    std::size_t pad_ = 0;  ///< canary elements on each side of the user data
    std::vector<T> data_;
};

}  // namespace gpusel::simt
