#pragma once
// Simulated device global memory.
//
// DeviceBuffer<T> is the only way kernels receive global-memory operands.
// It owns host storage and registers its size with an AllocationTracker so
// that the auxiliary-storage claims of the paper (SampleSelect <= n/4 bytes
// of auxiliary storage for single precision, QuickSelect n/2, Sec. IV-A) can
// be checked against actually-allocated bytes.

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace gpusel::simt {

/// Tracks current and peak simulated device-memory usage.
///
/// Two notions are kept apart so the memory pool can be measured honestly:
/// *in-use* bytes (current/peak/baseline -- what the paper's auxiliary-
/// storage bounds are about) and *backing allocations* (alloc_count -- how
/// often fresh device memory had to be carved out).  A pool hit re-enters
/// use via on_reuse (counted in current/peak, not in alloc_count); a buffer
/// returning to a pool free list leaves use via on_recycle without being a
/// real deallocation.
class AllocationTracker {
public:
    /// Fresh backing allocation entering use.
    void on_alloc(std::size_t bytes) noexcept {
        current_ += bytes;
        if (current_ > peak_) peak_ = current_;
        ++alloc_count_;
    }
    /// In-use bytes whose backing is actually destroyed.
    void on_free(std::size_t bytes) noexcept {
        assert(bytes <= current_);
        current_ -= bytes;
    }
    /// Pooled backing re-entering use (pool hit): counts toward the in-use
    /// peak, not toward alloc_count.
    void on_reuse(std::size_t bytes) noexcept {
        current_ += bytes;
        if (current_ > peak_) peak_ = current_;
        ++reuse_count_;
    }
    /// In-use bytes returning to a pool free list (backing retained).
    void on_recycle(std::size_t bytes) noexcept {
        assert(bytes <= current_);
        current_ -= bytes;
    }
    /// Marks the current usage as the baseline; peak_above_baseline() then
    /// reports only *auxiliary* storage allocated after this point.
    void set_baseline() noexcept { baseline_ = current_; peak_ = current_; }
    [[nodiscard]] std::size_t current() const noexcept { return current_; }
    [[nodiscard]] std::size_t peak() const noexcept { return peak_; }
    [[nodiscard]] std::size_t baseline() const noexcept { return baseline_; }
    [[nodiscard]] std::size_t peak_above_baseline() const noexcept {
        return peak_ > baseline_ ? peak_ - baseline_ : 0;
    }
    /// Fresh backing allocations (DeviceBuffer constructions + pool misses).
    [[nodiscard]] std::uint64_t alloc_count() const noexcept { return alloc_count_; }
    /// Pool hits: acquisitions served from a free list.
    [[nodiscard]] std::uint64_t reuse_count() const noexcept { return reuse_count_; }

private:
    std::size_t current_ = 0;
    std::size_t peak_ = 0;
    std::size_t baseline_ = 0;
    std::uint64_t alloc_count_ = 0;
    std::uint64_t reuse_count_ = 0;
};

/// Owning handle for a global-memory array of T.  Move-only; releases its
/// bytes from the tracker on destruction.
template <typename T>
class DeviceBuffer {
public:
    DeviceBuffer() = default;
    DeviceBuffer(AllocationTracker& tracker, std::size_t n) : tracker_(&tracker), data_(n) {
        tracker_->on_alloc(bytes());
    }
    DeviceBuffer(DeviceBuffer&& o) noexcept : tracker_(o.tracker_), data_(std::move(o.data_)) {
        o.tracker_ = nullptr;
        o.data_.clear();
    }
    DeviceBuffer& operator=(DeviceBuffer&& o) noexcept {
        if (this != &o) {
            release();
            tracker_ = o.tracker_;
            data_ = std::move(o.data_);
            o.tracker_ = nullptr;
            o.data_.clear();
        }
        return *this;
    }
    DeviceBuffer(const DeviceBuffer&) = delete;
    DeviceBuffer& operator=(const DeviceBuffer&) = delete;
    ~DeviceBuffer() { release(); }

    [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
    [[nodiscard]] bool empty() const noexcept { return data_.empty(); }
    [[nodiscard]] std::size_t bytes() const noexcept { return data_.size() * sizeof(T); }
    [[nodiscard]] std::span<T> span() noexcept { return {data_.data(), data_.size()}; }
    [[nodiscard]] std::span<const T> span() const noexcept { return {data_.data(), data_.size()}; }
    [[nodiscard]] T* data() noexcept { return data_.data(); }
    [[nodiscard]] const T* data() const noexcept { return data_.data(); }
    T& operator[](std::size_t i) noexcept { return data_[i]; }
    const T& operator[](std::size_t i) const noexcept { return data_[i]; }

private:
    void release() noexcept {
        if (tracker_) tracker_->on_free(bytes());
        tracker_ = nullptr;
    }
    AllocationTracker* tracker_ = nullptr;
    std::vector<T> data_;
};

}  // namespace gpusel::simt
