#include "simt/thread_pool.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace gpusel::simt {

ThreadPool::ThreadPool(unsigned workers) : slots_(workers + 1) {
    threads_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i) {
        threads_.emplace_back([this, i] { worker_loop(i); });
    }
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard lock(mutex_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (auto& t : threads_) {
        t.join();
    }
}

void ThreadPool::parallel_for(std::size_t count, function_ref<void(std::size_t)> fn) {
    if (count == 0) return;
    if (threads_.empty()) {
        for (std::size_t i = 0; i < count; ++i) fn(i);
        return;
    }
    if (count > std::numeric_limits<std::uint32_t>::max()) {
        throw std::invalid_argument("parallel_for: count exceeds the packed-range limit");
    }

    {
        std::lock_guard lock(mutex_);
        error_ = nullptr;
    }
    done_.store(0, std::memory_order_relaxed);
    count_.store(count, std::memory_order_relaxed);
    fn_.store(&fn, std::memory_order_relaxed);

    // Static partition into one contiguous range per participant; the
    // release stores publish the task state above to anyone whose
    // take/steal CAS acquires the slot.
    const std::size_t participants = slots_.size();
    const std::size_t base = count / participants;
    const std::size_t rem = count % participants;
    std::size_t next = 0;
    for (std::size_t p = 0; p < participants; ++p) {
        const std::size_t len = base + (p < rem ? 1 : 0);
        slots_[p].range.store(pack(static_cast<std::uint32_t>(next),
                                   static_cast<std::uint32_t>(next + len)),
                              std::memory_order_release);
        next += len;
    }
    {
        std::lock_guard lock(mutex_);
        ++generation_;
    }
    work_cv_.notify_all();

    // The caller participates with the last slot.
    run_work(participants - 1);

    std::unique_lock lock(mutex_);
    done_cv_.wait(lock, [&] { return done_.load(std::memory_order_acquire) == count; });
    if (error_) {
        std::exception_ptr e = error_;
        error_ = nullptr;
        lock.unlock();
        std::rethrow_exception(e);
    }
}

void ThreadPool::record_error() noexcept {
    std::lock_guard lock(mutex_);
    if (!error_) error_ = std::current_exception();
}

void ThreadPool::run_work(std::size_t self) {
    const std::size_t participants = slots_.size();
    for (;;) {
        std::size_t begin = 0;
        std::size_t end = 0;
        bool got = false;

        // Own range first: take a chunk off the front (a quarter of what
        // remains, so early chunks are large and the tail self-balances).
        {
            Slot& s = slots_[self];
            std::uint64_t r = s.range.load(std::memory_order_acquire);
            while (cursor_of(r) < end_of(r)) {
                const std::uint32_t cur = cursor_of(r);
                const std::uint32_t e = end_of(r);
                const std::uint32_t c = std::max<std::uint32_t>(1, (e - cur) / 4);
                if (s.range.compare_exchange_weak(r, pack(cur + c, e),
                                                  std::memory_order_acq_rel,
                                                  std::memory_order_acquire)) {
                    begin = cur;
                    end = cur + c;
                    got = true;
                    break;
                }
            }
        }

        // Otherwise steal the back half of the first non-empty range.
        if (!got) {
            for (std::size_t k = 1; k < participants && !got; ++k) {
                Slot& s = slots_[(self + k) % participants];
                std::uint64_t r = s.range.load(std::memory_order_acquire);
                while (cursor_of(r) < end_of(r)) {
                    const std::uint32_t cur = cursor_of(r);
                    const std::uint32_t e = end_of(r);
                    const std::uint32_t c = (e - cur + 1) / 2;
                    if (s.range.compare_exchange_weak(r, pack(cur, e - c),
                                                      std::memory_order_acq_rel,
                                                      std::memory_order_acquire)) {
                        begin = e - c;
                        end = e;
                        got = true;
                        break;
                    }
                }
            }
        }
        if (!got) return;

        // Load fn AFTER the successful take: the slot's release store
        // happened after the fn/count stores of its generation, so a
        // participant that raced into the next task calls the right one.
        const auto* fn = fn_.load(std::memory_order_acquire);
        try {
            for (std::size_t i = begin; i < end; ++i) (*fn)(i);
        } catch (...) {
            record_error();
        }
        const std::size_t chunk = end - begin;
        if (done_.fetch_add(chunk, std::memory_order_acq_rel) + chunk ==
            count_.load(std::memory_order_relaxed)) {
            std::lock_guard lock(mutex_);
            done_cv_.notify_all();
        }
    }
}

void ThreadPool::worker_loop(std::size_t self) {
    std::uint64_t seen = 0;
    for (;;) {
        {
            std::unique_lock lock(mutex_);
            work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
            if (stop_) return;
            seen = generation_;
        }
        run_work(self);
    }
}

}  // namespace gpusel::simt
