#include "simt/thread_pool.hpp"

#include <algorithm>

namespace gpusel::simt {

ThreadPool::ThreadPool(unsigned workers) {
    threads_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i) {
        threads_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard lock(mutex_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (auto& t : threads_) {
        t.join();
    }
}

void ThreadPool::parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn) {
    if (count == 0) return;
    if (threads_.empty()) {
        for (std::size_t i = 0; i < count; ++i) fn(i);
        return;
    }
    {
        std::lock_guard lock(mutex_);
        task_.fn = &fn;
        task_.count = count;
        task_.next = 0;
        task_.done = 0;
        task_.error = nullptr;
        task_.active = true;
    }
    work_cv_.notify_all();
    // The caller participates in the work too.
    for (;;) {
        std::size_t i;
        {
            std::lock_guard lock(mutex_);
            if (task_.next >= task_.count) break;
            i = task_.next++;
        }
        try {
            fn(i);
        } catch (...) {
            std::lock_guard lock(mutex_);
            if (!task_.error) task_.error = std::current_exception();
        }
        {
            std::lock_guard lock(mutex_);
            ++task_.done;
        }
    }
    std::unique_lock lock(mutex_);
    done_cv_.wait(lock, [this] { return task_.done == task_.count; });
    task_.active = false;
    if (task_.error) std::rethrow_exception(task_.error);
}

void ThreadPool::worker_loop() {
    for (;;) {
        std::size_t i;
        const std::function<void(std::size_t)>* fn;
        {
            std::unique_lock lock(mutex_);
            work_cv_.wait(lock, [this] { return stop_ || (task_.active && task_.next < task_.count); });
            if (stop_) return;
            i = task_.next++;
            fn = task_.fn;
        }
        try {
            (*fn)(i);
        } catch (...) {
            std::lock_guard lock(mutex_);
            if (!task_.error) task_.error = std::current_exception();
        }
        {
            std::lock_guard lock(mutex_);
            if (++task_.done == task_.count) done_cv_.notify_all();
        }
    }
}

}  // namespace gpusel::simt
