#pragma once
// Analytic timing model: converts the exact event counts of a kernel launch
// into simulated nanoseconds for a given architecture.
//
// The model is a throughput/roofline hybrid:
//   * memory, atomic and compute pipelines each get a duration from their
//     event totals divided by a device-aggregate throughput;
//   * the pipelines overlap, so the kernel body costs max(...) of them;
//   * launch latency and serialized barrier waves are added on top;
//   * a utilization factor < 1 penalizes launches with too few threads to
//     saturate the device (latency-bound regime at small n);
//   * the declared unroll depth slightly improves memory latency hiding and
//     slightly hurts occupancy at large depths (Sec. IV-H d of the paper).
//
// All constants live in ArchSpec; see EXPERIMENTS.md "Calibration" for how
// they were chosen to reproduce the paper's architectural contrasts.

#include <vector>

#include "simt/arch.hpp"
#include "simt/counters.hpp"

namespace gpusel::simt {

/// Per-pipeline durations making up one kernel launch.
struct TimingBreakdown {
    double launch_ns = 0.0;
    double mem_ns = 0.0;          ///< global-memory traffic
    double shared_mem_ns = 0.0;   ///< shared-memory (non-atomic) traffic
    double atomic_ns = 0.0;       ///< shared + global atomics incl. collisions
    double compute_ns = 0.0;      ///< scalar instructions + votes + shuffles
    double barrier_ns = 0.0;      ///< serialized barrier waves
    double body_ns = 0.0;         ///< max of the overlapping pipelines
    double total_ns = 0.0;        ///< launch + body + barriers

    /// Which pipeline dominated the body (for reporting): "mem", "atomic",
    /// "compute" or "smem".
    const char* bottleneck = "mem";
};

/// Computes the simulated duration of a kernel launch.
[[nodiscard]] TimingBreakdown simulate_time(const ArchSpec& arch, const KernelProfile& p);

/// Cross-stream view of a span of kernel launches.  With per-stream clocks
/// the wall time of a section is the max over stream completion times,
/// while its serial cost is the sum of every launch's duration -- the gap
/// between the two is the overlap won by running independent work on
/// independent streams.
struct StreamOverlap {
    int streams = 0;        ///< distinct stream ids that appear
    double wall_ns = 0.0;   ///< latest end minus earliest start over all launches
    double serial_ns = 0.0; ///< sum of all launch durations (one-stream cost)
    /// serial_ns / wall_ns: 1.0 when fully serialized, approaching the
    /// stream count under perfect overlap.
    [[nodiscard]] double overlap_x() const noexcept {
        return wall_ns > 0.0 ? serial_ns / wall_ns : 1.0;
    }
};

/// Summarizes stream overlap over a profile list (typically
/// Device::profiles() after a batched section).
[[nodiscard]] StreamOverlap summarize_overlap(const std::vector<KernelProfile>& profiles);

/// Suggested grid size for a data-parallel launch over n elements with the
/// given block size and unroll depth: enough blocks for full occupancy, but
/// capped so grid-stride loops amortize scheduling (the usual CUDA sizing
/// heuristic).
[[nodiscard]] int suggest_grid(const ArchSpec& arch, std::size_t n, int block_dim, int unroll = 1);

}  // namespace gpusel::simt
