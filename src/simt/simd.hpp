#pragma once
// Portable lane-vector layer for the SIMT simulator's warp hot loops.
//
// The simulator models a 32-lane warp; on the host that tile maps exactly
// onto x86 vector registers (2 x 16-lane AVX-512, 4 x 8-lane AVX2, 8 x
// 4-lane SSE2 for floats).  This header provides the small set of
// *semantics-exact* tile primitives the three hot loops need -- masked
// compares, blends, gathers from (simulated) shared memory, search-tree
// traversal, bitonic compare-exchange and a horizontal
// histogram-accumulate -- each with a scalar fallback that is the original
// per-lane loop.
//
// Contract: every primitive is bit-identical to its scalar fallback on all
// inputs, including NaN and duplicate handling (compares use the exact
// predicate of the scalar code, e.g. `!(v < e)` maps to _CMP_NLT_UQ so that
// unordered operands take the same branch).  Event charging is not done
// here: callers charge per *tile* (see WarpCtx::add_instr etc.), so the
// counters do not depend on which tier executed the arithmetic.
//
// Tier selection:
//   * compile time: the best tier the build enables (CMake probes AVX2 and
//     AVX-512 with check_cxx_source_runs; see the top-level CMakeLists).
//   * run time: capped by the GPUSEL_SIMD environment variable
//     ("off"/"0"/"scalar", "sse2", "avx2", "avx512"; unset = fastest) and a
//     defensive __builtin_cpu_supports check.  Tests flip tiers in-process
//     via set_level()/set_enabled().

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>

#if !defined(GPUSEL_SIMD_DISABLE)
#if defined(__AVX512F__)
#define GPUSEL_SIMD_AVX512 1
#endif
#if defined(__AVX2__)
#define GPUSEL_SIMD_AVX2 1
#endif
#if defined(__SSE2__) || defined(_M_X64) || (defined(_M_IX86_FP) && _M_IX86_FP >= 2)
#define GPUSEL_SIMD_SSE2 1
#endif
#endif

#if defined(GPUSEL_SIMD_AVX512) || defined(GPUSEL_SIMD_AVX2) || defined(GPUSEL_SIMD_SSE2)
#include <immintrin.h>
#endif

namespace gpusel::simt::simd {

/// One simulated warp tile: the vector primitives below operate on up to
/// this many lanes (the fast paths require exactly kTileLanes).
inline constexpr int kTileLanes = 32;

/// Largest counter array histogram_accumulate()/distinct_count() accept;
/// larger universes must use the caller's own scratch (BlockCtx::distinct).
inline constexpr std::size_t kMaxHistogramBins = 4096;

enum class Level : int { scalar = 0, sse2 = 1, avx2 = 2, avx512 = 3 };

/// Best tier compiled into this binary.
[[nodiscard]] constexpr Level compiled_level() noexcept {
#if defined(GPUSEL_SIMD_AVX512)
    return Level::avx512;
#elif defined(GPUSEL_SIMD_AVX2)
    return Level::avx2;
#elif defined(GPUSEL_SIMD_SSE2)
    return Level::sse2;
#else
    return Level::scalar;
#endif
}

/// Tier used by the dispatch functions right now (compiled tier, capped by
/// GPUSEL_SIMD / set_level / CPU support).
[[nodiscard]] Level active_level() noexcept;
/// Caps the active tier (tests sweep scalar vs. vector in one process).
void set_level(Level cap) noexcept;
/// set_enabled(false) == set_level(scalar); set_enabled(true) removes the cap.
void set_enabled(bool on) noexcept;
[[nodiscard]] inline bool enabled() noexcept { return active_level() != Level::scalar; }
[[nodiscard]] const char* level_name(Level l) noexcept;

// ===========================================================================
// Scalar reference tier (always available; the vector tiers must match it
// bit for bit).
// ===========================================================================

namespace scalar {

/// Search-tree traversal in "level-local index" form: j_{L+1} = 2 j_L + r.
/// Identical decisions to SearchTree::find_bucket (j == i - (2^h - 1)).
template <typename T>
inline void traverse_tree(const T* nodes, const std::int32_t* leq, std::int32_t height,
                          const T* elems, int lanes, std::int32_t* bucket) {
    for (int l = 0; l < lanes; ++l) {
        const T e = elems[l];
        std::int32_t j = 0;
        for (std::int32_t lev = 0; lev < height; ++lev) {
            const std::size_t idx = (std::size_t{1} << lev) - 1 + static_cast<std::size_t>(j);
            const bool left = leq[idx] ? !(nodes[idx] < e) : (e < nodes[idx]);
            j = 2 * j + (left ? 0 : 1);
        }
        bucket[l] = j;
    }
}

template <typename T>
inline void bipartition_sides(const T* elems, T pivot, int lanes, std::int32_t* side) {
    for (int l = 0; l < lanes; ++l) side[l] = elems[l] < pivot ? 0 : 1;
}

template <typename T>
inline void tripartition_sides(const T* elems, T pivot, int lanes, std::int32_t* side) {
    for (int l = 0; l < lanes; ++l) {
        side[l] = elems[l] < pivot ? 0 : (elems[l] == pivot ? 1 : 2);
    }
}

template <typename T>
inline std::uint32_t cmp_lt_mask(const T* elems, T pivot, int lanes) {
    std::uint32_t m = 0;
    for (int l = 0; l < lanes; ++l) {
        if (elems[l] < pivot) m |= (1u << l);
    }
    return m;
}

template <typename T>
inline std::uint32_t cmp_eq_mask(const T* elems, T pivot, int lanes) {
    std::uint32_t m = 0;
    for (int l = 0; l < lanes; ++l) {
        if (elems[l] == pivot) m |= (1u << l);
    }
    return m;
}

template <typename T>
inline std::uint32_t cmp_gt_mask(const T* elems, T pivot, int lanes) {
    std::uint32_t m = 0;
    for (int l = 0; l < lanes; ++l) {
        if (pivot < elems[l]) m |= (1u << l);
    }
    return m;
}

inline std::uint32_t byte_eq_mask(const std::uint8_t* v, std::uint8_t x, int lanes) {
    std::uint32_t m = 0;
    for (int l = 0; l < lanes; ++l) {
        if (v[l] == x) m |= (1u << l);
    }
    return m;
}

inline std::uint32_t byte_gt_mask(const std::uint8_t* v, std::uint8_t x, int lanes) {
    std::uint32_t m = 0;
    for (int l = 0; l < lanes; ++l) {
        if (v[l] > x) m |= (1u << l);
    }
    return m;
}

/// Masked compress-store reference: the elements of src whose mask bit is
/// set are written to dst contiguously in lane order.  Mask bits at
/// positions >= lanes are ignored.  Returns the count written.
template <typename T>
inline int compress_store(const T* src, std::uint32_t mask, int lanes, T* dst) {
    int n = 0;
    for (int l = 0; l < lanes; ++l) {
        if ((mask >> l) & 1u) dst[n++] = src[l];
    }
    return n;
}

template <typename T>
inline void blend(const T* a, const T* b, std::uint32_t take_b, int lanes, T* out) {
    for (int l = 0; l < lanes; ++l) out[l] = (take_b >> l) & 1u ? b[l] : a[l];
}

template <typename T>
inline void gather(const T* table, const std::int32_t* idx, int lanes, T* out) {
    for (int l = 0; l < lanes; ++l) out[l] = table[idx[l]];
}

inline void pack_low_bytes(const std::int32_t* v, int lanes, std::uint8_t* out) {
    for (int l = 0; l < lanes; ++l) out[l] = static_cast<std::uint8_t>(v[l]);
}

/// One (k, j) step of the bitonic network over m (pow2) elements --
/// exactly detail::run_network's inner loop.
template <typename T>
inline void bitonic_step(T* a, std::size_t m, std::size_t j, std::size_t k) {
    for (std::size_t i = 0; i < m; ++i) {
        const std::size_t partner = i ^ j;
        if (partner > i) {
            const bool ascending = (i & k) == 0;
            if ((a[partner] < a[i]) == ascending) {
                const T tmp = a[i];
                a[i] = a[partner];
                a[partner] = tmp;
            }
        }
    }
}

}  // namespace scalar

// ===========================================================================
// Horizontal histogram-accumulate (bitset membership; scalar arithmetic --
// scatter-with-conflicts does not vectorize profitably, but the bitset
// beats the epoch-array used previously by keeping state in registers).
// ===========================================================================

/// Number of distinct values among bucket[0..lanes) (all < num_bins).
/// Requires num_bins <= kMaxHistogramBins.
inline int distinct_count(const std::int32_t* bucket, int lanes, std::size_t num_bins) {
    std::uint64_t words[kMaxHistogramBins / 64];
    const std::size_t nw = (num_bins + 63) / 64;
    std::memset(words, 0, nw * sizeof(std::uint64_t));
    int d = 0;
    for (int l = 0; l < lanes; ++l) {
        const auto b = static_cast<std::uint32_t>(bucket[l]);
        const std::uint64_t bit = std::uint64_t{1} << (b & 63u);
        d += (words[b >> 6] & bit) == 0 ? 1 : 0;
        words[b >> 6] |= bit;
    }
    return d;
}

/// counters[bucket[l]] += val for every lane (plain adds: the shared-memory
/// atomic flavour, where one block owns the counters); returns the distinct
/// count for collision accounting.  Requires num_bins <= kMaxHistogramBins.
inline int histogram_accumulate(std::int32_t* counters, std::size_t num_bins,
                                const std::int32_t* bucket, std::int32_t val, int lanes) {
    std::uint64_t words[kMaxHistogramBins / 64];
    const std::size_t nw = (num_bins + 63) / 64;
    std::memset(words, 0, nw * sizeof(std::uint64_t));
    int d = 0;
    for (int l = 0; l < lanes; ++l) {
        const auto b = static_cast<std::uint32_t>(bucket[l]);
        const std::uint64_t bit = std::uint64_t{1} << (b & 63u);
        d += (words[b >> 6] & bit) == 0 ? 1 : 0;
        words[b >> 6] |= bit;
        counters[b] += val;
    }
    return d;
}

// ===========================================================================
// SSE2 tier (x86-64 baseline): 4-lane compares/blends.  Tree traversal has
// no gather pre-AVX2, so it stays scalar at this tier.
// ===========================================================================

#if defined(GPUSEL_SIMD_SSE2)
namespace sse2 {

inline __m128 blend_ps(__m128 a, __m128 b, __m128 mask) {
    return _mm_or_ps(_mm_and_ps(mask, b), _mm_andnot_ps(mask, a));
}
inline __m128d blend_pd(__m128d a, __m128d b, __m128d mask) {
    return _mm_or_pd(_mm_and_pd(mask, b), _mm_andnot_pd(mask, a));
}

inline void tripartition_sides(const float* elems, float pivot, int lanes, std::int32_t* side) {
    const __m128 p = _mm_set1_ps(pivot);
    const __m128i two = _mm_set1_epi32(2);
    int l = 0;
    for (; l + 4 <= lanes; l += 4) {
        const __m128 e = _mm_loadu_ps(elems + l);
        const __m128i lt = _mm_castps_si128(_mm_cmplt_ps(e, p));
        const __m128i eq = _mm_castps_si128(_mm_cmpeq_ps(e, p));
        // lt: 2+(-1-1)=0, eq: 2+(-1)=1, else 2 (masks are 0 / -1).
        const __m128i s = _mm_add_epi32(two, _mm_add_epi32(_mm_add_epi32(lt, lt), eq));
        _mm_storeu_si128(reinterpret_cast<__m128i*>(side + l), s);
    }
    if (l < lanes) scalar::tripartition_sides(elems + l, pivot, lanes - l, side + l);
}

inline void tripartition_sides(const double* elems, double pivot, int lanes,
                               std::int32_t* side) {
    const __m128d p = _mm_set1_pd(pivot);
    int l = 0;
    for (; l + 2 <= lanes; l += 2) {
        const __m128d e = _mm_loadu_pd(elems + l);
        const __m128i lt = _mm_castpd_si128(_mm_cmplt_pd(e, p));
        const __m128i eq = _mm_castpd_si128(_mm_cmpeq_pd(e, p));
        // Per 64-bit lane: 2 + 2*lt + eq, then keep the low 32 bits.
        const __m128i s =
            _mm_add_epi64(_mm_set1_epi64x(2), _mm_add_epi64(_mm_add_epi64(lt, lt), eq));
        side[l] = static_cast<std::int32_t>(_mm_cvtsi128_si32(s));
        side[l + 1] = static_cast<std::int32_t>(_mm_cvtsi128_si32(_mm_srli_si128(s, 8)));
    }
    if (l < lanes) scalar::tripartition_sides(elems + l, pivot, lanes - l, side + l);
}

inline std::uint32_t cmp_lt_mask(const float* elems, float pivot, int lanes) {
    const __m128 p = _mm_set1_ps(pivot);
    std::uint32_t m = 0;
    int l = 0;
    for (; l + 4 <= lanes; l += 4) {
        const auto bits =
            static_cast<std::uint32_t>(_mm_movemask_ps(_mm_cmplt_ps(_mm_loadu_ps(elems + l), p)));
        m |= bits << l;
    }
    if (l < lanes) m |= scalar::cmp_lt_mask(elems + l, pivot, lanes - l) << l;
    return m;
}

inline std::uint32_t cmp_lt_mask(const double* elems, double pivot, int lanes) {
    const __m128d p = _mm_set1_pd(pivot);
    std::uint32_t m = 0;
    int l = 0;
    for (; l + 2 <= lanes; l += 2) {
        const auto bits = static_cast<std::uint32_t>(
            _mm_movemask_pd(_mm_cmplt_pd(_mm_loadu_pd(elems + l), p)));
        m |= bits << l;
    }
    if (l < lanes) m |= scalar::cmp_lt_mask(elems + l, pivot, lanes - l) << l;
    return m;
}

inline std::uint32_t cmp_eq_mask(const float* elems, float pivot, int lanes) {
    const __m128 p = _mm_set1_ps(pivot);
    std::uint32_t m = 0;
    int l = 0;
    for (; l + 4 <= lanes; l += 4) {
        const auto bits =
            static_cast<std::uint32_t>(_mm_movemask_ps(_mm_cmpeq_ps(_mm_loadu_ps(elems + l), p)));
        m |= bits << l;
    }
    if (l < lanes) m |= scalar::cmp_eq_mask(elems + l, pivot, lanes - l) << l;
    return m;
}

inline std::uint32_t cmp_eq_mask(const double* elems, double pivot, int lanes) {
    const __m128d p = _mm_set1_pd(pivot);
    std::uint32_t m = 0;
    int l = 0;
    for (; l + 2 <= lanes; l += 2) {
        const auto bits = static_cast<std::uint32_t>(
            _mm_movemask_pd(_mm_cmpeq_pd(_mm_loadu_pd(elems + l), p)));
        m |= bits << l;
    }
    if (l < lanes) m |= scalar::cmp_eq_mask(elems + l, pivot, lanes - l) << l;
    return m;
}

inline std::uint32_t cmp_gt_mask(const float* elems, float pivot, int lanes) {
    const __m128 p = _mm_set1_ps(pivot);
    std::uint32_t m = 0;
    int l = 0;
    for (; l + 4 <= lanes; l += 4) {
        const auto bits =
            static_cast<std::uint32_t>(_mm_movemask_ps(_mm_cmpgt_ps(_mm_loadu_ps(elems + l), p)));
        m |= bits << l;
    }
    if (l < lanes) m |= scalar::cmp_gt_mask(elems + l, pivot, lanes - l) << l;
    return m;
}

inline std::uint32_t cmp_gt_mask(const double* elems, double pivot, int lanes) {
    const __m128d p = _mm_set1_pd(pivot);
    std::uint32_t m = 0;
    int l = 0;
    for (; l + 2 <= lanes; l += 2) {
        const auto bits = static_cast<std::uint32_t>(
            _mm_movemask_pd(_mm_cmpgt_pd(_mm_loadu_pd(elems + l), p)));
        m |= bits << l;
    }
    if (l < lanes) m |= scalar::cmp_gt_mask(elems + l, pivot, lanes - l) << l;
    return m;
}

inline std::uint32_t byte_eq_mask(const std::uint8_t* v, std::uint8_t x, int lanes) {
    const __m128i bx = _mm_set1_epi8(static_cast<char>(x));
    std::uint32_t m = 0;
    int l = 0;
    for (; l + 16 <= lanes; l += 16) {
        const __m128i e = _mm_loadu_si128(reinterpret_cast<const __m128i*>(v + l));
        m |= static_cast<std::uint32_t>(_mm_movemask_epi8(_mm_cmpeq_epi8(e, bx))) << l;
    }
    if (l < lanes) m |= scalar::byte_eq_mask(v + l, x, lanes - l) << l;
    return m;
}

inline std::uint32_t byte_gt_mask(const std::uint8_t* v, std::uint8_t x, int lanes) {
    // Unsigned v > x via max_epu8: max(x, v) == x holds iff v <= x.
    const __m128i bx = _mm_set1_epi8(static_cast<char>(x));
    std::uint32_t m = 0;
    int l = 0;
    for (; l + 16 <= lanes; l += 16) {
        const __m128i e = _mm_loadu_si128(reinterpret_cast<const __m128i*>(v + l));
        const __m128i le = _mm_cmpeq_epi8(_mm_max_epu8(bx, e), bx);
        const auto bits = ~static_cast<std::uint32_t>(_mm_movemask_epi8(le)) & 0xffffu;
        m |= bits << l;
    }
    if (l < lanes) m |= scalar::byte_gt_mask(v + l, x, lanes - l) << l;
    return m;
}

inline void pack_low_bytes(const std::int32_t* v, int lanes, std::uint8_t* out) {
    int l = 0;
    for (; l + 16 <= lanes; l += 16) {
        const __m128i a = _mm_loadu_si128(reinterpret_cast<const __m128i*>(v + l));
        const __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(v + l + 4));
        const __m128i c = _mm_loadu_si128(reinterpret_cast<const __m128i*>(v + l + 8));
        const __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(v + l + 12));
        const __m128i lo = _mm_packs_epi32(a, b);
        const __m128i hi = _mm_packs_epi32(c, d);
        _mm_storeu_si128(reinterpret_cast<__m128i*>(out + l), _mm_packus_epi16(lo, hi));
    }
    if (l < lanes) scalar::pack_low_bytes(v + l, lanes - l, out + l);
}

/// Vector half of one bitonic (k, j) step for strides j >= vector width;
/// smaller strides take the scalar loop.  Swap condition is the exact
/// scalar predicate ((a > b) == ascending), so results (incl. -0.0 / NaN
/// placement) match the scalar network bit for bit.
inline void bitonic_step(float* a, std::size_t m, std::size_t j, std::size_t k) {
    if (j < 4) {
        scalar::bitonic_step(a, m, j, k);
        return;
    }
    for (std::size_t base = 0; base < m; base += 2 * j) {
        const bool ascending = (base & k) == 0;
        for (std::size_t off = base; off < base + j; off += 4) {
            const __m128 lo = _mm_loadu_ps(a + off);
            const __m128 hi = _mm_loadu_ps(a + off + j);
            const __m128 gt = _mm_cmpgt_ps(lo, hi);
            // swap iff (lo > hi) == ascending
            const __m128 swp = ascending ? gt : _mm_cmpngt_ps(lo, hi);
            _mm_storeu_ps(a + off, blend_ps(lo, hi, swp));
            _mm_storeu_ps(a + off + j, blend_ps(hi, lo, swp));
        }
    }
}

inline void bitonic_step(double* a, std::size_t m, std::size_t j, std::size_t k) {
    if (j < 2) {
        scalar::bitonic_step(a, m, j, k);
        return;
    }
    for (std::size_t base = 0; base < m; base += 2 * j) {
        const bool ascending = (base & k) == 0;
        for (std::size_t off = base; off < base + j; off += 2) {
            const __m128d lo = _mm_loadu_pd(a + off);
            const __m128d hi = _mm_loadu_pd(a + off + j);
            const __m128d gt = _mm_cmpgt_pd(lo, hi);
            const __m128d swp = ascending ? gt : _mm_cmpngt_pd(lo, hi);
            _mm_storeu_pd(a + off, blend_pd(lo, hi, swp));
            _mm_storeu_pd(a + off + j, blend_pd(hi, lo, swp));
        }
    }
}

}  // namespace sse2
#endif  // GPUSEL_SIMD_SSE2

// ===========================================================================
// AVX2 tier: 8-lane float tiles with in-register table permutes for the
// upper search-tree levels and hardware gathers below them.
// ===========================================================================

#if defined(GPUSEL_SIMD_AVX2)
namespace avx2 {

/// 32-lane float search-tree traversal.  Level L's nodes occupy the
/// contiguous heap slice [2^L-1, 2^L+1-1), so small levels resolve with
/// permutes on in-register tables (x86-simd-sort style) and only deep
/// levels pay for gathers.
inline void traverse_tree(const float* nodes, const std::int32_t* leq, std::int32_t height,
                          const float* elems, std::int32_t* bucket) {
    const __m256i one = _mm256_set1_epi32(1);
    const __m256i zero = _mm256_setzero_si256();
    __m256 e[4];
    __m256i j[4];
    for (int v = 0; v < 4; ++v) {
        e[v] = _mm256_loadu_ps(elems + 8 * v);
        j[v] = _mm256_setzero_si256();
    }
    for (std::int32_t lev = 0; lev < height; ++lev) {
        const std::size_t size = std::size_t{1} << lev;
        const float* tab = nodes + (size - 1);
        const std::int32_t* qtab = leq + (size - 1);
        __m256 t0, t1;
        __m256i q0, q1;
        if (size <= 8) {
            // Masked load keeps the read inside the node array when the
            // level is narrower than one vector.
            const __m256i lm = _mm256_cmpgt_epi32(
                _mm256_set1_epi32(static_cast<std::int32_t>(size)),
                _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7));
            t0 = _mm256_maskload_ps(tab, lm);
            q0 = _mm256_maskload_epi32(qtab, lm);
            t1 = t0;
            q1 = q0;
        } else if (size == 16) {
            t0 = _mm256_loadu_ps(tab);
            t1 = _mm256_loadu_ps(tab + 8);
            q0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(qtab));
            q1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(qtab + 8));
        }
        for (int v = 0; v < 4; ++v) {
            __m256 node;
            __m256i q;
            if (size <= 8) {
                node = _mm256_permutevar8x32_ps(t0, j[v]);
                q = _mm256_permutevar8x32_epi32(q0, j[v]);
            } else if (size == 16) {
                // Select between the two 8-entry halves by index bit 3.
                const __m256 sel = _mm256_castsi256_ps(_mm256_slli_epi32(j[v], 28));
                node = _mm256_blendv_ps(_mm256_permutevar8x32_ps(t0, j[v]),
                                        _mm256_permutevar8x32_ps(t1, j[v]), sel);
                q = _mm256_castps_si256(
                    _mm256_blendv_ps(_mm256_castsi256_ps(_mm256_permutevar8x32_epi32(q0, j[v])),
                                     _mm256_castsi256_ps(_mm256_permutevar8x32_epi32(q1, j[v])),
                                     sel));
            } else {
                node = _mm256_i32gather_ps(tab, j[v], 4);
                q = _mm256_i32gather_epi32(qtab, j[v], 4);
            }
            // left = leq ? !(node < e) : (e < node); unordered (NaN)
            // operands take the same side as the scalar predicates.
            const __m256 nlt = _mm256_cmp_ps(node, e[v], _CMP_NLT_UQ);
            const __m256 lt = _mm256_cmp_ps(e[v], node, _CMP_LT_OQ);
            const __m256i not_leq = _mm256_cmpeq_epi32(q, zero);
            const __m256i left =
                _mm256_or_si256(_mm256_and_si256(not_leq, _mm256_castps_si256(lt)),
                                _mm256_andnot_si256(not_leq, _mm256_castps_si256(nlt)));
            // j = 2*j + (left ? 0 : 1): left mask is -1, so 1 + left is it.
            j[v] = _mm256_add_epi32(_mm256_add_epi32(j[v], j[v]), _mm256_add_epi32(one, left));
        }
    }
    for (int v = 0; v < 4; ++v) {
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(bucket + 8 * v), j[v]);
    }
}

/// 32-lane double traversal: 4-lane gathers at every level (no wide
/// permute tables pre-AVX-512; gathers still beat the scalar chain).
inline void traverse_tree(const double* nodes, const std::int32_t* leq, std::int32_t height,
                          const double* elems, std::int32_t* bucket) {
    const __m128i one = _mm_set1_epi32(1);
    const __m128i zero = _mm_setzero_si128();
    // Narrows a 4x64-bit compare mask to 4x32 lanes.
    const __m256i narrow_idx = _mm256_setr_epi32(0, 2, 4, 6, 0, 2, 4, 6);
    for (int v = 0; v < 8; ++v) {
        const __m256d e = _mm256_loadu_pd(elems + 4 * v);
        __m128i j = _mm_setzero_si128();
        for (std::int32_t lev = 0; lev < height; ++lev) {
            const std::size_t size = std::size_t{1} << lev;
            const double* tab = nodes + (size - 1);
            const std::int32_t* qtab = leq + (size - 1);
            const __m256d node = _mm256_i32gather_pd(tab, j, 8);
            const __m128i q = _mm_i32gather_epi32(qtab, j, 4);
            const __m256d nlt = _mm256_cmp_pd(node, e, _CMP_NLT_UQ);
            const __m256d lt = _mm256_cmp_pd(e, node, _CMP_LT_OQ);
            const __m128i nlt32 = _mm256_castsi256_si128(
                _mm256_permutevar8x32_epi32(_mm256_castpd_si256(nlt), narrow_idx));
            const __m128i lt32 = _mm256_castsi256_si128(
                _mm256_permutevar8x32_epi32(_mm256_castpd_si256(lt), narrow_idx));
            const __m128i not_leq = _mm_cmpeq_epi32(q, zero);
            const __m128i left = _mm_or_si128(_mm_and_si128(not_leq, lt32),
                                              _mm_andnot_si128(not_leq, nlt32));
            j = _mm_add_epi32(_mm_add_epi32(j, j), _mm_add_epi32(one, left));
        }
        _mm_storeu_si128(reinterpret_cast<__m128i*>(bucket + 4 * v), j);
    }
}

inline void bipartition_sides(const float* elems, float pivot, int lanes, std::int32_t* side) {
    const __m256 p = _mm256_set1_ps(pivot);
    const __m256i one = _mm256_set1_epi32(1);
    int l = 0;
    for (; l + 8 <= lanes; l += 8) {
        const __m256 e = _mm256_loadu_ps(elems + l);
        const __m256i lt = _mm256_castps_si256(_mm256_cmp_ps(e, p, _CMP_LT_OQ));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(side + l), _mm256_add_epi32(one, lt));
    }
    if (l < lanes) scalar::bipartition_sides(elems + l, pivot, lanes - l, side + l);
}

inline void bipartition_sides(const double* elems, double pivot, int lanes,
                              std::int32_t* side) {
    const __m256d p = _mm256_set1_pd(pivot);
    const __m128i one = _mm_set1_epi32(1);
    const __m256i narrow_idx = _mm256_setr_epi32(0, 2, 4, 6, 0, 2, 4, 6);
    int l = 0;
    for (; l + 4 <= lanes; l += 4) {
        const __m256d e = _mm256_loadu_pd(elems + l);
        const __m256d lt = _mm256_cmp_pd(e, p, _CMP_LT_OQ);
        const __m128i lt32 = _mm256_castsi256_si128(
            _mm256_permutevar8x32_epi32(_mm256_castpd_si256(lt), narrow_idx));
        _mm_storeu_si128(reinterpret_cast<__m128i*>(side + l), _mm_add_epi32(one, lt32));
    }
    if (l < lanes) scalar::bipartition_sides(elems + l, pivot, lanes - l, side + l);
}

inline void tripartition_sides(const float* elems, float pivot, int lanes, std::int32_t* side) {
    const __m256 p = _mm256_set1_ps(pivot);
    const __m256i two = _mm256_set1_epi32(2);
    int l = 0;
    for (; l + 8 <= lanes; l += 8) {
        const __m256 e = _mm256_loadu_ps(elems + l);
        const __m256i lt = _mm256_castps_si256(_mm256_cmp_ps(e, p, _CMP_LT_OQ));
        const __m256i eq = _mm256_castps_si256(_mm256_cmp_ps(e, p, _CMP_EQ_OQ));
        const __m256i s = _mm256_add_epi32(two, _mm256_add_epi32(_mm256_add_epi32(lt, lt), eq));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(side + l), s);
    }
    if (l < lanes) scalar::tripartition_sides(elems + l, pivot, lanes - l, side + l);
}

inline void tripartition_sides(const double* elems, double pivot, int lanes,
                               std::int32_t* side) {
    const __m256d p = _mm256_set1_pd(pivot);
    const __m128i two = _mm_set1_epi32(2);
    const __m256i narrow_idx = _mm256_setr_epi32(0, 2, 4, 6, 0, 2, 4, 6);
    int l = 0;
    for (; l + 4 <= lanes; l += 4) {
        const __m256d e = _mm256_loadu_pd(elems + l);
        const __m256d lt = _mm256_cmp_pd(e, p, _CMP_LT_OQ);
        const __m256d eq = _mm256_cmp_pd(e, p, _CMP_EQ_OQ);
        const __m128i lt32 = _mm256_castsi256_si128(
            _mm256_permutevar8x32_epi32(_mm256_castpd_si256(lt), narrow_idx));
        const __m128i eq32 = _mm256_castsi256_si128(
            _mm256_permutevar8x32_epi32(_mm256_castpd_si256(eq), narrow_idx));
        const __m128i s = _mm_add_epi32(two, _mm_add_epi32(_mm_add_epi32(lt32, lt32), eq32));
        _mm_storeu_si128(reinterpret_cast<__m128i*>(side + l), s);
    }
    if (l < lanes) scalar::tripartition_sides(elems + l, pivot, lanes - l, side + l);
}

inline std::uint32_t cmp_lt_mask(const float* elems, float pivot, int lanes) {
    const __m256 p = _mm256_set1_ps(pivot);
    std::uint32_t m = 0;
    int l = 0;
    for (; l + 8 <= lanes; l += 8) {
        const auto bits = static_cast<std::uint32_t>(
            _mm256_movemask_ps(_mm256_cmp_ps(_mm256_loadu_ps(elems + l), p, _CMP_LT_OQ)));
        m |= bits << l;
    }
    if (l < lanes) m |= scalar::cmp_lt_mask(elems + l, pivot, lanes - l) << l;
    return m;
}

inline std::uint32_t cmp_lt_mask(const double* elems, double pivot, int lanes) {
    const __m256d p = _mm256_set1_pd(pivot);
    std::uint32_t m = 0;
    int l = 0;
    for (; l + 4 <= lanes; l += 4) {
        const auto bits = static_cast<std::uint32_t>(
            _mm256_movemask_pd(_mm256_cmp_pd(_mm256_loadu_pd(elems + l), p, _CMP_LT_OQ)));
        m |= bits << l;
    }
    if (l < lanes) m |= scalar::cmp_lt_mask(elems + l, pivot, lanes - l) << l;
    return m;
}

inline std::uint32_t cmp_eq_mask(const float* elems, float pivot, int lanes) {
    const __m256 p = _mm256_set1_ps(pivot);
    std::uint32_t m = 0;
    int l = 0;
    for (; l + 8 <= lanes; l += 8) {
        const auto bits = static_cast<std::uint32_t>(
            _mm256_movemask_ps(_mm256_cmp_ps(_mm256_loadu_ps(elems + l), p, _CMP_EQ_OQ)));
        m |= bits << l;
    }
    if (l < lanes) m |= scalar::cmp_eq_mask(elems + l, pivot, lanes - l) << l;
    return m;
}

inline std::uint32_t cmp_eq_mask(const double* elems, double pivot, int lanes) {
    const __m256d p = _mm256_set1_pd(pivot);
    std::uint32_t m = 0;
    int l = 0;
    for (; l + 4 <= lanes; l += 4) {
        const auto bits = static_cast<std::uint32_t>(
            _mm256_movemask_pd(_mm256_cmp_pd(_mm256_loadu_pd(elems + l), p, _CMP_EQ_OQ)));
        m |= bits << l;
    }
    if (l < lanes) m |= scalar::cmp_eq_mask(elems + l, pivot, lanes - l) << l;
    return m;
}

inline std::uint32_t cmp_gt_mask(const float* elems, float pivot, int lanes) {
    const __m256 p = _mm256_set1_ps(pivot);
    std::uint32_t m = 0;
    int l = 0;
    for (; l + 8 <= lanes; l += 8) {
        const auto bits = static_cast<std::uint32_t>(
            _mm256_movemask_ps(_mm256_cmp_ps(_mm256_loadu_ps(elems + l), p, _CMP_GT_OQ)));
        m |= bits << l;
    }
    if (l < lanes) m |= scalar::cmp_gt_mask(elems + l, pivot, lanes - l) << l;
    return m;
}

inline std::uint32_t cmp_gt_mask(const double* elems, double pivot, int lanes) {
    const __m256d p = _mm256_set1_pd(pivot);
    std::uint32_t m = 0;
    int l = 0;
    for (; l + 4 <= lanes; l += 4) {
        const auto bits = static_cast<std::uint32_t>(
            _mm256_movemask_pd(_mm256_cmp_pd(_mm256_loadu_pd(elems + l), p, _CMP_GT_OQ)));
        m |= bits << l;
    }
    if (l < lanes) m |= scalar::cmp_gt_mask(elems + l, pivot, lanes - l) << l;
    return m;
}

inline std::uint32_t byte_eq_mask(const std::uint8_t* v, std::uint8_t x, int lanes) {
    if (lanes == 32) {
        const __m256i e = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v));
        const __m256i eq = _mm256_cmpeq_epi8(e, _mm256_set1_epi8(static_cast<char>(x)));
        return static_cast<std::uint32_t>(_mm256_movemask_epi8(eq));
    }
    return scalar::byte_eq_mask(v, x, lanes);
}

inline std::uint32_t byte_gt_mask(const std::uint8_t* v, std::uint8_t x, int lanes) {
    if (lanes == 32) {
        // Unsigned v > x via max_epu8: max(x, v) == x holds iff v <= x.
        const __m256i bx = _mm256_set1_epi8(static_cast<char>(x));
        const __m256i e = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v));
        const __m256i le = _mm256_cmpeq_epi8(_mm256_max_epu8(bx, e), bx);
        return ~static_cast<std::uint32_t>(_mm256_movemask_epi8(le));
    }
    return scalar::byte_gt_mask(v, x, lanes);
}

namespace detail {

/// Permute-index tables emulating AVX-512 vcompressps on AVX2
/// (x86-simd-sort's partitioning trick): entry [m] lists the set-bit
/// positions of the 8-bit (4-bit pair) mask m in ascending order, so a
/// single permutevar8x32 packs the selected lanes to the vector front.
struct CompressLut8 {
    std::int32_t idx[256][8];
};
constexpr CompressLut8 make_compress_lut8() {
    CompressLut8 t{};
    for (int m = 0; m < 256; ++m) {
        int n = 0;
        for (int b = 0; b < 8; ++b) {
            if ((m >> b) & 1) t.idx[m][n++] = b;
        }
        for (; n < 8; ++n) t.idx[m][n] = 0;
    }
    return t;
}
inline constexpr CompressLut8 kCompressLut8 = make_compress_lut8();

/// 8-byte-lane variant: 4-bit masks over epi64 lanes, expressed as pairs
/// of epi32 permute indices (2b, 2b+1) so the same permutevar8x32 applies.
struct CompressLut4 {
    std::int32_t idx[16][8];
};
constexpr CompressLut4 make_compress_lut4() {
    CompressLut4 t{};
    for (int m = 0; m < 16; ++m) {
        int n = 0;
        for (int b = 0; b < 4; ++b) {
            if ((m >> b) & 1) {
                t.idx[m][2 * n] = 2 * b;
                t.idx[m][2 * n + 1] = 2 * b + 1;
                ++n;
            }
        }
        for (; n < 4; ++n) {
            t.idx[m][2 * n] = 0;
            t.idx[m][2 * n + 1] = 0;
        }
    }
    return t;
}
inline constexpr CompressLut4 kCompressLut4 = make_compress_lut4();

}  // namespace detail

/// Masked compress-store of 4-byte lanes (bit-preserving through integer
/// registers, so float payloads incl. NaN move unquieted).  Full 8-lane
/// chunks take the LUT permute + tail-masked store; the remainder is the
/// scalar loop.  Returns the count written.
inline int compress_store_4(const void* src, std::uint32_t mask, int lanes, void* dst) {
    const auto* in = static_cast<const unsigned char*>(src);
    auto* out = static_cast<unsigned char*>(dst);
    const __m256i lane_ids = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
    int written = 0;
    int l = 0;
    for (; l + 8 <= lanes; l += 8) {
        const std::uint32_t m8 = (mask >> l) & 0xffu;
        const __m256i v =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + 4u * static_cast<unsigned>(l)));
        const __m256i perm = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(detail::kCompressLut8.idx[m8]));
        const __m256i packed = _mm256_permutevar8x32_epi32(v, perm);
        const int cnt = std::popcount(m8);
        const __m256i keep = _mm256_cmpgt_epi32(_mm256_set1_epi32(cnt), lane_ids);
        _mm256_maskstore_epi32(
            reinterpret_cast<std::int32_t*>(out + 4u * static_cast<unsigned>(written)), keep,
            packed);
        written += cnt;
    }
    for (; l < lanes; ++l) {
        if ((mask >> l) & 1u) {
            std::memcpy(out + 4u * static_cast<unsigned>(written),
                        in + 4u * static_cast<unsigned>(l), 4);
            ++written;
        }
    }
    return written;
}

/// 8-byte-lane compress-store (KeyPayload/double payloads).
inline int compress_store_8(const void* src, std::uint32_t mask, int lanes, void* dst) {
    const auto* in = static_cast<const unsigned char*>(src);
    auto* out = static_cast<unsigned char*>(dst);
    const __m256i pair_ids = _mm256_setr_epi64x(0, 1, 2, 3);
    int written = 0;
    int l = 0;
    for (; l + 4 <= lanes; l += 4) {
        const std::uint32_t m4 = (mask >> l) & 0xfu;
        const __m256i v =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + 8u * static_cast<unsigned>(l)));
        const __m256i perm = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(detail::kCompressLut4.idx[m4]));
        const __m256i packed = _mm256_permutevar8x32_epi32(v, perm);
        const int cnt = std::popcount(m4);
        const __m256i keep = _mm256_cmpgt_epi64(_mm256_set1_epi64x(cnt), pair_ids);
        _mm256_maskstore_epi64(
            reinterpret_cast<long long*>(out + 8u * static_cast<unsigned>(written)), keep, packed);
        written += cnt;
    }
    for (; l < lanes; ++l) {
        if ((mask >> l) & 1u) {
            std::memcpy(out + 8u * static_cast<unsigned>(written),
                        in + 8u * static_cast<unsigned>(l), 8);
            ++written;
        }
    }
    return written;
}

inline void pack_low_bytes(const std::int32_t* v, int lanes, std::uint8_t* out) {
    if (lanes == 32) {
        const auto* p = reinterpret_cast<const __m256i*>(v);
        const __m256i a = _mm256_loadu_si256(p);
        const __m256i b = _mm256_loadu_si256(p + 1);
        const __m256i c = _mm256_loadu_si256(p + 2);
        const __m256i d = _mm256_loadu_si256(p + 3);
        // packs interleave 128-bit lanes; one cross-lane permute restores
        // element order of the 32 bytes.
        const __m256i w16a = _mm256_packs_epi32(a, b);
        const __m256i w16b = _mm256_packs_epi32(c, d);
        const __m256i w8 = _mm256_packus_epi16(w16a, w16b);
        const __m256i fix = _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out),
                            _mm256_permutevar8x32_epi32(w8, fix));
        return;
    }
    scalar::pack_low_bytes(v, lanes, out);
}

inline void bitonic_step(float* a, std::size_t m, std::size_t j, std::size_t k) {
    if (j < 8) {
#if defined(GPUSEL_SIMD_SSE2)
        sse2::bitonic_step(a, m, j, k);
#else
        scalar::bitonic_step(a, m, j, k);
#endif
        return;
    }
    for (std::size_t base = 0; base < m; base += 2 * j) {
        const bool ascending = (base & k) == 0;
        for (std::size_t off = base; off < base + j; off += 8) {
            const __m256 lo = _mm256_loadu_ps(a + off);
            const __m256 hi = _mm256_loadu_ps(a + off + j);
            const __m256 swp = ascending ? _mm256_cmp_ps(lo, hi, _CMP_GT_OQ)
                                         : _mm256_cmp_ps(lo, hi, _CMP_NGT_UQ);
            _mm256_storeu_ps(a + off, _mm256_blendv_ps(lo, hi, swp));
            _mm256_storeu_ps(a + off + j, _mm256_blendv_ps(hi, lo, swp));
        }
    }
}

inline void bitonic_step(double* a, std::size_t m, std::size_t j, std::size_t k) {
    if (j < 4) {
#if defined(GPUSEL_SIMD_SSE2)
        sse2::bitonic_step(a, m, j, k);
#else
        scalar::bitonic_step(a, m, j, k);
#endif
        return;
    }
    for (std::size_t base = 0; base < m; base += 2 * j) {
        const bool ascending = (base & k) == 0;
        for (std::size_t off = base; off < base + j; off += 4) {
            const __m256d lo = _mm256_loadu_pd(a + off);
            const __m256d hi = _mm256_loadu_pd(a + off + j);
            const __m256d swp = ascending ? _mm256_cmp_pd(lo, hi, _CMP_GT_OQ)
                                          : _mm256_cmp_pd(lo, hi, _CMP_NGT_UQ);
            _mm256_storeu_pd(a + off, _mm256_blendv_pd(lo, hi, swp));
            _mm256_storeu_pd(a + off + j, _mm256_blendv_pd(hi, lo, swp));
        }
    }
}

inline void gather(const float* table, const std::int32_t* idx, int lanes, float* out) {
    int l = 0;
    for (; l + 8 <= lanes; l += 8) {
        const __m256i j = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + l));
        _mm256_storeu_ps(out + l, _mm256_i32gather_ps(table, j, 4));
    }
    if (l < lanes) scalar::gather(table + 0, idx + l, lanes - l, out + l);
}

inline void gather(const double* table, const std::int32_t* idx, int lanes, double* out) {
    int l = 0;
    for (; l + 4 <= lanes; l += 4) {
        const __m128i j = _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + l));
        _mm256_storeu_pd(out + l, _mm256_i32gather_pd(table, j, 8));
    }
    if (l < lanes) scalar::gather(table + 0, idx + l, lanes - l, out + l);
}

}  // namespace avx2
#endif  // GPUSEL_SIMD_AVX2

// ===========================================================================
// AVX-512 tier: 16-lane float tiles; tree levels up to 32 entries resolve
// with vpermps/vpermi2ps, deeper levels gather.  Only AVX-512F (+AVX2 for
// the 32-bit double-index helpers) instructions are used.
// ===========================================================================

#if defined(GPUSEL_SIMD_AVX512)
namespace avx512 {

inline void traverse_tree(const float* nodes, const std::int32_t* leq, std::int32_t height,
                          const float* elems, std::int32_t* bucket) {
    const __m512i one = _mm512_set1_epi32(1);
    __m512 e[2];
    __m512i j[2];
    for (int v = 0; v < 2; ++v) {
        e[v] = _mm512_loadu_ps(elems + 16 * v);
        j[v] = _mm512_setzero_si512();
    }
    for (std::int32_t lev = 0; lev < height; ++lev) {
        const std::size_t size = std::size_t{1} << lev;
        const float* tab = nodes + (size - 1);
        const std::int32_t* qtab = leq + (size - 1);
        __m512 t0{}, t1{};
        __m512i q0{}, q1{};
        if (size <= 16) {
            const __mmask16 lm =
                size >= 16 ? static_cast<__mmask16>(0xffff)
                           : static_cast<__mmask16>((1u << size) - 1u);
            t0 = _mm512_maskz_loadu_ps(lm, tab);
            q0 = _mm512_maskz_loadu_epi32(lm, qtab);
        } else if (size == 32) {
            t0 = _mm512_loadu_ps(tab);
            t1 = _mm512_loadu_ps(tab + 16);
            q0 = _mm512_loadu_si512(qtab);
            q1 = _mm512_loadu_si512(qtab + 16);
        }
        for (int v = 0; v < 2; ++v) {
            __m512 node;
            __m512i q;
            if (size <= 16) {
                node = _mm512_permutexvar_ps(j[v], t0);
                q = _mm512_permutexvar_epi32(j[v], q0);
            } else if (size == 32) {
                node = _mm512_permutex2var_ps(t0, j[v], t1);
                q = _mm512_permutex2var_epi32(q0, j[v], q1);
            } else {
                node = _mm512_i32gather_ps(j[v], tab, 4);
                q = _mm512_i32gather_epi32(j[v], qtab, 4);
            }
            const __mmask16 is_leq = _mm512_test_epi32_mask(q, q);
            const __mmask16 nlt = _mm512_cmp_ps_mask(node, e[v], _CMP_NLT_UQ);
            const __mmask16 lt = _mm512_cmp_ps_mask(e[v], node, _CMP_LT_OQ);
            const auto left = static_cast<__mmask16>((is_leq & nlt) | (~is_leq & lt));
            j[v] = _mm512_add_epi32(j[v], j[v]);
            j[v] = _mm512_mask_add_epi32(j[v], static_cast<__mmask16>(~left), j[v], one);
        }
    }
    for (int v = 0; v < 2; ++v) {
        _mm512_storeu_si512(bucket + 16 * v, j[v]);
    }
}

inline void traverse_tree(const double* nodes, const std::int32_t* leq, std::int32_t height,
                          const double* elems, std::int32_t* bucket) {
    const __m512i one = _mm512_set1_epi64(1);
    for (int v = 0; v < 4; ++v) {
        const __m512d e = _mm512_loadu_pd(elems + 8 * v);
        __m512i j = _mm512_setzero_si512();  // 8 x 64-bit local indices
        for (std::int32_t lev = 0; lev < height; ++lev) {
            const std::size_t size = std::size_t{1} << lev;
            const double* tab = nodes + (size - 1);
            const std::int32_t* qtab = leq + (size - 1);
            const __m256i j32 = _mm512_cvtepi64_epi32(j);
            const __m512d node = _mm512_i32gather_pd(j32, tab, 8);
            const __m256i q32 = _mm256_i32gather_epi32(qtab, j32, 4);
            const __m512i q = _mm512_cvtepi32_epi64(q32);
            const __mmask8 is_leq = _mm512_test_epi64_mask(q, q);
            const __mmask8 nlt = _mm512_cmp_pd_mask(node, e, _CMP_NLT_UQ);
            const __mmask8 lt = _mm512_cmp_pd_mask(e, node, _CMP_LT_OQ);
            const auto left = static_cast<__mmask8>((is_leq & nlt) | (~is_leq & lt));
            j = _mm512_add_epi64(j, j);
            j = _mm512_mask_add_epi64(j, static_cast<__mmask8>(~left), j, one);
        }
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(bucket + 8 * v),
                            _mm512_cvtepi64_epi32(j));
    }
}

inline void pack_low_bytes(const std::int32_t* v, int lanes, std::uint8_t* out) {
    if (lanes == 32) {
        const __m512i a = _mm512_loadu_si512(v);
        const __m512i b = _mm512_loadu_si512(v + 16);
        _mm_storeu_si128(reinterpret_cast<__m128i*>(out), _mm512_cvtepi32_epi8(a));
        _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 16), _mm512_cvtepi32_epi8(b));
        return;
    }
    scalar::pack_low_bytes(v, lanes, out);
}

inline void bitonic_step(float* a, std::size_t m, std::size_t j, std::size_t k) {
    if (j < 16) {
#if defined(GPUSEL_SIMD_AVX2)
        avx2::bitonic_step(a, m, j, k);
#else
        scalar::bitonic_step(a, m, j, k);
#endif
        return;
    }
    for (std::size_t base = 0; base < m; base += 2 * j) {
        const bool ascending = (base & k) == 0;
        for (std::size_t off = base; off < base + j; off += 16) {
            const __m512 lo = _mm512_loadu_ps(a + off);
            const __m512 hi = _mm512_loadu_ps(a + off + j);
            const __mmask16 swp = ascending ? _mm512_cmp_ps_mask(lo, hi, _CMP_GT_OQ)
                                            : _mm512_cmp_ps_mask(lo, hi, _CMP_NGT_UQ);
            _mm512_storeu_ps(a + off, _mm512_mask_blend_ps(swp, lo, hi));
            _mm512_storeu_ps(a + off + j, _mm512_mask_blend_ps(swp, hi, lo));
        }
    }
}

inline void bitonic_step(double* a, std::size_t m, std::size_t j, std::size_t k) {
    if (j < 8) {
#if defined(GPUSEL_SIMD_AVX2)
        avx2::bitonic_step(a, m, j, k);
#else
        scalar::bitonic_step(a, m, j, k);
#endif
        return;
    }
    for (std::size_t base = 0; base < m; base += 2 * j) {
        const bool ascending = (base & k) == 0;
        for (std::size_t off = base; off < base + j; off += 8) {
            const __m512d lo = _mm512_loadu_pd(a + off);
            const __m512d hi = _mm512_loadu_pd(a + off + j);
            const __mmask8 swp = ascending ? _mm512_cmp_pd_mask(lo, hi, _CMP_GT_OQ)
                                           : _mm512_cmp_pd_mask(lo, hi, _CMP_NGT_UQ);
            _mm512_storeu_pd(a + off, _mm512_mask_blend_pd(swp, lo, hi));
            _mm512_storeu_pd(a + off + j, _mm512_mask_blend_pd(swp, hi, lo));
        }
    }
}

/// Native masked compress-store of 4-byte lanes (vcompressps family).
/// Partial chunks use a masked load so no bytes past `lanes` are touched.
inline int compress_store_4(const void* src, std::uint32_t mask, int lanes, void* dst) {
    const auto* in = static_cast<const unsigned char*>(src);
    auto* out = static_cast<unsigned char*>(dst);
    int written = 0;
    for (int l = 0; l < lanes; l += 16) {
        const int take = lanes - l;
        const __mmask16 lm =
            take >= 16 ? static_cast<__mmask16>(0xffffu)
                       : static_cast<__mmask16>((1u << take) - 1u);
        const auto m16 = static_cast<__mmask16>((mask >> l) & lm);
        const __m512i v = _mm512_maskz_loadu_epi32(lm, in + 4u * static_cast<unsigned>(l));
        _mm512_mask_compressstoreu_epi32(out + 4u * static_cast<unsigned>(written), m16, v);
        written += std::popcount(static_cast<std::uint32_t>(m16));
    }
    return written;
}

/// 8-byte-lane native compress-store (vcompresspd family).
inline int compress_store_8(const void* src, std::uint32_t mask, int lanes, void* dst) {
    const auto* in = static_cast<const unsigned char*>(src);
    auto* out = static_cast<unsigned char*>(dst);
    int written = 0;
    for (int l = 0; l < lanes; l += 8) {
        const int take = lanes - l;
        const __mmask8 lm = take >= 8 ? static_cast<__mmask8>(0xffu)
                                      : static_cast<__mmask8>((1u << take) - 1u);
        const auto m8 = static_cast<__mmask8>((mask >> l) & lm);
        const __m512i v = _mm512_maskz_loadu_epi64(lm, in + 8u * static_cast<unsigned>(l));
        _mm512_mask_compressstoreu_epi64(out + 8u * static_cast<unsigned>(written), m8, v);
        written += std::popcount(static_cast<std::uint32_t>(m8));
    }
    return written;
}

}  // namespace avx512
#endif  // GPUSEL_SIMD_AVX512

// ===========================================================================
// Dispatch layer: runtime-tier switch in front of the implementations.
// All functions accept any lane count; fast paths engage on full tiles.
// ===========================================================================

/// Element types the vector tiers implement; anything else takes the
/// scalar reference path unconditionally.
template <typename T>
inline constexpr bool kVectorizable = std::is_same_v<T, float> || std::is_same_v<T, double>;

/// Search-tree traversal over one warp tile.  `leq32` is the tree's leq
/// byte array widened to int32 (0 / nonzero) for vector gathers; `bucket`
/// receives the *bucket index* (leaf-local form, == heap index - (2^h - 1)).
template <typename T>
inline void traverse_tree(const T* nodes, const std::int32_t* leq32, std::int32_t height,
                          const T* elems, int lanes, std::int32_t* bucket) {
    if constexpr (kVectorizable<T>) {
        const Level lvl = active_level();
#if defined(GPUSEL_SIMD_AVX512)
        if (lvl >= Level::avx512 && lanes == kTileLanes) {
            avx512::traverse_tree(nodes, leq32, height, elems, bucket);
            return;
        }
#endif
#if defined(GPUSEL_SIMD_AVX2)
        if (lvl >= Level::avx2 && lanes == kTileLanes) {
            avx2::traverse_tree(nodes, leq32, height, elems, bucket);
            return;
        }
#endif
        (void)lvl;
    }
    scalar::traverse_tree(nodes, leq32, height, elems, lanes, bucket);
}

/// side[l] = elems[l] < pivot ? 0 : 1 (quickselect bipartition).
template <typename T>
inline void bipartition_sides(const T* elems, T pivot, int lanes, std::int32_t* side) {
    if constexpr (kVectorizable<T>) {
#if defined(GPUSEL_SIMD_AVX2)
        if (active_level() >= Level::avx2) {
            avx2::bipartition_sides(elems, pivot, lanes, side);
            return;
        }
#endif
    }
    scalar::bipartition_sides(elems, pivot, lanes, side);
}

/// side[l] = 0 (smaller) / 1 (equal) / 2 (larger) vs. the pivot.
template <typename T>
inline void tripartition_sides(const T* elems, T pivot, int lanes, std::int32_t* side) {
    if constexpr (kVectorizable<T>) {
        const Level lvl = active_level();
#if defined(GPUSEL_SIMD_AVX2)
        if (lvl >= Level::avx2) {
            avx2::tripartition_sides(elems, pivot, lanes, side);
            return;
        }
#endif
#if defined(GPUSEL_SIMD_SSE2)
        if (lvl >= Level::sse2) {
            sse2::tripartition_sides(elems, pivot, lanes, side);
            return;
        }
#endif
        (void)lvl;
    }
    scalar::tripartition_sides(elems, pivot, lanes, side);
}

/// Lane mask of elems[l] < pivot (masked compare; bit l set when true).
template <typename T>
inline std::uint32_t cmp_lt_mask(const T* elems, T pivot, int lanes) {
    if constexpr (kVectorizable<T>) {
        const Level lvl = active_level();
#if defined(GPUSEL_SIMD_AVX2)
        if (lvl >= Level::avx2) return avx2::cmp_lt_mask(elems, pivot, lanes);
#endif
#if defined(GPUSEL_SIMD_SSE2)
        if (lvl >= Level::sse2) return sse2::cmp_lt_mask(elems, pivot, lanes);
#endif
        (void)lvl;
    }
    return scalar::cmp_lt_mask(elems, pivot, lanes);
}

/// Lane mask of elems[l] == pivot.
template <typename T>
inline std::uint32_t cmp_eq_mask(const T* elems, T pivot, int lanes) {
    if constexpr (kVectorizable<T>) {
        const Level lvl = active_level();
#if defined(GPUSEL_SIMD_AVX2)
        if (lvl >= Level::avx2) return avx2::cmp_eq_mask(elems, pivot, lanes);
#endif
#if defined(GPUSEL_SIMD_SSE2)
        if (lvl >= Level::sse2) return sse2::cmp_eq_mask(elems, pivot, lanes);
#endif
        (void)lvl;
    }
    return scalar::cmp_eq_mask(elems, pivot, lanes);
}

/// Lane mask of pivot < elems[l] (NaN lanes compare false, bit clear).
template <typename T>
inline std::uint32_t cmp_gt_mask(const T* elems, T pivot, int lanes) {
    if constexpr (kVectorizable<T>) {
        const Level lvl = active_level();
#if defined(GPUSEL_SIMD_AVX2)
        if (lvl >= Level::avx2) return avx2::cmp_gt_mask(elems, pivot, lanes);
#endif
#if defined(GPUSEL_SIMD_SSE2)
        if (lvl >= Level::sse2) return sse2::cmp_gt_mask(elems, pivot, lanes);
#endif
        (void)lvl;
    }
    return scalar::cmp_gt_mask(elems, pivot, lanes);
}

/// Lane mask of v[l] == x over a byte array (bucket-oracle compare).
inline std::uint32_t byte_eq_mask(const std::uint8_t* v, std::uint8_t x, int lanes) {
    const Level lvl = active_level();
#if defined(GPUSEL_SIMD_AVX2)
    if (lvl >= Level::avx2) return avx2::byte_eq_mask(v, x, lanes);
#endif
#if defined(GPUSEL_SIMD_SSE2)
    if (lvl >= Level::sse2) return sse2::byte_eq_mask(v, x, lanes);
#endif
    (void)lvl;
    return scalar::byte_eq_mask(v, x, lanes);
}

/// Lane mask of v[l] > x (unsigned byte compare).
inline std::uint32_t byte_gt_mask(const std::uint8_t* v, std::uint8_t x, int lanes) {
    const Level lvl = active_level();
#if defined(GPUSEL_SIMD_AVX2)
    if (lvl >= Level::avx2) return avx2::byte_gt_mask(v, x, lanes);
#endif
#if defined(GPUSEL_SIMD_SSE2)
    if (lvl >= Level::sse2) return sse2::byte_gt_mask(v, x, lanes);
#endif
    (void)lvl;
    return scalar::byte_gt_mask(v, x, lanes);
}

/// Expand a lane mask into a bool predicate array.
inline void mask_to_pred(std::uint32_t mask, int lanes, bool* pred) {
    for (int l = 0; l < lanes; ++l) pred[l] = ((mask >> l) & 1u) != 0;
}

/// Element types the compress-store engines handle: any trivially
/// copyable 4- or 8-byte value moves through the integer permute/compress
/// units bit-for-bit (float, int32, double, KeyPayload<float, uint32>).
template <typename T>
inline constexpr bool kCompressible =
    std::is_trivially_copyable_v<T> && (sizeof(T) == 4 || sizeof(T) == 8);

/// Masked compress-store: packs the lanes of `src` whose mask bit is set
/// into a contiguous run at `dst`, preserving lane order; returns the
/// count written.  Mask bits at positions >= lanes are ignored.  AVX-512
/// uses the native vcompress path; AVX2 emulates it with a lookup-table
/// permute (the x86-simd-sort partition trick); SSE2 has no usable
/// shuffle-by-variable, so it falls through to the scalar loop.
template <typename T>
inline int compress_store(const T* src, std::uint32_t mask, int lanes, T* dst) {
    if constexpr (kCompressible<T>) {
        const Level lvl = active_level();
#if defined(GPUSEL_SIMD_AVX512)
        if (lvl >= Level::avx512) {
            if constexpr (sizeof(T) == 4) return avx512::compress_store_4(src, mask, lanes, dst);
            else return avx512::compress_store_8(src, mask, lanes, dst);
        }
#endif
#if defined(GPUSEL_SIMD_AVX2)
        if (lvl >= Level::avx2) {
            if constexpr (sizeof(T) == 4) return avx2::compress_store_4(src, mask, lanes, dst);
            else return avx2::compress_store_8(src, mask, lanes, dst);
        }
#endif
        (void)lvl;
    }
    return scalar::compress_store(src, mask, lanes, dst);
}

/// Reversed compress-store for the right side of a bipartition: selected
/// lanes land at dst_hi[0], dst_hi[-1], ... in lane order (matching the
/// `n - 1 - offset` scatter convention).  Returns the count written.
template <typename T>
inline int compress_store_reverse(const T* src, std::uint32_t mask, int lanes, T* dst_hi) {
    T tmp[kTileLanes];
    const int n = compress_store(src, mask, lanes, tmp);
    for (int i = 0; i < n; ++i) dst_hi[-i] = tmp[i];
    return n;
}

/// out[l] = take_b bit l ? b[l] : a[l].
template <typename T>
inline void blend(const T* a, const T* b, std::uint32_t take_b, int lanes, T* out) {
    scalar::blend(a, b, take_b, lanes, out);
}

/// out[l] = table[idx[l]] (gather from a staged shared-memory array).
template <typename T>
inline void gather(const T* table, const std::int32_t* idx, int lanes, T* out) {
    if constexpr (kVectorizable<T>) {
#if defined(GPUSEL_SIMD_AVX2)
        if (active_level() >= Level::avx2) {
            avx2::gather(table, idx, lanes, out);
            return;
        }
#endif
    }
    scalar::gather(table, idx, lanes, out);
}

/// pred[l] = elems[l] < pivot, expanded to a bool array.
template <typename T>
inline void pred_lt(const T* elems, T pivot, int lanes, bool* pred) {
    const std::uint32_t m = cmp_lt_mask(elems, pivot, lanes);
    for (int l = 0; l < lanes; ++l) pred[l] = ((m >> l) & 1u) != 0;
}

/// pred[l] = pivot < elems[l].
template <typename T>
inline void pred_gt(const T* elems, T pivot, int lanes, bool* pred) {
    // pivot < e has the same NaN behaviour evaluated lane-wise either way.
    for (int l = 0; l < lanes; ++l) pred[l] = pivot < elems[l];
}

/// out[l] = uint8(v[l]) -- oracle-byte narrowing; values must be in [0, 255].
inline void pack_low_bytes(const std::int32_t* v, int lanes, std::uint8_t* out) {
    const Level lvl = active_level();
#if defined(GPUSEL_SIMD_AVX512)
    if (lvl >= Level::avx512) {
        avx512::pack_low_bytes(v, lanes, out);
        return;
    }
#endif
#if defined(GPUSEL_SIMD_AVX2)
    if (lvl >= Level::avx2) {
        avx2::pack_low_bytes(v, lanes, out);
        return;
    }
#endif
#if defined(GPUSEL_SIMD_SSE2)
    if (lvl >= Level::sse2) {
        sse2::pack_low_bytes(v, lanes, out);
        return;
    }
#endif
    (void)lvl;
    scalar::pack_low_bytes(v, lanes, out);
}

/// One (k, j) compare-exchange step of the bitonic network on m (pow2)
/// elements.  Strides >= the vector width run vectorized; the last
/// log2(width) strides take the scalar pair loop.
template <typename T>
inline void bitonic_step(T* a, std::size_t m, std::size_t j, std::size_t k) {
    if constexpr (kVectorizable<T>) {
        const Level lvl = active_level();
#if defined(GPUSEL_SIMD_AVX512)
        if (lvl >= Level::avx512) {
            avx512::bitonic_step(a, m, j, k);
            return;
        }
#endif
#if defined(GPUSEL_SIMD_AVX2)
        if (lvl >= Level::avx2) {
            avx2::bitonic_step(a, m, j, k);
            return;
        }
#endif
#if defined(GPUSEL_SIMD_SSE2)
        if (lvl >= Level::sse2) {
            sse2::bitonic_step(a, m, j, k);
            return;
        }
#endif
        (void)lvl;
    }
    scalar::bitonic_step(a, m, j, k);
}

}  // namespace gpusel::simt::simd
