#include "simt/scan.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "simt/timing.hpp"

namespace gpusel::simt {

namespace {

/// Elements each block owns in the chunked scan.
std::size_t chunk_size(std::size_t n, int grid) {
    return (n + static_cast<std::size_t>(grid) - 1) / static_cast<std::size_t>(grid);
}

}  // namespace

void exclusive_scan_i32(Device& dev, std::span<const std::int32_t> in,
                        std::span<std::int32_t> out, LaunchOrigin origin, int block_dim,
                        int stream) {
    const std::size_t n = in.size();
    if (out.size() != n) throw std::invalid_argument("scan: output size mismatch");
    if (n == 0) return;

    const int grid = suggest_grid(dev.arch(), n, block_dim);
    const std::size_t chunk = chunk_size(n, grid);
    auto block_sums = dev.pooled<std::int32_t>(static_cast<std::size_t>(grid), stream);

    // Phase 1: per-block chunk scans (in-chunk exclusive), block sums out.
    dev.launch("scan_blocks",
               {.grid_dim = grid, .block_dim = block_dim, .origin = origin, .stream = stream},
               [&, n, chunk](BlockCtx& blk) {
                   const auto b = static_cast<std::size_t>(blk.block_idx());
                   const std::size_t lo = b * chunk;
                   if (lo >= n) {
                       blk.st(block_sums.span(), b, 0);
                       blk.charge_global_write(sizeof(std::int32_t));
                       return;
                   }
                   const std::size_t hi = std::min(n, lo + chunk);
                   std::int32_t running = 0;
                   for (std::size_t i = lo; i < hi; ++i) {
                       const std::int32_t v = blk.ld(in, i);
                       blk.st(out, i, running);
                       running += v;
                   }
                   blk.st(block_sums.span(), b, running);
                   const auto len = static_cast<std::uint64_t>(hi - lo);
                   blk.charge_global_read(len * sizeof(std::int32_t));
                   blk.charge_global_write((len + 1) * sizeof(std::int32_t));
                   blk.charge_instr(len);
               });

    // Phase 2: scan of the block sums (grid <= a few hundred: one block).
    dev.launch("scan_sums",
               {.grid_dim = 1, .block_dim = block_dim, .origin = origin, .stream = stream},
               [&, grid](BlockCtx& blk) {
                   std::int32_t running = 0;
                   for (int g = 0; g < grid; ++g) {
                       const auto gi = static_cast<std::size_t>(g);
                       const std::int32_t v = blk.ld(block_sums.span(), gi);
                       blk.st(block_sums.span(), gi, running);
                       running += v;
                   }
                   const auto len = static_cast<std::uint64_t>(grid);
                   blk.charge_global_read(len * sizeof(std::int32_t));
                   blk.charge_global_write(len * sizeof(std::int32_t));
                   blk.charge_instr(len);
               });

    // Phase 3: add each block's offset to its chunk.
    dev.launch("scan_add",
               {.grid_dim = grid, .block_dim = block_dim, .origin = origin, .stream = stream},
               [&, n, chunk](BlockCtx& blk) {
                   const auto b = static_cast<std::size_t>(blk.block_idx());
                   const std::size_t lo = b * chunk;
                   if (lo >= n) return;
                   const std::size_t hi = std::min(n, lo + chunk);
                   const std::int32_t offset = blk.ld(block_sums.span(), b);
                   for (std::size_t i = lo; i < hi; ++i) {
                       blk.st(out, i, blk.ld(out, i) + offset);
                   }
                   const auto len = static_cast<std::uint64_t>(hi - lo);
                   blk.charge_global_read((len + 1) * sizeof(std::int32_t));
                   blk.charge_global_write(len * sizeof(std::int32_t));
                   blk.charge_instr(len);
               });
}

std::int64_t scan_total_i32(Device& dev, std::span<const std::int32_t> in,
                            std::span<std::int32_t> out, LaunchOrigin origin, int block_dim,
                            int stream) {
    if (in.empty()) return 0;
    const std::int32_t last_in = in.back();
    exclusive_scan_i32(dev, in, out, origin, block_dim, stream);
    return static_cast<std::int64_t>(out.back()) + last_in;
}

}  // namespace gpusel::simt
