#include "baselines/radixselect.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "bitonic/bitonic.hpp"
#include "core/count_kernel.hpp"
#include "core/reduce_kernel.hpp"
#include "simt/timing.hpp"

namespace gpusel::baselines {

void RadixSelectConfig::validate() const {
    if (block_dim <= 0 || block_dim % simt::kWarpSize != 0 || block_dim > 1024) {
        throw std::invalid_argument("block_dim must be a positive multiple of 32, at most 1024");
    }
    if (base_case_size < 2 || base_case_size > 4096) {
        throw std::invalid_argument("base_case_size must be in [2, 4096]");
    }
}

std::uint32_t radix_key(float x) noexcept {
    const auto u = std::bit_cast<std::uint32_t>(x);
    // Positive floats: set the sign bit; negatives: flip all bits.
    return (u & 0x80000000u) != 0 ? ~u : (u | 0x80000000u);
}

std::uint64_t radix_key(double x) noexcept {
    const auto u = std::bit_cast<std::uint64_t>(x);
    return (u & 0x8000000000000000ULL) != 0 ? ~u : (u | 0x8000000000000000ULL);
}

namespace {

template <typename T>
using key_t = decltype(radix_key(T{}));

template <typename T>
constexpr int key_bits() noexcept {
    return static_cast<int>(sizeof(key_t<T>) * 8);
}

constexpr std::size_t kBins = std::size_t{1} << kDigitBits;

template <typename T>
std::int32_t digit_of(T x, int shift) noexcept {
    return static_cast<std::int32_t>((radix_key(x) >> shift) & (kBins - 1));
}

/// Digit histogram pass (the RadixSelect `count`).
template <typename T>
int digit_count(simt::Device& dev, std::span<const T> data, int shift,
                std::span<std::int32_t> totals, std::span<std::int32_t> block_counts,
                const RadixSelectConfig& cfg, simt::LaunchOrigin origin) {
    const std::size_t n = data.size();
    const bool shared_mode = cfg.atomic_space == simt::AtomicSpace::shared;
    const int grid = simt::suggest_grid(dev.arch(), n, cfg.block_dim, cfg.unroll);
    dev.launch(
        "radix_count",
        {.grid_dim = grid, .block_dim = cfg.block_dim, .origin = origin, .unroll = cfg.unroll},
        [&, n, shift, shared_mode](simt::BlockCtx& blk) {
            std::span<std::int32_t> counters;
            std::span<std::int32_t> sh;
            if (shared_mode) {
                sh = blk.shared_array<std::int32_t>(kBins);
                std::fill(sh.begin(), sh.end(), 0);
                blk.charge_shared(kBins * sizeof(std::int32_t));
                blk.sync();
                counters = sh;
            } else {
                counters = totals;
            }
            const auto space = shared_mode ? simt::AtomicSpace::shared : simt::AtomicSpace::global;
            blk.warp_tiles(n, [&](simt::WarpCtx& w, std::size_t base, std::size_t) {
                T elems[simt::kWarpSize];
                std::int32_t digit[simt::kWarpSize];
                w.load(data, base, elems);
                for (int l = 0; l < w.lanes(); ++l) digit[l] = digit_of(elems[l], shift);
                w.add_instr(2 * static_cast<std::uint64_t>(w.lanes()));
                if (cfg.warp_aggregation) {
                    w.atomic_add_aggregated(space, counters, digit, kDigitBits);
                } else {
                    w.atomic_add(space, counters, digit);
                }
            });
            if (shared_mode) {
                blk.sync();
                const auto base = static_cast<std::size_t>(blk.block_idx()) * kBins;
                for (std::size_t i = 0; i < kBins; ++i) {
                    blk.st(block_counts, base + i, blk.shared_ld(sh, i));
                }
                blk.charge_shared(kBins * sizeof(std::int32_t));
                blk.charge_global_write(kBins * sizeof(std::int32_t));
            }
        });
    return grid;
}

/// Extraction of the elements whose current digit equals `digit` (the digit
/// is recomputed; RadixSelect stores no oracles).
template <typename T>
void digit_filter(simt::Device& dev, std::span<const T> data, int shift, std::int32_t digit,
                  std::span<T> out, std::span<const std::int32_t> block_offsets,
                  std::span<std::int32_t> cursor, const RadixSelectConfig& cfg,
                  simt::LaunchOrigin origin, int grid_dim) {
    const std::size_t n = data.size();
    const bool shared_mode = cfg.atomic_space == simt::AtomicSpace::shared;
    dev.launch(
        "radix_filter",
        {.grid_dim = grid_dim, .block_dim = cfg.block_dim, .origin = origin,
         .unroll = cfg.unroll},
        [&, n, shift, digit, shared_mode](simt::BlockCtx& blk) {
            std::int32_t sh_cursor = 0;
            std::span<std::int32_t> ctr;
            simt::AtomicSpace space;
            if (shared_mode) {
                const auto idx =
                    static_cast<std::size_t>(blk.block_idx()) * kBins +
                    static_cast<std::size_t>(digit);
                sh_cursor = blk.ld(block_offsets, idx);
                blk.charge_global_read(sizeof(std::int32_t));
                ctr = std::span<std::int32_t>(&sh_cursor, 1);
                space = simt::AtomicSpace::shared;
            } else {
                ctr = cursor.subspan(0, 1);
                space = simt::AtomicSpace::global;
            }
            blk.warp_tiles(n, [&](simt::WarpCtx& w, std::size_t base, std::size_t) {
                T elems[simt::kWarpSize];
                bool pred[simt::kWarpSize];
                const std::int32_t zeros[simt::kWarpSize] = {};
                std::int32_t off[simt::kWarpSize];
                w.load(data, base, elems);
                for (int l = 0; l < w.lanes(); ++l) {
                    pred[l] = digit_of(elems[l], shift) == digit;
                }
                w.add_instr(2 * static_cast<std::uint64_t>(w.lanes()));
                // compaction offsets: always ballot-aggregated (see filter)
                w.fetch_add(space, ctr, zeros, off, /*aggregated=*/true, 1, pred);
                std::uint64_t matched = 0;
                for (int l = 0; l < w.lanes(); ++l) {
                    if (pred[l]) {
                        blk.st(out, static_cast<std::size_t>(off[l]), elems[l]);
                        ++matched;
                    }
                }
                w.block().counters().global_bytes_written += matched * sizeof(T);
            });
        });
}

}  // namespace

template <typename T>
RadixSelectResult<T> radix_select(simt::Device& dev, std::span<const T> input, std::size_t rank,
                                  const RadixSelectConfig& cfg) {
    cfg.validate();
    const std::size_t n0 = input.size();
    if (n0 == 0 || rank >= n0) throw std::out_of_range("rank out of range");

    auto buf = dev.alloc<T>(n0);
    std::copy(input.begin(), input.end(), buf.data());

    RadixSelectResult<T> res;
    const double t0 = dev.elapsed_ns();
    const std::uint64_t l0 = dev.launch_count();
    const bool shared_mode = cfg.atomic_space == simt::AtomicSpace::shared;

    int shift = key_bits<T>() - kDigitBits;
    for (std::size_t level = 0;; ++level) {
        const auto origin = level == 0 ? simt::LaunchOrigin::host : simt::LaunchOrigin::device;
        const std::size_t n = buf.size();
        if (n <= cfg.base_case_size || shift < 0) {
            // shift < 0: all remaining elements share every digit -> equal.
            if (shift < 0) {
                res.value = buf[0];
                break;
            }
            bitonic::sort_on_device<T>(dev, buf.span(), n, origin, cfg.block_dim);
            res.value = buf[rank];
            break;
        }

        auto totals = dev.alloc<std::int32_t>(kBins);
        const int grid = simt::suggest_grid(dev.arch(), n, cfg.block_dim, cfg.unroll);
        simt::DeviceBuffer<std::int32_t> block_counts;
        if (shared_mode) {
            block_counts = dev.alloc<std::int32_t>(static_cast<std::size_t>(grid) * kBins);
        } else {
            core::launch_memset32(dev, totals.span(), origin);
        }
        digit_count<T>(dev, buf.span(), shift, totals.span(), block_counts.span(), cfg, origin);
        if (shared_mode) {
            core::reduce_kernel(dev, block_counts.span(), grid, static_cast<int>(kBins),
                                totals.span(), /*keep_block_offsets=*/true, origin, cfg.block_dim);
        }
        auto prefix = dev.alloc<std::int32_t>(kBins + 1);
        const std::int32_t digit =
            core::select_bucket_kernel(dev, totals.span(), prefix.span(), rank, origin);
        const auto ud = static_cast<std::size_t>(digit);
        ++res.levels;

        const auto bucket_size = static_cast<std::size_t>(totals[ud]);
        auto out = dev.alloc<T>(bucket_size);
        simt::DeviceBuffer<std::int32_t> cursor;
        if (!shared_mode) {
            cursor = dev.alloc<std::int32_t>(1);
            core::launch_memset32(dev, cursor.span(), origin);
        }
        digit_filter<T>(dev, buf.span(), shift, digit, out.span(), block_counts.span(),
                        cursor.span(), cfg, origin, grid);
        rank -= static_cast<std::size_t>(prefix[ud]);
        buf = std::move(out);
        shift -= kDigitBits;
    }

    res.sim_ns = dev.elapsed_ns() - t0;
    res.launches = dev.launch_count() - l0;
    return res;
}

template RadixSelectResult<float> radix_select<float>(simt::Device&, std::span<const float>,
                                                      std::size_t, const RadixSelectConfig&);
template RadixSelectResult<double> radix_select<double>(simt::Device&, std::span<const double>,
                                                        std::size_t, const RadixSelectConfig&);

}  // namespace gpusel::baselines
