#include "baselines/radixselect.hpp"

#include <algorithm>
#include <stdexcept>

#include "bitonic/bitonic.hpp"
#include "core/count_kernel.hpp"
#include "core/radix_kernel.hpp"
#include "core/reduce_kernel.hpp"
#include "simt/timing.hpp"

namespace gpusel::baselines {

void RadixSelectConfig::validate() const {
    if (block_dim <= 0 || block_dim % simt::kWarpSize != 0 || block_dim > 1024) {
        throw std::invalid_argument("block_dim must be a positive multiple of 32, at most 1024");
    }
    if (base_case_size < 2 || base_case_size > 4096) {
        throw std::invalid_argument("base_case_size must be in [2, 4096]");
    }
}

// The key bijection and the digit kernels moved to core/radix_kernel.hpp
// when the radix backend was promoted into the pipeline; this baseline is
// a thin shim over them (one digit per pass = a fused pass of one level),
// kept for the classic fresh-allocation driver below and its goldens.

std::uint32_t radix_key(float x) noexcept { return core::RadixTraits<float>::key(x); }

std::uint64_t radix_key(double x) noexcept { return core::RadixTraits<double>::key(x); }

namespace {

constexpr std::size_t kBins = core::kRadixBins;
static_assert(kDigitBits == core::kRadixDigitBits,
              "baseline digit width must match the core radix kernels");

template <typename T>
constexpr int key_bits() noexcept {
    return core::radix_key_bits<T>();
}

[[nodiscard]] core::RadixLaunchParams launch_params(const RadixSelectConfig& cfg) noexcept {
    core::RadixLaunchParams p;
    p.block_dim = cfg.block_dim;
    p.unroll = cfg.unroll;
    p.atomic_space = cfg.atomic_space;
    p.warp_aggregation = cfg.warp_aggregation;
    return p;
}

/// Digit histogram pass (the RadixSelect `count`): the core fused-histogram
/// kernel at one level, which charges exactly what the classic one-digit
/// pass did.
template <typename T>
int digit_count(simt::Device& dev, std::span<const T> data, int shift,
                std::span<std::int32_t> totals, std::span<std::int32_t> block_counts,
                const RadixSelectConfig& cfg, simt::LaunchOrigin origin) {
    return core::radix_count_fused<T>(dev, data, shift, /*levels=*/1, totals, block_counts,
                                      launch_params(cfg), origin);
}

/// Extraction of the elements whose current digit equals `digit` (the digit
/// is recomputed; RadixSelect stores no oracles).
template <typename T>
void digit_filter(simt::Device& dev, std::span<const T> data, int shift, std::int32_t digit,
                  std::span<T> out, std::span<const std::int32_t> block_offsets,
                  std::span<std::int32_t> cursor, const RadixSelectConfig& cfg,
                  simt::LaunchOrigin origin, int grid_dim) {
    core::radix_filter<T>(dev, data, shift, digit, out, block_offsets, cursor,
                          launch_params(cfg), origin, grid_dim);
}

}  // namespace

template <typename T>
RadixSelectResult<T> radix_select(simt::Device& dev, std::span<const T> input, std::size_t rank,
                                  const RadixSelectConfig& cfg) {
    cfg.validate();
    const std::size_t n0 = input.size();
    if (n0 == 0 || rank >= n0) throw std::out_of_range("rank out of range");

    auto buf = dev.alloc<T>(n0);
    std::copy(input.begin(), input.end(), buf.data());

    RadixSelectResult<T> res;
    const double t0 = dev.elapsed_ns();
    const std::uint64_t l0 = dev.launch_count();
    const bool shared_mode = cfg.atomic_space == simt::AtomicSpace::shared;

    int shift = key_bits<T>() - kDigitBits;
    for (std::size_t level = 0;; ++level) {
        const auto origin = level == 0 ? simt::LaunchOrigin::host : simt::LaunchOrigin::device;
        const std::size_t n = buf.size();
        if (n <= cfg.base_case_size || shift < 0) {
            // shift < 0: all remaining elements share every digit -> equal.
            if (shift < 0) {
                res.value = buf[0];
                break;
            }
            bitonic::sort_on_device<T>(dev, buf.span(), n, origin, cfg.block_dim);
            res.value = buf[rank];
            break;
        }

        auto totals = dev.alloc<std::int32_t>(kBins);
        const int grid = simt::suggest_grid(dev.arch(), n, cfg.block_dim, cfg.unroll);
        simt::DeviceBuffer<std::int32_t> block_counts;
        if (shared_mode) {
            block_counts = dev.alloc<std::int32_t>(static_cast<std::size_t>(grid) * kBins);
        } else {
            core::launch_memset32(dev, totals.span(), origin);
        }
        digit_count<T>(dev, buf.span(), shift, totals.span(), block_counts.span(), cfg, origin);
        if (shared_mode) {
            core::reduce_kernel(dev, block_counts.span(), grid, static_cast<int>(kBins),
                                totals.span(), /*keep_block_offsets=*/true, origin, cfg.block_dim);
        }
        auto prefix = dev.alloc<std::int32_t>(kBins + 1);
        const std::int32_t digit =
            core::select_bucket_kernel(dev, totals.span(), prefix.span(), rank, origin);
        const auto ud = static_cast<std::size_t>(digit);
        ++res.levels;

        const auto bucket_size = static_cast<std::size_t>(totals[ud]);
        auto out = dev.alloc<T>(bucket_size);
        simt::DeviceBuffer<std::int32_t> cursor;
        if (!shared_mode) {
            cursor = dev.alloc<std::int32_t>(1);
            core::launch_memset32(dev, cursor.span(), origin);
        }
        digit_filter<T>(dev, buf.span(), shift, digit, out.span(), block_counts.span(),
                        cursor.span(), cfg, origin, grid);
        rank -= static_cast<std::size_t>(prefix[ud]);
        buf = std::move(out);
        shift -= kDigitBits;
    }

    res.sim_ns = dev.elapsed_ns() - t0;
    res.launches = dev.launch_count() - l0;
    return res;
}

template RadixSelectResult<float> radix_select<float>(simt::Device&, std::span<const float>,
                                                      std::size_t, const RadixSelectConfig&);
template RadixSelectResult<double> radix_select<double>(simt::Device&, std::span<const double>,
                                                        std::size_t, const RadixSelectConfig&);

}  // namespace gpusel::baselines
