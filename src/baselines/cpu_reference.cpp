#include "baselines/cpu_reference.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <stdexcept>

#include "core/float_order.hpp"
#include "core/searchtree.hpp"
#include "data/rng.hpp"

namespace gpusel::baselines {

template <typename T>
CpuSelectResult<T> cpu_nth_element(std::span<const T> input, std::size_t rank) {
    if (rank >= input.size()) throw std::out_of_range("rank out of range");
    std::vector<T> copy(input.begin(), input.end());
    const auto t0 = std::chrono::steady_clock::now();
    // Ordered under the same NaN-largest total order the device pipeline
    // uses (docs/robustness.md), so references agree on NaN-laced inputs.
    std::nth_element(copy.begin(), copy.begin() + static_cast<std::ptrdiff_t>(rank), copy.end(),
                     [](T a, T b) { return core::total_less(a, b); });
    const auto t1 = std::chrono::steady_clock::now();
    return {copy[static_cast<std::size_t>(rank)],
            std::chrono::duration<double, std::nano>(t1 - t0).count()};
}

template <typename T>
T serial_sample_select(std::span<const T> input, std::size_t rank, int num_buckets,
                       int sample_size, std::uint64_t seed) {
    if (rank >= input.size()) throw std::out_of_range("rank out of range");
    std::vector<T> buf(input.begin(), input.end());
    // Same NaN staging pre-pass as the device front-ends: a rank inside the
    // NaN tail answers the quiet-NaN representative, the recursion below
    // only ever sees numeric keys.
    const std::size_t nan_count = core::partition_nans_to_back(std::span<T>(buf));
    if (rank >= buf.size() - nan_count) return core::quiet_nan<T>();
    buf.resize(buf.size() - nan_count);
    data::Xoshiro256 rng(seed);
    const auto b = static_cast<std::size_t>(num_buckets);

    for (std::size_t depth = 0; depth < 128; ++depth) {
        if (buf.size() <= 1024) {
            std::sort(buf.begin(), buf.end());
            return buf[rank];
        }
        // sample splitters
        std::vector<T> sample(static_cast<std::size_t>(sample_size));
        for (auto& s : sample) s = buf[rng.bounded(buf.size())];
        std::sort(sample.begin(), sample.end());
        std::vector<T> splitters(b - 1);
        for (std::size_t j = 1; j < b; ++j) {
            splitters[j - 1] = sample[j * sample.size() / b];
        }
        const auto tree = core::SearchTree<T>::build(std::move(splitters));

        // count + partition (serial)
        std::vector<std::size_t> counts(b, 0);
        std::vector<std::int32_t> oracle(buf.size());
        for (std::size_t i = 0; i < buf.size(); ++i) {
            oracle[i] = tree.find_bucket(buf[i]);
            ++counts[static_cast<std::size_t>(oracle[i])];
        }
        std::size_t prefix = 0;
        std::size_t bucket = 0;
        for (; bucket < b; ++bucket) {
            if (rank < prefix + counts[bucket]) break;
            prefix += counts[bucket];
        }
        if (tree.equality[bucket]) return tree.splitters[bucket - 1];

        std::vector<T> next;
        next.reserve(counts[bucket]);
        for (std::size_t i = 0; i < buf.size(); ++i) {
            if (static_cast<std::size_t>(oracle[i]) == bucket) next.push_back(buf[i]);
        }
        if (next.size() == buf.size()) continue;  // resample (new RNG state)
        rank -= prefix;
        buf = std::move(next);
    }
    throw std::runtime_error("serial_sample_select: depth cap exceeded");
}

template CpuSelectResult<float> cpu_nth_element<float>(std::span<const float>, std::size_t);
template CpuSelectResult<double> cpu_nth_element<double>(std::span<const double>, std::size_t);
template CpuSelectResult<core::ArgPair> cpu_nth_element<core::ArgPair>(
    std::span<const core::ArgPair>, std::size_t);
template float serial_sample_select<float>(std::span<const float>, std::size_t, int, int,
                                           std::uint64_t);
template double serial_sample_select<double>(std::span<const double>, std::size_t, int, int,
                                             std::uint64_t);
template core::ArgPair serial_sample_select<core::ArgPair>(std::span<const core::ArgPair>,
                                                           std::size_t, int, int, std::uint64_t);

}  // namespace gpusel::baselines
