#pragma once
// BucketSelect (Alabi, Blanchard, Gordon & Steinbach 2012): the fastest
// prior GPU selection algorithm the paper compares against in Sec. V-D.
// Instead of sampled splitters, the value range [min, max] is split
// *uniformly*: bucket(x) = floor((x - min) / (max - min) * b).  This makes
// bucket identification a couple of arithmetic instructions (no search
// tree), which is why it wins on uniformly distributed values -- and why it
// degenerates on adversarial distributions whose mass concentrates in a
// tiny fraction of the value range (the recursion shrinks the *range* by b
// per level, not the element count).

#include <cstdint>
#include <span>

#include "core/config.hpp"
#include "simt/device.hpp"

namespace gpusel::baselines {

struct BucketSelectConfig {
    int num_buckets = 256;
    int block_dim = 256;
    int unroll = 1;
    simt::AtomicSpace atomic_space = simt::AtomicSpace::shared;
    bool warp_aggregation = false;
    std::size_t base_case_size = 1024;

    void validate() const;
};

template <typename T>
struct BucketSelectResult {
    T value{};
    std::size_t levels = 0;
    double sim_ns = 0.0;
    std::uint64_t launches = 0;
};

/// Selects the element of the given 0-based rank.
template <typename T>
[[nodiscard]] BucketSelectResult<T> bucket_select(simt::Device& dev, std::span<const T> input,
                                                  std::size_t rank, const BucketSelectConfig& cfg);

extern template BucketSelectResult<float> bucket_select<float>(simt::Device&,
                                                               std::span<const float>,
                                                               std::size_t,
                                                               const BucketSelectConfig&);
extern template BucketSelectResult<double> bucket_select<double>(simt::Device&,
                                                                 std::span<const double>,
                                                                 std::size_t,
                                                                 const BucketSelectConfig&);

}  // namespace gpusel::baselines
