#pragma once
// GPU QuickSelect (Sec. IV-F): the paper's reference point.  A single pivot
// (median of a small bitonic-sorted sample) bipartitions the input with the
// branchless kernel of Fig. 5; the driver recurses into the side containing
// the target rank, with the same shared/global atomic hierarchy and
// warp-aggregation options as SampleSelect.
//
// Robustness note: a pass counts {smaller, equal, larger} so that ranks
// falling among pivot-equal elements terminate immediately -- the
// QuickSelect analogue of SampleSelect's equality buckets, required for
// d << n duplicate-heavy inputs.

#include <cstdint>
#include <span>

#include "core/config.hpp"
#include "simt/device.hpp"
#include "simt/memory.hpp"

namespace gpusel::baselines {

template <typename T>
struct QuickSelectResult {
    T value{};
    /// Bipartition levels executed.
    std::size_t levels = 0;
    /// True if selection ended on a pivot-equal rank.
    bool equality_exit = false;
    double sim_ns = 0.0;
    std::uint64_t launches = 0;
    std::size_t aux_bytes = 0;
};

/// Selects the element of the given 0-based rank.
template <typename T>
[[nodiscard]] QuickSelectResult<T> quick_select(simt::Device& dev, std::span<const T> input,
                                                std::size_t rank,
                                                const core::QuickSelectConfig& cfg);

/// The literal Fig. 5 branchless bipartition kernel: writes elements
/// smaller than the pivot from the left of `out` and the rest from the
/// right (out.size() == data.size()).  Returns nothing; the smaller-side
/// size comes from the counters.  Exposed for the Fig. 9 runtime-breakdown
/// benchmark and for unit tests.
template <typename T>
void bipartition_kernel(simt::Device& dev, std::span<const T> data, T pivot, std::span<T> out,
                        std::span<std::int32_t> counters, const core::QuickSelectConfig& cfg,
                        simt::LaunchOrigin origin);

extern template QuickSelectResult<float> quick_select<float>(simt::Device&,
                                                             std::span<const float>, std::size_t,
                                                             const core::QuickSelectConfig&);
extern template QuickSelectResult<double> quick_select<double>(simt::Device&,
                                                               std::span<const double>,
                                                               std::size_t,
                                                               const core::QuickSelectConfig&);
extern template void bipartition_kernel<float>(simt::Device&, std::span<const float>, float,
                                               std::span<float>, std::span<std::int32_t>,
                                               const core::QuickSelectConfig&,
                                               simt::LaunchOrigin);
extern template void bipartition_kernel<double>(simt::Device&, std::span<const double>, double,
                                                std::span<double>, std::span<std::int32_t>,
                                                const core::QuickSelectConfig&,
                                                simt::LaunchOrigin);

}  // namespace gpusel::baselines
