#pragma once
// CPU reference implementations: std::nth_element (the paper's correctness
// oracle, Sec. V-A) and a serial, simulator-free SampleSelect used to
// cross-check the GPU kernels' bucketing decisions.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/key_payload.hpp"

namespace gpusel::baselines {

/// std::nth_element wrapper with wall-clock timing.
template <typename T>
struct CpuSelectResult {
    T value{};
    double wall_ns = 0.0;
};

template <typename T>
[[nodiscard]] CpuSelectResult<T> cpu_nth_element(std::span<const T> input, std::size_t rank);

/// Serial SampleSelect: same splitter-tree semantics (including equality
/// buckets) as the device implementation, but plain host code.
template <typename T>
[[nodiscard]] T serial_sample_select(std::span<const T> input, std::size_t rank, int num_buckets,
                                     int sample_size, std::uint64_t seed);

extern template CpuSelectResult<float> cpu_nth_element<float>(std::span<const float>, std::size_t);
extern template CpuSelectResult<double> cpu_nth_element<double>(std::span<const double>,
                                                                std::size_t);
extern template CpuSelectResult<core::ArgPair> cpu_nth_element<core::ArgPair>(
    std::span<const core::ArgPair>, std::size_t);
extern template float serial_sample_select<float>(std::span<const float>, std::size_t, int, int,
                                                  std::uint64_t);
extern template double serial_sample_select<double>(std::span<const double>, std::size_t, int,
                                                    int, std::uint64_t);
extern template core::ArgPair serial_sample_select<core::ArgPair>(std::span<const core::ArgPair>,
                                                                  std::size_t, int, int,
                                                                  std::uint64_t);

}  // namespace gpusel::baselines
