#include "baselines/bucketselect.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "bitonic/bitonic.hpp"
#include "core/count_kernel.hpp"
#include "core/reduce_kernel.hpp"
#include "simt/timing.hpp"

namespace gpusel::baselines {

void BucketSelectConfig::validate() const {
    if (num_buckets < 2 || num_buckets > 4096) {
        throw std::invalid_argument("num_buckets must be in [2, 4096]");
    }
    if (block_dim <= 0 || block_dim % simt::kWarpSize != 0 || block_dim > 1024) {
        throw std::invalid_argument("block_dim must be a positive multiple of 32, at most 1024");
    }
    if (base_case_size < 2 || base_case_size > 4096) {
        throw std::invalid_argument("base_case_size must be in [2, 4096]");
    }
}

namespace {

/// Arithmetic bucket index for uniform value-range splitting.
template <typename T>
std::int32_t value_bucket(T x, T lo, double inv_width, std::int32_t b) noexcept {
    const double rel = (static_cast<double>(x) - static_cast<double>(lo)) * inv_width;
    auto i = static_cast<std::int32_t>(rel);
    return std::clamp(i, std::int32_t{0}, b - 1);
}

/// Min/max reduction kernel (needed to define the value range).
template <typename T>
std::pair<T, T> minmax_kernel(simt::Device& dev, std::span<const T> data,
                              const BucketSelectConfig& cfg, simt::LaunchOrigin origin) {
    const std::size_t n = data.size();
    const int grid = simt::suggest_grid(dev.arch(), n, cfg.block_dim);
    std::vector<T> lo(static_cast<std::size_t>(grid), data[0]);
    std::vector<T> hi(static_cast<std::size_t>(grid), data[0]);
    // lint-kernels: allow(R6) -- single-stream baseline, runs entirely on the default stream
    dev.launch("minmax", {.grid_dim = grid, .block_dim = cfg.block_dim, .origin = origin},
               [&, n](simt::BlockCtx& blk) {
                   T bl = data[0];
                   T bh = data[0];
                   blk.warp_tiles(n, [&](simt::WarpCtx& w, std::size_t base, std::size_t) {
                       T elems[simt::kWarpSize];
                       w.load(data, base, elems);
                       for (int l = 0; l < w.lanes(); ++l) {
                           bl = std::min(bl, elems[l]);
                           bh = std::max(bh, elems[l]);
                       }
                       w.add_instr(2 * static_cast<std::uint64_t>(w.lanes()));
                   });
                   lo[static_cast<std::size_t>(blk.block_idx())] = bl;
                   hi[static_cast<std::size_t>(blk.block_idx())] = bh;
                   blk.charge_global_write(2 * sizeof(T));
               });
    // Final reduction of the per-block partials (tiny second kernel).
    T l = lo[0];
    T h = hi[0];
    // lint-kernels: allow(R6) -- single-stream baseline, runs entirely on the default stream
    dev.launch("minmax_final", {.grid_dim = 1, .block_dim = 32, .origin = origin},
               [&](simt::BlockCtx& blk) {
                   for (std::size_t i = 0; i < lo.size(); ++i) {
                       l = std::min(l, lo[i]);
                       h = std::max(h, hi[i]);
                   }
                   blk.charge_global_read(2 * lo.size() * sizeof(T));
                   blk.charge_instr(2 * lo.size());
               });
    return {l, h};
}

/// Histogram over uniform value-range buckets.
template <typename T>
int range_count(simt::Device& dev, std::span<const T> data, T lo, double inv_width,
                std::span<std::int32_t> totals, std::span<std::int32_t> block_counts,
                const BucketSelectConfig& cfg, simt::LaunchOrigin origin) {
    const std::size_t n = data.size();
    const auto b = static_cast<std::int32_t>(cfg.num_buckets);
    const bool shared_mode = cfg.atomic_space == simt::AtomicSpace::shared;
    const int grid = simt::suggest_grid(dev.arch(), n, cfg.block_dim, cfg.unroll);
    int bits = 0;
    while ((1 << bits) < cfg.num_buckets) ++bits;
    // lint-kernels: allow(R6) -- single-stream baseline, runs entirely on the default stream
    dev.launch(
        "bucket_count",
        {.grid_dim = grid, .block_dim = cfg.block_dim, .origin = origin, .unroll = cfg.unroll},
        [&, n, lo, inv_width, b, bits, shared_mode](simt::BlockCtx& blk) {
            std::span<std::int32_t> counters;
            std::span<std::int32_t> sh;
            if (shared_mode) {
                sh = blk.shared_array<std::int32_t>(static_cast<std::size_t>(b));
                std::fill(sh.begin(), sh.end(), 0);
                blk.charge_shared(static_cast<std::size_t>(b) * sizeof(std::int32_t));
                blk.sync();
                counters = sh;
            } else {
                counters = totals;
            }
            const auto space = shared_mode ? simt::AtomicSpace::shared : simt::AtomicSpace::global;
            blk.warp_tiles(n, [&](simt::WarpCtx& w, std::size_t base, std::size_t) {
                T elems[simt::kWarpSize];
                std::int32_t bucket[simt::kWarpSize];
                w.load(data, base, elems);
                for (int l = 0; l < w.lanes(); ++l) {
                    bucket[l] = value_bucket(elems[l], lo, inv_width, b);
                }
                // the paper notes this index arithmetic is much simpler
                // than the search-tree traversal: ~3 instructions
                w.add_instr(3 * static_cast<std::uint64_t>(w.lanes()));
                if (cfg.warp_aggregation) {
                    w.atomic_add_aggregated(space, counters, bucket, bits);
                } else {
                    w.atomic_add(space, counters, bucket);
                }
            });
            if (shared_mode) {
                blk.sync();
                const auto base =
                    static_cast<std::size_t>(blk.block_idx()) * static_cast<std::size_t>(b);
                for (std::size_t i = 0; i < static_cast<std::size_t>(b); ++i) {
                    blk.st(block_counts, base + i, blk.shared_ld(sh, i));
                }
                blk.charge_shared(static_cast<std::size_t>(b) * sizeof(std::int32_t));
                blk.charge_global_write(static_cast<std::size_t>(b) * sizeof(std::int32_t));
            }
        });
    return grid;
}

/// Extraction of one value-range bucket (bucket index recomputed
/// arithmetically -- BucketSelect stores no oracles).
template <typename T>
void range_filter(simt::Device& dev, std::span<const T> data, T lo, double inv_width,
                  std::int32_t bucket, std::span<T> out,
                  std::span<const std::int32_t> block_offsets, std::span<std::int32_t> cursor,
                  const BucketSelectConfig& cfg, simt::LaunchOrigin origin, int grid_dim) {
    const std::size_t n = data.size();
    const auto b = static_cast<std::int32_t>(cfg.num_buckets);
    const bool shared_mode = cfg.atomic_space == simt::AtomicSpace::shared;
    // lint-kernels: allow(R6) -- single-stream baseline, runs entirely on the default stream
    dev.launch(
        "bucket_filter",
        {.grid_dim = grid_dim, .block_dim = cfg.block_dim, .origin = origin,
         .unroll = cfg.unroll},
        [&, n, lo, inv_width, bucket, b, shared_mode](simt::BlockCtx& blk) {
            std::int32_t sh_cursor = 0;
            std::span<std::int32_t> ctr;
            simt::AtomicSpace space;
            if (shared_mode) {
                const auto idx = static_cast<std::size_t>(blk.block_idx()) *
                                     static_cast<std::size_t>(b) +
                                 static_cast<std::size_t>(bucket);
                sh_cursor = blk.ld(block_offsets, idx);
                blk.charge_global_read(sizeof(std::int32_t));
                ctr = std::span<std::int32_t>(&sh_cursor, 1);
                space = simt::AtomicSpace::shared;
            } else {
                ctr = cursor.subspan(0, 1);
                space = simt::AtomicSpace::global;
            }
            blk.warp_tiles(n, [&](simt::WarpCtx& w, std::size_t base, std::size_t) {
                T elems[simt::kWarpSize];
                bool pred[simt::kWarpSize];
                const std::int32_t zeros[simt::kWarpSize] = {};
                std::int32_t off[simt::kWarpSize];
                w.load(data, base, elems);
                for (int l = 0; l < w.lanes(); ++l) {
                    pred[l] = value_bucket(elems[l], lo, inv_width, b) == bucket;
                }
                w.add_instr(3 * static_cast<std::uint64_t>(w.lanes()));
                // compaction offsets: always ballot-aggregated (see filter)
                w.fetch_add(space, ctr, zeros, off, /*aggregated=*/true, 1, pred);
                std::uint64_t matched = 0;
                for (int l = 0; l < w.lanes(); ++l) {
                    if (pred[l]) {
                        blk.st(out, static_cast<std::size_t>(off[l]), elems[l]);
                        ++matched;
                    }
                }
                w.block().counters().global_bytes_written += matched * sizeof(T);
            });
        });
}

}  // namespace

template <typename T>
BucketSelectResult<T> bucket_select(simt::Device& dev, std::span<const T> input, std::size_t rank,
                                    const BucketSelectConfig& cfg) {
    cfg.validate();
    const std::size_t n0 = input.size();
    if (n0 == 0 || rank >= n0) throw std::out_of_range("rank out of range");

    auto buf = dev.alloc<T>(n0);
    std::copy(input.begin(), input.end(), buf.data());

    BucketSelectResult<T> res;
    const double t0 = dev.elapsed_ns();
    const std::uint64_t l0 = dev.launch_count();
    const auto b = static_cast<std::size_t>(cfg.num_buckets);
    const bool shared_mode = cfg.atomic_space == simt::AtomicSpace::shared;

    for (std::size_t level = 0;; ++level) {
        const auto origin = level == 0 ? simt::LaunchOrigin::host : simt::LaunchOrigin::device;
        const std::size_t n = buf.size();
        if (n <= cfg.base_case_size) {
            bitonic::sort_on_device<T>(dev, buf.span(), n, origin, cfg.block_dim);
            res.value = buf[rank];
            break;
        }
        if (level > 64) {
            // The value range halves at least 8x per level; for IEEE floats
            // this cannot recur 64 times without separating the elements.
            throw std::logic_error("bucket_select: range refinement stalled");
        }

        const auto [lo, hi] = minmax_kernel<T>(dev, buf.span(), cfg, origin);
        if (!(lo < hi)) {  // all elements equal (or range underflow)
            res.value = lo;
            break;
        }
        const double width = (static_cast<double>(hi) - static_cast<double>(lo)) /
                             static_cast<double>(cfg.num_buckets);
        const double inv_width = 1.0 / width;

        auto totals = dev.alloc<std::int32_t>(b);
        const int grid = simt::suggest_grid(dev.arch(), n, cfg.block_dim, cfg.unroll);
        simt::DeviceBuffer<std::int32_t> block_counts;
        if (shared_mode) {
            block_counts = dev.alloc<std::int32_t>(static_cast<std::size_t>(grid) * b);
        } else {
            core::launch_memset32(dev, totals.span(), origin);
        }
        range_count<T>(dev, buf.span(), lo, inv_width, totals.span(), block_counts.span(), cfg,
                       origin);
        if (shared_mode) {
            core::reduce_kernel(dev, block_counts.span(), grid, cfg.num_buckets, totals.span(),
                                /*keep_block_offsets=*/true, origin, cfg.block_dim);
        }
        auto prefix = dev.alloc<std::int32_t>(b + 1);
        const std::int32_t bucket =
            core::select_bucket_kernel(dev, totals.span(), prefix.span(), rank, origin);
        const auto ub = static_cast<std::size_t>(bucket);
        ++res.levels;

        const auto bucket_size = static_cast<std::size_t>(totals[ub]);
        auto out = dev.alloc<T>(bucket_size);
        simt::DeviceBuffer<std::int32_t> cursor;
        if (!shared_mode) {
            cursor = dev.alloc<std::int32_t>(1);
            core::launch_memset32(dev, cursor.span(), origin);
        }
        range_filter<T>(dev, buf.span(), lo, inv_width, bucket, out.span(), block_counts.span(),
                        cursor.span(), cfg, origin, grid);
        rank -= static_cast<std::size_t>(prefix[ub]);
        buf = std::move(out);
    }

    res.sim_ns = dev.elapsed_ns() - t0;
    res.launches = dev.launch_count() - l0;
    return res;
}

template BucketSelectResult<float> bucket_select<float>(simt::Device&, std::span<const float>,
                                                        std::size_t, const BucketSelectConfig&);
template BucketSelectResult<double> bucket_select<double>(simt::Device&, std::span<const double>,
                                                          std::size_t, const BucketSelectConfig&);

}  // namespace gpusel::baselines
