#pragma once
// RadixSelect (Alabi et al. 2012): MSD radix selection over the
// order-preserving bit representation of IEEE floats.  Digit histograms
// (one radix-`kDigitBits` digit per level, most significant first) replace
// sampled splitters; the level count is fixed by the key width rather than
// the data, making the algorithm fully distribution-independent -- at the
// cost of always running width/digit-bits passes.

#include <cstdint>
#include <span>

#include "core/config.hpp"
#include "simt/device.hpp"

namespace gpusel::baselines {

/// Radix digit width; 8 bits = 256 histogram bins per pass.
inline constexpr int kDigitBits = 8;

struct RadixSelectConfig {
    int block_dim = 256;
    int unroll = 1;
    simt::AtomicSpace atomic_space = simt::AtomicSpace::shared;
    bool warp_aggregation = false;
    std::size_t base_case_size = 1024;

    void validate() const;
};

template <typename T>
struct RadixSelectResult {
    T value{};
    std::size_t levels = 0;
    double sim_ns = 0.0;
    std::uint64_t launches = 0;
};

/// Selects the element of the given 0-based rank.  T is float or double
/// (NaN-free inputs, like all algorithms in this library).
template <typename T>
[[nodiscard]] RadixSelectResult<T> radix_select(simt::Device& dev, std::span<const T> input,
                                                std::size_t rank, const RadixSelectConfig& cfg);

/// Order-preserving bijection from float/double to an unsigned key:
/// x < y  <=>  key(x) < key(y).  Exposed for tests.
[[nodiscard]] std::uint32_t radix_key(float x) noexcept;
[[nodiscard]] std::uint64_t radix_key(double x) noexcept;

extern template RadixSelectResult<float> radix_select<float>(simt::Device&,
                                                             std::span<const float>, std::size_t,
                                                             const RadixSelectConfig&);
extern template RadixSelectResult<double> radix_select<double>(simt::Device&,
                                                               std::span<const double>,
                                                               std::size_t,
                                                               const RadixSelectConfig&);

}  // namespace gpusel::baselines
