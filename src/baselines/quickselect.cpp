#include "baselines/quickselect.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <vector>

#include "bitonic/bitonic.hpp"
#include "core/count_kernel.hpp"
#include "core/reduce_kernel.hpp"
#include "data/rng.hpp"
#include "simt/simd.hpp"
#include "simt/timing.hpp"

namespace gpusel::baselines {

namespace {

/// Tripartition counter layout: padded to 4 for 2-bit warp aggregation.
constexpr std::size_t kSides = 4;
constexpr std::int32_t kSmaller = 0;
constexpr std::int32_t kEqual = 1;
constexpr std::int32_t kLarger = 2;

/// Pivot selection (Sec. IV-D): bitonic-sort a small random sample in
/// shared memory, take the median.
template <typename T>
T pivot_kernel(simt::Device& dev, std::span<const T> data, const core::QuickSelectConfig& cfg,
               simt::LaunchOrigin origin, std::uint64_t salt) {
    const auto s = static_cast<std::size_t>(cfg.pivot_sample_size);
    T pivot{};
    // lint-kernels: allow(R6) -- single-stream baseline, runs entirely on the default stream
    dev.launch("pivot", {.grid_dim = 1, .block_dim = cfg.block_dim, .origin = origin},
               [&](simt::BlockCtx& blk) {
                   const std::size_t m = bitonic::next_pow2(s);
                   auto sh = blk.shared_array<T>(m);
                   data::Xoshiro256 rng(cfg.seed ^ (salt * 0x9e3779b97f4a7c15ULL));
                   std::vector<std::size_t> idx(s);
                   for (auto& i : idx) i = rng.bounded(data.size());
                   blk.charge_instr(s);
                   blk.warp_tiles(s, [&](simt::WarpCtx& w, std::size_t base, std::size_t) {
                       T regs[simt::kWarpSize];
                       w.gather(data, idx.data() + base, regs);
                       for (int l = 0; l < w.lanes(); ++l) {
                           blk.shared_st(sh, base + static_cast<std::size_t>(l), regs[l]);
                       }
                       w.touch_shared(static_cast<std::uint64_t>(w.lanes()) * sizeof(T));
                   });
                   bitonic::sort_in_shared(blk, sh, s);
                   pivot = blk.shared_ld(sh, s / 2);
                   blk.charge_shared(sizeof(T));
                   blk.charge_global_write(sizeof(T));
               });
    return pivot;
}

/// Tripartition counting pass: {smaller, equal, larger} histogram with the
/// configured atomic flavour (the QuickSelect analogue of `count`).
template <typename T>
int tripartition_count(simt::Device& dev, std::span<const T> data, T pivot,
                       std::span<std::int32_t> totals, std::span<std::int32_t> block_counts,
                       const core::QuickSelectConfig& cfg, simt::LaunchOrigin origin) {
    const std::size_t n = data.size();
    const bool shared_mode = cfg.atomic_space == simt::AtomicSpace::shared;
    const int grid = simt::suggest_grid(dev.arch(), n, cfg.block_dim, cfg.unroll);
    // lint-kernels: allow(R6) -- single-stream baseline, runs entirely on the default stream
    dev.launch(
        "quick_count",
        {.grid_dim = grid, .block_dim = cfg.block_dim, .origin = origin, .unroll = cfg.unroll},
        [&, n, pivot, shared_mode](simt::BlockCtx& blk) {
            std::span<std::int32_t> counters;
            std::span<std::int32_t> sh;
            if (shared_mode) {
                sh = blk.shared_array<std::int32_t>(kSides);
                std::fill(sh.begin(), sh.end(), 0);
                blk.charge_shared(kSides * sizeof(std::int32_t));
                blk.sync();
                counters = sh;
            } else {
                counters = totals;
            }
            const auto space = shared_mode ? simt::AtomicSpace::shared : simt::AtomicSpace::global;
            blk.warp_tiles(n, [&](simt::WarpCtx& w, std::size_t base, std::size_t) {
                T elems[simt::kWarpSize];
                std::int32_t side[simt::kWarpSize];
                w.load(data, base, elems);
                // side: kSmaller / kEqual / kLarger (0/1/2), vectorized
                simt::simd::tripartition_sides(elems, pivot, w.lanes(), side);
                w.add_instr(2 * static_cast<std::uint64_t>(w.lanes()));
                if (cfg.warp_aggregation) {
                    w.atomic_add_aggregated(space, counters, side, /*index_bits=*/2);
                } else {
                    w.atomic_add(space, counters, side);
                }
            });
            if (shared_mode) {
                blk.sync();
                const auto base = static_cast<std::size_t>(blk.block_idx()) * kSides;
                for (std::size_t i = 0; i < kSides; ++i) {
                    blk.st(block_counts, base + i, blk.shared_ld(sh, i));
                }
                blk.charge_shared(kSides * sizeof(std::int32_t));
                blk.charge_global_write(kSides * sizeof(std::int32_t));
            }
        });
    return grid;
}

/// Predicated one-sided extraction: copies the elements of `side`
/// (kSmaller: x < pivot, kLarger: x > pivot) compactly into `out`.
template <typename T>
void extract_side(simt::Device& dev, std::span<const T> data, T pivot, std::int32_t side,
                  std::span<T> out, std::span<const std::int32_t> block_offsets,
                  std::span<std::int32_t> cursor, const core::QuickSelectConfig& cfg,
                  simt::LaunchOrigin origin, int grid_dim) {
    const std::size_t n = data.size();
    const bool shared_mode = cfg.atomic_space == simt::AtomicSpace::shared;
    // lint-kernels: allow(R6) -- single-stream baseline, runs entirely on the default stream
    dev.launch(
        "quick_filter",
        {.grid_dim = grid_dim, .block_dim = cfg.block_dim, .origin = origin,
         .unroll = cfg.unroll},
        [&, n, pivot, side, shared_mode](simt::BlockCtx& blk) {
            std::int32_t sh_cursor = 0;
            std::span<std::int32_t> ctr;
            simt::AtomicSpace space;
            if (shared_mode) {
                const auto idx = static_cast<std::size_t>(blk.block_idx()) * kSides +
                                 static_cast<std::size_t>(side);
                sh_cursor = blk.ld(block_offsets, idx);
                blk.charge_global_read(sizeof(std::int32_t));
                blk.charge_shared(sizeof(std::int32_t));
                ctr = std::span<std::int32_t>(&sh_cursor, 1);
                space = simt::AtomicSpace::shared;
            } else {
                ctr = cursor.subspan(0, 1);
                space = simt::AtomicSpace::global;
            }
            blk.warp_tiles(n, [&](simt::WarpCtx& w, std::size_t base, std::size_t) {
                T elems[simt::kWarpSize];
                bool pred[simt::kWarpSize];
                const std::int32_t zeros[simt::kWarpSize] = {};
                std::int32_t off[simt::kWarpSize];
                w.load(data, base, elems);
                const std::uint32_t mask =
                    side == kSmaller ? simt::simd::cmp_lt_mask(elems, pivot, w.lanes())
                                     : simt::simd::cmp_gt_mask(elems, pivot, w.lanes());
                simt::simd::mask_to_pred(mask, w.lanes(), pred);
                w.add_instr(static_cast<std::uint64_t>(w.lanes()));
                // compaction offsets: always ballot-aggregated (see filter),
                // so matched lanes get lane-ordered consecutive slots and
                // the scatter is one masked compress-store tile.
                w.fetch_add(space, ctr, zeros, off, /*aggregated=*/true, /*index_bits=*/1, pred);
                if (mask != 0) {
                    const int lead = std::countr_zero(mask);
                    w.compress_store(out, static_cast<std::size_t>(off[lead]), mask, elems);
                }
            });
        });
}

}  // namespace

template <typename T>
void bipartition_kernel(simt::Device& dev, std::span<const T> data, T pivot, std::span<T> out,
                        std::span<std::int32_t> counters, const core::QuickSelectConfig& cfg,
                        simt::LaunchOrigin origin) {
    // The literal Fig. 5 kernel: both sides written in one pass.  Placement
    // cursors live in global memory (counters[0] = left count, counters[1] =
    // right count); shared-atomic configurations behave like the
    // warp-aggregated global variant (one update per warp per side).
    const std::size_t n = data.size();
    if (out.size() != n) throw std::invalid_argument("out must match input size");
    if (counters.size() < 2) throw std::invalid_argument("need two cursors");
    const bool aggregate =
        cfg.warp_aggregation || cfg.atomic_space == simt::AtomicSpace::shared;
    const int grid = simt::suggest_grid(dev.arch(), n, cfg.block_dim, cfg.unroll);
    // lint-kernels: allow(R6) -- single-stream baseline, runs entirely on the default stream
    dev.launch(
        "bipartition",
        {.grid_dim = grid, .block_dim = cfg.block_dim, .origin = origin, .unroll = cfg.unroll},
        [&, n, pivot, aggregate](simt::BlockCtx& blk) {
            blk.warp_tiles(n, [&](simt::WarpCtx& w, std::size_t base, std::size_t) {
                T elems[simt::kWarpSize];
                std::int32_t which[simt::kWarpSize];
                std::int32_t off[simt::kWarpSize];
                w.load(data, base, elems);
                simt::simd::bipartition_sides(elems, pivot, w.lanes(), which);
                w.add_instr(static_cast<std::uint64_t>(w.lanes()));
                w.fetch_add(simt::AtomicSpace::global, counters.subspan(0, 2), which, off,
                            aggregate, /*index_bits=*/1);
                if (aggregate) {
                    // Aggregated fetch_add hands each side lane-ordered
                    // consecutive offsets: the left side is a forward
                    // compress-store run, the right side (n - 1 - off) a
                    // reversed one.  Charges sum to the legacy
                    // lanes * sizeof(T) warp-contiguous write.
                    const std::uint32_t lmask =
                        simt::simd::cmp_lt_mask(elems, pivot, w.lanes());
                    const std::uint32_t lane_all =
                        w.lanes() >= 32 ? ~0u : ((1u << w.lanes()) - 1u);
                    const std::uint32_t rmask = lane_all & ~lmask;
                    if (lmask != 0) {
                        const int lo = std::countr_zero(lmask);
                        w.compress_store(out, static_cast<std::size_t>(off[lo]), lmask, elems);
                    }
                    if (rmask != 0) {
                        const int ro = std::countr_zero(rmask);
                        w.compress_store_rev(out, n - 1 - static_cast<std::size_t>(off[ro]),
                                             rmask, elems);
                    }
                } else {
                    // Per-lane global cursors: concurrent blocks interleave
                    // their fetch_adds, so offsets are not warp-contiguous
                    // and the scatter must stay a per-lane loop.
                    // lint-kernels: allow(R5)
                    for (int l = 0; l < w.lanes(); ++l) {
                        const auto o = which[l] == 0
                                           ? static_cast<std::size_t>(off[l])
                                           : n - 1 - static_cast<std::size_t>(off[l]);
                        blk.st(out, o, elems[l]);
                    }
                    // two write fronts, each warp-contiguous
                    w.block().counters().global_bytes_written +=
                        static_cast<std::uint64_t>(w.lanes()) * sizeof(T);
                }
            });
        });
}

template <typename T>
QuickSelectResult<T> quick_select(simt::Device& dev, std::span<const T> input, std::size_t rank,
                                  const core::QuickSelectConfig& cfg) {
    cfg.validate();
    const std::size_t n0 = input.size();
    if (n0 == 0 || rank >= n0) throw std::out_of_range("rank out of range");

    auto buf = dev.alloc<T>(n0);
    std::copy(input.begin(), input.end(), buf.data());
    dev.tracker().set_baseline();

    QuickSelectResult<T> res;
    const double t0 = dev.elapsed_ns();
    const std::uint64_t l0 = dev.launch_count();
    const bool shared_mode = cfg.atomic_space == simt::AtomicSpace::shared;

    for (std::size_t level = 0;; ++level) {
        const auto origin = level == 0 ? simt::LaunchOrigin::host : simt::LaunchOrigin::device;
        const std::size_t n = buf.size();
        if (n <= cfg.base_case_size) {
            bitonic::sort_on_device<T>(dev, buf.span(), n, origin, cfg.block_dim);
            res.value = buf[rank];
            break;
        }
        const T pivot = pivot_kernel<T>(dev, buf.span(), cfg, origin, level * 1009);

        auto totals = dev.alloc<std::int32_t>(kSides);
        const int grid = simt::suggest_grid(dev.arch(), n, cfg.block_dim, cfg.unroll);
        simt::DeviceBuffer<std::int32_t> block_counts;
        if (shared_mode) {
            block_counts = dev.alloc<std::int32_t>(static_cast<std::size_t>(grid) * kSides);
        } else {
            core::launch_memset32(dev, totals.span(), origin);
        }
        tripartition_count<T>(dev, buf.span(), pivot, totals.span(), block_counts.span(), cfg,
                              origin);
        if (shared_mode) {
            core::reduce_kernel(dev, block_counts.span(), grid, static_cast<int>(kSides),
                                totals.span(), /*keep_block_offsets=*/true, origin, cfg.block_dim);
        }
        const auto smaller = static_cast<std::size_t>(totals[kSmaller]);
        const auto equal = static_cast<std::size_t>(totals[kEqual]);
        ++res.levels;

        std::int32_t side;
        std::size_t out_size;
        if (rank < smaller) {
            side = kSmaller;
            out_size = smaller;
        } else if (rank < smaller + equal) {
            res.value = pivot;
            res.equality_exit = true;
            break;
        } else {
            side = kLarger;
            out_size = static_cast<std::size_t>(totals[kLarger]);
            rank -= smaller + equal;
        }

        auto out = dev.alloc<T>(out_size);
        simt::DeviceBuffer<std::int32_t> cursor;
        if (!shared_mode) {
            cursor = dev.alloc<std::int32_t>(1);
            core::launch_memset32(dev, cursor.span(), origin);
        }
        extract_side<T>(dev, buf.span(), pivot, side, out.span(), block_counts.span(),
                        cursor.span(), cfg, origin, grid);
        buf = std::move(out);
    }

    res.sim_ns = dev.elapsed_ns() - t0;
    res.launches = dev.launch_count() - l0;
    res.aux_bytes = dev.tracker().peak_above_baseline();
    return res;
}

template QuickSelectResult<float> quick_select<float>(simt::Device&, std::span<const float>,
                                                      std::size_t,
                                                      const core::QuickSelectConfig&);
template QuickSelectResult<double> quick_select<double>(simt::Device&, std::span<const double>,
                                                        std::size_t,
                                                        const core::QuickSelectConfig&);
template void bipartition_kernel<float>(simt::Device&, std::span<const float>, float,
                                        std::span<float>, std::span<std::int32_t>,
                                        const core::QuickSelectConfig&, simt::LaunchOrigin);
template void bipartition_kernel<double>(simt::Device&, std::span<const double>, double,
                                         std::span<double>, std::span<std::int32_t>,
                                         const core::QuickSelectConfig&, simt::LaunchOrigin);

}  // namespace gpusel::baselines
