#pragma once
// Bitonic sorting network (Batcher 1968), Sec. IV-D of the paper.
//
// Selection needs to sort small element sets in three places: splitter
// sample sorting in SampleSelect, pivot selection in QuickSelect, and the
// recursion base case of both algorithms.  The paper implements a bitonic
// sorting kernel operating in shared memory, restricted to a single thread
// block because the network needs explicit synchronization between steps.
//
// We provide the same: `sort_small_kernel` loads the data into block shared
// memory, runs the O(n log^2 n) network (charging compare-exchange work,
// shared traffic and one block barrier per network step), and writes the
// sorted data back.  A plain host-side `sort_network` reference exists for
// tests, exercising the identical network schedule without instrumentation.

#include <cmath>
#include <cstddef>
#include <limits>
#include <span>
#include <stdexcept>
#include <vector>

#include "simt/block.hpp"
#include "simt/device.hpp"
#include "simt/simd.hpp"

namespace gpusel::bitonic {

/// Largest input the single-block sorting kernel accepts.  Must stay within
/// one block's shared memory for doubles on the smaller (Kepler) preset:
/// 4096 * 8 B = 32 KiB <= 48 KiB.
inline constexpr std::size_t kMaxSortSize = 4096;

/// Smallest power of two >= n.
[[nodiscard]] constexpr std::size_t next_pow2(std::size_t n) noexcept {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
}

/// Number of compare-exchange steps (== barriers) of the network on
/// pow2-size m: k(k+1)/2 for m == 2^k.
[[nodiscard]] constexpr int network_steps(std::size_t m) noexcept {
    int k = 0;
    while ((std::size_t{1} << k) < m) ++k;
    return k * (k + 1) / 2;
}

namespace detail {

/// Runs the bitonic network schedule over `m` (power-of-two) elements,
/// invoking step(stride_j, block_k) ordering decisions via the canonical
/// ij-partner formulation.  Used by both the host reference and the kernel;
/// each (k, j) step executes through the simd lane-vector layer (strides
/// narrower than the vector width fall back to the scalar pair loop), with
/// identical comparison/swap decisions on every tier.
template <typename T>
void run_network(T* a, std::size_t m) {
    for (std::size_t k = 2; k <= m; k <<= 1) {
        for (std::size_t j = k >> 1; j > 0; j >>= 1) {
            simt::simd::bitonic_step(a, m, j, k);
        }
    }
}

}  // namespace detail

/// Host reference: sorts `data` ascending with the same network schedule the
/// kernel uses (padding to a power of two with +infinity sentinels).
template <typename T>
void sort_network(std::span<T> data) {
    const std::size_t n = data.size();
    if (n <= 1) return;
    const std::size_t m = next_pow2(n);
    std::vector<T> buf(m, std::numeric_limits<T>::infinity());
    std::copy(data.begin(), data.end(), buf.begin());
    detail::run_network(buf.data(), m);
    std::copy(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(n), data.begin());
}

/// Sorts sh[0..n_valid) ascending, where `sh` is a shared-memory span of
/// power-of-two size m >= n_valid; pads [n_valid, m) with +infinity.
/// Charges the network's compare-exchange work, shared traffic and one
/// block barrier per network step.  Building block for sort_small_kernel
/// and the splitter sample kernel.
template <typename T>
void sort_in_shared(simt::BlockCtx& blk, std::span<T> sh, std::size_t n_valid) {
    const std::size_t m = sh.size();
    for (std::size_t i = n_valid; i < m; ++i) {
        blk.shared_st(sh, i, std::numeric_limits<T>::infinity());
    }
    blk.charge_shared((m - n_valid) * sizeof(T));
    blk.sync();
    detail::run_network(sh.data(), m);
    const auto steps = static_cast<std::uint64_t>(network_steps(m));
    blk.charge_instr(steps * (m / 2));
    blk.charge_shared(steps * m * sizeof(T));
    for (std::uint64_t s = 0; s < steps; ++s) blk.sync();
}

/// Single-block kernel body: sorts data[0..n) ascending through shared
/// memory.  Instrumentation: coalesced load/store of the payload, one
/// block barrier per network step, one compare-exchange instruction and
/// two shared accesses per pair per step.
template <typename T>
void sort_small_kernel(simt::BlockCtx& blk, std::span<T> data, std::size_t n) {
    if (n > kMaxSortSize) {
        throw std::invalid_argument("sort_small_kernel: input exceeds kMaxSortSize");
    }
    if (n <= 1) return;
    const std::size_t m = next_pow2(n);
    auto sh = blk.shared_array<T>(m);

    // Load into shared memory (coalesced).
    blk.warp_tiles(n, [&](simt::WarpCtx& w, std::size_t base, std::size_t) {
        T regs[simt::kWarpSize];
        w.load(std::span<const T>(data), base, regs);
        for (int l = 0; l < w.lanes(); ++l) {
            blk.shared_st(sh, base + static_cast<std::size_t>(l), regs[l]);
        }
        w.touch_shared(static_cast<std::uint64_t>(w.lanes()) * sizeof(T));
    });
    sort_in_shared(blk, sh, n);

    // Write back (coalesced).
    blk.warp_tiles(n, [&](simt::WarpCtx& w, std::size_t base, std::size_t) {
        T regs[simt::kWarpSize];
        for (int l = 0; l < w.lanes(); ++l) {
            regs[l] = blk.shared_ld(sh, base + static_cast<std::size_t>(l));
        }
        w.touch_shared(static_cast<std::uint64_t>(w.lanes()) * sizeof(T));
        w.store(data, base, regs);
    });
}

/// Convenience: launches sort_small_kernel as a one-block kernel on `dev`.
template <typename T>
void sort_on_device(simt::Device& dev, std::span<T> data, std::size_t n,
                    simt::LaunchOrigin origin = simt::LaunchOrigin::host, int block_dim = 256,
                    int stream = 0) {
    dev.launch("bitonic_sort",
               {.grid_dim = 1, .block_dim = block_dim, .origin = origin, .stream = stream},
               [data, n](simt::BlockCtx& blk) { sort_small_kernel(blk, data, n); });
}

/// Segment descriptor for batched sorting.
struct Segment {
    std::size_t begin;
    std::size_t length;  ///< must be <= kMaxSortSize
};

/// Sorts many independent segments of `data` in place with ONE kernel
/// launch: one thread block per segment (load to shared, bitonic network,
/// store back).  This is how real GPU sample sorts handle the base-case
/// level -- per-segment launches would drown in launch latency.
template <typename T>
void batched_sort_on_device(simt::Device& dev, std::span<T> data,
                            const std::vector<Segment>& segments,
                            simt::LaunchOrigin origin = simt::LaunchOrigin::host,
                            int block_dim = 256, int stream = 0) {
    if (segments.empty()) return;
    for (const auto& s : segments) {
        if (s.length > kMaxSortSize) {
            throw std::invalid_argument("batched_sort_on_device: segment exceeds kMaxSortSize");
        }
        if (s.begin + s.length > data.size()) {
            throw std::invalid_argument("batched_sort_on_device: segment out of range");
        }
    }
    dev.launch("bitonic_sort_batched",
               {.grid_dim = static_cast<int>(segments.size()), .block_dim = block_dim,
                .origin = origin, .stream = stream},
               [data, &segments](simt::BlockCtx& blk) {
                   const auto& seg = segments[static_cast<std::size_t>(blk.block_idx())];
                   if (seg.length <= 1) return;
                   const std::size_t m = next_pow2(seg.length);
                   auto sh = blk.shared_array<T>(m);
                   blk.warp_tiles_local(
                       seg.length, [&](simt::WarpCtx& w, std::size_t base, std::size_t) {
                           T regs[simt::kWarpSize];
                           w.load(std::span<const T>(data), seg.begin + base, regs);
                           for (int l = 0; l < w.lanes(); ++l) {
                               blk.shared_st(sh, base + static_cast<std::size_t>(l), regs[l]);
                           }
                           w.touch_shared(static_cast<std::uint64_t>(w.lanes()) * sizeof(T));
                       });
                   sort_in_shared(blk, sh, seg.length);
                   blk.warp_tiles_local(
                       seg.length, [&](simt::WarpCtx& w, std::size_t base, std::size_t) {
                           T regs[simt::kWarpSize];
                           for (int l = 0; l < w.lanes(); ++l) {
                               regs[l] = blk.shared_ld(sh, base + static_cast<std::size_t>(l));
                           }
                           w.touch_shared(static_cast<std::uint64_t>(w.lanes()) * sizeof(T));
                           w.store(data, seg.begin + base, regs);
                       });
               });
}

// Explicitly instantiated in bitonic.cpp for float and double.
extern template void sort_network<float>(std::span<float>);
extern template void sort_network<double>(std::span<double>);
extern template void sort_small_kernel<float>(simt::BlockCtx&, std::span<float>, std::size_t);
extern template void sort_small_kernel<double>(simt::BlockCtx&, std::span<double>, std::size_t);

}  // namespace gpusel::bitonic
