#include "bitonic/bitonic.hpp"

namespace gpusel::bitonic {

template void sort_network<float>(std::span<float>);
template void sort_network<double>(std::span<double>);
template void sort_small_kernel<float>(simt::BlockCtx&, std::span<float>, std::size_t);
template void sort_small_kernel<double>(simt::BlockCtx&, std::span<double>, std::size_t);

}  // namespace gpusel::bitonic
