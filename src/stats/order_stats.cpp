#include "stats/order_stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gpusel::stats {

template <typename T>
T nth_element_reference(std::vector<T> data, std::size_t k) {
    if (k >= data.size()) throw std::out_of_range("rank out of range");
    std::nth_element(data.begin(), data.begin() + static_cast<std::ptrdiff_t>(k), data.end());
    return data[k];
}

template <typename T>
std::size_t min_rank(std::span<const T> data, T v) {
    std::size_t r = 0;
    for (const T& x : data) {
        if (x < v) ++r;
    }
    return r;
}

template <typename T>
std::size_t multiplicity(std::span<const T> data, T v) {
    std::size_t c = 0;
    for (const T& x : data) {
        if (x == v) ++c;
    }
    return c;
}

template <typename T>
std::size_t rank_error(std::span<const T> data, T v, std::size_t k) {
    const std::size_t lo = min_rank(data, v);
    const std::size_t m = multiplicity(data, v);
    if (m == 0) {
        // v is not in the dataset (possible only for buggy or approximate
        // results synthesised outside the element set); the rank interval
        // degenerates to the insertion point lo.
        return lo >= k ? lo - k : k - lo;
    }
    const std::size_t hi = lo + m - 1;
    if (k >= lo && k <= hi) return 0;
    return k < lo ? lo - k : k - hi;
}

template <typename T>
double relative_rank_error(std::span<const T> data, T v, std::size_t k) {
    if (data.empty()) throw std::invalid_argument("empty dataset");
    return static_cast<double>(rank_error(data, v, k)) / static_cast<double>(data.size());
}

double sample_percentile_stddev(double p, std::size_t s) {
    if (p < 0.0 || p > 1.0) throw std::invalid_argument("percentile out of [0,1]");
    if (s == 0) throw std::invalid_argument("empty sample");
    return std::sqrt(p * (1.0 - p) / static_cast<double>(s));
}

template float nth_element_reference<float>(std::vector<float>, std::size_t);
template double nth_element_reference<double>(std::vector<double>, std::size_t);
template std::size_t min_rank<float>(std::span<const float>, float);
template std::size_t min_rank<double>(std::span<const double>, double);
template std::size_t multiplicity<float>(std::span<const float>, float);
template std::size_t multiplicity<double>(std::span<const double>, double);
template std::size_t rank_error<float>(std::span<const float>, float, std::size_t);
template std::size_t rank_error<double>(std::span<const double>, double, std::size_t);
template double relative_rank_error<float>(std::span<const float>, float, std::size_t);
template double relative_rank_error<double>(std::span<const double>, double, std::size_t);

}  // namespace gpusel::stats
