#include "stats/summary.hpp"

#include <cmath>
#include <sstream>

namespace gpusel::stats {

void Accumulator::add(double x) noexcept {
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        if (x < min_) min_ = x;
        if (x > max_) max_ = x;
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double Accumulator::stddev() const noexcept {
    if (n_ < 2) return 0.0;
    return std::sqrt(m2_ / static_cast<double>(n_ - 1));
}

Summary Accumulator::summary() const noexcept {
    return {.count = n_, .mean = mean_, .stddev = stddev(), .min = min_, .max = max_};
}

std::string format_mean_std(const Summary& s, int precision) {
    std::ostringstream os;
    os.precision(precision);
    os << s.mean << " +/- " << s.stddev;
    return os.str();
}

}  // namespace gpusel::stats
