#pragma once
// Order-statistics utilities: exact reference selection (the paper verifies
// against std::nth_element, Sec. V-A), rank semantics for duplicates, and
// the rank-error metric of the approximate-selection evaluation (Fig. 10).

#include <cstddef>
#include <span>
#include <vector>

namespace gpusel::stats {

/// Exact k-th smallest element (0-based rank) via std::nth_element; the
/// paper's correctness reference.
template <typename T>
[[nodiscard]] T nth_element_reference(std::vector<T> data, std::size_t k);

/// Minimum rank of value v in data: the number of elements strictly smaller
/// (the paper assigns duplicated elements their smallest rank, Sec. II).
template <typename T>
[[nodiscard]] std::size_t min_rank(std::span<const T> data, T v);

/// Number of elements equal to v.
template <typename T>
[[nodiscard]] std::size_t multiplicity(std::span<const T> data, T v);

/// Rank error of a selection result: 0 if v occupies rank k (i.e. k lies in
/// v's rank interval [min_rank, min_rank + multiplicity)), otherwise the
/// distance from k to the nearest end of that interval.
template <typename T>
[[nodiscard]] std::size_t rank_error(std::span<const T> data, T v, std::size_t k);

/// Relative rank error |result_rank - k| / n as plotted in Fig. 10.
template <typename T>
[[nodiscard]] double relative_rank_error(std::span<const T> data, T v, std::size_t k);

/// Asymptotic standard deviation of the relative rank of the p-percentile
/// estimated from a sample of size s: sqrt(p (1 - p) / s)
/// (Mosteller 1946, quoted in Sec. II-B of the paper).
[[nodiscard]] double sample_percentile_stddev(double p, std::size_t s);

extern template float nth_element_reference<float>(std::vector<float>, std::size_t);
extern template double nth_element_reference<double>(std::vector<double>, std::size_t);
extern template std::size_t min_rank<float>(std::span<const float>, float);
extern template std::size_t min_rank<double>(std::span<const double>, double);
extern template std::size_t multiplicity<float>(std::span<const float>, float);
extern template std::size_t multiplicity<double>(std::span<const double>, double);
extern template std::size_t rank_error<float>(std::span<const float>, float, std::size_t);
extern template std::size_t rank_error<double>(std::span<const double>, double, std::size_t);
extern template double relative_rank_error<float>(std::span<const float>, float, std::size_t);
extern template double relative_rank_error<double>(std::span<const double>, double, std::size_t);

}  // namespace gpusel::stats
