#pragma once
// Streaming summary statistics for benchmark reporting (the paper reports
// the average over 10 repetitions along with the variation, Sec. V-B).

#include <cstddef>
#include <string>

namespace gpusel::stats {

struct Summary {
    std::size_t count = 0;
    double mean = 0.0;
    double stddev = 0.0;
    double min = 0.0;
    double max = 0.0;
};

/// Welford accumulator: numerically stable mean/variance in one pass.
class Accumulator {
public:
    void add(double x) noexcept;
    [[nodiscard]] Summary summary() const noexcept;
    [[nodiscard]] std::size_t count() const noexcept { return n_; }
    [[nodiscard]] double mean() const noexcept { return mean_; }
    [[nodiscard]] double stddev() const noexcept;
    [[nodiscard]] double min() const noexcept { return min_; }
    [[nodiscard]] double max() const noexcept { return max_; }
    void reset() noexcept { *this = Accumulator{}; }

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// "mean ± stddev" with engineering formatting, for table cells.
[[nodiscard]] std::string format_mean_std(const Summary& s, int precision = 3);

}  // namespace gpusel::stats
