#pragma once
// SelectServer: the long-lived selection service (docs/service.md).
//
// A bounded, tenant-fair request queue in front of the selection stack.
// submit() performs admission control on the caller's thread (validation,
// bounded-queue shedding, up-front deadline feasibility against an EWMA
// service-time estimate) and returns a std::future<Response>; a dispatch
// round -- pump(), or the internal dispatcher thread between start()/stop()
// -- picks up to max_batch requests round-robin across tenant queues,
// coalesces the exact select/quantile ones into one BatchExecutor batch
// over the stream pool, fans top-k through try_topk_largest_batch, runs
// approximate/degraded/argselect requests serially, and resolves every
// picked future.  Overload-safety invariants:
//
//   * every admitted request resolves to a result or a typed error --
//     nothing hangs, including through drain() and the destructor;
//   * the queue never exceeds queue_capacity (global) or
//     tenant_queue_capacity (per tenant): excess submissions shed
//     immediately with SelectError::overloaded;
//   * a request that cannot meet its deadline is rejected up front
//     (SelectError::deadline_exceeded) instead of half-executed, and the
//     per-problem deadline propagated into the pipeline aborts descents
//     that overrun anyway (defence in depth);
//   * under queue delay past degrade_queue_delay_ns, degradable exact
//     requests downgrade to single-level approximate selection and report
//     their exact rank error (graceful degradation);
//   * a backend that keeps faulting is quarantined by the per-backend
//     circuit breaker (server/breaker.hpp) and the planner routes around
//     it until its backoff expires.
//
// Threading: submit() is safe from any thread (it only touches the queue
// under the mutex -- never the device).  All device work happens on the
// single thread that calls pump()/drain(), or on the internal dispatcher
// thread between start() and stop().  Mixing external pump() calls with a
// running dispatcher thread is not supported.
//
// Clock: the service lives on the simulated clock.  A request's arrival is
// its arrival_ns stamp (or "now" when negative); a dispatch round starts at
// max(device stream clock, earliest picked arrival) -- an idle device
// fast-forwards to the arrival instead of charging idle gaps as latency --
// and every picked request finishes at the round's batch join.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "server/breaker.hpp"
#include "server/request.hpp"
#include "simt/device.hpp"

namespace gpusel::server {

class SelectServer {
public:
    SelectServer(simt::Device& dev, ServerConfig cfg);
    /// Stops the dispatcher thread (if running) and resolves every queued
    /// request with SelectError::overloaded ("server shutting down") --
    /// no future is ever abandoned.  Call drain() first for a clean
    /// shutdown that completes in-flight work.
    ~SelectServer();
    SelectServer(const SelectServer&) = delete;
    SelectServer& operator=(const SelectServer&) = delete;

    /// Admission control + enqueue.  Always returns a future that will
    /// resolve; rejected requests resolve immediately with a typed error.
    [[nodiscard]] std::future<Response> submit(Request req);

    /// Runs one dispatch round on the caller's thread.  Returns false when
    /// no request was ready (empty queue).
    bool pump();
    /// Runs one dispatch round only if it would start before `limit_ns` on
    /// the simulated clock (the load generator's open-loop driver: let the
    /// server catch up to the next arrival, no further).  Returns false
    /// when nothing is ready or the round would start at/after the limit.
    bool pump_until(double limit_ns);
    /// Stops accepting new work and pumps until the queue is empty: every
    /// already-admitted request completes (clean drain semantics).
    void drain();
    /// Re-opens admission after drain().
    void reopen();

    /// Starts the internal dispatcher thread (blocking-queue mode).
    void start();
    /// Stops the dispatcher thread after it drains the queue.
    void stop();

    /// Simulated-clock "now" as the server tracks it: the base stream's
    /// busy-until, monotone across rounds.
    [[nodiscard]] double now_ns() const;
    /// Queue depth across all tenants (snapshot).
    [[nodiscard]] std::size_t queue_depth() const;
    /// Aggregate metrics (snapshot under the queue lock; call when
    /// quiescent for exact totals).
    [[nodiscard]] ServerMetrics metrics() const;
    /// Breaker states (read-only; meaningful between rounds).
    [[nodiscard]] const BreakerBank& breakers() const noexcept { return breakers_; }
    /// Telemetry for the chrome-trace export (record_trace only).
    [[nodiscard]] std::vector<simt::TraceCounter> trace_counters() const;
    [[nodiscard]] std::vector<simt::TraceInstant> trace_instants() const;

    /// Trace tid the telemetry tracks render under (above any realistic
    /// stream id so service lanes group below the kernel lanes).
    static constexpr int kQueueTrack = 1000;
    static constexpr int kAdmissionTrack = 1001;
    static constexpr int kBreakerTrack = 1002;

private:
    struct Pending {
        Request req;
        std::promise<Response> promise;
        double arrival_ns = 0.0;
        /// Absolute deadline (arrival + relative budget); 0 = none.
        double deadline_abs_ns = 0.0;
        /// Admission-time service estimate (backlog accounting).
        double est_cost_ns = 0.0;
    };

    /// One picked request en route through a dispatch round.
    struct InFlight {
        Pending p;
        Response resp;
        bool resolved = false;  ///< answered before the batched phase
    };

    // -- admission (queue lock held) ---------------------------------------
    core::Status validate(const Request& req) const;
    void note_trace_counter_locked(double now, int track, const char* name, double value);
    void note_trace_instant_locked(double now, int track, const char* name, std::string detail);

    // -- dispatch (device thread only) -------------------------------------
    bool pump_internal(double limit_ns, bool limited);
    void run_round(std::vector<Pending> picked, double round_start);
    void dispatcher_loop();

    simt::Device& dev_;
    ServerConfig cfg_;
    BreakerBank breakers_;

    mutable std::mutex mu_;
    std::condition_variable cv_;
    /// Tenant queues in a stable map; DRR pickup rotates over them.
    std::map<int, std::deque<Pending>> tenants_;
    std::size_t queued_ = 0;
    /// DRR resume point: the tenant after the last one served.
    int next_tenant_ = 0;
    bool accepting_ = true;
    bool stop_requested_ = false;
    std::thread dispatcher_;
    bool dispatcher_running_ = false;

    /// Base-stream busy-until as of the last round (submit()-side view of
    /// the device clock; submit never touches the device).
    double busy_until_ns_ = 0.0;
    /// Sum of est_cost_ns over queued requests (admission backlog).
    double backlog_ns_ = 0.0;
    /// EWMA of observed ns per element across rounds.
    double ewma_ns_per_elem_ = 0.0;

    ServerMetrics metrics_;
    std::vector<simt::TraceCounter> trace_counters_;
    std::vector<simt::TraceInstant> trace_instants_;
};

}  // namespace gpusel::server
