#pragma once
// Open-loop load generator for the selection service (docs/service.md
// "Load generation").
//
// Drives a SelectServer with Poisson arrivals on the *simulated* clock: the
// i-th request is pre-stamped with its arrival time, the server is pumped
// until its next dispatch round would start at/after that arrival
// (pump_until), and only then is the request submitted.  Open-loop means
// arrivals never wait for responses -- exactly the regime in which an
// overloaded service must shed rather than build an unbounded queue.
//
// One run produces a LoadgenResult (latency percentiles, throughput, shed /
// deadline-miss / degradation rates); a sweep over arrival rates produces
// the throughput-vs-load and latency-vs-load curves the SLO regression gate
// consumes (tools/check_bench_regression.py --server-current).

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "data/distributions.hpp"
#include "server/service.hpp"

namespace gpusel::server {

/// One operating point of the load sweep.
struct LoadgenConfig {
    /// Offered load: mean arrival rate [requests per simulated second].
    double rate_rps = 2000.0;
    /// Requests offered per run.
    std::size_t requests = 400;
    /// Elements per request dataset.
    std::size_t n = 65536;
    /// Distinct pre-generated datasets cycled across requests (requests
    /// share immutable data; see the Request::data lifetime contract).
    std::size_t datasets = 4;
    data::Distribution dist = data::Distribution::uniform_real;
    /// Tenants the requests round-robin across.
    int tenants = 4;
    /// Relative deadline stamped on every request [sim-ns]; 0 = none.
    double deadline_ns = 0.0;
    /// Request mix: fractions of top-k / argselect / quantile / explicit
    /// approx requests; the remainder are exact selects.
    double topk_frac = 0.1;
    double argselect_frac = 0.1;
    double quantile_frac = 0.1;
    double approx_frac = 0.1;
    std::uint64_t seed = 42;
};

/// Aggregate outcome of one run at one offered rate.
struct LoadgenResult {
    double rate_rps = 0.0;
    std::uint64_t offered = 0;
    std::uint64_t completed = 0;
    std::uint64_t shed = 0;
    std::uint64_t deadline_rejected = 0;
    std::uint64_t deadline_aborted = 0;
    std::uint64_t degraded = 0;
    std::uint64_t failed = 0;
    double p50_ns = 0.0;
    double p99_ns = 0.0;
    double p999_ns = 0.0;
    double mean_ns = 0.0;
    /// Completed requests per simulated second over the run's makespan.
    double throughput_rps = 0.0;
    /// Fraction of offered requests shed at admission.
    double shed_rate = 0.0;
    /// Fraction of offered requests that missed their deadline (rejected
    /// up front or aborted between levels).
    double deadline_miss_rate = 0.0;
    /// Fraction of completed answers that were degraded to approximate.
    double degraded_frac = 0.0;
    /// Last finish minus first arrival [sim-ns].
    double makespan_ns = 0.0;
};

/// Service telemetry captured during a run (ServerConfig::record_trace);
/// feeds the chrome-trace export's counter/instant tracks.
struct LoadgenTrace {
    std::vector<simt::TraceCounter> counters;
    std::vector<simt::TraceInstant> instants;
};

/// Runs one open-loop experiment against a fresh server on `dev`.
/// Every future is resolved before this returns (drain semantics).  When
/// `trace` is non-null and server_cfg.record_trace is set, the server's
/// telemetry is copied out before the server is destroyed.
[[nodiscard]] LoadgenResult run_loadgen(simt::Device& dev, const ServerConfig& server_cfg,
                                        const LoadgenConfig& load_cfg,
                                        LoadgenTrace* trace = nullptr);

/// Emits a sweep as the bench-results JSON the SLO gate consumes:
/// { "context": {...}, "server_points": [ {"name": "SRV_load/<rate>",
///   "p99_ns": ..., "shed_rate": ..., "slo_nominal": 0|1}, ... ] }.
/// The point whose rate is `nominal_rate_rps` is tagged slo_nominal = 1:
/// the gate requires zero shed at that operating point.
void write_loadgen_json(std::ostream& os, std::span<const LoadgenResult> sweep,
                        double nominal_rate_rps);

}  // namespace gpusel::server
