#pragma once
// Request/response contract of the selection service (docs/service.md).
//
// gpusel_server accepts select / top-k / argselect / quantile requests over
// float keys on a bounded queue and answers each with a Response carrying a
// typed core::Status -- every admitted request resolves to a result or a
// typed error, never hangs.  The structs here are the wire format of the
// in-process client library (server/service.hpp); the daemon and the load
// generator (tools/gpusel_loadgen) both speak it.
//
// Lifetime contract: Request::data is a non-owning view.  The caller must
// keep the underlying array alive until the request's future resolves (the
// load generator shares a few large immutable datasets across all requests
// for exactly this reason).

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/config.hpp"
#include "core/quantile.hpp"
#include "core/status.hpp"

namespace gpusel::simt {
class DeviceGroup;
}  // namespace gpusel::simt

namespace gpusel::server {

/// The operations the service accepts (all over float keys; argselect
/// additionally returns the original index).
enum class RequestKind : std::uint8_t { select, topk, argselect, quantile };

[[nodiscard]] constexpr const char* request_kind_name(RequestKind k) noexcept {
    switch (k) {
        case RequestKind::select: return "select";
        case RequestKind::topk: return "topk";
        case RequestKind::argselect: return "argselect";
        case RequestKind::quantile: return "quantile";
    }
    return "?";
}

/// How a request was ultimately answered.
enum class ResponseMode : std::uint8_t {
    exact,     ///< the exact algorithm the caller asked for
    approx,    ///< the caller asked for approximate selection up front
    degraded,  ///< exact request downgraded to approximate under overload
};

[[nodiscard]] constexpr const char* response_mode_name(ResponseMode m) noexcept {
    switch (m) {
        case ResponseMode::exact: return "exact";
        case ResponseMode::approx: return "approx";
        case ResponseMode::degraded: return "degraded";
    }
    return "?";
}

/// One client request.
struct Request {
    RequestKind kind = RequestKind::select;
    /// Non-owning key view; must outlive the response future.
    std::span<const float> data;
    /// Ascending 0-based rank (select / argselect).
    std::size_t rank = 0;
    /// Top-k count (topk).
    std::size_t k = 0;
    /// Quantile position in [0, 1] (quantile).
    double q = 0.5;
    core::QuantileMethod quantile_method = core::QuantileMethod::nearest;
    /// Caller explicitly wants the cheap single-level approximation
    /// (select / quantile only; reported as ResponseMode::approx).
    bool approx = false;
    /// May the server downgrade this exact request to approximate when the
    /// queue delay crosses the degradation threshold?  (select / quantile
    /// only; a degraded answer reports its exact rank error.)
    bool allow_degrade = true;
    /// Fair-queuing bucket; each tenant gets its own bounded sub-queue and
    /// a round-robin share of every batch.
    int tenant = 0;
    /// Relative latency budget in simulated ns; 0 inherits the server's
    /// default_deadline_ns, and 0 there too means "no deadline".
    double deadline_ns = 0.0;
    /// Absolute simulated arrival time; < 0 stamps "now" at submission.
    /// The load generator pre-stamps Poisson arrivals here.
    double arrival_ns = -1.0;
};

/// One service answer.  status.ok() means value/values/index are valid for
/// the request's kind; otherwise the typed error explains the outcome
/// (SelectError::overloaded = shed at admission, deadline_exceeded =
/// rejected up front or aborted between pipeline levels, ...).
struct Response {
    core::Status status;
    ResponseMode mode = ResponseMode::exact;
    /// select / quantile: the (approximate) order statistic.
    /// argselect: the key at the requested rank.
    /// topk: the threshold (k-th largest).
    float value = 0.0f;
    /// topk: the k largest elements (unordered).
    std::vector<float> values;
    /// argselect: original position of `value`.
    std::uint32_t index = 0;
    /// Backend that answered ("sample"/"radix"/"bitonic"; "" when unknown).
    const char* backend = "";
    /// Approx/degraded answers: exact rank error of the returned splitter
    /// and the level's a-priori bound (max_bucket / 2, Sec. II-C).
    std::size_t rank_error = 0;
    std::size_t rank_error_bound = 0;
    /// Simulated-clock milestones: arrival (admission stamp), start (the
    /// dispatch round's pickup) and finish (the round's batch join -- the
    /// service answers when the whole coalesced batch completes, see
    /// docs/service.md "Latency semantics").
    double arrival_ns = 0.0;
    double start_ns = 0.0;
    double finish_ns = 0.0;

    [[nodiscard]] double latency_ns() const noexcept { return finish_ns - arrival_ns; }
    [[nodiscard]] double queue_delay_ns() const noexcept { return start_ns - arrival_ns; }
};

/// Per-backend circuit-breaker tuning (server/breaker.hpp).
struct BreakerConfig {
    /// Consecutive failures that trip a closed breaker open.
    int failure_threshold = 3;
    /// First quarantine window; doubles on every re-trip (exponential
    /// backoff), capped at max_backoff_ns.
    double initial_backoff_ns = 250e3;
    double max_backoff_ns = 64e6;
    /// Fault-retry pressure (alloc_retries + launch_retries growth during
    /// one round) counted as one failure even when the round's Status was
    /// ok -- retries succeeding is still evidence the backend is faulting.
    std::uint64_t retry_pressure_threshold = 16;
};

/// Server tuning; the defaults serve the unit tests and the load
/// generator's nominal operating point.
struct ServerConfig {
    /// Bounded global queue: submissions past this shed with
    /// SelectError::overloaded.
    std::size_t queue_capacity = 256;
    /// Bounded per-tenant share: one tenant's burst cannot evict others.
    std::size_t tenant_queue_capacity = 64;
    /// Requests coalesced into one dispatch round (BatchExecutor batch).
    std::size_t max_batch = 16;
    /// Stream-fan width for the round's batch (BatchOptions::streams;
    /// 0 = GPUSEL_STREAMS, then min(batch, 8)).
    int streams = 0;
    /// Default relative deadline for requests that do not set one
    /// (0 = no deadline).
    double default_deadline_ns = 0.0;
    /// Queue delay past which degradable exact requests downgrade to
    /// approximate selection (0 = never degrade).
    double degrade_queue_delay_ns = 0.0;
    /// Up-front deadline feasibility check at admission (EWMA service-time
    /// estimate + backlog); disable to let infeasible requests run and be
    /// aborted between pipeline levels instead.
    bool admit_deadline_check = true;
    /// EWMA bootstrap for the per-element service-time estimate [ns/elem].
    double est_ns_per_elem = 2.0;
    /// Pipeline configuration shared by every request (stream is the
    /// server's base stream; per-request deadlines overlay deadline_ns).
    core::SampleSelectConfig select;
    BreakerConfig breaker;
    /// Collect queue-depth counter samples and admission-decision instants
    /// for the chrome-trace export (simt/trace.hpp).
    bool record_trace = false;
    /// Out-of-core escape hatch: select/quantile/top-k requests whose data
    /// exceeds the shard threshold route to the sharded multi-device path
    /// (core/shard_select.hpp) on this group instead of the single-device
    /// batch.  Non-owning; must outlive the server.  nullptr disables the
    /// route (oversized requests then run -- and likely fault -- on the
    /// single device like before).
    simt::DeviceGroup* shard_group = nullptr;
    /// Elements above which a request counts as oversized; 0 derives the
    /// threshold from the group's per-device staging budget
    /// (core::kShardStagingFraction of its modeled capacity).
    std::size_t shard_threshold_elems = 0;
};

/// Aggregate service metrics; latencies cover completed requests only.
struct ServerMetrics {
    std::uint64_t submitted = 0;
    std::uint64_t admitted = 0;
    std::uint64_t completed = 0;          ///< resolved with status.ok()
    std::uint64_t shed = 0;               ///< overloaded at admission
    std::uint64_t deadline_rejected = 0;  ///< rejected up front
    std::uint64_t deadline_aborted = 0;   ///< aborted between levels
    std::uint64_t degraded = 0;           ///< exact downgraded to approx
    std::uint64_t sharded = 0;            ///< routed to the sharded path
    std::uint64_t failed = 0;             ///< other non-ok terminal status
    std::vector<double> latencies_ns;

    /// Latency percentile in [0, 100] over completed requests (0 when none).
    [[nodiscard]] double latency_percentile(double pct) const;
};

}  // namespace gpusel::server
