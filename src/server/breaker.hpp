#pragma once
// Per-backend circuit breaker (docs/service.md "Circuit breaker").
//
// The server feeds each dispatch round's outcome into one breaker per
// selection backend.  A backend that keeps faulting (terminal fault Status,
// or fault-retry pressure above the configured threshold even when retries
// ultimately succeeded) trips its breaker open: the backend's bit is set in
// simt::Device::backend_quarantine() and the planner routes around it.
// After an exponential-backoff window the breaker goes half-open -- the
// quarantine bit clears so the next planned selection probes the backend --
// and one success closes it while one failure re-opens it with a doubled
// window.  States:
//
//   closed     -- healthy; failures count toward failure_threshold.
//   open       -- quarantined until open_until_ns; planner avoids it.
//   half_open  -- backoff expired; one probe decides closed vs re-open.
//
// The breaker itself is clock-agnostic host bookkeeping: `now` is the
// server's simulated-clock timestamp, and the BreakerBank owns the mapping
// onto the device quarantine mask.

#include <array>
#include <cstdint>

#include "core/backend.hpp"
#include "server/request.hpp"
#include "simt/device.hpp"

namespace gpusel::server {

enum class BreakerState : std::uint8_t { closed, open, half_open };

[[nodiscard]] constexpr const char* breaker_state_name(BreakerState s) noexcept {
    switch (s) {
        case BreakerState::closed: return "closed";
        case BreakerState::open: return "open";
        case BreakerState::half_open: return "half_open";
    }
    return "?";
}

/// One backend's breaker.
class CircuitBreaker {
public:
    explicit CircuitBreaker(const BreakerConfig& cfg = {}) : cfg_(cfg) {}

    /// Advances open -> half_open when the backoff window expired.
    void tick(double now_ns) noexcept;
    /// A successful planned use of the backend: closes a half-open breaker
    /// (and resets the backoff ladder), clears a closed breaker's failure
    /// run.  Success while open is ignored (stale in-flight work).
    void record_success(double now_ns) noexcept;
    /// A failure attributed to the backend: trips a closed breaker after
    /// failure_threshold consecutive failures; re-opens a half-open breaker
    /// with a doubled backoff window.
    void record_failure(double now_ns) noexcept;

    [[nodiscard]] BreakerState state() const noexcept { return state_; }
    /// True while the planner should avoid the backend (state == open).
    [[nodiscard]] bool quarantined() const noexcept { return state_ == BreakerState::open; }
    [[nodiscard]] double open_until_ns() const noexcept { return open_until_ns_; }
    [[nodiscard]] int consecutive_failures() const noexcept { return consecutive_failures_; }

private:
    void open(double now_ns) noexcept;

    BreakerConfig cfg_;
    BreakerState state_ = BreakerState::closed;
    int consecutive_failures_ = 0;
    double backoff_ns_ = 0.0;  ///< current window; doubles per re-trip
    double open_until_ns_ = 0.0;
};

/// The server's set of breakers, one per BackendKind, plus the projection
/// onto the device's planner quarantine mask.
class BreakerBank {
public:
    explicit BreakerBank(const BreakerConfig& cfg = {})
        : breakers_{CircuitBreaker(cfg), CircuitBreaker(cfg), CircuitBreaker(cfg)} {}

    [[nodiscard]] CircuitBreaker& of(core::BackendKind k) noexcept {
        return breakers_[static_cast<std::size_t>(k)];
    }
    [[nodiscard]] const CircuitBreaker& of(core::BackendKind k) const noexcept {
        return breakers_[static_cast<std::size_t>(k)];
    }

    /// Ticks every breaker to `now` and installs the resulting quarantine
    /// mask on the device.  Returns the mask.
    std::uint32_t sync(simt::Device& dev, double now_ns) noexcept;

    /// Quarantine mask implied by the current states (no device write).
    [[nodiscard]] std::uint32_t mask() const noexcept;

private:
    std::array<CircuitBreaker, 3> breakers_;
};

}  // namespace gpusel::server
