#include "server/breaker.hpp"

#include <algorithm>

namespace gpusel::server {

void CircuitBreaker::tick(double now_ns) noexcept {
    if (state_ == BreakerState::open && now_ns >= open_until_ns_) {
        state_ = BreakerState::half_open;
    }
}

void CircuitBreaker::record_success(double now_ns) noexcept {
    tick(now_ns);
    switch (state_) {
        case BreakerState::closed:
            consecutive_failures_ = 0;
            break;
        case BreakerState::half_open:
            // Probe succeeded: the backend recovered.  Reset the backoff
            // ladder so the next incident starts from the initial window.
            state_ = BreakerState::closed;
            consecutive_failures_ = 0;
            backoff_ns_ = 0.0;
            break;
        case BreakerState::open:
            // Stale success from work planned before the trip; ignore.
            break;
    }
}

void CircuitBreaker::record_failure(double now_ns) noexcept {
    tick(now_ns);
    switch (state_) {
        case BreakerState::closed:
            if (++consecutive_failures_ >= cfg_.failure_threshold) open(now_ns);
            break;
        case BreakerState::half_open:
            // Probe failed: straight back to open with a doubled window.
            open(now_ns);
            break;
        case BreakerState::open:
            break;
    }
}

void CircuitBreaker::open(double now_ns) noexcept {
    backoff_ns_ = backoff_ns_ <= 0.0 ? cfg_.initial_backoff_ns
                                     : std::min(backoff_ns_ * 2.0, cfg_.max_backoff_ns);
    state_ = BreakerState::open;
    open_until_ns_ = now_ns + backoff_ns_;
    consecutive_failures_ = 0;
}

std::uint32_t BreakerBank::mask() const noexcept {
    std::uint32_t m = 0;
    for (const core::BackendKind k :
         {core::BackendKind::sample, core::BackendKind::radix, core::BackendKind::bitonic}) {
        if (of(k).quarantined()) m |= core::backend_bit(k);
    }
    return m;
}

std::uint32_t BreakerBank::sync(simt::Device& dev, double now_ns) noexcept {
    for (auto& b : breakers_) b.tick(now_ns);
    const std::uint32_t m = mask();
    dev.set_backend_quarantine(m);
    return m;
}

}  // namespace gpusel::server
