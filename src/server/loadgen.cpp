#include "server/loadgen.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <random>
#include <utility>

namespace gpusel::server {

namespace {

double percentile_sorted(const std::vector<double>& sorted, double pct) {
    if (sorted.empty()) return 0.0;
    const double pos = pct / 100.0 * static_cast<double>(sorted.size() - 1);
    const auto idx = std::min(static_cast<std::size_t>(pos), sorted.size() - 1);
    return sorted[idx];
}

}  // namespace

LoadgenResult run_loadgen(simt::Device& dev, const ServerConfig& server_cfg,
                          const LoadgenConfig& load_cfg, LoadgenTrace* trace) {
    // Shared immutable datasets: requests reference them by span, so they
    // must outlive every future (Request::data lifetime contract).
    std::vector<std::vector<float>> datasets;
    datasets.reserve(std::max<std::size_t>(load_cfg.datasets, 1));
    for (std::size_t d = 0; d < std::max<std::size_t>(load_cfg.datasets, 1); ++d) {
        datasets.push_back(data::generate<float>(
            {load_cfg.n, load_cfg.dist, 0, load_cfg.seed + 1000 * (d + 1)}));
    }

    SelectServer server(dev, server_cfg);

    std::mt19937_64 rng(load_cfg.seed);
    std::exponential_distribution<double> interarrival(load_cfg.rate_rps / 1e9);
    std::uniform_real_distribution<double> mix(0.0, 1.0);
    std::uniform_int_distribution<std::size_t> rank_draw(0, load_cfg.n - 1);

    std::vector<std::future<Response>> futures;
    futures.reserve(load_cfg.requests);
    double arrival = server.now_ns();
    double first_arrival = -1.0;

    for (std::size_t i = 0; i < load_cfg.requests; ++i) {
        arrival += interarrival(rng);
        if (first_arrival < 0.0) first_arrival = arrival;
        // Open loop: let the server catch up to (not past) this arrival,
        // then submit regardless of how far behind it is.
        while (server.pump_until(arrival)) {
        }

        Request req;
        req.data = datasets[i % datasets.size()];
        req.rank = rank_draw(rng);
        req.tenant = static_cast<int>(i) % std::max(load_cfg.tenants, 1);
        req.deadline_ns = load_cfg.deadline_ns;
        req.arrival_ns = arrival;
        const double roll = mix(rng);
        if (roll < load_cfg.topk_frac) {
            req.kind = RequestKind::topk;
            req.k = 1 + req.rank % 64;
        } else if (roll < load_cfg.topk_frac + load_cfg.argselect_frac) {
            req.kind = RequestKind::argselect;
        } else if (roll < load_cfg.topk_frac + load_cfg.argselect_frac +
                              load_cfg.quantile_frac) {
            req.kind = RequestKind::quantile;
            req.q = static_cast<double>(req.rank) / static_cast<double>(load_cfg.n);
        } else if (roll < load_cfg.topk_frac + load_cfg.argselect_frac +
                              load_cfg.quantile_frac + load_cfg.approx_frac) {
            req.approx = true;
        }
        futures.push_back(server.submit(std::move(req)));
    }
    server.drain();
    if (trace != nullptr) {
        trace->counters = server.trace_counters();
        trace->instants = server.trace_instants();
    }

    LoadgenResult res;
    res.rate_rps = load_cfg.rate_rps;
    res.offered = load_cfg.requests;
    std::vector<double> latencies;
    double last_finish = first_arrival;
    for (auto& f : futures) {
        Response r = f.get();
        last_finish = std::max(last_finish, r.finish_ns);
        if (r.status.ok()) {
            ++res.completed;
            latencies.push_back(r.latency_ns());
            if (r.mode == ResponseMode::degraded) ++res.degraded;
        } else {
            switch (r.status.code) {
                case core::SelectError::overloaded:
                    ++res.shed;
                    break;
                case core::SelectError::deadline_exceeded:
                    // Up-front rejects never reached a dispatch round.
                    if (r.start_ns <= r.arrival_ns) {
                        ++res.deadline_rejected;
                    } else {
                        ++res.deadline_aborted;
                    }
                    break;
                default:
                    ++res.failed;
                    break;
            }
        }
    }
    std::sort(latencies.begin(), latencies.end());
    res.p50_ns = percentile_sorted(latencies, 50.0);
    res.p99_ns = percentile_sorted(latencies, 99.0);
    res.p999_ns = percentile_sorted(latencies, 99.9);
    if (!latencies.empty()) {
        double sum = 0.0;
        for (const double l : latencies) sum += l;
        res.mean_ns = sum / static_cast<double>(latencies.size());
    }
    res.makespan_ns = std::max(0.0, last_finish - first_arrival);
    if (res.makespan_ns > 0.0) {
        res.throughput_rps = static_cast<double>(res.completed) / (res.makespan_ns / 1e9);
    }
    const auto offered = static_cast<double>(res.offered);
    if (offered > 0.0) {
        res.shed_rate = static_cast<double>(res.shed) / offered;
        res.deadline_miss_rate =
            static_cast<double>(res.deadline_rejected + res.deadline_aborted) / offered;
    }
    if (res.completed > 0) {
        res.degraded_frac =
            static_cast<double>(res.degraded) / static_cast<double>(res.completed);
    }
    return res;
}

void write_loadgen_json(std::ostream& os, std::span<const LoadgenResult> sweep,
                        double nominal_rate_rps) {
    os << "{\n"
       << " \"context\": {\n"
       << "  \"kind\": \"gpusel_server_loadgen\",\n"
       << "  \"clock\": \"simulated\"\n"
       << " },\n"
       << " \"server_points\": [\n";
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        const LoadgenResult& r = sweep[i];
        const bool nominal = r.rate_rps == nominal_rate_rps;
        os << "  {\n"
           << "   \"name\": \"SRV_load/" << r.rate_rps << "\",\n"
           << "   \"rate_rps\": " << r.rate_rps << ",\n"
           << "   \"offered\": " << r.offered << ",\n"
           << "   \"completed\": " << r.completed << ",\n"
           << "   \"shed\": " << r.shed << ",\n"
           << "   \"deadline_rejected\": " << r.deadline_rejected << ",\n"
           << "   \"deadline_aborted\": " << r.deadline_aborted << ",\n"
           << "   \"degraded\": " << r.degraded << ",\n"
           << "   \"failed\": " << r.failed << ",\n"
           << "   \"p50_ns\": " << r.p50_ns << ",\n"
           << "   \"p99_ns\": " << r.p99_ns << ",\n"
           << "   \"p999_ns\": " << r.p999_ns << ",\n"
           << "   \"mean_ns\": " << r.mean_ns << ",\n"
           << "   \"throughput_rps\": " << r.throughput_rps << ",\n"
           << "   \"shed_rate\": " << r.shed_rate << ",\n"
           << "   \"deadline_miss_rate\": " << r.deadline_miss_rate << ",\n"
           << "   \"degraded_frac\": " << r.degraded_frac << ",\n"
           << "   \"makespan_ns\": " << r.makespan_ns << ",\n"
           << "   \"slo_nominal\": " << (nominal ? 1 : 0) << "\n"
           << "  }" << (i + 1 < sweep.size() ? "," : "") << "\n";
    }
    os << " ]\n}\n";
}

}  // namespace gpusel::server
