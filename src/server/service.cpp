#include "server/service.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <utility>

#include "core/approx_select.hpp"
#include "core/argselect.hpp"
#include "core/batch_executor.hpp"
#include "core/planner.hpp"
#include "core/shard_select.hpp"
#include "core/topk.hpp"
#include "simt/streamsan.hpp"
#include "simt/topology.hpp"

namespace gpusel::server {

namespace {

using core::SelectError;
using core::Status;

/// Fixed per-request overhead of the admission service estimate [sim-ns]:
/// launch latency + staging, amortized.  The EWMA refines the per-element
/// slope; the intercept only has to be the right order of magnitude.
constexpr double kEstBaseNs = 500.0;

/// Terminal codes that indicate the backend (not the request) is sick --
/// these feed the circuit breaker as failures.
bool is_fault_code(SelectError e) noexcept {
    switch (e) {
        case SelectError::allocation_failed:
        case SelectError::launch_failed:
        case SelectError::no_progress:
        case SelectError::internal:
        case SelectError::sanitizer_violation:
            return true;
        default:
            return false;
    }
}

double percentile(std::vector<double> v, double pct) {
    if (v.empty()) return 0.0;
    const double pos = pct / 100.0 * static_cast<double>(v.size() - 1);
    auto idx = static_cast<std::size_t>(pos);
    idx = std::min(idx, v.size() - 1);
    auto nth = v.begin() + static_cast<std::ptrdiff_t>(idx);
    std::nth_element(v.begin(), nth, v.end());
    return *nth;
}

/// Elements above which a request is oversized for the single device and
/// routes to the sharded path.  The explicit config threshold wins; the
/// derived default is the group's per-device staging budget, so anything
/// the single-device pipeline could not stage within its headroom peels
/// off to the out-of-core layer.
std::size_t shard_threshold(const ServerConfig& cfg) noexcept {
    if (cfg.shard_group == nullptr) return std::numeric_limits<std::size_t>::max();
    if (cfg.shard_threshold_elems > 0) return cfg.shard_threshold_elems;
    const auto staging = static_cast<std::size_t>(
        static_cast<double>(cfg.shard_group->mem_capacity_bytes()) *
        core::kShardStagingFraction);
    return std::max<std::size_t>(1, staging / sizeof(float));
}

}  // namespace

double ServerMetrics::latency_percentile(double pct) const {
    return percentile(latencies_ns, pct);
}

SelectServer::SelectServer(simt::Device& dev, ServerConfig cfg)
    : dev_(dev), cfg_(std::move(cfg)), breakers_(cfg_.breaker) {
    cfg_.select.validate(/*exact=*/true);
    if (cfg_.max_batch == 0) cfg_.max_batch = 1;
    busy_until_ns_ = dev_.stream_clock(cfg_.select.stream);
}

SelectServer::~SelectServer() {
    if (dispatcher_running_) stop();
    // Resolve anything still queued: no future is ever abandoned.
    std::map<int, std::deque<Pending>> leftover;
    {
        std::lock_guard<std::mutex> lk(mu_);
        accepting_ = false;
        leftover.swap(tenants_);
        queued_ = 0;
        backlog_ns_ = 0.0;
    }
    for (auto& [tenant, q] : leftover) {
        for (Pending& p : q) {
            Response r;
            r.arrival_ns = p.arrival_ns;
            r.start_ns = r.finish_ns = p.arrival_ns;
            r.status = Status::failure(SelectError::overloaded, "server shutting down");
            p.promise.set_value(std::move(r));
        }
    }
}

Status SelectServer::validate(const Request& req) const {
    const std::size_t n = req.data.size();
    if (n == 0) return Status::failure(SelectError::empty_input, "server: empty request data");
    switch (req.kind) {
        case RequestKind::select:
        case RequestKind::argselect:
            if (req.rank >= n) {
                return Status::failure(SelectError::rank_out_of_range,
                                       "server: rank out of range");
            }
            break;
        case RequestKind::topk:
            if (req.k == 0 || req.k > n) {
                return Status::failure(SelectError::rank_out_of_range,
                                       "server: k out of range");
            }
            break;
        case RequestKind::quantile:
            // try_quantile_rank validates q (NaN / out of [0, 1]).
            break;
    }
    if (req.approx &&
        (req.kind == RequestKind::topk || req.kind == RequestKind::argselect)) {
        return Status::failure(SelectError::invalid_argument,
                               "server: approx mode applies to select/quantile only");
    }
    if (req.deadline_ns < 0.0) {
        return Status::failure(SelectError::invalid_argument,
                               "server: deadline_ns must be >= 0");
    }
    return Status::success();
}

void SelectServer::note_trace_counter_locked(double now, int track, const char* name,
                                             double value) {
    if (!cfg_.record_trace) return;
    trace_counters_.push_back({now, track, name, value});
}

void SelectServer::note_trace_instant_locked(double now, int track, const char* name,
                                             std::string detail) {
    if (!cfg_.record_trace) return;
    trace_instants_.push_back({now, track, name, std::move(detail)});
}

std::future<Response> SelectServer::submit(Request req) {
    std::promise<Response> promise;
    std::future<Response> fut = promise.get_future();

    const Status v = validate(req);
    std::lock_guard<std::mutex> lk(mu_);
    ++metrics_.submitted;
    const double arrival = req.arrival_ns >= 0.0 ? req.arrival_ns : busy_until_ns_;

    auto reject = [&](Status s, const char* trace_name, std::uint64_t& counter) {
        ++counter;
        note_trace_instant_locked(arrival, kAdmissionTrack, trace_name,
                                  std::string(request_kind_name(req.kind)) +
                                      " tenant=" + std::to_string(req.tenant));
        Response r;
        r.status = std::move(s);
        r.arrival_ns = arrival;
        r.start_ns = r.finish_ns = arrival;
        promise.set_value(std::move(r));
        return std::move(fut);
    };

    if (!v.ok()) return reject(v, "invalid", metrics_.failed);
    if (req.kind == RequestKind::quantile) {
        // Quantile maps to a rank at admission; from here on it is a
        // select with the computed rank.
        auto rank = core::try_quantile_rank(req.data.size(), req.q, req.quantile_method);
        if (!rank.ok()) return reject(rank.status(), "invalid", metrics_.failed);
        req.rank = rank.value();
    }
    if (!accepting_) {
        return reject(Status::failure(SelectError::overloaded, "server draining"), "shed",
                      metrics_.shed);
    }
    if (queued_ >= cfg_.queue_capacity) {
        return reject(Status::failure(SelectError::overloaded, "global queue full"), "shed",
                      metrics_.shed);
    }
    std::deque<Pending>& tq = tenants_[req.tenant];
    if (tq.size() >= cfg_.tenant_queue_capacity) {
        return reject(
            Status::failure(SelectError::overloaded,
                            "tenant queue full (tenant " + std::to_string(req.tenant) + ")"),
            "shed", metrics_.shed);
    }

    const double rel_deadline =
        req.deadline_ns > 0.0 ? req.deadline_ns : cfg_.default_deadline_ns;
    const double deadline_abs = rel_deadline > 0.0 ? arrival + rel_deadline : 0.0;
    const double per_elem =
        ewma_ns_per_elem_ > 0.0 ? ewma_ns_per_elem_ : cfg_.est_ns_per_elem;
    const double est = kEstBaseNs + per_elem * static_cast<double>(req.data.size());

    if (cfg_.admit_deadline_check && deadline_abs > 0.0) {
        // Up-front feasibility: the request would start after the device's
        // known backlog; if even the estimate cannot land it inside its
        // budget, reject now rather than half-executing it.
        const double est_start = std::max(busy_until_ns_, arrival) + backlog_ns_;
        if (est_start + est > deadline_abs) {
            return reject(Status::failure(SelectError::deadline_exceeded,
                                          "infeasible deadline at admission"),
                          "deadline_reject", metrics_.deadline_rejected);
        }
    }

    Pending p;
    p.req = req;
    p.promise = std::move(promise);
    p.arrival_ns = arrival;
    p.deadline_abs_ns = deadline_abs;
    p.est_cost_ns = est;
    tq.push_back(std::move(p));
    ++queued_;
    backlog_ns_ += est;
    ++metrics_.admitted;
    note_trace_counter_locked(arrival, kQueueTrack, "queue_depth",
                              static_cast<double>(queued_));
    note_trace_instant_locked(arrival, kAdmissionTrack, "admit",
                              std::string(request_kind_name(req.kind)) +
                                  " tenant=" + std::to_string(req.tenant));
    cv_.notify_one();
    return fut;
}

bool SelectServer::pump() { return pump_internal(0.0, /*limited=*/false); }

bool SelectServer::pump_until(double limit_ns) {
    return pump_internal(limit_ns, /*limited=*/true);
}

bool SelectServer::pump_internal(double limit_ns, bool limited) {
    std::vector<Pending> picked;
    double round_start = 0.0;
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (queued_ == 0) return false;

        double earliest = std::numeric_limits<double>::infinity();
        for (const auto& [tenant, q] : tenants_) {
            if (!q.empty()) earliest = std::min(earliest, q.front().arrival_ns);
        }
        round_start = std::max(busy_until_ns_, earliest);
        if (limited && round_start >= limit_ns) return false;

        // Round-robin fair pickup: one request per tenant per cycle,
        // resuming after the tenant served last round, until the batch is
        // full or no tenant has an arrived request left.
        picked.reserve(cfg_.max_batch);
        int last_served = next_tenant_;
        bool progress = true;
        while (picked.size() < cfg_.max_batch && progress) {
            progress = false;
            auto it = tenants_.upper_bound(next_tenant_);
            for (std::size_t visited = 0; visited < tenants_.size() && picked.size() < cfg_.max_batch;
                 ++visited) {
                if (it == tenants_.end()) it = tenants_.begin();
                std::deque<Pending>& q = it->second;
                if (!q.empty() && q.front().arrival_ns <= round_start) {
                    picked.push_back(std::move(q.front()));
                    q.pop_front();
                    last_served = it->first;
                    progress = true;
                }
                ++it;
            }
            next_tenant_ = last_served;
        }
        if (picked.empty()) return false;
        queued_ -= picked.size();
        for (const Pending& p : picked) backlog_ns_ = std::max(0.0, backlog_ns_ - p.est_cost_ns);
        note_trace_counter_locked(round_start, kQueueTrack, "queue_depth",
                                  static_cast<double>(queued_));
    }
    run_round(std::move(picked), round_start);
    return true;
}

void SelectServer::run_round(std::vector<Pending> picked, double round_start) {
    const int base = cfg_.select.stream;
    // Fast-forward an idle device to the round start so idle gaps between
    // bursts are not charged as service latency.  advance_stream, not
    // wait_event: the round start is a host scheduling decision, not a
    // recorded event, so it must not look like an ordering edge (StreamSan
    // would rightly flag a wait on a timestamp nothing recorded).
    dev_.advance_stream(base, round_start);
    const std::size_t log0 = dev_.planner_log().size();
    const simt::RobustnessCounters rc0 = dev_.robustness();
    const std::uint32_t mask0 = breakers_.sync(dev_, round_start);

    std::vector<InFlight> fl;
    fl.reserve(picked.size());
    for (Pending& p : picked) {
        InFlight f;
        f.p = std::move(p);
        f.resp.arrival_ns = f.p.arrival_ns;
        f.resp.start_ns = round_start;
        f.resp.finish_ns = round_start;
        fl.push_back(std::move(f));
    }

    // Pickup-time deadline recheck: a request that already missed its
    // deadline while queued resolves immediately with the typed error
    // rather than burning device time on an answer nobody can use.
    std::size_t deadline_missed_at_pickup = 0;
    for (InFlight& f : fl) {
        if (f.p.deadline_abs_ns > 0.0 && round_start >= f.p.deadline_abs_ns) {
            f.resp.status = Status::failure(SelectError::deadline_exceeded,
                                            "deadline expired while queued");
            f.resolved = true;
            ++deadline_missed_at_pickup;
        }
    }

    // Degradation ladder (docs/service.md): queue delay past the threshold
    // downgrades degradable exact select/quantile requests to the
    // single-level approximation (bounded rank error, reported).
    std::vector<std::size_t> batch_idx;   // exact select/quantile
    std::vector<std::size_t> approx_idx;  // approx-by-request or degraded
    std::vector<std::size_t> topk_idx;
    std::vector<std::size_t> arg_idx;
    std::vector<std::size_t> shard_idx;  // oversized -> sharded multi-device
    const std::size_t oversized_elems = shard_threshold(cfg_);
    for (std::size_t i = 0; i < fl.size(); ++i) {
        InFlight& f = fl[i];
        if (f.resolved) continue;
        const Request& r = f.p.req;
        const bool selectish =
            r.kind == RequestKind::select || r.kind == RequestKind::quantile;
        if (r.data.size() > oversized_elems && (selectish || r.kind == RequestKind::topk)) {
            // Oversized requests peel off to the out-of-core sharded path
            // (argselect stays single-device: the shard layer is key-only).
            if (selectish && r.approx) f.resp.mode = ResponseMode::approx;
            shard_idx.push_back(i);
        } else if (selectish && r.approx) {
            f.resp.mode = ResponseMode::approx;
            approx_idx.push_back(i);
        } else if (selectish && r.allow_degrade && cfg_.degrade_queue_delay_ns > 0.0 &&
                   round_start - f.p.arrival_ns > cfg_.degrade_queue_delay_ns) {
            f.resp.mode = ResponseMode::degraded;
            approx_idx.push_back(i);
        } else if (selectish) {
            batch_idx.push_back(i);
        } else if (r.kind == RequestKind::topk) {
            topk_idx.push_back(i);
        } else {
            arg_idx.push_back(i);
        }
    }

    std::size_t executed_elems = 0;

    // Exact select/quantile requests coalesce into one BatchExecutor batch
    // over the stream pool; per-problem deadlines ride into the pipeline.
    if (!batch_idx.empty()) {
        std::vector<core::BatchProblem<float>> problems;
        problems.reserve(batch_idx.size());
        for (const std::size_t i : batch_idx) {
            problems.push_back({fl[i].p.req.data, fl[i].p.req.rank, fl[i].p.deadline_abs_ns});
            executed_elems += fl[i].p.req.data.size();
        }
        core::BatchExecutor<float> ex(dev_, cfg_.select,
                                      core::BatchOptions{.streams = cfg_.streams});
        auto res = ex.run(std::span<const core::BatchProblem<float>>(problems));
        if (!res.ok()) {
            for (const std::size_t i : batch_idx) {
                fl[i].resp.status = res.status();
                fl[i].resolved = true;
            }
        } else {
            const auto& items = res.value().items;
            for (std::size_t j = 0; j < batch_idx.size(); ++j) {
                InFlight& f = fl[batch_idx[j]];
                if (items[j].status.ok()) {
                    f.resp.value = items[j].value;
                } else {
                    f.resp.status = items[j].status;
                }
                f.resolved = true;
            }
        }
    }

    // Top-k requests fan over the stream pool as one batch as well.
    if (!topk_idx.empty()) {
        std::vector<core::TopKBatchProblem<float>> problems;
        problems.reserve(topk_idx.size());
        for (const std::size_t i : topk_idx) {
            problems.push_back({fl[i].p.req.data, fl[i].p.req.k});
            executed_elems += fl[i].p.req.data.size();
        }
        auto res = core::try_topk_largest_batch<float>(
            dev_, std::span<const core::TopKBatchProblem<float>>(problems), cfg_.select,
            core::BatchOptions{.streams = cfg_.streams});
        if (!res.ok()) {
            for (const std::size_t i : topk_idx) {
                fl[i].resp.status = res.status();
                fl[i].resolved = true;
            }
        } else {
            auto& items = res.value().items;
            for (std::size_t j = 0; j < topk_idx.size(); ++j) {
                InFlight& f = fl[topk_idx[j]];
                f.resp.value = items[j].threshold;
                f.resp.values = std::move(items[j].elements);
                f.resolved = true;
            }
        }
    }

    // Approximate (requested or degraded) selections: one bucketing level
    // each, serially on the base stream -- cheap by construction.
    for (const std::size_t i : approx_idx) {
        InFlight& f = fl[i];
        executed_elems += f.p.req.data.size();
        core::SampleSelectConfig acfg = cfg_.select;
        auto res = core::try_approx_select<float>(dev_, f.p.req.data, f.p.req.rank, acfg);
        if (res.ok()) {
            f.resp.value = res.value().value;
            f.resp.rank_error = res.value().rank_error;
            f.resp.rank_error_bound = res.value().max_bucket / 2;
            f.resp.backend = "sample";
        } else {
            f.resp.status = res.status();
        }
        f.resolved = true;
        if (f.resp.mode == ResponseMode::degraded) {
            std::lock_guard<std::mutex> lk(mu_);
            note_trace_instant_locked(round_start, kAdmissionTrack, "degrade",
                                      "tenant=" + std::to_string(f.p.req.tenant));
        }
    }

    // Oversized requests run serially through the sharded multi-device
    // front-ends on the configured group.  The group lives on its own
    // simulated clock; the round charges the sharded work's simulated
    // duration onto the server's base stream so latency metrics and the
    // EWMA see the real cost.
    double shard_ns = 0.0;
    for (const std::size_t i : shard_idx) {
        InFlight& f = fl[i];
        executed_elems += f.p.req.data.size();
        simt::DeviceGroup& g = *cfg_.shard_group;
        core::ShardSelectConfig scfg;
        scfg.select = cfg_.select;
        scfg.select.stream = 0;  // the shard layer leases its own streams
        if (f.p.deadline_abs_ns > 0.0) scfg.select.deadline_ns = f.p.deadline_abs_ns;
        if (f.p.req.kind == RequestKind::topk) {
            auto res = core::try_sharded_topk<float>(g, f.p.req.data, f.p.req.k, scfg);
            if (res.ok()) {
                f.resp.value = res.value().threshold;
                f.resp.values = std::move(res.value().elements);
                shard_ns += res.value().acct.sim_ns;
            } else {
                f.resp.status = res.status();
            }
        } else if (f.resp.mode == ResponseMode::approx) {
            auto res =
                core::try_sharded_approx_select<float>(g, f.p.req.data, f.p.req.rank, scfg);
            if (res.ok()) {
                f.resp.value = res.value().value;
                f.resp.rank_error_bound = res.value().rank_error_bound;
                shard_ns += res.value().acct.sim_ns;
            } else {
                f.resp.status = res.status();
            }
        } else {
            auto res = core::try_sharded_select<float>(g, f.p.req.data, f.p.req.rank, scfg);
            if (res.ok()) {
                f.resp.value = res.value().value;
                shard_ns += res.value().acct.sim_ns;
            } else {
                f.resp.status = res.status();
            }
        }
        f.resp.backend = "sample";
        f.resolved = true;
        std::lock_guard<std::mutex> lk(mu_);
        ++metrics_.sharded;
        note_trace_instant_locked(round_start, kAdmissionTrack, "shard_route",
                                  "tenant=" + std::to_string(f.p.req.tenant) +
                                      " n=" + std::to_string(f.p.req.data.size()));
    }
    if (shard_ns > 0.0) {
        dev_.advance_stream(base, std::max(round_start, dev_.stream_clock(base)) + shard_ns);
    }

    // Argselect runs the key/payload pipeline serially (its staging pass
    // builds ArgPairs, which the float batch cannot share).
    for (const std::size_t i : arg_idx) {
        InFlight& f = fl[i];
        executed_elems += f.p.req.data.size();
        core::SampleSelectConfig acfg = cfg_.select;
        if (f.p.deadline_abs_ns > 0.0) acfg.deadline_ns = f.p.deadline_abs_ns;
        auto res = core::try_argselect(dev_, f.p.req.data, f.p.req.rank, acfg);
        if (res.ok()) {
            f.resp.value = res.value().key;
            f.resp.index = res.value().index;
        } else {
            f.resp.status = res.status();
        }
        f.resolved = true;
    }

    const double finish = dev_.stream_clock(base);

    // Feed the breakers: backends planned during this round succeed or
    // fail together with the round.  Terminal fault codes and heavy
    // fault-retry pressure (retries that succeeded, but only just) both
    // count as failure evidence.
    const auto& log = dev_.planner_log();
    bool saw[3] = {false, false, false};
    for (std::size_t i = log0; i < log.size(); ++i) {
        if (auto k = core::parse_backend(log[i].backend)) {
            saw[static_cast<std::size_t>(*k)] = true;
        }
    }
    bool any_fault = false;
    for (const InFlight& f : fl) {
        if (!f.resp.status.ok() && is_fault_code(f.resp.status.code)) any_fault = true;
    }
    const simt::RobustnessCounters& rc1 = dev_.robustness();
    const std::uint64_t retry_delta = (rc1.alloc_retries + rc1.launch_retries) -
                                      (rc0.alloc_retries + rc0.launch_retries);
    const bool round_failed = any_fault || retry_delta >= cfg_.breaker.retry_pressure_threshold;
    bool any_seen = saw[0] || saw[1] || saw[2];
    for (const core::BackendKind k :
         {core::BackendKind::sample, core::BackendKind::radix, core::BackendKind::bitonic}) {
        const bool used = any_seen ? saw[static_cast<std::size_t>(k)]
                                   : k == core::BackendKind::sample;
        if (!used) continue;
        if (round_failed) {
            breakers_.of(k).record_failure(finish);
        } else {
            breakers_.of(k).record_success(finish);
        }
    }
    const std::uint32_t mask1 = breakers_.sync(dev_, finish);

    // Resolve every picked future and fold the round into the metrics.
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (mask1 != mask0) {
            note_trace_instant_locked(finish, kBreakerTrack, "breaker_mask",
                                      "mask=" + std::to_string(mask1));
        }
        busy_until_ns_ = std::max(busy_until_ns_, finish);
        if (executed_elems > 0 && finish > round_start) {
            const double obs = (finish - round_start) / static_cast<double>(executed_elems);
            ewma_ns_per_elem_ =
                ewma_ns_per_elem_ <= 0.0 ? obs : 0.8 * ewma_ns_per_elem_ + 0.2 * obs;
        }
        metrics_.deadline_rejected += deadline_missed_at_pickup;
        for (InFlight& f : fl) {
            const bool ran = !(f.p.deadline_abs_ns > 0.0 &&
                               round_start >= f.p.deadline_abs_ns);  // pickup reject?
            if (ran) f.resp.finish_ns = finish;
            if (f.resp.status.ok()) {
                ++metrics_.completed;
                if (f.resp.mode == ResponseMode::degraded) ++metrics_.degraded;
                metrics_.latencies_ns.push_back(f.resp.latency_ns());
            } else if (f.resp.status.code == SelectError::deadline_exceeded) {
                if (ran) ++metrics_.deadline_aborted;
            } else {
                ++metrics_.failed;
            }
        }
    }
    for (InFlight& f : fl) f.p.promise.set_value(std::move(f.resp));
}

void SelectServer::drain() {
    {
        std::lock_guard<std::mutex> lk(mu_);
        accepting_ = false;
    }
    if (dispatcher_running_) {
        // The dispatcher owns the device; wait for it to empty the queue.
        std::unique_lock<std::mutex> lk(mu_);
        cv_.wait(lk, [&] { return queued_ == 0; });
        return;
    }
    while (pump()) {
    }
}

void SelectServer::reopen() {
    std::lock_guard<std::mutex> lk(mu_);
    accepting_ = true;
}

void SelectServer::start() {
    if (dispatcher_running_) return;
    stop_requested_ = false;
    dispatcher_running_ = true;
    dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

void SelectServer::stop() {
    if (!dispatcher_running_) return;
    {
        std::lock_guard<std::mutex> lk(mu_);
        stop_requested_ = true;
    }
    cv_.notify_all();
    dispatcher_.join();
    dispatcher_running_ = false;
    {
        std::lock_guard<std::mutex> lk(mu_);
        stop_requested_ = false;
    }
}

void SelectServer::dispatcher_loop() {
    for (;;) {
        {
            std::unique_lock<std::mutex> lk(mu_);
            cv_.wait(lk, [&] { return queued_ > 0 || stop_requested_; });
            if (stop_requested_ && queued_ == 0) return;
        }
        pump();
        cv_.notify_all();  // wake drain()/stop() waiters watching queued_
    }
}

double SelectServer::now_ns() const {
    std::lock_guard<std::mutex> lk(mu_);
    return busy_until_ns_;
}

std::size_t SelectServer::queue_depth() const {
    std::lock_guard<std::mutex> lk(mu_);
    return queued_;
}

ServerMetrics SelectServer::metrics() const {
    std::lock_guard<std::mutex> lk(mu_);
    return metrics_;
}

std::vector<simt::TraceCounter> SelectServer::trace_counters() const {
    std::lock_guard<std::mutex> lk(mu_);
    return trace_counters_;
}

std::vector<simt::TraceInstant> SelectServer::trace_instants() const {
    std::vector<simt::TraceInstant> out;
    {
        std::lock_guard<std::mutex> lk(mu_);
        out = trace_instants_;
    }
    // Collect-mode StreamSan hazards ride along as their own annotation
    // track (kStreamSanTrack, above the supervisor tracks), so a
    // GPUSEL_STREAMSAN=2 load run renders ordering hazards inline with the
    // admission/breaker timeline (docs/streamsan.md).
    if (const simt::StreamSan* ssan = dev_.stream_sanitizer();
        ssan != nullptr && ssan->mode() == simt::StreamSanMode::collect) {
        const std::vector<simt::TraceInstant>& hz = ssan->trace_instants();
        out.insert(out.end(), hz.begin(), hz.end());
    }
    return out;
}

}  // namespace gpusel::server
