#include "data/distributions.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "data/rng.hpp"

namespace gpusel::data {

std::string to_string(Distribution d) {
    switch (d) {
        case Distribution::uniform_distinct: return "uniform_distinct";
        case Distribution::uniform_real: return "uniform_real";
        case Distribution::normal: return "normal";
        case Distribution::exponential: return "exponential";
        case Distribution::sorted_ascending: return "sorted_ascending";
        case Distribution::sorted_descending: return "sorted_descending";
        case Distribution::organ_pipe: return "organ_pipe";
        case Distribution::adversarial_cluster: return "adversarial_cluster";
        case Distribution::adversarial_geometric: return "adversarial_geometric";
        case Distribution::zipf: return "zipf";
        case Distribution::lognormal: return "lognormal";
    }
    return "unknown";
}

const std::vector<Distribution>& all_distributions() {
    static const std::vector<Distribution> all{
        Distribution::uniform_distinct,  Distribution::uniform_real,
        Distribution::normal,            Distribution::exponential,
        Distribution::sorted_ascending,  Distribution::sorted_descending,
        Distribution::organ_pipe,        Distribution::adversarial_cluster,
        Distribution::adversarial_geometric, Distribution::zipf,
        Distribution::lognormal,
    };
    return all;
}

namespace {

/// Box-Muller standard normal from two uniforms.
double sample_normal(Xoshiro256& rng) {
    const double u1 = std::max(rng.uniform(), 1e-300);
    const double u2 = rng.uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

}  // namespace

template <typename T>
std::vector<T> generate(const DatasetSpec& spec) {
    if (spec.n == 0) return {};
    Xoshiro256 rng(spec.seed);
    std::vector<T> out(spec.n);
    switch (spec.dist) {
        case Distribution::uniform_distinct: {
            const std::size_t d =
                spec.distinct_values == 0 ? spec.n : std::min(spec.distinct_values, spec.n);
            if (d == spec.n) {
                // All distinct: a random permutation of evenly spaced reals,
                // jittered so values are not trivially arithmetic.
                for (std::size_t i = 0; i < spec.n; ++i) {
                    out[i] = static_cast<T>(static_cast<double>(i) +
                                            0.25 * (rng.uniform() - 0.5));
                }
                for (std::size_t i = spec.n - 1; i > 0; --i) {
                    std::swap(out[i], out[rng.bounded(i + 1)]);
                }
            } else {
                // d distinct random values; each element uniform over them.
                std::vector<T> values(d);
                for (auto& v : values) v = static_cast<T>(rng.uniform() * 1e6);
                std::sort(values.begin(), values.end());
                values.erase(std::unique(values.begin(), values.end()), values.end());
                for (auto& x : out) x = values[rng.bounded(values.size())];
            }
            break;
        }
        case Distribution::uniform_real:
            for (auto& x : out) x = static_cast<T>(rng.uniform());
            break;
        case Distribution::normal:
            for (auto& x : out) x = static_cast<T>(sample_normal(rng));
            break;
        case Distribution::exponential:
            for (auto& x : out) {
                x = static_cast<T>(-std::log(std::max(rng.uniform(), 1e-300)));
            }
            break;
        case Distribution::sorted_ascending:
            for (std::size_t i = 0; i < spec.n; ++i) out[i] = static_cast<T>(i);
            break;
        case Distribution::sorted_descending:
            for (std::size_t i = 0; i < spec.n; ++i) out[i] = static_cast<T>(spec.n - 1 - i);
            break;
        case Distribution::organ_pipe:
            for (std::size_t i = 0; i < spec.n; ++i) {
                out[i] = static_cast<T>(std::min(i, spec.n - 1 - i));
            }
            break;
        case Distribution::adversarial_cluster: {
            // 99% in [0.5, 0.5 + 1e-9), 1% outliers up to ~1e9.  A uniform
            // value split of [min, max] into b buckets leaves the whole
            // cluster -- and thus almost every rank -- in a single bucket.
            for (auto& x : out) {
                if (rng.uniform() < 0.99) {
                    x = static_cast<T>(0.5 + rng.uniform() * 1e-9);
                } else {
                    x = static_cast<T>(rng.uniform() * 1e9);
                }
            }
            break;
        }
        case Distribution::adversarial_geometric: {
            // Exponentially spaced magnitudes: x = 2^-k, k uniform in
            // [0, 60).  Every uniform value split isolates only the top few
            // magnitudes per level.
            for (auto& x : out) {
                const double k =
                    rng.uniform() * (std::is_same_v<T, float> ? 60.0 : 60.0);
                x = static_cast<T>(std::exp2(-k));
            }
            break;
        }
        case Distribution::zipf: {
            // Inverse-CDF sampling of a Zipf(alpha) rank r in [1, 65536];
            // the element value is the rank itself, so popular values
            // repeat millions of times at large n.
            const double alpha = 1.1;
            const double one_minus = 1.0 - alpha;
            const double max_rank = 65536.0;
            const double norm = (std::pow(max_rank, one_minus) - 1.0) / one_minus;
            for (auto& x : out) {
                const double u = rng.uniform() * norm;
                const double r = std::pow(u * one_minus + 1.0, 1.0 / one_minus);
                x = static_cast<T>(std::floor(std::min(r, max_rank)));
            }
            break;
        }
        case Distribution::lognormal:
            for (auto& x : out) x = static_cast<T>(std::exp(2.0 * sample_normal(rng)));
            break;
        default:
            throw std::invalid_argument("unknown distribution");
    }
    return out;
}

std::size_t random_rank(std::size_t n, std::uint64_t seed) {
    if (n == 0) throw std::invalid_argument("random_rank: empty dataset");
    Xoshiro256 rng(seed ^ 0xa5a5a5a5a5a5a5a5ULL);
    return rng.bounded(n);
}

template std::vector<float> generate<float>(const DatasetSpec&);
template std::vector<double> generate<double>(const DatasetSpec&);

}  // namespace gpusel::data
