#pragma once
// Input dataset generators (Sec. V-A of the paper, plus adversarial
// distributions for the robustness claims of Sec. V-D).
//
// The paper's primary inputs are "uniform distributions across a
// pre-defined set of distinct values": n elements drawn uniformly from d
// distinct values, with d in {1, 16, 128, 1024, n}.  Since SampleSelect is
// comparison-based it is sensitive only to the *rank* distribution, but the
// value-range-splitting baselines (BucketSelect/RadixSelect) are not -- the
// adversarial generators exploit exactly that.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace gpusel::data {

enum class Distribution {
    /// n elements uniform over `distinct_values` distinct reals (the
    /// paper's main workload; distinct_values == n gives all-distinct).
    uniform_distinct,
    /// i.i.d. uniform reals on [0, 1).
    uniform_real,
    /// i.i.d. standard normal.
    normal,
    /// i.i.d. exponential(1).
    exponential,
    /// 0, 1, 2, ... (already sorted).
    sorted_ascending,
    /// n-1, ..., 1, 0.
    sorted_descending,
    /// organ pipe: 0, 1, ..., n/2, ..., 1, 0.
    organ_pipe,
    /// Adversarial for value-range bucketing: 99% of the elements fall in a
    /// cluster of width 1e-9 while outliers stretch the value range to
    /// ~1e9; uniform value splitting puts almost everything in one bucket.
    adversarial_cluster,
    /// Adversarial for value-range bucketing: exponentially spaced values
    /// x_i ~ 2^-i; every uniform value split isolates only the largest few.
    adversarial_geometric,
    /// Zipf-like (alpha = 1.1) ranks over 64k distinct values: heavy
    /// duplication of the most popular values, a realistic "top-k over
    /// term frequencies" workload.
    zipf,
    /// log-normal (mu = 0, sigma = 2): smooth but strongly skewed; a
    /// latency-like distribution.
    lognormal,
};

[[nodiscard]] std::string to_string(Distribution d);
/// All distributions, for parameterized test sweeps.
[[nodiscard]] const std::vector<Distribution>& all_distributions();

struct DatasetSpec {
    std::size_t n = 0;
    Distribution dist = Distribution::uniform_distinct;
    /// Number of distinct values for uniform_distinct (0 means n).
    std::size_t distinct_values = 0;
    std::uint64_t seed = 42;
};

/// Generates a dataset according to spec.  T is float or double.
template <typename T>
[[nodiscard]] std::vector<T> generate(const DatasetSpec& spec);

/// Draws a target rank uniformly from [0, n) (Sec. V-A: "we also chose a
/// random rank uniformly at random to simulate a variety of workloads").
[[nodiscard]] std::size_t random_rank(std::size_t n, std::uint64_t seed);

extern template std::vector<float> generate<float>(const DatasetSpec&);
extern template std::vector<double> generate<double>(const DatasetSpec&);

}  // namespace gpusel::data
