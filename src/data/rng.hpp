#pragma once
// Deterministic pseudo-random number generation for dataset synthesis and
// splitter sampling.
//
// splitmix64 is used for seeding, xoshiro256** for the bulk stream.  Both
// are tiny, fast and reproducible across platforms -- every experiment in
// the benchmark harness is seeded, so paper-figure regeneration is exactly
// repeatable.

#include <cstdint>

namespace gpusel::data {

/// splitmix64: good avalanche, used to expand one seed into stream state.
class SplitMix64 {
public:
    explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}
    constexpr std::uint64_t next() noexcept {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

private:
    std::uint64_t state_;
};

/// xoshiro256**: fast general-purpose 64-bit generator.
class Xoshiro256 {
public:
    using result_type = std::uint64_t;

    explicit constexpr Xoshiro256(std::uint64_t seed) noexcept {
        SplitMix64 sm(seed);
        for (auto& s : s_) s = sm.next();
    }

    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

    constexpr std::uint64_t operator()() noexcept {
        const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const std::uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /// Uniform double in [0, 1).
    constexpr double uniform() noexcept {
        return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    }

    /// Uniform integer in [0, bound) without modulo bias for bound << 2^64.
    constexpr std::uint64_t bounded(std::uint64_t bound) noexcept {
        // Lemire's multiply-shift reduction.
        const std::uint64_t x = (*this)();
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(x) * static_cast<unsigned __int128>(bound)) >> 64);
    }

private:
    static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
        return (x << k) | (x >> (64 - k));
    }
    std::uint64_t s_[4]{};
};

}  // namespace gpusel::data
