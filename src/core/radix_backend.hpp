#pragma once
// The radix selection backend (docs/planner.md): MSD digit descent over
// the order-preserving key image, built from the pipeline-grade kernels in
// core/radix_kernel.hpp.  Drivers follow the same hardening contract as
// the sample pipeline -- pooled scratch on the selection's stream, bounded
// fault retry per step (with_fault_retry), typed Status errors -- and fill
// the same result structs, so the backend interface (core/backend.hpp) can
// swap it in wherever sample-select ran.
//
// The descent walks fused histogram passes: one radix_count_fused launch
// histograms up to kRadixMaxFusedLevels consecutive digits, and while the
// located bin holds the whole buffer (shared digit prefix: all-equal and
// heavy-duplicate inputs) the host consumes deeper digits from the same
// pass without filtering or re-reading the data.  A buffer whose keys are
// fully consumed (shift below zero) is all-equal; reported as an
// equality_exit like the sample recursion's equality bucket.

#include <cstdint>

#include "core/config.hpp"
#include "core/pipeline.hpp"
#include "core/sample_select.hpp"
#include "core/status.hpp"
#include "core/topk.hpp"

namespace gpusel::core {

/// Rank selection over staged NaN-free data (consumes the holder; the
/// backing buffer is recycled as a ping-pong target).  `stream` as in
/// try_sample_select_staged.  result.levels counts histogram passes (a
/// fused pass covering several digits is one level).
template <typename T>
[[nodiscard]] Result<SelectResult<T>> try_radix_select_staged(simt::Device& dev,
                                                              DataHolder<T> data,
                                                              std::size_t rank,
                                                              const SampleSelectConfig& cfg,
                                                              int stream = -1);

/// The k largest elements of staged NaN-free data (unordered), fused
/// upper-digit accumulation per level.
template <typename T>
[[nodiscard]] Result<TopKResult<T>> try_radix_topk_staged(simt::Device& dev, DataHolder<T> data,
                                                          std::size_t k,
                                                          const SampleSelectConfig& cfg,
                                                          int stream = -1);

extern template Result<SelectResult<float>> try_radix_select_staged<float>(
    simt::Device&, DataHolder<float>, std::size_t, const SampleSelectConfig&, int);
extern template Result<SelectResult<double>> try_radix_select_staged<double>(
    simt::Device&, DataHolder<double>, std::size_t, const SampleSelectConfig&, int);
extern template Result<SelectResult<ArgPair>> try_radix_select_staged<ArgPair>(
    simt::Device&, DataHolder<ArgPair>, std::size_t, const SampleSelectConfig&, int);
extern template Result<TopKResult<float>> try_radix_topk_staged<float>(
    simt::Device&, DataHolder<float>, std::size_t, const SampleSelectConfig&, int);
extern template Result<TopKResult<double>> try_radix_topk_staged<double>(
    simt::Device&, DataHolder<double>, std::size_t, const SampleSelectConfig&, int);
extern template Result<TopKResult<ArgPair>> try_radix_topk_staged<ArgPair>(
    simt::Device&, DataHolder<ArgPair>, std::size_t, const SampleSelectConfig&, int);

}  // namespace gpusel::core
