#pragma once
// Tuning parameters of SampleSelect and QuickSelect (Sec. IV-H of the
// paper): work distribution, sample size, bucket count, unrolling, atomic
// flavour and base-case size.  All are runtime options so the benchmark
// harness can sweep them (Fig. 7).

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "simt/block.hpp"

namespace gpusel::core {

/// Exact SampleSelect stores one-byte oracles, limiting it to 256 buckets
/// (Sec. IV-B b).
inline constexpr int kMaxExactBuckets = 256;
/// Approximate SampleSelect needs no oracles; the bucket count is limited
/// by shared memory only (b <= 1024 on older GPUs, Sec. V-G).
inline constexpr int kMaxApproxBuckets = 1024;

/// What a selection does when float keys contain NaN (docs/robustness.md).
/// The default places all NaNs at the top of the total order
/// (-inf < ... < -0 == +0 < ... < +inf < NaN, all NaNs mutually equal),
/// matching the IEEE totalOrder direction for positive NaNs.
enum class NanPolicy {
    /// NaNs sort above +inf; a rank inside the NaN tail yields quiet NaN.
    propagate_largest,
    /// Any NaN key fails the call with SelectError::nan_keys_rejected.
    reject,
};

struct SampleSelectConfig {
    /// Number of buckets b (power of two).
    int num_buckets = 256;
    /// Splitter sample size s (controls bucket-size imbalance, Sec. II-B);
    /// 0 picks the default max(1024, 4 * num_buckets).
    int sample_size = 0;
    /// Threads per block for the data-parallel kernels.
    int block_dim = 256;
    /// Loop unrolling depth (Sec. IV-H d).
    int unroll = 1;
    /// Counter placement: shared-memory hierarchy or direct global atomics
    /// (Sec. IV-G).
    simt::AtomicSpace atomic_space = simt::AtomicSpace::shared;
    /// Warp-aggregated atomics (Fig. 6).
    bool warp_aggregation = false;
    /// Input size below which a bitonic-sort base case finishes selection.
    std::size_t base_case_size = 1024;
    /// Seed for splitter sampling.
    std::uint64_t seed = 123;
    /// Simulator stream all kernels of this selection are enqueued on
    /// (0 = default stream); independent selections on different streams
    /// overlap in simulated time.
    int stream = 0;
    /// Guaranteed-progress policy: stalled levels (the rank bucket did not
    /// shrink) retried with a fresh splitter sample before the descent
    /// falls back to deterministic median-of-9 tripartition levels.
    /// 0 = fall back on the first stall.
    int max_stalled_levels = 4;
    /// Hard cap on total bucketing levels (including resampled and
    /// fallback levels); exceeding it fails with
    /// SelectError::depth_exceeded, so every input provably terminates.
    int max_levels = 128;
    /// NaN key handling for float/double inputs (docs/robustness.md).
    NanPolicy nan_policy = NanPolicy::propagate_largest;
    /// Diagnostics/testing: skip sampling entirely and descend through the
    /// deterministic fallback levels from the start.  Exercises the
    /// guaranteed-progress path, which healthy sampled descents can never
    /// reach (a sampled splitter always carves off its own equality
    /// bucket, so a level never stalls naturally).
    bool force_fallback = false;
    /// Absolute simulated-clock deadline in nanoseconds; 0 disarms the
    /// check.  Armed descents compare the selection stream's clock against
    /// it between bucketing levels and abort with
    /// SelectError::deadline_exceeded once the budget is overrun -- the
    /// server's defence-in-depth behind up-front admission control
    /// (docs/service.md).  Work already enqueued on the stream is complete
    /// and consistent; the selection simply reports no value.
    double deadline_ns = 0.0;

    [[nodiscard]] int effective_sample_size() const noexcept {
        if (sample_size > 0) return sample_size;
        const int s = 4 * num_buckets;
        return s < 1024 ? 1024 : s;
    }
    /// Height of the splitter search tree: log2(num_buckets).
    [[nodiscard]] int tree_height() const noexcept {
        int h = 0;
        while ((1 << h) < num_buckets) ++h;
        return h;
    }

    /// Validates the configuration; `exact` selects the stricter oracle
    /// bucket limit.
    void validate(bool exact = true) const {
        auto fail = [](const std::string& msg) { throw std::invalid_argument(msg); };
        if (num_buckets < 2 || (num_buckets & (num_buckets - 1)) != 0) {
            fail("num_buckets must be a power of two >= 2");
        }
        const int limit = exact ? kMaxExactBuckets : kMaxApproxBuckets;
        if (num_buckets > limit) {
            fail("num_buckets exceeds " + std::to_string(limit) +
                 (exact ? " (one-byte oracles)" : " (shared-memory capacity)"));
        }
        const int s = effective_sample_size();
        if (s < num_buckets) fail("sample_size must be >= num_buckets");
        if (s > 4096) fail("sample_size exceeds the single-block bitonic sort capacity (4096)");
        if (block_dim <= 0 || block_dim % simt::kWarpSize != 0 || block_dim > 1024) {
            fail("block_dim must be a positive multiple of 32, at most 1024");
        }
        if (unroll < 1 || unroll > 16) fail("unroll must be in [1, 16]");
        if (base_case_size < 2 || base_case_size > 4096) {
            fail("base_case_size must be in [2, 4096] (bitonic sort capacity)");
        }
        if (max_stalled_levels < 0) fail("max_stalled_levels must be >= 0");
        if (max_levels < 1) fail("max_levels must be >= 1");
        if (deadline_ns < 0.0) fail("deadline_ns must be >= 0 (absolute sim-ns, 0 = none)");
    }
};

/// QuickSelect shares most knobs; the pivot comes from a small sorted
/// sample's median (Sec. IV-D: bitonic sorting is used for pivot selection).
struct QuickSelectConfig {
    int pivot_sample_size = 32;
    int block_dim = 256;
    int unroll = 1;
    simt::AtomicSpace atomic_space = simt::AtomicSpace::shared;
    bool warp_aggregation = false;
    std::size_t base_case_size = 1024;
    std::uint64_t seed = 123;
    /// Simulator stream (see SampleSelectConfig::stream).
    int stream = 0;

    void validate() const {
        auto fail = [](const std::string& msg) { throw std::invalid_argument(msg); };
        if (pivot_sample_size < 1 || pivot_sample_size > 4096) {
            fail("pivot_sample_size must be in [1, 4096]");
        }
        if (block_dim <= 0 || block_dim % simt::kWarpSize != 0 || block_dim > 1024) {
            fail("block_dim must be a positive multiple of 32, at most 1024");
        }
        if (unroll < 1 || unroll > 16) fail("unroll must be in [1, 16]");
        if (base_case_size < 2 || base_case_size > 4096) {
            fail("base_case_size must be in [2, 4096] (bitonic sort capacity)");
        }
    }
};

}  // namespace gpusel::core
