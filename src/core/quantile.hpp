#pragma once
// Quantile convenience layer over the selection algorithms: maps q in [0,1]
// to a 0-based rank with an explicit tie-breaking method and dispatches to
// exact SampleSelect, the approximate variant, or the multi-rank driver —
// all of which execute their bucketing levels through core::SelectionPipeline
// (see docs/architecture.md), so quantile queries share the pooled device
// arena with every other front-end.  ("Quantile selection in order
// statistics" is the first application the paper's introduction lists.)

#include <cstddef>
#include <span>
#include <vector>

#include "core/approx_select.hpp"
#include "core/multiselect.hpp"
#include "core/sample_select.hpp"

namespace gpusel::core {

/// How a non-integer quantile position maps to a rank.
enum class QuantileMethod {
    lower,    ///< floor((n-1) q)
    nearest,  ///< round((n-1) q)
    higher,   ///< ceil((n-1) q)
};

/// Rank of the q-quantile of an n-element dataset.  q must be in [0, 1],
/// n > 0.
[[nodiscard]] std::size_t quantile_rank(std::size_t n, double q,
                                        QuantileMethod method = QuantileMethod::nearest);

/// Fault-hardened quantile_rank: empty datasets and out-of-range (or NaN)
/// quantile positions come back as a typed Status.
[[nodiscard]] Result<std::size_t> try_quantile_rank(
    std::size_t n, double q, QuantileMethod method = QuantileMethod::nearest);

/// Exact q-quantile via SampleSelect.
template <typename T>
[[nodiscard]] T quantile(simt::Device& dev, std::span<const T> data, double q,
                         const SampleSelectConfig& cfg = {},
                         QuantileMethod method = QuantileMethod::nearest) {
    return sample_select<T>(dev, data, quantile_rank(data.size(), q, method), cfg).value;
}

/// Fault-hardened exact q-quantile: bad quantile positions and every
/// selection failure mode surface as a typed Status.
template <typename T>
[[nodiscard]] Result<T> try_quantile(simt::Device& dev, std::span<const T> data, double q,
                                     const SampleSelectConfig& cfg = {},
                                     QuantileMethod method = QuantileMethod::nearest) {
    auto rank = try_quantile_rank(data.size(), q, method);
    if (!rank.ok()) return rank.status();
    auto sel = try_sample_select<T>(dev, data, rank.value(), cfg);
    if (!sel.ok()) return sel.status();
    return sel.value().value;
}

/// Approximate q-quantile (single bucketing level).
template <typename T>
[[nodiscard]] ApproxResult<T> approx_quantile(simt::Device& dev, std::span<const T> data,
                                              double q, const SampleSelectConfig& cfg = {},
                                              QuantileMethod method = QuantileMethod::nearest) {
    return approx_select<T>(dev, data, quantile_rank(data.size(), q, method), cfg);
}

/// Exact multi-quantile via the shared-recursion multi-rank driver.
template <typename T>
[[nodiscard]] std::vector<T> quantiles(simt::Device& dev, std::span<const T> data,
                                       std::span<const double> qs,
                                       const SampleSelectConfig& cfg = {},
                                       QuantileMethod method = QuantileMethod::nearest) {
    std::vector<std::size_t> ranks(qs.size());
    for (std::size_t i = 0; i < qs.size(); ++i) {
        ranks[i] = quantile_rank(data.size(), qs[i], method);
    }
    return multi_select<T>(dev, data, ranks, cfg).values;
}

/// Exact median (the classic special case).
template <typename T>
[[nodiscard]] T median(simt::Device& dev, std::span<const T> data,
                       const SampleSelectConfig& cfg = {}) {
    return quantile<T>(dev, data, 0.5, cfg, QuantileMethod::lower);
}

}  // namespace gpusel::core
