#pragma once
// Approximate SampleSelect (Sec. II-C and V-G): a single recursion level.
// After grouping elements into buckets, the splitter ranks r_i are free
// byproducts (the bucket-count prefix sums); the splitter whose rank is
// closest to the target rank k is returned as the approximate k-th order
// statistic.  No oracles are written and no filter runs, which radically
// reduces the memory work; the bucket count (up to 1024, shared-memory
// limited) controls the rank-error bound of half the maximum bucket size.

#include <cstdint>
#include <span>
#include <vector>

#include "core/config.hpp"
#include "core/status.hpp"
#include "simt/device.hpp"

namespace gpusel::core {

template <typename T>
struct ApproxResult {
    /// The chosen splitter (approximate k-th smallest element).
    T value{};
    /// The splitter's exact rank r_i (known from the bucket prefix sums).
    std::size_t splitter_rank = 0;
    /// |r_i - k|: the rank error, exact by construction.
    std::size_t rank_error = 0;
    /// Largest bucket size of this level (the paper's error bound is half
    /// of this).
    std::size_t max_bucket = 0;
    /// Simulated duration [ns].
    double sim_ns = 0.0;
    std::uint64_t launches = 0;
};

/// Approximates the element of the given rank with one bucketing level.
template <typename T>
[[nodiscard]] ApproxResult<T> approx_select(simt::Device& dev, std::span<const T> input,
                                            std::size_t rank, const SampleSelectConfig& cfg);

/// Multi-rank approximation: the bucket prefix sums of a single counting
/// level contain the exact ranks of *all* splitters, so approximating any
/// number of target ranks costs one pass.  points[i] answers ranks[i].
template <typename T>
struct ApproxMultiResult {
    std::vector<ApproxResult<T>> points;
    double sim_ns = 0.0;
    std::uint64_t launches = 0;
};

template <typename T>
[[nodiscard]] ApproxMultiResult<T> approx_multi_select(simt::Device& dev,
                                                       std::span<const T> input,
                                                       std::span<const std::size_t> ranks,
                                                       const SampleSelectConfig& cfg);

/// Fault-hardened variants: typed Status for bad arguments, out-of-range
/// ranks, rejected NaN keys and exhausted fault retries.  Under
/// NanPolicy::propagate_largest a rank inside the NaN tail answers quiet
/// NaN with zero rank error (every tail element is NaN).
template <typename T>
[[nodiscard]] Result<ApproxMultiResult<T>> try_approx_multi_select(
    simt::Device& dev, std::span<const T> input, std::span<const std::size_t> ranks,
    const SampleSelectConfig& cfg);

template <typename T>
[[nodiscard]] Result<ApproxResult<T>> try_approx_select(simt::Device& dev,
                                                        std::span<const T> input,
                                                        std::size_t rank,
                                                        const SampleSelectConfig& cfg);

/// Device-resident variant (does not copy the input).
template <typename T>
[[nodiscard]] ApproxResult<T> approx_select_device(simt::Device& dev, std::span<const T> data,
                                                   std::size_t rank,
                                                   const SampleSelectConfig& cfg);

extern template Result<ApproxMultiResult<float>> try_approx_multi_select<float>(
    simt::Device&, std::span<const float>, std::span<const std::size_t>,
    const SampleSelectConfig&);
extern template Result<ApproxMultiResult<double>> try_approx_multi_select<double>(
    simt::Device&, std::span<const double>, std::span<const std::size_t>,
    const SampleSelectConfig&);
extern template Result<ApproxResult<float>> try_approx_select<float>(simt::Device&,
                                                                     std::span<const float>,
                                                                     std::size_t,
                                                                     const SampleSelectConfig&);
extern template Result<ApproxResult<double>> try_approx_select<double>(simt::Device&,
                                                                       std::span<const double>,
                                                                       std::size_t,
                                                                       const SampleSelectConfig&);
extern template ApproxMultiResult<float> approx_multi_select<float>(
    simt::Device&, std::span<const float>, std::span<const std::size_t>,
    const SampleSelectConfig&);
extern template ApproxMultiResult<double> approx_multi_select<double>(
    simt::Device&, std::span<const double>, std::span<const std::size_t>,
    const SampleSelectConfig&);
extern template ApproxResult<float> approx_select<float>(simt::Device&, std::span<const float>,
                                                         std::size_t, const SampleSelectConfig&);
extern template ApproxResult<double> approx_select<double>(simt::Device&, std::span<const double>,
                                                           std::size_t, const SampleSelectConfig&);
extern template ApproxResult<float> approx_select_device<float>(simt::Device&,
                                                                std::span<const float>,
                                                                std::size_t,
                                                                const SampleSelectConfig&);
extern template ApproxResult<double> approx_select_device<double>(simt::Device&,
                                                                  std::span<const double>,
                                                                  std::size_t,
                                                                  const SampleSelectConfig&);

}  // namespace gpusel::core
