#include "core/sample_select.hpp"

#include <memory>
#include <stdexcept>

#include "bitonic/bitonic.hpp"
#include "core/count_kernel.hpp"
#include "core/filter_kernel.hpp"
#include "core/reduce_kernel.hpp"
#include "core/sample_kernel.hpp"
#include "simt/timing.hpp"

namespace gpusel::core {

namespace {

template <typename T>
struct SelectState {
    simt::DeviceBuffer<T> buf;
    std::size_t rank = 0;
    std::size_t level = 0;
    std::size_t resample_tries = 0;
    SampleSelectConfig cfg;
    SelectResult<T> result;
    bool done = false;
};

/// Executes one recursion level; returns true while more levels remain.
template <typename T>
bool run_level(simt::Device& dev, SelectState<T>& st) {
    const std::size_t n = st.buf.size();
    const auto origin =
        st.level == 0 ? simt::LaunchOrigin::host : simt::LaunchOrigin::device;

    if (n <= st.cfg.base_case_size) {
        // Base case (Sec. IV-D): bitonic sort in shared memory, pick rank.
        bitonic::sort_on_device<T>(dev, st.buf.span(), n, origin, st.cfg.block_dim,
                                   st.cfg.stream);
        st.result.value = st.buf[st.rank];
        st.done = true;
        return false;
    }

    const auto b = static_cast<std::size_t>(st.cfg.num_buckets);
    const bool shared_mode = st.cfg.atomic_space == simt::AtomicSpace::shared;

    const SearchTree<T> tree = sample_splitters<T>(
        dev, st.buf.span(), st.cfg, origin, st.level * 977 + st.resample_tries * 7919);

    auto oracles = dev.alloc<std::uint8_t>(n);
    auto totals = dev.alloc<std::int32_t>(b);
    const int grid = simt::suggest_grid(dev.arch(), n, st.cfg.block_dim, st.cfg.unroll);
    simt::DeviceBuffer<std::int32_t> block_counts;
    if (shared_mode) {
        block_counts = dev.alloc<std::int32_t>(static_cast<std::size_t>(grid) * b);
    } else {
        launch_memset32(dev, totals.span(), origin, st.cfg.stream);
    }

    const int used_grid = count_kernel<T>(dev, st.buf.span(), tree, oracles.span(), totals.span(),
                                          block_counts.span(), st.cfg, origin);
    if (used_grid != grid) throw std::logic_error("grid sizing mismatch");

    if (shared_mode) {
        reduce_kernel(dev, block_counts.span(), grid, st.cfg.num_buckets, totals.span(),
                      /*keep_block_offsets=*/true, origin, st.cfg.block_dim, st.cfg.stream);
    }

    auto prefix = dev.alloc<std::int32_t>(b + 1);
    const std::int32_t bucket =
        select_bucket_kernel(dev, totals.span(), prefix.span(), st.rank, origin, st.cfg.stream);
    const auto ub = static_cast<std::size_t>(bucket);

    if (tree.equality[ub]) {
        // Equality bucket: every element equals the splitter -- done.
        st.result.value = tree.splitters[ub - 1];
        st.result.equality_exit = true;
        ++st.result.levels;
        st.done = true;
        return false;
    }

    const auto bucket_size = static_cast<std::size_t>(totals[ub]);
    if (bucket_size == n) {
        // No progress (pathological sample).  Resample with a new salt; by
        // construction this can only happen a bounded number of times.
        if (++st.resample_tries > 8) {
            throw std::runtime_error("sample_select: no partition progress after resampling");
        }
        return true;
    }
    st.resample_tries = 0;

    auto out = dev.alloc<T>(bucket_size);
    simt::DeviceBuffer<std::int32_t> cursor;
    if (!shared_mode) {
        cursor = dev.alloc<std::int32_t>(1);
        launch_memset32(dev, cursor.span(), origin, st.cfg.stream);
    }
    filter_kernel<T>(dev, st.buf.span(), oracles.span(), bucket, out.span(), block_counts.span(),
                     st.cfg.num_buckets, cursor.span(), st.cfg, origin, grid);

    st.rank -= static_cast<std::size_t>(prefix[ub]);
    st.buf = std::move(out);
    ++st.level;
    ++st.result.levels;
    return true;
}

template <typename T>
void enqueue_level(simt::Device& dev, std::shared_ptr<SelectState<T>> st) {
    dev.device_enqueue([st](simt::Device& d) {
        if (run_level(d, *st)) enqueue_level(d, st);
    });
}

}  // namespace

template <typename T>
SelectResult<T> sample_select_device(simt::Device& dev, simt::DeviceBuffer<T> data,
                                     std::size_t rank, const SampleSelectConfig& cfg) {
    cfg.validate(/*exact=*/true);
    const std::size_t n = data.size();
    if (n == 0 || rank >= n) throw std::out_of_range("rank out of range");

    auto st = std::make_shared<SelectState<T>>();
    st->buf = std::move(data);
    st->rank = rank;
    st->cfg = cfg;

    dev.tracker().set_baseline();
    const double t0 = dev.elapsed_ns();
    const std::uint64_t l0 = dev.launch_count();
    enqueue_level(dev, st);
    dev.drain();
    if (!st->done) throw std::logic_error("sample_select: recursion did not terminate");
    st->result.sim_ns = dev.elapsed_ns() - t0;
    st->result.launches = dev.launch_count() - l0;
    st->result.aux_bytes = dev.tracker().peak_above_baseline();
    return st->result;
}

template <typename T>
SelectResult<T> sample_select(simt::Device& dev, std::span<const T> input, std::size_t rank,
                              const SampleSelectConfig& cfg) {
    auto buf = dev.alloc<T>(input.size());
    std::copy(input.begin(), input.end(), buf.data());
    return sample_select_device<T>(dev, std::move(buf), rank, cfg);
}

template SelectResult<float> sample_select<float>(simt::Device&, std::span<const float>,
                                                  std::size_t, const SampleSelectConfig&);
template SelectResult<double> sample_select<double>(simt::Device&, std::span<const double>,
                                                    std::size_t, const SampleSelectConfig&);
template SelectResult<float> sample_select_device<float>(simt::Device&, simt::DeviceBuffer<float>,
                                                         std::size_t, const SampleSelectConfig&);
template SelectResult<double> sample_select_device<double>(simt::Device&,
                                                           simt::DeviceBuffer<double>,
                                                           std::size_t, const SampleSelectConfig&);

}  // namespace gpusel::core
