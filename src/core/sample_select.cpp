#include "core/sample_select.hpp"

#include <memory>
#include <stdexcept>

#include "core/pipeline.hpp"

namespace gpusel::core {

namespace {

template <typename T>
struct SelectState {
    SampleSelectConfig cfg;   // the pipeline keeps a pointer; pin the copy first
    SelectionPipeline<T> pipe;
    std::size_t rank = 0;
    std::size_t level = 0;
    std::size_t resample_tries = 0;
    SelectResult<T> result;
    bool done = false;

    SelectState(simt::Device& dev, const SampleSelectConfig& c) : cfg(c), pipe(dev, cfg) {}
};

/// Executes one recursion level; returns true while more levels remain.
template <typename T>
bool run_level(SelectState<T>& st) {
    const std::size_t n = st.pipe.size();
    const auto origin =
        st.level == 0 ? simt::LaunchOrigin::host : simt::LaunchOrigin::device;

    if (n <= st.cfg.base_case_size) {
        // Base case (Sec. IV-D): bitonic sort in shared memory, pick rank.
        st.pipe.sort_base_case(origin);
        st.result.value = st.pipe.value_at(st.rank);
        st.done = true;
        return false;
    }

    const auto lv =
        st.pipe.run_level(st.rank, origin, st.level * 977 + st.resample_tries * 7919);

    if (lv.equality) {
        // Equality bucket: every element equals the splitter -- done.
        st.result.value = lv.equality_value(lv.bucket);
        st.result.equality_exit = true;
        ++st.result.levels;
        st.done = true;
        return false;
    }

    if (lv.bucket_size == n) {
        // No progress (pathological sample).  Resample with a new salt; by
        // construction this can only happen a bounded number of times.
        if (++st.resample_tries > 8) {
            throw std::runtime_error("sample_select: no partition progress after resampling");
        }
        return true;
    }
    st.resample_tries = 0;

    st.pipe.descend(lv, origin);
    st.rank -= lv.rank_offset;
    ++st.level;
    ++st.result.levels;
    return true;
}

template <typename T>
void enqueue_level(simt::Device& dev, std::shared_ptr<SelectState<T>> st) {
    dev.device_enqueue([st](simt::Device& d) {
        if (run_level(*st)) enqueue_level(d, st);
    });
}

}  // namespace

template <typename T>
SelectResult<T> sample_select_staged(simt::Device& dev, DataHolder<T> data, std::size_t rank,
                                     const SampleSelectConfig& cfg) {
    cfg.validate(/*exact=*/true);
    const std::size_t n = data.size();
    if (n == 0 || rank >= n) throw std::out_of_range("rank out of range");

    auto st = std::make_shared<SelectState<T>>(dev, cfg);
    st->pipe.reset(std::move(data));
    st->rank = rank;

    dev.tracker().set_baseline();
    const double t0 = dev.elapsed_ns();
    const std::uint64_t l0 = dev.launch_count();
    enqueue_level(dev, st);
    dev.drain();
    if (!st->done) throw std::logic_error("sample_select: recursion did not terminate");
    st->result.sim_ns = dev.elapsed_ns() - t0;
    st->result.launches = dev.launch_count() - l0;
    st->result.aux_bytes = dev.tracker().peak_above_baseline();
    return st->result;
}

template <typename T>
SelectResult<T> sample_select_device(simt::Device& dev, simt::DeviceBuffer<T> data,
                                     std::size_t rank, const SampleSelectConfig& cfg) {
    return sample_select_staged<T>(dev, DataHolder<T>::adopt(std::move(data)), rank, cfg);
}

template <typename T>
SelectResult<T> sample_select(simt::Device& dev, std::span<const T> input, std::size_t rank,
                              const SampleSelectConfig& cfg) {
    PipelineContext ctx(dev, cfg);
    return sample_select_staged<T>(dev, DataHolder<T>::stage(ctx, input), rank, cfg);
}

template SelectResult<float> sample_select<float>(simt::Device&, std::span<const float>,
                                                  std::size_t, const SampleSelectConfig&);
template SelectResult<double> sample_select<double>(simt::Device&, std::span<const double>,
                                                    std::size_t, const SampleSelectConfig&);
template SelectResult<float> sample_select_device<float>(simt::Device&, simt::DeviceBuffer<float>,
                                                         std::size_t, const SampleSelectConfig&);
template SelectResult<double> sample_select_device<double>(simt::Device&,
                                                           simt::DeviceBuffer<double>,
                                                           std::size_t, const SampleSelectConfig&);
template SelectResult<float> sample_select_staged<float>(simt::Device&, DataHolder<float>,
                                                         std::size_t, const SampleSelectConfig&);
template SelectResult<double> sample_select_staged<double>(simt::Device&, DataHolder<double>,
                                                           std::size_t, const SampleSelectConfig&);

}  // namespace gpusel::core
