#include "core/sample_select.hpp"

#include <memory>
#include <stdexcept>
#include <utility>

#include "core/backend.hpp"
#include "core/float_order.hpp"
#include "core/pipeline.hpp"
#include "core/planner.hpp"

namespace gpusel::core {

namespace {

template <typename T>
struct SelectState {
    SampleSelectConfig cfg;   // the pipeline keeps a pointer; pin the copy first
    SelectionPipeline<T> pipe;
    std::size_t rank = 0;
    /// Productive level index: feeds the sample salt and result.levels,
    /// exactly as before hardening (stalled levels do not advance it).
    std::size_t level = 0;
    /// Consecutive stalls at the current level (resets on any descent).
    std::size_t resample_tries = 0;
    /// Every bucketing level executed, including stalls and fallback
    /// levels; bounded by cfg.max_levels.
    std::size_t levels_run = 0;
    /// True while descending through deterministic tripartition levels.
    bool fallback = false;
    SelectResult<T> result;
    Status status = Status::success();
    bool done = false;

    SelectState(simt::Device& dev, const SampleSelectConfig& c, int stream)
        : cfg(c), pipe(dev, cfg, stream) {}
};

/// Executes one recursion level; returns true while more levels remain.
/// Failures (exhausted fault retries, progress policy, depth cap) land in
/// st.status and stop the recursion instead of escaping as exceptions.
template <typename T>
bool run_level(SelectState<T>& st) {
    simt::Device& dev = st.pipe.context().dev();
    const std::size_t n = st.pipe.size();
    const auto origin =
        st.level == 0 ? simt::LaunchOrigin::host : simt::LaunchOrigin::device;

    // Deadline budget (docs/service.md): checked between levels, never
    // mid-kernel, so aborted descents leave no partial writes in flight.
    // Level 0 always runs -- admission control owns up-front rejection.
    if (st.cfg.deadline_ns > 0.0 && st.levels_run > 0 &&
        dev.stream_clock(st.pipe.context().stream()) > st.cfg.deadline_ns) {
        st.status = Status::failure(SelectError::deadline_exceeded,
                                    "sample_select: deadline exceeded between levels");
        return false;
    }

    if (n <= st.cfg.base_case_size) {
        // Base case (Sec. IV-D): bitonic sort in shared memory, pick rank.
        st.status = st.pipe.try_sort_base_case(origin);
        if (!st.status.ok()) return false;
        st.result.value = st.pipe.value_at(st.rank);
        st.done = true;
        return false;
    }

    // Hard depth cap: with strict shrink guaranteed below, genuine inputs
    // terminate in O(log n) levels; the cap makes that provable even under
    // invariant-breaking bugs.
    if (st.levels_run >= static_cast<std::size_t>(st.cfg.max_levels)) {
        st.status = Status::failure(SelectError::depth_exceeded,
                                    "sample_select: max_levels bucketing levels exceeded");
        return false;
    }
    ++st.levels_run;

    const bool use_fallback = st.fallback || st.cfg.force_fallback;
    Result<LevelOutcome<T>> lvres =
        use_fallback
            ? st.pipe.try_run_fallback_level(st.rank, origin)
            : st.pipe.try_run_level(st.rank, origin,
                                    st.level * 977 + st.resample_tries * 7919);
    if (!lvres.ok()) {
        st.status = lvres.status();
        return false;
    }
    const LevelOutcome<T> lv = lvres.take();
    if (use_fallback) {
        ++st.result.fallback_levels;
        ++dev.robustness().fallback_levels;
    }

    if (lv.equality) {
        // Equality bucket: every element equals the splitter -- done.
        st.result.value = lv.equality_value(lv.bucket);
        st.result.equality_exit = true;
        ++st.result.levels;
        st.done = true;
        return false;
    }

    if (lv.bucket_size == n) {
        // Stalled level (pathological sample: the rank bucket did not
        // shrink).  Resample with a fresh salt up to max_stalled_levels
        // times, then switch to the deterministic fallback.
        if (use_fallback) {
            // The tripartition tree's equality bucket is non-empty by
            // construction, so a stalled fallback level means broken
            // invariants, not bad luck.
            st.status = Status::failure(
                SelectError::no_progress,
                "sample_select: deterministic fallback level failed to shrink the bucket");
            return false;
        }
        ++st.result.resamples;
        ++dev.robustness().resamples;
        if (++st.resample_tries > static_cast<std::size_t>(st.cfg.max_stalled_levels)) {
            st.fallback = true;
            ++dev.robustness().fallbacks;
        }
        return true;
    }

    st.status = st.pipe.try_descend(lv, origin);
    if (!st.status.ok()) return false;
    st.rank -= lv.rank_offset;
    ++st.level;
    ++st.result.levels;
    st.resample_tries = 0;
    // The stall was a property of the old buffer; once the fallback level
    // shrank it, sampled levels resume (their splits are much better).
    if (!st.cfg.force_fallback) st.fallback = false;
    return true;
}

template <typename T>
void enqueue_level(simt::Device& dev, std::shared_ptr<SelectState<T>> st) {
    dev.device_enqueue([st](simt::Device& d) {
        if (run_level(*st)) enqueue_level(d, st);
    });
}

}  // namespace

namespace detail {

template <typename T>
Result<SelectResult<T>> sample_select_descend(simt::Device& dev, DataHolder<T> data,
                                              std::size_t rank, const SampleSelectConfig& cfg,
                                              int stream) {
    auto st = std::make_shared<SelectState<T>>(dev, cfg, stream);
    st->pipe.reset(std::move(data));
    st->rank = rank;

    enqueue_level(dev, st);
    dev.drain();
    if (!st->status.ok()) return st->status;
    if (!st->done) {
        return Status::failure(SelectError::internal,
                               "sample_select: recursion did not terminate");
    }
    return std::move(st->result);
}

template Result<SelectResult<float>> sample_select_descend<float>(
    simt::Device&, DataHolder<float>, std::size_t, const SampleSelectConfig&, int);
template Result<SelectResult<double>> sample_select_descend<double>(
    simt::Device&, DataHolder<double>, std::size_t, const SampleSelectConfig&, int);
template Result<SelectResult<ArgPair>> sample_select_descend<ArgPair>(
    simt::Device&, DataHolder<ArgPair>, std::size_t, const SampleSelectConfig&, int);

}  // namespace detail

template <typename T>
Result<SelectResult<T>> try_sample_select_staged(simt::Device& dev, DataHolder<T> data,
                                                 std::size_t rank,
                                                 const SampleSelectConfig& cfg, int stream) {
    try {
        cfg.validate(/*exact=*/true);
    } catch (const std::invalid_argument& e) {
        return Status::failure(SelectError::invalid_argument, e.what());
    }
    const std::size_t n = data.size();
    if (n == 0 || rank >= n) {
        return Status::failure(SelectError::rank_out_of_range, "rank out of range");
    }

    // NaN staging pre-pass (core/float_order.hpp): kernels never see NaN.
    // A no-op (and no reorder) on NaN-free data, so event streams match.
    const std::size_t nan_count = partition_nans_to_back(data.span());
    if (nan_count > 0) {
        if (cfg.nan_policy == NanPolicy::reject) {
            return Status::failure(SelectError::nan_keys_rejected,
                                   "sample_select: input contains NaN keys");
        }
        if (rank >= n - nan_count) {
            // The rank falls inside the NaN tail of the total order;
            // answered at staging without any device work.
            SelectResult<T> r{};
            r.value = quiet_nan<T>();
            r.nan_count = nan_count;
            return r;
        }
        data.view(n - nan_count);
    }

    // Plan which backend runs the NaN-free problem (host-side only; no
    // launches, so the chosen backend's event stream starts at t0).
    PlanQuery q;
    q.n = data.size();
    q.k = rank;
    q.base_case_size = cfg.base_case_size;
    const PlanDecision plan = plan_selection<T>(dev, std::span<const T>(data.span()), q,
                                                stream < 0 ? cfg.stream : stream);

    dev.tracker().set_baseline();
    const double t0 = dev.elapsed_ns();
    const std::uint64_t l0 = dev.launch_count();
    Result<SelectResult<T>> bres =
        selection_backend<T>(plan.backend).select(dev, std::move(data), rank, cfg, stream);
    if (!bres.ok()) return bres.status();
    SelectResult<T> res = bres.take();
    res.sim_ns = dev.elapsed_ns() - t0;
    res.launches = dev.launch_count() - l0;
    res.aux_bytes = dev.tracker().peak_above_baseline();
    res.nan_count = nan_count;
    return res;
}

template <typename T>
Result<SelectResult<T>> try_sample_select_device(simt::Device& dev, simt::DeviceBuffer<T> data,
                                                 std::size_t rank,
                                                 const SampleSelectConfig& cfg) {
    return try_sample_select_staged<T>(dev, DataHolder<T>::adopt(std::move(data)), rank, cfg);
}

template <typename T>
Result<SelectResult<T>> try_sample_select(simt::Device& dev, std::span<const T> input,
                                          std::size_t rank, const SampleSelectConfig& cfg) {
    PipelineContext ctx(dev, cfg);
    DataHolder<T> staged;
    // Staging acquires a pooled buffer, so it participates in the bounded
    // alloc-retry policy like every other acquisition.
    Status s = with_fault_retry(ctx, [&] { staged = DataHolder<T>::stage(ctx, input); });
    if (!s.ok()) return s;
    return try_sample_select_staged<T>(dev, std::move(staged), rank, cfg);
}

template <typename T>
SelectResult<T> sample_select_staged(simt::Device& dev, DataHolder<T> data, std::size_t rank,
                                     const SampleSelectConfig& cfg, int stream) {
    return try_sample_select_staged<T>(dev, std::move(data), rank, cfg, stream).take_or_throw();
}

template <typename T>
SelectResult<T> sample_select_device(simt::Device& dev, simt::DeviceBuffer<T> data,
                                     std::size_t rank, const SampleSelectConfig& cfg) {
    return try_sample_select_device<T>(dev, std::move(data), rank, cfg).take_or_throw();
}

template <typename T>
SelectResult<T> sample_select(simt::Device& dev, std::span<const T> input, std::size_t rank,
                              const SampleSelectConfig& cfg) {
    return try_sample_select<T>(dev, input, rank, cfg).take_or_throw();
}

template Result<SelectResult<float>> try_sample_select<float>(simt::Device&,
                                                              std::span<const float>, std::size_t,
                                                              const SampleSelectConfig&);
template Result<SelectResult<double>> try_sample_select<double>(simt::Device&,
                                                                std::span<const double>,
                                                                std::size_t,
                                                                const SampleSelectConfig&);
template Result<SelectResult<float>> try_sample_select_device<float>(simt::Device&,
                                                                     simt::DeviceBuffer<float>,
                                                                     std::size_t,
                                                                     const SampleSelectConfig&);
template Result<SelectResult<double>> try_sample_select_device<double>(simt::Device&,
                                                                       simt::DeviceBuffer<double>,
                                                                       std::size_t,
                                                                       const SampleSelectConfig&);
template Result<SelectResult<float>> try_sample_select_staged<float>(simt::Device&,
                                                                     DataHolder<float>,
                                                                     std::size_t,
                                                                     const SampleSelectConfig&,
                                                                     int);
template Result<SelectResult<double>> try_sample_select_staged<double>(simt::Device&,
                                                                       DataHolder<double>,
                                                                       std::size_t,
                                                                       const SampleSelectConfig&,
                                                                       int);
template SelectResult<float> sample_select<float>(simt::Device&, std::span<const float>,
                                                  std::size_t, const SampleSelectConfig&);
template SelectResult<double> sample_select<double>(simt::Device&, std::span<const double>,
                                                    std::size_t, const SampleSelectConfig&);
template SelectResult<float> sample_select_device<float>(simt::Device&, simt::DeviceBuffer<float>,
                                                         std::size_t, const SampleSelectConfig&);
template SelectResult<double> sample_select_device<double>(simt::Device&,
                                                           simt::DeviceBuffer<double>,
                                                           std::size_t, const SampleSelectConfig&);
template SelectResult<float> sample_select_staged<float>(simt::Device&, DataHolder<float>,
                                                         std::size_t, const SampleSelectConfig&,
                                                         int);
template SelectResult<double> sample_select_staged<double>(simt::Device&, DataHolder<double>,
                                                           std::size_t, const SampleSelectConfig&,
                                                           int);
template Result<SelectResult<ArgPair>> try_sample_select<ArgPair>(simt::Device&,
                                                                  std::span<const ArgPair>,
                                                                  std::size_t,
                                                                  const SampleSelectConfig&);
template Result<SelectResult<ArgPair>> try_sample_select_staged<ArgPair>(
    simt::Device&, DataHolder<ArgPair>, std::size_t, const SampleSelectConfig&, int);
template SelectResult<ArgPair> sample_select<ArgPair>(simt::Device&, std::span<const ArgPair>,
                                                      std::size_t, const SampleSelectConfig&);
template SelectResult<ArgPair> sample_select_staged<ArgPair>(simt::Device&, DataHolder<ArgPair>,
                                                             std::size_t,
                                                             const SampleSelectConfig&, int);

}  // namespace gpusel::core
