#include "core/planner.hpp"

#include <algorithm>
#include <array>

#include "bitonic/bitonic.hpp"
#include "core/radix_kernel.hpp"

namespace gpusel::core {

namespace {

/// Probe identity of one element: the radix key image, so -0.0 == +0.0
/// and duplicate *keys* count as duplicates even for key/payload pairs
/// (payloads are unique indices and would hide every duplicate).
std::uint64_t probe_key(float x) noexcept { return RadixTraits<float>::key(x); }
std::uint64_t probe_key(double x) noexcept { return RadixTraits<double>::key(x); }
std::uint64_t probe_key(ArgPair x) noexcept { return RadixTraits<float>::key(x.key); }

/// Can the forced backend run this problem at all?
bool feasible(BackendKind k, const PlanQuery& q) noexcept {
    switch (k) {
        case BackendKind::sample: return true;
        case BackendKind::radix: return !q.multi;
        case BackendKind::bitonic:
            return !q.multi && q.n <= static_cast<std::size_t>(bitonic::kMaxSortSize);
    }
    return false;
}

bool quarantined(BackendKind k, const PlanQuery& q) noexcept {
    return (q.quarantined & backend_bit(k)) != 0;
}

/// Reroutes a decision whose backend the circuit breaker quarantined:
/// tries the remaining backends in sample -> radix -> bitonic order
/// (sample is always feasible, so a healthy sample wins).  When every
/// feasible backend is quarantined the original decision stands -- the
/// planner degrades the quarantine to advisory rather than failing the
/// selection, and the descent's own fault retry carries the risk.
PlanDecision apply_quarantine(PlanDecision d, const PlanQuery& q) noexcept {
    if (!quarantined(d.backend, q)) return d;
    constexpr BackendKind order[] = {BackendKind::sample, BackendKind::radix,
                                     BackendKind::bitonic};
    for (const BackendKind k : order) {
        if (k == d.backend || !feasible(k, q) || quarantined(k, q)) continue;
        switch (k) {
            case BackendKind::sample: return {k, "quarantine reroute: sample", false};
            case BackendKind::radix: return {k, "quarantine reroute: radix", false};
            case BackendKind::bitonic: return {k, "quarantine reroute: bitonic", false};
        }
    }
    return {d.backend, "all feasible backends quarantined", d.env_forced};
}

}  // namespace

template <typename T>
DistributionHints probe_distribution(std::span<const T> data) {
    DistributionHints h;
    const std::size_t n = data.size();
    if (n == 0) return h;
    const std::size_t m = std::min(n, kPlannerProbeSize);
    std::array<std::uint64_t, kPlannerProbeSize> keys{};
    const std::size_t stride = n / m;
    for (std::size_t i = 0; i < m; ++i) keys[i] = probe_key(data[i * stride]);
    std::sort(keys.begin(), keys.begin() + static_cast<std::ptrdiff_t>(m));
    std::size_t distinct = 1;
    std::size_t run = 1;
    std::size_t best_run = 1;
    for (std::size_t i = 1; i < m; ++i) {
        if (keys[i] == keys[i - 1]) {
            ++run;
        } else {
            ++distinct;
            run = 1;
        }
        best_run = std::max(best_run, run);
    }
    h.probe_size = m;
    h.probe_distinct = distinct;
    h.dominant_frac = static_cast<double>(best_run) / static_cast<double>(m);
    return h;
}

PlanDecision plan(const PlanQuery& q, const DistributionHints& h,
                  std::optional<BackendKind> forced) {
    // 0. Environment override, when the forced backend can run the problem
    //    (an infeasible override -- bitonic beyond the sort capacity,
    //    radix/bitonic for a multi-rank tree -- falls through to the
    //    automatic rules rather than failing the selection).  A quarantined
    //    override also falls through: the breaker's verdict on a faulting
    //    backend outranks an operator preference.
    if (forced && feasible(*forced, q) && !quarantined(*forced, q)) {
        return {*forced, "GPUSEL_BACKEND override", true};
    }
    // 1. Multi-rank descent shares one bucket tree across all targets;
    //    only the sampled bucket machinery implements it.
    if (q.multi) {
        return {BackendKind::sample, "multi-rank bucket tree", false};
    }
    // 2. Small problems fit one block: sorting outright beats any level
    //    machinery (this is the recursion base case run as a backend).
    if (q.n <= q.base_case_size) {
        return apply_quarantine({BackendKind::bitonic, "small n: single-block bitonic sort", false},
                                q);
    }
    // 3./4. Duplicate-heavy or low-cardinality probes defeat sampled
    //    splitters (most samples collide, buckets stay fat) but are
    //    exactly where the radix skip-filter descent shines: shared digit
    //    prefixes resolve from one fused histogram pass.
    if (h.dominant_frac >= kPlannerDominantFrac) {
        return apply_quarantine({BackendKind::radix, "duplicate-heavy probe", false}, q);
    }
    if (h.probe_size >= 4 && h.probe_distinct * 4 <= h.probe_size) {
        return apply_quarantine({BackendKind::radix, "low distinct-value probe", false}, q);
    }
    // 5. RobustnessCounters feedback: the previous planned descent on this
    //    device thrashed (resamples/fallbacks grew), so the distribution
    //    is defeating the sampler in a way the probe missed.
    if (q.thrash_delta > 0) {
        return apply_quarantine({BackendKind::radix, "sampler thrash feedback", false}, q);
    }
    // 6. Deep top-k keeps a constant fraction of the input; radix secures
    //    whole upper-digit bins per pass with a width-bounded level count.
    if (q.topk && q.k * 4 >= q.n) {
        return apply_quarantine({BackendKind::radix, "deep top-k (k >= n/4)", false}, q);
    }
    // 7. Default: the paper's distribution-adaptive sampled descent.
    return apply_quarantine(
        {BackendKind::sample, "distribution-adaptive sampled descent", false}, q);
}

void record_planned_decision(simt::Device& dev, const PlanDecision& d, std::uint64_t n,
                             std::uint64_t k, int stream) {
    auto& rc = dev.robustness();
    switch (d.backend) {
        case BackendKind::sample: ++rc.backend_sample; break;
        case BackendKind::radix: ++rc.backend_radix; break;
        case BackendKind::bitonic: ++rc.backend_bitonic; break;
    }
    if (d.env_forced) ++rc.backend_env_overrides;
    simt::PlannerEvent ev;
    ev.stream = stream;
    ev.backend = backend_name(d.backend);
    ev.reason = d.reason;
    ev.n = n;
    ev.k = k;
    ev.env_forced = d.env_forced;
    dev.note_planner_event(std::move(ev));
}

template <typename T>
PlanDecision plan_selection(simt::Device& dev, std::span<const T> data, PlanQuery q,
                            int stream) {
    q.elem_size = sizeof(T);
    // Sampler-thrash feedback: resamples/fallbacks growth since the mark
    // left by the previous decision -- but only attributed when that
    // decision was for a shape-similar problem (same element width, n
    // within 4x either way).  A dissimilar shape resets the context: the
    // thrash belonged to a different workload and must not bias this one.
    auto& fb = dev.planner_feedback();
    const auto& rc = dev.robustness();
    const std::uint64_t now = rc.resamples + rc.fallbacks;
    const std::uint64_t delta = now - std::min(now, fb.thrash_mark);
    const bool shape_similar =
        fb.prev_n == 0 || (fb.prev_elem_size == sizeof(T) && fb.prev_n / 4 <= q.n &&
                           q.n <= fb.prev_n * 4);
    q.thrash_delta = shape_similar ? delta : 0;
    fb.thrash_mark = now;
    fb.prev_n = q.n;
    fb.prev_elem_size = sizeof(T);
    q.quarantined = dev.backend_quarantine();

    const DistributionHints h = probe_distribution<T>(data);
    const PlanDecision d = plan(q, h, backend_env_override());
    record_planned_decision(dev, d, q.n, q.k, stream);
    return d;
}

ShardPlan plan_shard_count(std::size_t n, std::size_t elem_size,
                           std::size_t device_capacity_bytes, int num_devices,
                           std::size_t max_shard_elems) {
    ShardPlan p;
    std::size_t budget = max_shard_elems;
    if (budget == 0) {
        const auto staging_bytes =
            static_cast<std::size_t>(static_cast<double>(device_capacity_bytes) *
                                     kShardStagingFraction);
        budget = elem_size > 0 ? staging_bytes / elem_size : staging_bytes;
    }
    if (budget == 0) budget = 1;
    p.shard_elems = budget;
    if (n <= budget) {
        p.shards = 1;
        p.reason = "fits one device";
        return p;
    }
    p.shards = (n + budget - 1) / budget;
    p.reason = "exceeds per-device staging budget";
    // With little oversubscription, spreading over all devices shrinks the
    // critical path at no extra merge cost (the candidate fan-in already
    // visits every used device).
    const auto devices = static_cast<std::size_t>(num_devices < 1 ? 1 : num_devices);
    if (p.shards < devices && devices > 1) {
        p.shards = devices;
        p.reason = "spread over all devices";
    }
    if (p.shards > n) p.shards = n;  // never cut below one element per shard
    p.shard_elems = (n + p.shards - 1) / p.shards;
    return p;
}

template DistributionHints probe_distribution<float>(std::span<const float>);
template DistributionHints probe_distribution<double>(std::span<const double>);
template DistributionHints probe_distribution<ArgPair>(std::span<const ArgPair>);
template PlanDecision plan_selection<float>(simt::Device&, std::span<const float>, PlanQuery,
                                            int);
template PlanDecision plan_selection<double>(simt::Device&, std::span<const double>, PlanQuery,
                                             int);
template PlanDecision plan_selection<ArgPair>(simt::Device&, std::span<const ArgPair>, PlanQuery,
                                              int);

}  // namespace gpusel::core
