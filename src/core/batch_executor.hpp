#pragma once
// Stream-parallel batch execution (Sec. VI future work: "multiple sequence
// selection"): fans a batch of independent selection problems out over a
// set of simulator streams so their kernel timelines overlap.
//
// Three layers:
//
//   * resolve_stream_count -- the fan-width policy: an explicit request
//     wins, then the GPUSEL_STREAMS environment variable, then the
//     default min(batch, 8); always clamped to [1, batch].
//   * StreamFan -- RAII lease of extra streams from the device's reuse
//     pool (simt::Device::lease_stream), with event-based fork/join
//     against the base stream: fork() makes every lane wait on the work
//     enqueued so far, join() makes the base stream wait on every lane.
//     A fan of one lane is the base stream itself and fork/join are
//     no-ops, so the single-stream path is byte-identical to serial code.
//   * BatchExecutor<T> -- runs a batch of (data, rank) problems: each
//     problem is staged onto its lane's stream (round-robin), problems
//     whose numeric prefix fits the single-block sorting capacity are
//     coalesced into ONE fused bitonic launch per lane, and the rest run
//     the full SampleSelect recursion on their lane's stream with pooled
//     scratch ordered on that stream (per-stream arenas, simt/pool.hpp).
//
// Event-count contract: per problem, the launches issued (names, grids,
// origins, counters) are identical to running that problem alone on the
// serial path; only the stream ids -- and therefore the overlap in
// simulated time -- differ.  Items record their launch-index range so
// tests can compare per-problem profile subsequences against fresh
// serial runs.

#include <cstdint>
#include <span>
#include <vector>

#include "core/config.hpp"
#include "core/pipeline.hpp"
#include "core/status.hpp"
#include "simt/device.hpp"

namespace gpusel::core {

/// Stream-fan sizing knobs shared by every batch front-end.
struct BatchOptions {
    /// Lanes to fan over; <= 0 resolves via GPUSEL_STREAMS, then
    /// min(batch, 8).  Always clamped to the batch size.
    int streams = 0;
    /// Problems whose numeric prefix is at most this long share one fused
    /// single-launch bitonic kernel per lane; 0 means the single-block
    /// sorting capacity (bitonic::kMaxSortSize).
    std::size_t coalesce_threshold = 0;
};

/// Widest fan any configuration may request; GPUSEL_STREAMS beyond this is
/// a typo or a misunderstanding of the stream pool, not a tuning choice.
inline constexpr long kMaxStreamFan = 256;

/// Resolves the fan width for a batch of `batch` problems (see
/// BatchOptions::streams).  `requested` <= 0 defers to the GPUSEL_STREAMS
/// environment variable, then to min(batch, 8).  A GPUSEL_STREAMS value
/// that is non-numeric, has trailing junk, is zero/negative or exceeds
/// kMaxStreamFan fails with SelectError::invalid_argument instead of
/// silently falling back (an operator typo must not quietly serialize the
/// whole fleet onto one stream).  An empty value counts as unset.
[[nodiscard]] Result<int> try_resolve_stream_count(std::size_t batch, int requested = 0);

/// Legacy wrapper: try_resolve_stream_count or throw_status().
[[nodiscard]] int resolve_stream_count(std::size_t batch, int requested = 0);

/// RAII fan of streams: lane 0 is the caller's base stream, lanes 1..n-1
/// are leased from the device and returned on destruction.  Callers should
/// join() before the fan is destroyed -- released leases may be handed to
/// unrelated later work; if an exception (or an early error return) skips
/// the join, the destructor performs a best-effort join itself so a lease
/// is never released with un-joined lane work pending.
class StreamFan {
public:
    StreamFan(simt::Device& dev, int count, int base_stream = 0);
    ~StreamFan();
    StreamFan(const StreamFan&) = delete;
    StreamFan& operator=(const StreamFan&) = delete;
    StreamFan(StreamFan&&) = delete;
    StreamFan& operator=(StreamFan&&) = delete;

    [[nodiscard]] int count() const noexcept { return static_cast<int>(streams_.size()); }
    /// Stream id of lane i (lane 0 == the base stream).
    [[nodiscard]] int stream(int lane) const { return streams_[static_cast<std::size_t>(lane)]; }
    /// Round-robin lane assignment for problem `index`.
    [[nodiscard]] int lane_of(std::size_t index) const noexcept {
        return static_cast<int>(index % streams_.size());
    }

    /// Records an event on the base stream and makes every other lane wait
    /// on it: work fanned out afterwards starts no earlier than the work
    /// enqueued so far.  Returns the fork timestamp.
    double fork();
    /// Makes the base stream wait on every lane's completion event.
    void join();
    /// The timestamp fork() recorded (0 before the first fork).
    [[nodiscard]] double fork_ns() const noexcept { return fork_ns_; }

private:
    simt::Device* dev_;
    std::vector<int> streams_;
    double fork_ns_ = 0.0;
    /// False between fork() and join(): lane work may be pending.
    bool joined_ = true;
};

/// One selection problem of a batch.
template <typename T>
struct BatchProblem {
    std::span<const T> data;
    std::size_t rank = 0;
    /// Per-problem absolute sim-ns deadline; 0 inherits the config's
    /// deadline_ns (which itself defaults to "none").  Only full-recursion
    /// problems honour it -- coalesced problems share one fused launch,
    /// which is never aborted mid-flight (see docs/service.md).
    double deadline_ns = 0.0;
};

/// Per-problem outcome and provenance.
template <typename T>
struct BatchItemResult {
    T value{};
    /// Per-item outcome: ok() for answered problems.  Only deadline
    /// overruns (SelectError::deadline_exceeded) fail per item -- the rest
    /// of the batch keeps running; every other error still aborts the
    /// whole run() with a batch-level Status as before.
    Status status;
    /// Stream the problem's launches ran on.
    int stream = 0;
    /// True if the problem was answered by a fused per-lane launch.
    bool coalesced = false;
    /// Launch-count interval [first_launch, last_launch) covering exactly
    /// this problem's launches (empty for NaN-tail ranks answered at
    /// staging; the shared fused launch for coalesced problems).
    std::uint64_t first_launch = 0;
    std::uint64_t last_launch = 0;
    /// NaN keys in this problem's input.
    std::size_t nan_count = 0;
};

/// Whole-batch outcome with the overlap accounting the timing model
/// surfaces: wall_ns is the latest lane completion (what a host observes
/// after synchronizing), serial_ns the sum of per-lane busy time (what the
/// same launches would cost back-to-back on one stream).
template <typename T>
struct BatchExecResult {
    std::vector<BatchItemResult<T>> items;
    int streams_used = 1;
    double wall_ns = 0.0;
    double serial_ns = 0.0;
    std::uint64_t launches = 0;
    /// Problems answered by fused per-lane launches / full recursions.
    std::size_t coalesced_problems = 0;
    std::size_t recursive_problems = 0;
    /// Fused launches issued (at most one per lane).
    std::size_t coalesced_launches = 0;
    std::size_t nan_count = 0;

    [[nodiscard]] double overlap_x() const noexcept {
        return wall_ns > 0.0 ? serial_ns / wall_ns : 1.0;
    }
};

/// The batch driver: one instance per batch invocation.
template <typename T>
class BatchExecutor {
public:
    /// The config is copied, so a temporary is safe to pass.
    BatchExecutor(simt::Device& dev, const SampleSelectConfig& cfg, BatchOptions opts = {})
        : dev_(&dev), cfg_(cfg), opts_(opts) {}

    /// Runs the batch; problems keep their input order in the result.
    [[nodiscard]] Result<BatchExecResult<T>> run(std::span<const BatchProblem<T>> problems);

private:
    simt::Device* dev_;
    SampleSelectConfig cfg_;
    BatchOptions opts_;
};

extern template class BatchExecutor<float>;
extern template class BatchExecutor<double>;
extern template class BatchExecutor<ArgPair>;

}  // namespace gpusel::core
