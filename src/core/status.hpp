#pragma once
// Typed error channel for the selection stack (see docs/robustness.md).
//
// Deep code used to signal failure with `throw std::logic_error` from the
// middle of a recursion cascade; under fault injection (simt/fault.hpp) or
// degenerate inputs that turned every robustness problem into a crash.  The
// pipeline and all front-ends now report through Status / Result<T>:
//
//   * SelectError  -- the closed error taxonomy.  Every failure mode of a
//                     selection call maps to exactly one code.
//   * Status       -- code + human-readable message; `ok()` is the success
//                     sentinel.
//   * Result<T>    -- expected<T, Status>-style sum type returned by the
//                     `try_*` front-end entry points.
//
// The legacy value-returning entry points (sample_select, topk_largest,
// ...) remain as thin wrappers that call the try_* variant and rethrow the
// Status through throw_status(), preserving the std::exception types the
// pre-existing API contract documented (std::invalid_argument,
// std::out_of_range).  New code that must survive faults uses try_*.

#include <cassert>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace gpusel::core {

/// Closed taxonomy of selection failures (docs/robustness.md "Error
/// taxonomy").  Values are stable; new codes are appended.
enum class SelectError {
    none = 0,
    /// Malformed configuration or arguments (bad bucket count, malformed
    /// batch offsets, empty sequence in a batch, invalid quantile, ...).
    invalid_argument,
    /// Requested rank (or k) does not exist in the input: rank >= n,
    /// k == 0, k > n, or any rank of a multi-rank query out of range.
    rank_out_of_range,
    /// The operation needs a non-empty input (e.g. histogram of nothing).
    empty_input,
    /// NaN keys present while the config demands NanPolicy::reject.
    nan_keys_rejected,
    /// Device memory allocation failed and pool-trim + bounded retry did
    /// not recover it (permanent allocation fault).
    allocation_failed,
    /// A kernel launch failed and bounded relaunch (with a fresh sample
    /// salt where applicable) did not recover it (permanent launch fault).
    launch_failed,
    /// The guaranteed-progress policy ran out of road: resampling and the
    /// deterministic fallback could not shrink the tracked bucket.
    no_progress,
    /// Hard recursion-depth cap hit; the input terminates by construction,
    /// this code exists so *every* loop in the stack is provably bounded.
    depth_exceeded,
    /// Invariant violation inside the pipeline (a bug, not an input or
    /// fault condition); carries the diagnostic message.
    internal,
    /// A sanitizer detected a contract violation while active.  SimTSan
    /// (simt/sanitizer.hpp): a cross-block data race, a shared-memory epoch
    /// hazard, an out-of-bounds primitive, an uninitialized (poisoned)
    /// read, or a clobbered guard band.  StreamSan (simt/streamsan.hpp): a
    /// cross-stream access with no happens-before edge, an un-gated pool
    /// reuse, a wait on a never-recorded event, or a fork/join cycle.
    /// Never retried -- the code is buggy, not unlucky.
    sanitizer_violation,
    /// Admission control shed the request: the server's bounded queue (or
    /// the tenant's share of it) was full, or the server is draining.  The
    /// request was never executed; retrying later is safe (docs/service.md).
    overloaded,
    /// The request cannot (or did not) finish inside its deadline budget:
    /// rejected up front by admission control when the queue delay plus the
    /// estimated service time already exceeds the budget, or aborted
    /// between pipeline levels when a descent overran an armed
    /// SampleSelectConfig::deadline_ns.
    deadline_exceeded,
};

[[nodiscard]] constexpr const char* to_string(SelectError e) noexcept {
    switch (e) {
        case SelectError::none: return "none";
        case SelectError::invalid_argument: return "invalid_argument";
        case SelectError::rank_out_of_range: return "rank_out_of_range";
        case SelectError::empty_input: return "empty_input";
        case SelectError::nan_keys_rejected: return "nan_keys_rejected";
        case SelectError::allocation_failed: return "allocation_failed";
        case SelectError::launch_failed: return "launch_failed";
        case SelectError::no_progress: return "no_progress";
        case SelectError::depth_exceeded: return "depth_exceeded";
        case SelectError::internal: return "internal";
        case SelectError::sanitizer_violation: return "sanitizer_violation";
        case SelectError::overloaded: return "overloaded";
        case SelectError::deadline_exceeded: return "deadline_exceeded";
    }
    return "unknown";
}

/// Error code plus context message.  Default-constructed Status is success.
/// [[nodiscard]]: a dropped Status silently swallows a failure -- every
/// producer either checks ok() or explicitly discards with a cast.
struct [[nodiscard]] Status {
    SelectError code = SelectError::none;
    std::string message;

    [[nodiscard]] bool ok() const noexcept { return code == SelectError::none; }

    [[nodiscard]] static Status success() { return {}; }
    [[nodiscard]] static Status failure(SelectError code, std::string message) {
        assert(code != SelectError::none);
        return {code, std::move(message)};
    }
    /// "code: message" for logs and exception payloads.
    [[nodiscard]] std::string to_message() const {
        return std::string(to_string(code)) + ": " + message;
    }
};

/// Exception carrying a Status, thrown by the legacy wrappers for codes
/// that have no pre-existing std::exception contract (faults, progress).
class SelectException : public std::runtime_error {
public:
    explicit SelectException(Status status)
        : std::runtime_error(status.to_message()), status_(std::move(status)) {}
    [[nodiscard]] const Status& status() const noexcept { return status_; }

private:
    Status status_;
};

/// Rethrows a Status with the exception type the legacy API documented:
/// argument/precondition problems keep their std types so existing callers
/// (and tests) see unchanged behavior; fault/progress codes surface as
/// SelectException.
[[noreturn]] inline void throw_status(const Status& s) {
    switch (s.code) {
        case SelectError::invalid_argument:
        case SelectError::empty_input:
        case SelectError::nan_keys_rejected:
            throw std::invalid_argument(s.message);
        case SelectError::rank_out_of_range:
            throw std::out_of_range(s.message);
        default:
            throw SelectException(s);
    }
}

/// Minimal expected<T, Status>: either a value or a non-ok Status.
/// [[nodiscard]] like Status: ignoring a Result drops both the answer and
/// any failure it carries.
template <typename T>
class [[nodiscard]] Result {
public:
    Result(T value) : value_(std::move(value)) {}           // NOLINT(google-explicit-constructor)
    Result(Status status) : status_(std::move(status)) {    // NOLINT(google-explicit-constructor)
        assert(!status_.ok() && "Result needs a value or a failure Status");
    }
    Result(SelectError code, std::string message)
        : status_(Status::failure(code, std::move(message))) {}

    [[nodiscard]] bool ok() const noexcept { return value_.has_value(); }
    explicit operator bool() const noexcept { return ok(); }

    [[nodiscard]] const Status& status() const noexcept { return status_; }
    [[nodiscard]] SelectError error() const noexcept { return status_.code; }

    [[nodiscard]] const T& value() const& noexcept {
        assert(ok());
        return *value_;
    }
    [[nodiscard]] T& value() & noexcept {
        assert(ok());
        return *value_;
    }
    /// Moves the value out (the Result is left valueless).
    [[nodiscard]] T take() {
        assert(ok());
        return std::move(*value_);
    }
    /// Legacy bridge: the value, or throw_status() on error.
    [[nodiscard]] T take_or_throw() {
        if (!ok()) throw_status(status_);
        return std::move(*value_);
    }

private:
    std::optional<T> value_;
    Status status_;  ///< success() while value_ holds
};

}  // namespace gpusel::core
