#include "core/batched_select.hpp"

#include <stdexcept>

#include "bitonic/bitonic.hpp"
#include "core/pipeline.hpp"
#include "core/sample_select.hpp"
#include "simt/timing.hpp"

namespace gpusel::core {

namespace {

/// One thread block per (short) sequence: stage into shared memory, bitonic
/// sort, emit the requested rank.
template <typename T>
void batched_kernel(simt::Device& dev, std::span<const T> flat,
                    const std::vector<std::size_t>& seq_begin,
                    const std::vector<std::size_t>& seq_len,
                    const std::vector<std::size_t>& seq_rank, std::span<T> out_values,
                    const std::vector<std::size_t>& out_slot, int block_dim) {
    const int grid = static_cast<int>(seq_begin.size());
    dev.launch(
        "batched_select", {.grid_dim = grid, .block_dim = block_dim},
        [&, flat, out_values](simt::BlockCtx& blk) {
            const auto s = static_cast<std::size_t>(blk.block_idx());
            const std::size_t begin = seq_begin[s];
            const std::size_t len = seq_len[s];
            const std::size_t m = bitonic::next_pow2(len);
            auto sh = blk.shared_array<T>(m);

            blk.warp_tiles_local(len, [&](simt::WarpCtx& w, std::size_t base, std::size_t) {
                T regs[simt::kWarpSize];
                w.load(flat, begin + base, regs);
                for (int l = 0; l < w.lanes(); ++l) {
                    sh[base + static_cast<std::size_t>(l)] = regs[l];
                }
                w.touch_shared(static_cast<std::uint64_t>(w.lanes()) * sizeof(T));
            });
            bitonic::sort_in_shared(blk, sh, len);

            out_values[out_slot[s]] = sh[seq_rank[s]];
            blk.charge_shared(sizeof(T));
            blk.charge_global_write(sizeof(T));
        });
}

}  // namespace

template <typename T>
BatchedSelectResult<T> batched_select(simt::Device& dev, std::span<const T> flat,
                                      std::span<const std::size_t> offsets,
                                      std::span<const std::size_t> ranks,
                                      const SampleSelectConfig& cfg) {
    cfg.validate(/*exact=*/true);
    if (offsets.size() < 2 || ranks.size() != offsets.size() - 1) {
        throw std::invalid_argument("batched_select: need offsets of size m+1 and m ranks");
    }
    if (offsets.front() != 0 || offsets.back() != flat.size()) {
        throw std::invalid_argument("batched_select: offsets must span the flat array");
    }
    const std::size_t m = ranks.size();
    for (std::size_t i = 0; i < m; ++i) {
        if (offsets[i + 1] < offsets[i]) {
            throw std::invalid_argument("batched_select: offsets must be non-decreasing");
        }
        const std::size_t len = offsets[i + 1] - offsets[i];
        if (len == 0) throw std::invalid_argument("batched_select: empty sequence");
        if (ranks[i] >= len) throw std::out_of_range("batched_select: rank out of range");
    }

    // Copy the batch to the device (as elsewhere, the transfer is not part
    // of the timed selection).
    PipelineContext ctx(dev, cfg);
    auto dflat = DataHolder<T>::stage(ctx, flat);
    auto dout = ctx.scratch<T>(m);

    BatchedSelectResult<T> res;
    res.values.resize(m);
    const double t0 = dev.elapsed_ns();
    const std::uint64_t l0 = dev.launch_count();

    // Split by the single-block sorting capacity.
    std::vector<std::size_t> sb;
    std::vector<std::size_t> sl;
    std::vector<std::size_t> sr;
    std::vector<std::size_t> slot;
    std::vector<std::size_t> long_seqs;
    for (std::size_t i = 0; i < m; ++i) {
        const std::size_t len = offsets[i + 1] - offsets[i];
        if (len <= bitonic::kMaxSortSize) {
            sb.push_back(offsets[i]);
            sl.push_back(len);
            sr.push_back(ranks[i]);
            slot.push_back(i);
        } else {
            long_seqs.push_back(i);
        }
    }

    if (!sb.empty()) {
        batched_kernel<T>(dev, dflat.span(), sb, sl, sr, dout.span(), slot, cfg.block_dim);
        for (std::size_t j = 0; j < slot.size(); ++j) res.values[slot[j]] = dout[slot[j]];
    }
    res.batched_sequences = sb.size();

    // Oversized sequences run the full recursive pipeline on their own
    // pooled staging buffer; each releases it back to the arena, so one
    // block (per size class) serves the whole batch.
    for (const std::size_t i : long_seqs) {
        const std::size_t len = offsets[i + 1] - offsets[i];
        auto seq = DataHolder<T>::acquire(ctx, len);
        const auto src = dflat.span();
        std::copy(src.begin() + static_cast<std::ptrdiff_t>(offsets[i]),
                  src.begin() + static_cast<std::ptrdiff_t>(offsets[i + 1]),
                  seq.span().begin());
        res.values[i] = sample_select_staged<T>(dev, std::move(seq), ranks[i], cfg).value;
    }
    res.recursive_sequences = long_seqs.size();

    res.sim_ns = dev.elapsed_ns() - t0;
    res.launches = dev.launch_count() - l0;
    return res;
}

template BatchedSelectResult<float> batched_select<float>(simt::Device&, std::span<const float>,
                                                          std::span<const std::size_t>,
                                                          std::span<const std::size_t>,
                                                          const SampleSelectConfig&);
template BatchedSelectResult<double> batched_select<double>(simt::Device&,
                                                            std::span<const double>,
                                                            std::span<const std::size_t>,
                                                            std::span<const std::size_t>,
                                                            const SampleSelectConfig&);

}  // namespace gpusel::core
