#include "core/batched_select.hpp"

#include <stdexcept>

namespace gpusel::core {

template <typename T>
Result<BatchedSelectResult<T>> try_batched_select(simt::Device& dev, std::span<const T> flat,
                                                  std::span<const std::size_t> offsets,
                                                  std::span<const std::size_t> ranks,
                                                  const SampleSelectConfig& cfg,
                                                  const BatchOptions& opts) {
    try {
        cfg.validate(/*exact=*/true);
    } catch (const std::invalid_argument& e) {
        return Status::failure(SelectError::invalid_argument, e.what());
    }
    if (offsets.size() < 2 || ranks.size() != offsets.size() - 1) {
        return Status::failure(SelectError::invalid_argument,
                               "batched_select: need offsets of size m+1 and m ranks");
    }
    if (offsets.front() != 0 || offsets.back() != flat.size()) {
        return Status::failure(SelectError::invalid_argument,
                               "batched_select: offsets must span the flat array");
    }
    const std::size_t m = ranks.size();
    std::vector<BatchProblem<T>> problems(m);
    for (std::size_t i = 0; i < m; ++i) {
        if (offsets[i + 1] < offsets[i]) {
            return Status::failure(SelectError::invalid_argument,
                                   "batched_select: offsets must be non-decreasing");
        }
        const std::size_t len = offsets[i + 1] - offsets[i];
        if (len == 0) {
            return Status::failure(SelectError::empty_input, "batched_select: empty sequence");
        }
        if (ranks[i] >= len) {
            return Status::failure(SelectError::rank_out_of_range,
                                   "batched_select: rank out of range");
        }
        problems[i] = {flat.subspan(offsets[i], len), ranks[i]};
    }

    BatchExecutor<T> exec(dev, cfg, opts);
    auto run = exec.run(problems);
    if (!run.ok()) return run.status();
    const BatchExecResult<T> ex = run.take();

    BatchedSelectResult<T> res;
    res.values.resize(m);
    for (std::size_t i = 0; i < m; ++i) res.values[i] = ex.items[i].value;
    res.batched_sequences = ex.coalesced_problems;
    res.recursive_sequences = ex.recursive_problems;
    res.nan_count = ex.nan_count;
    res.launches = ex.launches;
    res.streams_used = ex.streams_used;
    res.wall_ns = ex.wall_ns;
    res.serial_ns = ex.serial_ns;
    res.sim_ns = ex.wall_ns;
    return res;
}

template <typename T>
BatchedSelectResult<T> batched_select(simt::Device& dev, std::span<const T> flat,
                                      std::span<const std::size_t> offsets,
                                      std::span<const std::size_t> ranks,
                                      const SampleSelectConfig& cfg, const BatchOptions& opts) {
    return try_batched_select<T>(dev, flat, offsets, ranks, cfg, opts).take_or_throw();
}

template Result<BatchedSelectResult<float>> try_batched_select<float>(
    simt::Device&, std::span<const float>, std::span<const std::size_t>,
    std::span<const std::size_t>, const SampleSelectConfig&, const BatchOptions&);
template Result<BatchedSelectResult<double>> try_batched_select<double>(
    simt::Device&, std::span<const double>, std::span<const std::size_t>,
    std::span<const std::size_t>, const SampleSelectConfig&, const BatchOptions&);
template BatchedSelectResult<float> batched_select<float>(
    simt::Device&, std::span<const float>, std::span<const std::size_t>,
    std::span<const std::size_t>, const SampleSelectConfig&, const BatchOptions&);
template BatchedSelectResult<double> batched_select<double>(
    simt::Device&, std::span<const double>, std::span<const std::size_t>,
    std::span<const std::size_t>, const SampleSelectConfig&, const BatchOptions&);

}  // namespace gpusel::core
