#include "core/batched_select.hpp"

#include <algorithm>
#include <stdexcept>

#include "bitonic/bitonic.hpp"
#include "core/float_order.hpp"
#include "core/pipeline.hpp"
#include "core/sample_select.hpp"
#include "simt/timing.hpp"

namespace gpusel::core {

namespace {

/// One thread block per (short) sequence: stage into shared memory, bitonic
/// sort, emit the requested rank.
template <typename T>
void batched_kernel(simt::Device& dev, std::span<const T> flat,
                    const std::vector<std::size_t>& seq_begin,
                    const std::vector<std::size_t>& seq_len,
                    const std::vector<std::size_t>& seq_rank, std::span<T> out_values,
                    const std::vector<std::size_t>& out_slot, int block_dim) {
    const int grid = static_cast<int>(seq_begin.size());
    dev.launch(
        "batched_select", {.grid_dim = grid, .block_dim = block_dim},
        [&, flat, out_values](simt::BlockCtx& blk) {
            const auto s = static_cast<std::size_t>(blk.block_idx());
            const std::size_t begin = seq_begin[s];
            const std::size_t len = seq_len[s];
            const std::size_t m = bitonic::next_pow2(len);
            auto sh = blk.shared_array<T>(m);

            blk.warp_tiles_local(len, [&](simt::WarpCtx& w, std::size_t base, std::size_t) {
                T regs[simt::kWarpSize];
                w.load(flat, begin + base, regs);
                for (int l = 0; l < w.lanes(); ++l) {
                    blk.shared_st(sh, base + static_cast<std::size_t>(l), regs[l]);
                }
                w.touch_shared(static_cast<std::uint64_t>(w.lanes()) * sizeof(T));
            });
            bitonic::sort_in_shared(blk, sh, len);

            blk.st(out_values, out_slot[s], blk.shared_ld(sh, seq_rank[s]));
            blk.charge_shared(sizeof(T));
            blk.charge_global_write(sizeof(T));
        });
}

}  // namespace

template <typename T>
Result<BatchedSelectResult<T>> try_batched_select(simt::Device& dev, std::span<const T> flat,
                                                  std::span<const std::size_t> offsets,
                                                  std::span<const std::size_t> ranks,
                                                  const SampleSelectConfig& cfg) {
    try {
        cfg.validate(/*exact=*/true);
    } catch (const std::invalid_argument& e) {
        return Status::failure(SelectError::invalid_argument, e.what());
    }
    if (offsets.size() < 2 || ranks.size() != offsets.size() - 1) {
        return Status::failure(SelectError::invalid_argument,
                               "batched_select: need offsets of size m+1 and m ranks");
    }
    if (offsets.front() != 0 || offsets.back() != flat.size()) {
        return Status::failure(SelectError::invalid_argument,
                               "batched_select: offsets must span the flat array");
    }
    const std::size_t m = ranks.size();
    for (std::size_t i = 0; i < m; ++i) {
        if (offsets[i + 1] < offsets[i]) {
            return Status::failure(SelectError::invalid_argument,
                                   "batched_select: offsets must be non-decreasing");
        }
        const std::size_t len = offsets[i + 1] - offsets[i];
        if (len == 0) {
            return Status::failure(SelectError::empty_input, "batched_select: empty sequence");
        }
        if (ranks[i] >= len) {
            return Status::failure(SelectError::rank_out_of_range,
                                   "batched_select: rank out of range");
        }
    }

    // Copy the batch to the device (as elsewhere, the transfer is not part
    // of the timed selection).
    PipelineContext ctx(dev, cfg);
    DataHolder<T> dflat;
    simt::PooledBuffer<T> dout;
    Status s = with_fault_retry(ctx, [&] {
        dflat = DataHolder<T>::stage(ctx, flat);
        dout = ctx.scratch<T>(m);
    });
    if (!s.ok()) return s;

    BatchedSelectResult<T> res;
    res.values.resize(m);

    // NaN staging pre-pass, per sequence: each segment of the device copy is
    // partitioned so its NaN keys form the segment tail (a no-op on clean
    // data).  Kernels then only ever see the numeric prefix of a sequence.
    std::vector<std::size_t> len_num(m);
    for (std::size_t i = 0; i < m; ++i) {
        const std::size_t len = offsets[i + 1] - offsets[i];
        const std::size_t nan_c = partition_nans_to_back(dflat.span().subspan(offsets[i], len));
        res.nan_count += nan_c;
        len_num[i] = len - nan_c;
    }
    if (res.nan_count > 0 && cfg.nan_policy == NanPolicy::reject) {
        return Status::failure(SelectError::nan_keys_rejected,
                               "batched_select: input contains NaN keys");
    }

    const double t0 = dev.elapsed_ns();
    const std::uint64_t l0 = dev.launch_count();

    // Split by the single-block sorting capacity of the *numeric* prefix; a
    // rank inside a sequence's NaN tail answers quiet NaN outright and takes
    // neither path.
    std::vector<std::size_t> sb;
    std::vector<std::size_t> sl;
    std::vector<std::size_t> sr;
    std::vector<std::size_t> slot;
    std::vector<std::size_t> long_seqs;
    for (std::size_t i = 0; i < m; ++i) {
        if (ranks[i] >= len_num[i]) {
            res.values[i] = quiet_nan<T>();
        } else if (len_num[i] <= bitonic::kMaxSortSize) {
            sb.push_back(offsets[i]);
            sl.push_back(len_num[i]);
            sr.push_back(ranks[i]);
            slot.push_back(i);
        } else {
            long_seqs.push_back(i);
        }
    }

    if (!sb.empty()) {
        // Launch faults fire before any block runs, so a retry re-launches
        // the identical grid with no partial writes to undo.
        s = with_fault_retry(ctx, [&] {
            batched_kernel<T>(dev, dflat.span(), sb, sl, sr, dout.span(), slot, cfg.block_dim);
        });
        if (!s.ok()) return s;
        for (std::size_t j = 0; j < slot.size(); ++j) res.values[slot[j]] = dout[slot[j]];
    }
    res.batched_sequences = sb.size();

    // Oversized sequences run the full recursive pipeline on their own
    // pooled staging buffer; each releases it back to the arena, so one
    // block (per size class) serves the whole batch.
    for (const std::size_t i : long_seqs) {
        DataHolder<T> seq;
        s = with_fault_retry(ctx, [&] {
            seq = DataHolder<T>::acquire(ctx, len_num[i]);
            const auto src = dflat.span();
            std::copy(src.begin() + static_cast<std::ptrdiff_t>(offsets[i]),
                      src.begin() + static_cast<std::ptrdiff_t>(offsets[i] + len_num[i]),
                      seq.span().begin());
        });
        if (!s.ok()) return s;
        auto sub = try_sample_select_staged<T>(dev, std::move(seq), ranks[i], cfg);
        if (!sub.ok()) return sub.status();
        res.values[i] = sub.value().value;
    }
    res.recursive_sequences = long_seqs.size();

    res.sim_ns = dev.elapsed_ns() - t0;
    res.launches = dev.launch_count() - l0;
    return res;
}

template <typename T>
BatchedSelectResult<T> batched_select(simt::Device& dev, std::span<const T> flat,
                                      std::span<const std::size_t> offsets,
                                      std::span<const std::size_t> ranks,
                                      const SampleSelectConfig& cfg) {
    return try_batched_select<T>(dev, flat, offsets, ranks, cfg).take_or_throw();
}

template Result<BatchedSelectResult<float>> try_batched_select<float>(
    simt::Device&, std::span<const float>, std::span<const std::size_t>,
    std::span<const std::size_t>, const SampleSelectConfig&);
template Result<BatchedSelectResult<double>> try_batched_select<double>(
    simt::Device&, std::span<const double>, std::span<const std::size_t>,
    std::span<const std::size_t>, const SampleSelectConfig&);
template BatchedSelectResult<float> batched_select<float>(simt::Device&, std::span<const float>,
                                                          std::span<const std::size_t>,
                                                          std::span<const std::size_t>,
                                                          const SampleSelectConfig&);
template BatchedSelectResult<double> batched_select<double>(simt::Device&,
                                                            std::span<const double>,
                                                            std::span<const std::size_t>,
                                                            std::span<const std::size_t>,
                                                            const SampleSelectConfig&);

}  // namespace gpusel::core
