#include "core/backend.hpp"

#include <cstdlib>
#include <utility>

#include "bitonic/bitonic.hpp"
#include "core/radix_backend.hpp"

namespace gpusel::core {

std::optional<BackendKind> parse_backend(std::string_view name) noexcept {
    if (name == "sample") return BackendKind::sample;
    if (name == "radix") return BackendKind::radix;
    if (name == "bitonic") return BackendKind::bitonic;
    return std::nullopt;  // "auto" and anything unknown: let the planner decide
}

std::optional<BackendKind> backend_env_override() {
    const char* v = std::getenv("GPUSEL_BACKEND");
    if (v == nullptr) return std::nullopt;
    return parse_backend(v);
}

namespace {

/// The paper's sampled bucket recursion (the default backend).
template <typename T>
class SampleBackend final : public SelectionBackend<T> {
public:
    [[nodiscard]] BackendKind kind() const noexcept override { return BackendKind::sample; }

    [[nodiscard]] Result<SelectResult<T>> select(simt::Device& dev, DataHolder<T> data,
                                                 std::size_t rank, const SampleSelectConfig& cfg,
                                                 int stream) const override {
        return detail::sample_select_descend<T>(dev, std::move(data), rank, cfg, stream);
    }

    [[nodiscard]] Result<TopKResult<T>> topk_largest(simt::Device& dev, DataHolder<T> data,
                                                     std::size_t k,
                                                     const SampleSelectConfig& cfg,
                                                     int stream) const override {
        return detail::sample_topk_descend<T>(dev, std::move(data), k, cfg, stream);
    }
};

/// MSD radix digit descent (core/radix_backend.hpp).
template <typename T>
class RadixBackend final : public SelectionBackend<T> {
public:
    [[nodiscard]] BackendKind kind() const noexcept override { return BackendKind::radix; }

    [[nodiscard]] Result<SelectResult<T>> select(simt::Device& dev, DataHolder<T> data,
                                                 std::size_t rank, const SampleSelectConfig& cfg,
                                                 int stream) const override {
        return try_radix_select_staged<T>(dev, std::move(data), rank, cfg, stream);
    }

    [[nodiscard]] Result<TopKResult<T>> topk_largest(simt::Device& dev, DataHolder<T> data,
                                                     std::size_t k,
                                                     const SampleSelectConfig& cfg,
                                                     int stream) const override {
        return try_radix_topk_staged<T>(dev, std::move(data), k, cfg, stream);
    }
};

/// Single-block bitonic sort run as a whole-problem backend.  The launch
/// sequence is exactly the recursion base case (sort, then pick / copy),
/// so routing small problems here keeps event streams identical to the
/// pre-planner code.
template <typename T>
class BitonicBackend final : public SelectionBackend<T> {
public:
    [[nodiscard]] BackendKind kind() const noexcept override { return BackendKind::bitonic; }

    [[nodiscard]] Result<SelectResult<T>> select(simt::Device& dev, DataHolder<T> data,
                                                 std::size_t rank, const SampleSelectConfig& cfg,
                                                 int stream) const override {
        const std::size_t n = data.size();
        if (n > bitonic::kMaxSortSize) {
            return Status::failure(SelectError::invalid_argument,
                                   "bitonic backend: input exceeds the sort capacity");
        }
        PipelineContext ctx(dev, cfg, stream);
        Status s = with_fault_retry(
            ctx, [&] { sort_base_case<T>(ctx, data.span(), simt::LaunchOrigin::host); });
        if (!s.ok()) return s;
        SelectResult<T> res{};
        res.value = data.span()[rank];
        return res;
    }

    [[nodiscard]] Result<TopKResult<T>> topk_largest(simt::Device& dev, DataHolder<T> data,
                                                     std::size_t k,
                                                     const SampleSelectConfig& cfg,
                                                     int stream) const override {
        const std::size_t n = data.size();
        if (n > bitonic::kMaxSortSize || k > n) {
            return Status::failure(SelectError::invalid_argument,
                                   "bitonic backend: input exceeds the sort capacity");
        }
        PipelineContext ctx(dev, cfg, stream);
        const std::size_t threshold_rank = n - k;
        TopKResult<T> res;
        simt::PooledBuffer<T> acc;
        Status s = with_fault_retry(ctx, [&] { acc = ctx.template scratch<T>(k); });
        if (!s.ok()) return s;
        s = with_fault_retry(
            ctx, [&] { sort_base_case<T>(ctx, data.span(), simt::LaunchOrigin::host); });
        if (!s.ok()) return s;
        s = with_fault_retry(ctx, [&] {
            launch_copy<T>(dev, data.span(), threshold_rank, acc.span(), 0, k,
                           simt::LaunchOrigin::host, cfg.block_dim, ctx.stream());
        });
        if (!s.ok()) return s;
        res.threshold = data.span()[threshold_rank];
        res.elements.assign(acc.data(), acc.data() + k);
        return res;
    }
};

}  // namespace

template <typename T>
const SelectionBackend<T>& selection_backend(BackendKind kind) {
    static const SampleBackend<T> sample;
    static const RadixBackend<T> radix;
    static const BitonicBackend<T> bitonic_;
    switch (kind) {
        case BackendKind::radix: return radix;
        case BackendKind::bitonic: return bitonic_;
        case BackendKind::sample: break;
    }
    return sample;
}

template const SelectionBackend<float>& selection_backend<float>(BackendKind);
template const SelectionBackend<double>& selection_backend<double>(BackendKind);
template const SelectionBackend<ArgPair>& selection_backend<ArgPair>(BackendKind);

}  // namespace gpusel::core
