#pragma once
// The `filter` kernel (Sec. IV-B c): scans the oracles and extracts the
// elements of one bucket into contiguous storage.  Write positions come
// from a shared-memory counter whose block base was produced by the reduce
// step (this is the merged step 3 of the Sec. IV-G hierarchy), or from a
// single global atomic counter in global-atomic mode.  Follows the
// predicated-copy approach of Bakunas-Milanowski et al., but reads bucket
// indexes from the oracles instead of predicate bits.

#include <cstdint>
#include <span>

#include "core/config.hpp"
#include "core/key_payload.hpp"
#include "simt/device.hpp"

namespace gpusel::core {

/// Extracts all elements whose oracle equals `bucket` into `out` (which
/// must have the bucket's exact size).
///
/// * Shared mode: `block_offsets` is the reduce_offsets output (row-major
///   grid_dim x num_buckets exclusive prefix sums) and `grid_dim` must
///   equal the count kernel's grid.  `global_counter` is unused.
/// * Global mode: `global_counter` is a zeroed 1-element array used as the
///   shared "next free slot" cursor; `block_offsets` is unused.
template <typename T>
void filter_kernel(simt::Device& dev, std::span<const T> data,
                   std::span<const std::uint8_t> oracles, std::int32_t bucket, std::span<T> out,
                   std::span<const std::int32_t> block_offsets, int num_buckets,
                   std::span<std::int32_t> global_counter, const SampleSelectConfig& cfg,
                   simt::LaunchOrigin origin, int grid_dim, int stream = -1);

/// Fused top-k variant (Sec. IV-I): extracts the target bucket into `out`
/// *and* every element of a larger bucket (oracle > bucket) into `upper`,
/// whose cursor starts at upper_counter/upper_offsets analogously.  Used by
/// the top-k driver, where elements above the target bucket are already
/// guaranteed to belong to the top-k set.
template <typename T>
void filter_fused_topk_kernel(simt::Device& dev, std::span<const T> data,
                              std::span<const std::uint8_t> oracles, std::int32_t bucket,
                              std::span<T> out, std::span<T> upper,
                              std::span<const std::int32_t> block_offsets, int num_buckets,
                              std::span<std::int32_t> counters, const SampleSelectConfig& cfg,
                              simt::LaunchOrigin origin, int grid_dim, int stream = -1);

extern template void filter_kernel<float>(simt::Device&, std::span<const float>,
                                          std::span<const std::uint8_t>, std::int32_t,
                                          std::span<float>, std::span<const std::int32_t>, int,
                                          std::span<std::int32_t>, const SampleSelectConfig&,
                                          simt::LaunchOrigin, int, int);
extern template void filter_kernel<double>(simt::Device&, std::span<const double>,
                                           std::span<const std::uint8_t>, std::int32_t,
                                           std::span<double>, std::span<const std::int32_t>, int,
                                           std::span<std::int32_t>, const SampleSelectConfig&,
                                           simt::LaunchOrigin, int, int);
extern template void filter_fused_topk_kernel<float>(simt::Device&, std::span<const float>,
                                                     std::span<const std::uint8_t>, std::int32_t,
                                                     std::span<float>, std::span<float>,
                                                     std::span<const std::int32_t>, int,
                                                     std::span<std::int32_t>,
                                                     const SampleSelectConfig&,
                                                     simt::LaunchOrigin, int, int);
extern template void filter_fused_topk_kernel<double>(simt::Device&, std::span<const double>,
                                                      std::span<const std::uint8_t>, std::int32_t,
                                                      std::span<double>, std::span<double>,
                                                      std::span<const std::int32_t>, int,
                                                      std::span<std::int32_t>,
                                                      const SampleSelectConfig&,
                                                      simt::LaunchOrigin, int, int);
extern template void filter_kernel<ArgPair>(simt::Device&, std::span<const ArgPair>,
                                            std::span<const std::uint8_t>, std::int32_t,
                                            std::span<ArgPair>, std::span<const std::int32_t>,
                                            int, std::span<std::int32_t>,
                                            const SampleSelectConfig&, simt::LaunchOrigin, int,
                                            int);
extern template void filter_fused_topk_kernel<ArgPair>(simt::Device&, std::span<const ArgPair>,
                                                       std::span<const std::uint8_t>,
                                                       std::int32_t, std::span<ArgPair>,
                                                       std::span<ArgPair>,
                                                       std::span<const std::int32_t>, int,
                                                       std::span<std::int32_t>,
                                                       const SampleSelectConfig&,
                                                       simt::LaunchOrigin, int, int);

}  // namespace gpusel::core
