#include "core/multiselect.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "bitonic/bitonic.hpp"
#include "core/count_kernel.hpp"
#include "core/filter_kernel.hpp"
#include "core/reduce_kernel.hpp"
#include "core/sample_kernel.hpp"
#include "simt/timing.hpp"

namespace gpusel::core {

namespace {

/// One pending (rank within the current buffer, output slot) pair.
struct Target {
    std::size_t rank;
    std::size_t out_slot;
};

template <typename T>
void solve(simt::Device& dev, simt::DeviceBuffer<T> buf, std::vector<Target> targets,
           const SampleSelectConfig& cfg, std::size_t depth, MultiSelectResult<T>& res) {
    const std::size_t n = buf.size();
    res.max_depth = std::max(res.max_depth, depth);
    const auto origin = depth == 0 ? simt::LaunchOrigin::host : simt::LaunchOrigin::device;

    if (n <= cfg.base_case_size) {
        bitonic::sort_on_device<T>(dev, buf.span(), n, origin, cfg.block_dim);
        for (const Target& t : targets) res.values[t.out_slot] = buf[t.rank];
        return;
    }

    const auto b = static_cast<std::size_t>(cfg.num_buckets);
    const bool shared_mode = cfg.atomic_space == simt::AtomicSpace::shared;

    const SearchTree<T> tree = sample_splitters<T>(dev, buf.span(), cfg, origin, depth * 977);
    auto oracles = dev.alloc<std::uint8_t>(n);
    auto totals = dev.alloc<std::int32_t>(b);
    const int grid = simt::suggest_grid(dev.arch(), n, cfg.block_dim, cfg.unroll);
    simt::DeviceBuffer<std::int32_t> block_counts;
    if (shared_mode) {
        block_counts = dev.alloc<std::int32_t>(static_cast<std::size_t>(grid) * b);
    } else {
        launch_memset32(dev, totals.span(), origin);
    }
    count_kernel<T>(dev, buf.span(), tree, oracles.span(), totals.span(), block_counts.span(),
                    cfg, origin);
    if (shared_mode) {
        reduce_kernel(dev, block_counts.span(), grid, cfg.num_buckets, totals.span(),
                      /*keep_block_offsets=*/true, origin, cfg.block_dim);
    }
    auto prefix = dev.alloc<std::int32_t>(b + 1);
    (void)select_bucket_kernel(dev, totals.span(), prefix.span(), targets.front().rank, origin);

    // Group target ranks by bucket.
    std::map<std::int32_t, std::vector<Target>> by_bucket;
    for (const Target& t : targets) {
        std::int32_t bucket = 0;
        for (std::size_t i = 0; i < b; ++i) {
            if (static_cast<std::size_t>(prefix[i]) <= t.rank) {
                bucket = static_cast<std::int32_t>(i);
            }
        }
        by_bucket[bucket].push_back(
            {t.rank - static_cast<std::size_t>(prefix[static_cast<std::size_t>(bucket)]),
             t.out_slot});
    }

    for (auto& [bucket, sub] : by_bucket) {
        const auto ub = static_cast<std::size_t>(bucket);
        if (tree.equality[ub]) {
            for (const Target& t : sub) res.values[t.out_slot] = tree.splitters[ub - 1];
            continue;
        }
        const auto bucket_size = static_cast<std::size_t>(totals[ub]);
        if (bucket_size == n) {
            // Pathological sample; fall back to a fresh single level with a
            // different salt by recursing on a copy (bounded by depth cap).
            if (depth > 64) throw std::runtime_error("multi_select: no partition progress");
        }
        auto out = dev.alloc<T>(bucket_size);
        simt::DeviceBuffer<std::int32_t> cursor;
        if (!shared_mode) {
            cursor = dev.alloc<std::int32_t>(1);
            launch_memset32(dev, cursor.span(), origin);
        }
        filter_kernel<T>(dev, buf.span(), oracles.span(), bucket, out.span(), block_counts.span(),
                         cfg.num_buckets, cursor.span(), cfg, origin, grid);
        solve(dev, std::move(out), std::move(sub), cfg, depth + 1, res);
    }
}

}  // namespace

template <typename T>
MultiSelectResult<T> multi_select(simt::Device& dev, std::span<const T> input,
                                  std::span<const std::size_t> ranks,
                                  const SampleSelectConfig& cfg) {
    cfg.validate(/*exact=*/true);
    const std::size_t n = input.size();
    if (ranks.empty()) return {};
    for (std::size_t r : ranks) {
        if (r >= n) throw std::out_of_range("rank out of range");
    }

    auto buf = dev.alloc<T>(n);
    std::copy(input.begin(), input.end(), buf.data());

    MultiSelectResult<T> res;
    res.values.resize(ranks.size());
    std::vector<Target> targets(ranks.size());
    for (std::size_t i = 0; i < ranks.size(); ++i) targets[i] = {ranks[i], i};

    const double t0 = dev.elapsed_ns();
    const std::uint64_t l0 = dev.launch_count();
    solve(dev, std::move(buf), std::move(targets), cfg, 0, res);
    res.sim_ns = dev.elapsed_ns() - t0;
    res.launches = dev.launch_count() - l0;
    return res;
}

template MultiSelectResult<float> multi_select<float>(simt::Device&, std::span<const float>,
                                                      std::span<const std::size_t>,
                                                      const SampleSelectConfig&);
template MultiSelectResult<double> multi_select<double>(simt::Device&, std::span<const double>,
                                                        std::span<const std::size_t>,
                                                        const SampleSelectConfig&);

}  // namespace gpusel::core
