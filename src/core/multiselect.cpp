#include "core/multiselect.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "core/pipeline.hpp"

namespace gpusel::core {

namespace {

/// One pending (rank within the current buffer, output slot) pair.
struct Target {
    std::size_t rank;
    std::size_t out_slot;
};

/// Tree descent: one bucketing level shared by all targets in `buf`, then
/// recursion per populated bucket.  Unlike the linear sample_select
/// descent, children branch, so each child gets its own pooled holder
/// (released back to the pool when its subtree is done) instead of the
/// two-buffer ping-pong.
template <typename T>
void solve(const PipelineContext& ctx, DataHolder<T> buf, std::vector<Target> targets,
           std::size_t depth, MultiSelectResult<T>& res) {
    const SampleSelectConfig& cfg = ctx.cfg();
    const std::size_t n = buf.size();
    res.max_depth = std::max(res.max_depth, depth);
    const auto origin = depth == 0 ? simt::LaunchOrigin::host : simt::LaunchOrigin::device;

    if (n <= cfg.base_case_size) {
        sort_base_case<T>(ctx, buf.span(), origin);
        for (const Target& t : targets) res.values[t.out_slot] = buf.span()[t.rank];
        return;
    }

    const auto lv =
        run_bucket_level<T>(ctx, buf.span(), targets.front().rank, origin, depth * 977);
    const auto b = static_cast<std::size_t>(cfg.num_buckets);
    const auto prefix = lv.prefix_span();
    const auto totals = lv.totals_span();

    // Group target ranks by bucket.
    std::map<std::int32_t, std::vector<Target>> by_bucket;
    for (const Target& t : targets) {
        std::int32_t bucket = 0;
        for (std::size_t i = 0; i < b; ++i) {
            if (static_cast<std::size_t>(prefix[i]) <= t.rank) {
                bucket = static_cast<std::int32_t>(i);
            }
        }
        by_bucket[bucket].push_back(
            {t.rank - static_cast<std::size_t>(prefix[static_cast<std::size_t>(bucket)]),
             t.out_slot});
    }

    for (auto& [bucket, sub] : by_bucket) {
        const auto ub = static_cast<std::size_t>(bucket);
        if (lv.tree.equality[ub]) {
            const T v = lv.equality_value(bucket);
            for (const Target& t : sub) res.values[t.out_slot] = v;
            continue;
        }
        const auto bucket_size = static_cast<std::size_t>(totals[ub]);
        if (bucket_size == n) {
            // Pathological sample; fall back to a fresh single level with a
            // different salt by recursing on a copy (bounded by depth cap).
            if (depth > 64) throw std::runtime_error("multi_select: no partition progress");
        }
        auto child = DataHolder<T>::acquire(ctx, bucket_size);
        filter_bucket<T>(ctx, buf.span(), lv, bucket, child.span(), origin);
        solve(ctx, std::move(child), std::move(sub), depth + 1, res);
    }
}

}  // namespace

template <typename T>
MultiSelectResult<T> multi_select(simt::Device& dev, std::span<const T> input,
                                  std::span<const std::size_t> ranks,
                                  const SampleSelectConfig& cfg) {
    cfg.validate(/*exact=*/true);
    const std::size_t n = input.size();
    if (ranks.empty()) return {};
    for (std::size_t r : ranks) {
        if (r >= n) throw std::out_of_range("rank out of range");
    }

    PipelineContext ctx(dev, cfg);
    auto buf = DataHolder<T>::stage(ctx, input);

    MultiSelectResult<T> res;
    res.values.resize(ranks.size());
    std::vector<Target> targets(ranks.size());
    for (std::size_t i = 0; i < ranks.size(); ++i) targets[i] = {ranks[i], i};

    const double t0 = dev.elapsed_ns();
    const std::uint64_t l0 = dev.launch_count();
    solve(ctx, std::move(buf), std::move(targets), 0, res);
    res.sim_ns = dev.elapsed_ns() - t0;
    res.launches = dev.launch_count() - l0;
    return res;
}

template MultiSelectResult<float> multi_select<float>(simt::Device&, std::span<const float>,
                                                      std::span<const std::size_t>,
                                                      const SampleSelectConfig&);
template MultiSelectResult<double> multi_select<double>(simt::Device&, std::span<const double>,
                                                        std::span<const std::size_t>,
                                                        const SampleSelectConfig&);

}  // namespace gpusel::core
