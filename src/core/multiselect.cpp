#include "core/multiselect.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <utility>

#include "core/batch_executor.hpp"
#include "core/float_order.hpp"
#include "core/pipeline.hpp"
#include "core/planner.hpp"

namespace gpusel::core {

namespace {

/// One pending (rank within the current buffer, output slot) pair.
struct Target {
    std::size_t rank;
    std::size_t out_slot;
};

/// Tree descent: one bucketing level shared by all targets in `buf`, then
/// recursion per populated bucket.  Unlike the linear sample_select
/// descent, children branch, so each child gets its own pooled holder
/// (released back to the pool when its subtree is done) instead of the
/// two-buffer ping-pong.
///
/// `stalls` counts consecutive no-progress levels on this path; past
/// cfg.max_stalled_levels the node runs the deterministic tripartition
/// level instead of sampling (guaranteed progress, docs/robustness.md).
///
/// `fan` (may be null) is the stream fan for the first level that splits
/// the targets into more than one bucket: each bucket subtree then runs on
/// its own lane (children wait on the level's event, the base stream joins
/// them at the end) and deeper recursions stay on their lane's stream.
/// Levels that do not split (stalls, single-bucket descents) pass the fan
/// down unused, so the fan applies to the first *partitioning* level.
template <typename T>
Status solve(const PipelineContext& ctx, DataHolder<T> buf, std::vector<Target> targets,
             std::size_t depth, std::size_t stalls, MultiSelectResult<T>& res, StreamFan* fan) {
    const SampleSelectConfig& cfg = ctx.cfg();
    const std::size_t n = buf.size();
    res.max_depth = std::max(res.max_depth, depth);
    const auto origin = depth == 0 ? simt::LaunchOrigin::host : simt::LaunchOrigin::device;

    if (n <= cfg.base_case_size) {
        Status s = with_fault_retry(ctx, [&] { sort_base_case<T>(ctx, buf.span(), origin); });
        if (!s.ok()) return s;
        for (const Target& t : targets) res.values[t.out_slot] = buf.span()[t.rank];
        return Status::success();
    }
    if (depth >= static_cast<std::size_t>(cfg.max_levels)) {
        return Status::failure(SelectError::depth_exceeded,
                               "multi_select: max_levels recursion depth exceeded");
    }

    const bool use_fallback =
        cfg.force_fallback || stalls > static_cast<std::size_t>(cfg.max_stalled_levels);
    auto lvres =
        use_fallback
            ? try_run_pivot_level<T>(ctx, buf.span(), targets.front().rank, origin)
            : try_run_bucket_level<T>(ctx, buf.span(), targets.front().rank, origin, depth * 977);
    if (!lvres.ok()) return lvres.status();
    const LevelOutcome<T> lv = lvres.take();
    if (use_fallback) {
        ++res.fallback_levels;
        ++ctx.dev().robustness().fallback_levels;
    }

    const auto b = static_cast<std::size_t>(lv.tree.num_buckets);
    const auto prefix = lv.prefix_span();
    const auto totals = lv.totals_span();

    // Group target ranks by bucket.
    std::map<std::int32_t, std::vector<Target>> by_bucket;
    for (const Target& t : targets) {
        std::int32_t bucket = 0;
        for (std::size_t i = 0; i < b; ++i) {
            if (static_cast<std::size_t>(prefix[i]) <= t.rank) {
                bucket = static_cast<std::int32_t>(i);
            }
        }
        by_bucket[bucket].push_back(
            {t.rank - static_cast<std::size_t>(prefix[static_cast<std::size_t>(bucket)]),
             t.out_slot});
    }

    // Fan the bucket subtrees over the stream lanes once the level really
    // split the targets; the host still descends depth-first, so the
    // launch order is unchanged -- only the stream tags differ.
    const bool fanning = fan != nullptr && fan->count() > 1 && by_bucket.size() > 1;
    if (fanning) (void)fan->fork();
    std::size_t lane_idx = 0;

    for (auto& [bucket, sub] : by_bucket) {
        const auto ub = static_cast<std::size_t>(bucket);
        if (lv.tree.equality[ub]) {
            const T v = lv.equality_value(bucket);
            for (const Target& t : sub) res.values[t.out_slot] = v;
            continue;
        }
        const auto bucket_size = static_cast<std::size_t>(totals[ub]);
        std::size_t child_stalls = 0;
        if (bucket_size == n) {
            // Stalled level (pathological sample; all targets fell into one
            // full-size bucket).  Recursing re-samples with a depth-based
            // salt; past the budget the child switches to the fallback.
            if (use_fallback) {
                // The tripartition tree's equality bucket is non-empty by
                // construction, so this means broken invariants.
                return Status::failure(
                    SelectError::no_progress,
                    "multi_select: deterministic fallback level failed to shrink the bucket");
            }
            ++res.resamples;
            ++ctx.dev().robustness().resamples;
            child_stalls = stalls + 1;
            if (child_stalls == static_cast<std::size_t>(cfg.max_stalled_levels) + 1) {
                ++ctx.dev().robustness().fallbacks;
            }
        }
        const PipelineContext child_ctx =
            fanning ? PipelineContext(ctx.dev(), cfg,
                                      fan->stream(fan->lane_of(lane_idx++)))
                    : ctx;
        DataHolder<T> child;
        Status s = with_fault_retry(child_ctx, [&] {
            child = DataHolder<T>::acquire(child_ctx, bucket_size);
            filter_bucket<T>(child_ctx, buf.span(), lv, bucket, child.span(), origin);
        });
        if (!s.ok()) return s;
        s = solve(child_ctx, std::move(child), std::move(sub), depth + 1, child_stalls, res,
                  fanning ? nullptr : fan);
        if (!s.ok()) return s;
    }
    if (fanning) fan->join();
    return Status::success();
}

}  // namespace

template <typename T>
Result<MultiSelectResult<T>> try_multi_select(simt::Device& dev, std::span<const T> input,
                                              std::span<const std::size_t> ranks,
                                              const SampleSelectConfig& cfg) {
    try {
        cfg.validate(/*exact=*/true);
    } catch (const std::invalid_argument& e) {
        return Status::failure(SelectError::invalid_argument, e.what());
    }
    const std::size_t n = input.size();
    if (ranks.empty()) return MultiSelectResult<T>{};
    for (std::size_t r : ranks) {
        if (r >= n) {
            return Status::failure(SelectError::rank_out_of_range, "rank out of range");
        }
    }

    PipelineContext ctx(dev, cfg);
    DataHolder<T> buf;
    Status s = with_fault_retry(ctx, [&] { buf = DataHolder<T>::stage(ctx, input); });
    if (!s.ok()) return s;

    MultiSelectResult<T> res;
    res.values.resize(ranks.size());

    // NaN staging pre-pass: ranks inside the NaN tail of the total order
    // answer quiet NaN; the rest descend over the non-NaN prefix.
    const std::size_t nan_count = partition_nans_to_back(buf.span());
    if (nan_count > 0 && cfg.nan_policy == NanPolicy::reject) {
        return Status::failure(SelectError::nan_keys_rejected,
                               "multi_select: input contains NaN keys");
    }
    const std::size_t n_num = n - nan_count;
    std::vector<Target> targets;
    targets.reserve(ranks.size());
    for (std::size_t i = 0; i < ranks.size(); ++i) {
        if (ranks[i] >= n_num) {
            res.values[i] = quiet_nan<T>();
        } else {
            targets.push_back({ranks[i], i});
        }
    }
    res.nan_count = nan_count;
    buf.view(n_num);

    if (!targets.empty()) {
        // Multi-rank descent is planned structurally: the bucket tree is
        // the only backend sharing one partition level across all targets,
        // so the decision is recorded (planner log + backend tallies)
        // rather than probed per rank.  An env-forced radix/bitonic
        // override is infeasible here and falls through to sample.
        PlanQuery q;
        q.n = buf.size();
        q.k = targets.size();
        q.multi = true;
        q.elem_size = sizeof(T);
        q.base_case_size = cfg.base_case_size;
        record_planned_decision(dev, plan(q, DistributionHints{}, backend_env_override()),
                                q.n, q.k, ctx.stream());
    }

    const double t0 = dev.elapsed_ns();
    const std::uint64_t l0 = dev.launch_count();
    if (!targets.empty()) {
        // Independent ranks are independent sub-problems after the first
        // partition level: fan their bucket subtrees over leased streams.
        Result<int> fan_width = try_resolve_stream_count(targets.size());
        if (!fan_width.ok()) return fan_width.status();
        StreamFan fan(dev, fan_width.value(), ctx.stream());
        res.streams_used = fan.count();
        s = solve(ctx, std::move(buf), std::move(targets), 0, 0, res,
                  fan.count() > 1 ? &fan : nullptr);
        if (!s.ok()) return s;
    }
    res.sim_ns = dev.elapsed_ns() - t0;
    res.launches = dev.launch_count() - l0;
    return res;
}

template <typename T>
MultiSelectResult<T> multi_select(simt::Device& dev, std::span<const T> input,
                                  std::span<const std::size_t> ranks,
                                  const SampleSelectConfig& cfg) {
    return try_multi_select<T>(dev, input, ranks, cfg).take_or_throw();
}

template Result<MultiSelectResult<float>> try_multi_select<float>(simt::Device&,
                                                                  std::span<const float>,
                                                                  std::span<const std::size_t>,
                                                                  const SampleSelectConfig&);
template Result<MultiSelectResult<double>> try_multi_select<double>(simt::Device&,
                                                                    std::span<const double>,
                                                                    std::span<const std::size_t>,
                                                                    const SampleSelectConfig&);
template MultiSelectResult<float> multi_select<float>(simt::Device&, std::span<const float>,
                                                      std::span<const std::size_t>,
                                                      const SampleSelectConfig&);
template MultiSelectResult<double> multi_select<double>(simt::Device&, std::span<const double>,
                                                        std::span<const std::size_t>,
                                                        const SampleSelectConfig&);

}  // namespace gpusel::core
