#pragma once
// The `reduce` step of the shared-memory atomic hierarchy (Sec. IV-G):
// a prefix sum over the block-local partial counts.  For SampleSelect the
// per-block exclusive prefix sums are kept (turned into the write offsets
// the filter kernel consumes), which is why the paper observes this
// reduction being more expensive when oracles/offsets are needed (Fig. 9).

#include <cstdint>
#include <span>

#include "simt/device.hpp"

namespace gpusel::core {

/// Reduces block_counts (grid_dim x num_buckets, bucket-major within each
/// block row) into per-bucket totals.  When `keep_block_offsets` is set,
/// block_counts[g * b + i] is replaced in-place by the exclusive prefix sum
/// over blocks 0..g-1 of bucket i -- the base write offset of block g
/// within bucket i's contiguous output range.
void reduce_kernel(simt::Device& dev, std::span<std::int32_t> block_counts, int grid_dim,
                   int num_buckets, std::span<std::int32_t> totals, bool keep_block_offsets,
                   simt::LaunchOrigin origin, int block_dim = 256, int stream = 0);

/// The tiny bucket-selection kernel (Sec. IV-E: kernels that "select the
/// bucket containing the kth-smallest element and compute the launch
/// parameters").  Computes the exclusive prefix sum r_i over `totals` into
/// `prefix` (size num_buckets + 1) and returns the bucket containing
/// `rank`, i.e. the largest i with prefix[i] <= rank.
std::int32_t select_bucket_kernel(simt::Device& dev, std::span<const std::int32_t> totals,
                                  std::span<std::int32_t> prefix, std::size_t rank,
                                  simt::LaunchOrigin origin, int stream = 0);

}  // namespace gpusel::core
