#include "core/argselect.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <stdexcept>
#include <utility>

#include "bitonic/bitonic.hpp"
#include "core/float_order.hpp"
#include "core/pipeline.hpp"
#include "core/sample_select.hpp"
#include "simt/simd.hpp"

namespace gpusel::core {

namespace {

/// NaN positions in ascending index order (host staging pre-pass).  NaN
/// keys are the maximum of the total order and NaN pairs order by payload,
/// so this list *is* the ordered NaN tail of the pair sequence.
std::vector<std::uint32_t> nan_indices(std::span<const float> keys) {
    std::vector<std::uint32_t> idx;
    for (std::size_t i = 0; i < keys.size(); ++i) {
        if (is_nan_key(keys[i])) idx.push_back(static_cast<std::uint32_t>(i));
    }
    return idx;
}

/// Builds the (key, original index) pairs over the non-NaN keys, in input
/// order; `negate` flips the key sign so that ascending pair rank means
/// descending key (the top-k trick) while ties still prefer the smaller
/// index.  Host-side staging work, untimed like every staging copy.
std::vector<ArgPair> numeric_pairs(std::span<const float> keys, bool negate) {
    std::vector<ArgPair> pairs;
    pairs.reserve(keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i) {
        const float k = keys[i];
        if (is_nan_key(k)) continue;
        pairs.push_back({negate ? -k : k, static_cast<std::uint32_t>(i)});
    }
    return pairs;
}

/// One streaming gather pass extracting every pair <= thr (pair total
/// order) into `out` via the masked compress-store engine.  The pair order
/// is strict (payloads are distinct indices), so when thr has ascending
/// rank out.size()-1 the pass emits exactly out.size() pairs.
Status extract_upto(const PipelineContext& ctx, std::span<const ArgPair> pairs, ArgPair thr,
                    std::span<ArgPair> out, const SampleSelectConfig& cfg) {
    simt::Device& dev = ctx.dev();
    const std::size_t n = pairs.size();
    std::int32_t emitted = 0;
    Status s = with_fault_retry(ctx, [&] {
        auto cursor = ctx.zeroed_i32(1, simt::LaunchOrigin::device);
        const int grid = simt::suggest_grid(dev.arch(), n, cfg.block_dim, cfg.unroll);
        dev.launch(
            "argselect_gather",
            {.grid_dim = grid, .block_dim = cfg.block_dim, .origin = simt::LaunchOrigin::device,
             .unroll = cfg.unroll, .stream = cfg.stream},
            [&, thr, n](simt::BlockCtx& blk) {
                blk.warp_tiles(n, [&](simt::WarpCtx& w, std::size_t base, std::size_t) {
                    ArgPair elems[simt::kWarpSize];
                    bool pred[simt::kWarpSize];
                    std::int32_t off[simt::kWarpSize];
                    const std::int32_t zeros[simt::kWarpSize] = {};
                    w.load(pairs, base, elems);
                    std::uint32_t mask = 0;
                    for (int l = 0; l < w.lanes(); ++l) {
                        pred[l] = !total_less(thr, elems[l]);
                        if (pred[l]) mask |= 1u << l;
                    }
                    w.add_instr(static_cast<std::uint64_t>(w.lanes()));
                    w.fetch_add(simt::AtomicSpace::global, cursor.span(), zeros, off,
                                /*aggregated=*/true, 1, pred);
                    // Aggregated offsets are lane-ordered consecutive, so
                    // the selected pairs land as one compress-store tile.
                    if (mask != 0) {
                        w.compress_store(out, static_cast<std::size_t>(off[std::countr_zero(mask)]),
                                         mask, elems);
                    }
                });
            });
        emitted = cursor[0];
    });
    if (!s.ok()) return s;
    if (emitted != static_cast<std::int32_t>(out.size())) {
        return Status::failure(SelectError::internal,
                               "argselect_gather: extracted count does not match the threshold "
                               "rank (pair order not strict?)");
    }
    return Status::success();
}

/// Shared front-end validation; n must fit the 32-bit pair payload.
Status check_args(const SampleSelectConfig& cfg, std::size_t n, const char* who) {
    try {
        cfg.validate(/*exact=*/true);
    } catch (const std::invalid_argument& e) {
        return Status::failure(SelectError::invalid_argument, e.what());
    }
    if (n > static_cast<std::size_t>(std::numeric_limits<std::uint32_t>::max())) {
        return Status::failure(SelectError::invalid_argument,
                               std::string(who) + ": input too large for 32-bit index payloads");
    }
    return Status::success();
}

}  // namespace

Result<ArgSelectResult> try_argselect(simt::Device& dev, std::span<const float> keys,
                                      std::size_t rank, const SampleSelectConfig& cfg) {
    const std::size_t n = keys.size();
    Status s = check_args(cfg, n, "argselect");
    if (!s.ok()) return s;
    if (rank >= n) {
        return Status::failure(SelectError::rank_out_of_range, "argselect: rank out of range");
    }

    const std::vector<std::uint32_t> nans = nan_indices(keys);
    if (!nans.empty() && cfg.nan_policy == NanPolicy::reject) {
        return Status::failure(SelectError::nan_keys_rejected,
                               "argselect: input contains NaN keys");
    }
    ArgSelectResult res;
    res.nan_count = nans.size();

    const std::size_t n_num = n - nans.size();
    if (rank >= n_num) {
        // NaN-tail rank: NaN pairs order by ascending index, so the answer
        // is host-known without any device work.
        res.key = std::numeric_limits<float>::quiet_NaN();
        res.index = nans[rank - n_num];
        return res;
    }

    const std::vector<ArgPair> pairs = numeric_pairs(keys, /*negate=*/false);
    auto sel = try_sample_select<ArgPair>(dev, std::span<const ArgPair>(pairs), rank, cfg);
    if (!sel.ok()) return sel.status();
    const SelectResult<ArgPair> r = sel.take();
    res.key = r.value.key;
    res.index = r.value.payload;
    res.levels = r.levels;
    res.equality_exit = r.equality_exit;
    res.sim_ns = r.sim_ns;
    res.launches = r.launches;
    res.resamples = r.resamples;
    res.fallback_levels = r.fallback_levels;
    return res;
}

ArgSelectResult argselect(simt::Device& dev, std::span<const float> keys, std::size_t rank,
                          const SampleSelectConfig& cfg) {
    return try_argselect(dev, keys, rank, cfg).take_or_throw();
}

Result<ArgTopKResult> try_topk_largest_indices(simt::Device& dev, std::span<const float> keys,
                                               std::size_t k, const SampleSelectConfig& cfg) {
    const std::size_t n = keys.size();
    Status s = check_args(cfg, n, "topk_largest_indices");
    if (!s.ok()) return s;
    if (k == 0 || k > n) {
        return Status::failure(SelectError::rank_out_of_range,
                               "topk_largest_indices: k must be in [1, n]");
    }
    const std::vector<std::uint32_t> nans = nan_indices(keys);
    if (!nans.empty() && cfg.nan_policy == NanPolicy::reject) {
        return Status::failure(SelectError::nan_keys_rejected,
                               "topk_largest_indices: input contains NaN keys");
    }

    ArgTopKResult res;
    res.nan_count = nans.size();
    res.values.reserve(k);
    res.indices.reserve(k);
    const double t0 = dev.elapsed_ns();
    const std::uint64_t l0 = dev.launch_count();

    // NaN keys are the largest of the total order: they claim top-k slots
    // first, among themselves by ascending index.
    const std::size_t nan_take = nans.size() < k ? nans.size() : k;
    for (std::size_t i = 0; i < nan_take; ++i) {
        res.values.push_back(std::numeric_limits<float>::quiet_NaN());
        res.indices.push_back(nans[i]);
    }
    const std::size_t kk = k - nan_take;

    if (kk > 0) {
        // Negated keys: the kk smallest pairs are the kk largest keys, and
        // the payload tie-break still prefers smaller original indices.
        const std::vector<ArgPair> pairs = numeric_pairs(keys, /*negate=*/true);
        const std::size_t n_num = pairs.size();
        PipelineContext ctx(dev, cfg);
        DataHolder<ArgPair> data;
        s = with_fault_retry(ctx, [&] {
            data = DataHolder<ArgPair>::stage(ctx, std::span<const ArgPair>(pairs));
        });
        if (!s.ok()) return s;

        // Threshold = pair of ascending rank kk-1; the selection consumes a
        // device-side copy so `data` stays intact for the gather pass.
        DataHolder<ArgPair> copy;
        s = with_fault_retry(ctx, [&] {
            copy = DataHolder<ArgPair>::acquire(ctx, n_num);
            launch_copy<ArgPair>(dev, data.span(), 0, copy.span(), 0, n_num,
                                 simt::LaunchOrigin::host, cfg.block_dim, cfg.stream);
        });
        if (!s.ok()) return s;
        auto sel = try_sample_select_staged<ArgPair>(dev, std::move(copy), kk - 1, cfg);
        if (!sel.ok()) return sel.status();
        const ArgPair thr = sel.value().value;

        simt::PooledBuffer<ArgPair> out;
        s = with_fault_retry(ctx, [&] { out = ctx.scratch<ArgPair>(kk); });
        if (!s.ok()) return s;
        s = extract_upto(ctx, std::span<const ArgPair>(data.span()), thr, out.span(), cfg);
        if (!s.ok()) return s;

        // Host-side ordering of the k results (untimed post-processing,
        // like every result readback): ascending negated pairs equals
        // descending original keys with ascending-index ties.
        std::vector<ArgPair> got(out.data(), out.data() + kk);
        std::sort(got.begin(), got.end(),
                  [](ArgPair a, ArgPair b) { return total_less(a, b); });
        for (const ArgPair& p : got) {
            res.values.push_back(-p.key);
            res.indices.push_back(p.payload);
        }
        res.threshold = -thr.key;
    } else {
        res.threshold = std::numeric_limits<float>::quiet_NaN();  // k-th largest is a NaN
    }

    res.sim_ns = dev.elapsed_ns() - t0;
    res.launches = dev.launch_count() - l0;
    return res;
}

ArgTopKResult topk_largest_indices(simt::Device& dev, std::span<const float> keys, std::size_t k,
                                   const SampleSelectConfig& cfg) {
    return try_topk_largest_indices(dev, keys, k, cfg).take_or_throw();
}

Result<KeyValueSortResult> try_partial_sort_by_key(simt::Device& dev,
                                                   std::span<const float> keys,
                                                   std::span<const std::uint32_t> payloads,
                                                   std::size_t k,
                                                   const SampleSelectConfig& cfg) {
    const std::size_t n = keys.size();
    Status s = check_args(cfg, n, "partial_sort_by_key");
    if (!s.ok()) return s;
    if (payloads.size() != n) {
        return Status::failure(SelectError::invalid_argument,
                               "partial_sort_by_key: keys/payloads size mismatch");
    }
    if (k == 0 || k > n) {
        return Status::failure(SelectError::rank_out_of_range,
                               "partial_sort_by_key: k must be in [1, n]");
    }
    const std::vector<std::uint32_t> nans = nan_indices(keys);
    if (!nans.empty() && cfg.nan_policy == NanPolicy::reject) {
        return Status::failure(SelectError::nan_keys_rejected,
                               "partial_sort_by_key: input contains NaN keys");
    }

    KeyValueSortResult res;
    res.nan_count = nans.size();
    res.keys.reserve(k);
    res.payloads.reserve(k);
    const double t0 = dev.elapsed_ns();
    const std::uint64_t l0 = dev.launch_count();

    const std::size_t n_num = n - nans.size();
    const std::size_t kk = k < n_num ? k : n_num;  // numeric records wanted
    if (kk > 0) {
        const std::vector<ArgPair> pairs = numeric_pairs(keys, /*negate=*/false);
        PipelineContext ctx(dev, cfg);
        DataHolder<ArgPair> data;
        s = with_fault_retry(ctx, [&] {
            data = DataHolder<ArgPair>::stage(ctx, std::span<const ArgPair>(pairs));
        });
        if (!s.ok()) return s;

        simt::PooledBuffer<ArgPair> extracted;
        std::span<ArgPair> sel_span;
        if (kk < n_num) {
            // Threshold at ascending rank kk-1 (consumes a copy), then one
            // compress-store pass extracts exactly the kk-record prefix.
            DataHolder<ArgPair> copy;
            s = with_fault_retry(ctx, [&] {
                copy = DataHolder<ArgPair>::acquire(ctx, n_num);
                launch_copy<ArgPair>(dev, data.span(), 0, copy.span(), 0, n_num,
                                     simt::LaunchOrigin::host, cfg.block_dim, cfg.stream);
            });
            if (!s.ok()) return s;
            auto sel = try_sample_select_staged<ArgPair>(dev, std::move(copy), kk - 1, cfg);
            if (!sel.ok()) return sel.status();
            const ArgPair thr = sel.value().value;
            s = with_fault_retry(ctx, [&] { extracted = ctx.scratch<ArgPair>(kk); });
            if (!s.ok()) return s;
            s = extract_upto(ctx, std::span<const ArgPair>(data.span()), thr, extracted.span(),
                             cfg);
            if (!s.ok()) return s;
            sel_span = extracted.span();
        } else {
            // Every numeric record is in the prefix: sort them all.
            sel_span = data.span();
        }

        // Sorting only the k extracted records: on the device while they
        // fit the bitonic network, on the host beyond that (same total
        // order either way -- the records are NaN-free and distinct).
        if (kk <= bitonic::kMaxSortSize) {
            s = with_fault_retry(ctx, [&] {
                bitonic::sort_on_device<ArgPair>(dev, sel_span, kk, simt::LaunchOrigin::device,
                                                 cfg.block_dim, cfg.stream);
            });
            if (!s.ok()) return s;
            for (std::size_t j = 0; j < kk; ++j) {
                res.keys.push_back(sel_span[j].key);
                res.payloads.push_back(payloads[sel_span[j].payload]);
            }
        } else {
            std::vector<ArgPair> got(sel_span.begin(), sel_span.begin() + kk);
            std::sort(got.begin(), got.end(),
                      [](ArgPair a, ArgPair b) { return total_less(a, b); });
            for (const ArgPair& p : got) {
                res.keys.push_back(p.key);
                res.payloads.push_back(payloads[p.payload]);
            }
        }
    }

    // NaN tail completes the prefix when k exceeds the numeric count:
    // ascending index, NaN keys.
    for (std::size_t i = 0; i < k - kk; ++i) {
        res.keys.push_back(std::numeric_limits<float>::quiet_NaN());
        res.payloads.push_back(payloads[nans[i]]);
    }

    res.sim_ns = dev.elapsed_ns() - t0;
    res.launches = dev.launch_count() - l0;
    return res;
}

KeyValueSortResult partial_sort_by_key(simt::Device& dev, std::span<const float> keys,
                                       std::span<const std::uint32_t> payloads, std::size_t k,
                                       const SampleSelectConfig& cfg) {
    return try_partial_sort_by_key(dev, keys, payloads, k, cfg).take_or_throw();
}

}  // namespace gpusel::core
