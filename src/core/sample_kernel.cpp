#include "core/sample_kernel.hpp"

#include <algorithm>
#include <vector>

#include "bitonic/bitonic.hpp"
#include "data/rng.hpp"

namespace gpusel::core {

template <typename T>
SearchTree<T> sample_splitters(simt::Device& dev, std::span<const T> data,
                               const SampleSelectConfig& cfg, simt::LaunchOrigin origin,
                               std::uint64_t seed_salt, int stream) {
    const std::size_t n = data.size();
    const auto s = static_cast<std::size_t>(cfg.effective_sample_size());
    const auto b = static_cast<std::size_t>(cfg.num_buckets);
    std::vector<T> splitters(b - 1);

    dev.launch(
        "sample",
        {.grid_dim = 1, .block_dim = cfg.block_dim, .origin = origin, .unroll = 1,
         .stream = stream < 0 ? cfg.stream : stream},
        [&](simt::BlockCtx& blk) {
            const std::size_t m = bitonic::next_pow2(s);
            auto sh = blk.shared_array<T>(m);

            // Random sample indices (with replacement, Sec. II-B); each
            // thread computes its index with a counter-based hash -- one
            // instruction-equivalent charge per sampled element.
            data::Xoshiro256 rng(cfg.seed ^ (seed_salt * 0x9e3779b97f4a7c15ULL));
            std::vector<std::size_t> idx(s);
            for (auto& i : idx) i = rng.bounded(n);
            blk.charge_instr(s);

            // Gather the sample into shared memory (scattered global reads).
            blk.warp_tiles(s, [&](simt::WarpCtx& w, std::size_t base, std::size_t) {
                T regs[simt::kWarpSize];
                w.gather(data, idx.data() + base, regs);
                for (int l = 0; l < w.lanes(); ++l) {
                    blk.shared_st(sh, base + static_cast<std::size_t>(l), regs[l]);
                }
                w.touch_shared(static_cast<std::uint64_t>(w.lanes()) * sizeof(T));
            });

            bitonic::sort_in_shared(blk, sh, s);

            // Pick the i/b percentiles (i = 1..b-1) and publish them.
            for (std::size_t j = 1; j < b; ++j) {
                splitters[j - 1] = blk.shared_ld(sh, j * s / b);
            }
            blk.charge_shared((b - 1) * sizeof(T));
            blk.charge_global_write((b - 1) * sizeof(T));
            blk.sync();
        });

    return SearchTree<T>::build(std::move(splitters));
}

template SearchTree<float> sample_splitters<float>(simt::Device&, std::span<const float>,
                                                   const SampleSelectConfig&, simt::LaunchOrigin,
                                                   std::uint64_t, int);
template SearchTree<double> sample_splitters<double>(simt::Device&, std::span<const double>,
                                                     const SampleSelectConfig&, simt::LaunchOrigin,
                                                     std::uint64_t, int);
template SearchTree<ArgPair> sample_splitters<ArgPair>(simt::Device&, std::span<const ArgPair>,
                                                       const SampleSelectConfig&,
                                                       simt::LaunchOrigin, std::uint64_t, int);

}  // namespace gpusel::core
