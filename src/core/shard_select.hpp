#pragma once
// Out-of-core, multi-device sharded selection (docs/sharding.md).
//
// The paper's algorithms assume the input fits one device.  This layer
// chunks n far beyond one device's modeled memory into shards, runs the
// existing planner-driven pipeline per shard on its own simulated device
// and stream (simt/topology.hpp), and merges per-shard results through
// hierarchical *deterministic* splitters in the style of Deterministic
// Sample Sort (PAPERS.md): every shard contributes s exact order
// statistics taken at regular rank strides (a multi-rank selection, not a
// random sample), the merged candidate set yields b-1 global splitters at
// regular candidate gaps, and the classic regular-sampling argument then
// bounds every non-equality global bucket by
//
//     max_bucket <= (g + S) * max_i ceil(n_i / (s_i + 1))
//
// where g = ceil(|C| / b) is the candidate gap between consecutive global
// splitters and S the shard count -- independent of the data.  The bound
// (ShardAccounting::skew_bound) is what keeps the merged rank bucket small
// enough to finish on one device, and per-shard auxiliary memory never
// exceeds what the single-device pipeline would use on a capacity-sized
// input (asserted in tests/test_shard_select.cpp).
//
// Every cross-device byte moves through DeviceGroup::transfer, so link
// traffic is charged like global memory, serialized per directed link, and
// rendered as per-link chrome-trace tracks.  Devices hold at most one
// shard's staging at a time (out-of-core: phases re-stage rather than
// cache), and all cross-device reads are ordered by transfer ready events
// -- StreamSan-clean by construction, with the broken-scenario tests
// demonstrating the hazards the edges prevent.

#include <cstdint>
#include <span>
#include <vector>

#include "core/config.hpp"
#include "core/searchtree.hpp"
#include "core/status.hpp"
#include "simt/topology.hpp"

namespace gpusel::core {

/// Tuning of the sharded layer.  `select` configures the per-shard and
/// root-side pipelines (its `stream` field is ignored -- the shard layer
/// leases one compute stream per device); the shard-specific knobs control
/// the deterministic splitter merge.
struct ShardSelectConfig {
    SampleSelectConfig select;
    /// Per-shard staged-element cap; 0 derives it from the group's modeled
    /// per-device capacity (planner hook plan_shard_count, which reserves
    /// headroom for oracles and scratch).  Tests use tiny overrides.
    std::size_t max_shard_elems = 0;
    /// Global splitter-bucket count b (power of two, 2..256; one-byte
    /// oracles bound it like the exact pipeline's bucket count).
    int splitter_buckets = 32;
    /// Exact order statistics each shard contributes to the merge; 0 picks
    /// 4 * splitter_buckets.  Larger s tightens the skew bound
    /// (stride shrinks) at the cost of deeper per-shard multi-selects.
    int splitters_per_shard = 0;
    /// Fan-in of the hierarchical candidate gather (members per leader and
    /// leaders per root round); >= 2.
    int merge_fanin = 4;

    [[nodiscard]] int effective_splitters_per_shard() const noexcept {
        return splitters_per_shard > 0 ? splitters_per_shard : 4 * splitter_buckets;
    }
};

/// Accounting shared by every sharded front-end: how the input was cut,
/// what the merge guaranteed vs measured, and what the topology charged.
struct ShardAccounting {
    std::size_t shards = 0;
    int devices_used = 0;
    /// Largest staged shard (elements).
    std::size_t max_shard_elems = 0;
    /// Max over devices of the peak auxiliary bytes above the call-entry
    /// level (staged shard + pipeline scratch; the out-of-core invariant is
    /// that this stays within one device's modeled capacity).
    std::size_t max_shard_aux_bytes = 0;
    /// Merged splitter-candidate count |C| (sum of per-shard contributions).
    std::size_t merge_candidates = 0;
    /// Deterministic bound on any non-equality global bucket (see header
    /// comment); 0 when the input fit a single shard.
    std::size_t skew_bound = 0;
    /// Measured largest non-equality global bucket (<= skew_bound).
    std::size_t max_bucket = 0;
    /// Bytes moved over the interconnect by this call.
    std::uint64_t link_bytes = 0;
    /// Simulated duration (group wall clock) and total kernel launches.
    double sim_ns = 0.0;
    std::uint64_t launches = 0;
    /// NaN keys skipped at staging (float/double; NaNs sort above +inf).
    std::size_t nan_count = 0;
};

template <typename T>
struct ShardedSelectResult {
    /// The element of the requested rank.
    T value{};
    /// True when the rank fell into an equality bucket of the merged
    /// splitter tree (exact early exit without a filter pass).
    bool equality_exit = false;
    ShardAccounting acct;
};

template <typename T>
struct ShardedTopKResult {
    /// The k largest elements (unordered).
    std::vector<T> elements;
    /// The k-th largest element (the threshold).
    T threshold{};
    ShardAccounting acct;
};

template <typename T>
struct ShardedApproxSelectResult {
    /// A splitter-edge value near the requested rank.
    T value{};
    /// Exact bound on |true_rank(value) - rank|, composed from the exact
    /// global bucket counts (per-shard counts are exact, so the only error
    /// is splitter granularity; at most max_bucket).
    std::size_t rank_error_bound = 0;
    ShardAccounting acct;
};

/// Exact sharded selection of the 0-based `rank` over an input that may
/// exceed any single device's modeled memory.  Matches the CPU reference
/// exactly (same total order as the single-device pipeline, NaNs above
/// +inf).  float/double only (the candidate phase is a multi-rank
/// selection).
template <typename T>
[[nodiscard]] Result<ShardedSelectResult<T>> try_sharded_select(simt::DeviceGroup& group,
                                                                std::span<const T> input,
                                                                std::size_t rank,
                                                                const ShardSelectConfig& cfg);

/// Sharded top-k (largest): finds the threshold via an exact sharded
/// selection, then gathers every element above it with one tripartition
/// count+filter pass per shard, padding with threshold copies.
template <typename T>
[[nodiscard]] Result<ShardedTopKResult<T>> try_sharded_topk(simt::DeviceGroup& group,
                                                            std::span<const T> input,
                                                            std::size_t k,
                                                            const ShardSelectConfig& cfg);

/// Approximate sharded selection: stops after the global count pass and
/// returns the splitter edge nearest the rank, with the exact residual
/// rank error.  One full data pass less than the exact path and no merge
/// filter traffic.
template <typename T>
[[nodiscard]] Result<ShardedApproxSelectResult<T>> try_sharded_approx_select(
    simt::DeviceGroup& group, std::span<const T> input, std::size_t rank,
    const ShardSelectConfig& cfg);

/// Streaming quantile estimator for unbounded telemetry feeds
/// (examples/quantile_telemetry.cpp): the first chunk's exact order
/// statistics build a fixed splitter tree, every chunk is then a single
/// count pass accumulating global bucket totals, and quantile() answers
/// from the accumulated counts with the exact residual rank error -- the
/// single-device degenerate case of the sharded approximate path, with
/// chunks arriving over time instead of over devices.
template <typename T>
class StreamingQuantile {
public:
    /// `cfg.splitter_buckets` controls resolution; `cfg.select` the count
    /// kernels.  The device reference must outlive the estimator.
    explicit StreamingQuantile(simt::Device& dev, ShardSelectConfig cfg = {});

    /// Folds one chunk into the sketch (builds the splitter tree from the
    /// first chunk; a pure count pass afterwards).
    [[nodiscard]] Status observe(std::span<const T> chunk);

    struct Estimate {
        T value{};
        /// The 0-based rank the estimate answers for.
        std::size_t rank = 0;
        /// Exact bound on |true_rank(value) - rank| over the observed
        /// stream.
        std::size_t rank_error_bound = 0;
        /// Non-NaN elements observed so far.
        std::size_t n = 0;
    };

    /// Quantile q in [0, 1] over everything observed so far.
    [[nodiscard]] Result<Estimate> quantile(double q) const;

    /// Elements observed so far (NaNs included).
    [[nodiscard]] std::size_t observed() const noexcept { return n_ + nan_; }
    [[nodiscard]] std::size_t nan_count() const noexcept { return nan_; }
    /// Launches charged by observe() calls so far.
    [[nodiscard]] std::uint64_t launches() const noexcept { return launches_; }

private:
    simt::Device* dev_;
    ShardSelectConfig cfg_;
    SearchTree<T> tree_;
    bool have_tree_ = false;
    /// Accumulated global bucket totals (int64: streams outgrow int32).
    std::vector<std::int64_t> totals_;
    std::size_t n_ = 0;
    std::size_t nan_ = 0;
    std::uint64_t launches_ = 0;
};

extern template Result<ShardedSelectResult<float>> try_sharded_select<float>(
    simt::DeviceGroup&, std::span<const float>, std::size_t, const ShardSelectConfig&);
extern template Result<ShardedSelectResult<double>> try_sharded_select<double>(
    simt::DeviceGroup&, std::span<const double>, std::size_t, const ShardSelectConfig&);
extern template Result<ShardedTopKResult<float>> try_sharded_topk<float>(
    simt::DeviceGroup&, std::span<const float>, std::size_t, const ShardSelectConfig&);
extern template Result<ShardedTopKResult<double>> try_sharded_topk<double>(
    simt::DeviceGroup&, std::span<const double>, std::size_t, const ShardSelectConfig&);
extern template Result<ShardedApproxSelectResult<float>> try_sharded_approx_select<float>(
    simt::DeviceGroup&, std::span<const float>, std::size_t, const ShardSelectConfig&);
extern template Result<ShardedApproxSelectResult<double>> try_sharded_approx_select<double>(
    simt::DeviceGroup&, std::span<const double>, std::size_t, const ShardSelectConfig&);
extern template class StreamingQuantile<float>;
extern template class StreamingQuantile<double>;

}  // namespace gpusel::core
