#include "core/batch_executor.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <utility>

#include "bitonic/bitonic.hpp"
#include "core/float_order.hpp"
#include "core/planner.hpp"
#include "core/sample_select.hpp"

namespace gpusel::core {

Result<int> try_resolve_stream_count(std::size_t batch, int requested) {
    if (batch == 0) return 1;
    long want = requested;
    if (want <= 0) {
        if (const char* env = std::getenv("GPUSEL_STREAMS")) {
            // Strict parse: the whole value must be one positive decimal
            // integer within the fan cap.  atoi's silent 0-on-garbage used
            // to demote "8 streams" typos to the default without a trace.
            while (*env == ' ' || *env == '\t') ++env;
            if (*env != '\0') {
                char* end = nullptr;
                errno = 0;
                const long parsed = std::strtol(env, &end, 10);
                while (end != nullptr && (*end == ' ' || *end == '\t')) ++end;
                const bool clean = end != nullptr && *end == '\0' && errno != ERANGE;
                if (!clean) {
                    return Status::failure(
                        SelectError::invalid_argument,
                        std::string("GPUSEL_STREAMS is not a number: \"") + env + "\"");
                }
                if (parsed <= 0) {
                    return Status::failure(
                        SelectError::invalid_argument,
                        "GPUSEL_STREAMS must be a positive stream count, got " +
                            std::to_string(parsed));
                }
                if (parsed > kMaxStreamFan) {
                    return Status::failure(
                        SelectError::invalid_argument,
                        "GPUSEL_STREAMS exceeds the stream-fan cap (" +
                            std::to_string(kMaxStreamFan) + "): " + std::to_string(parsed));
                }
                want = parsed;
            }
        }
    }
    if (want <= 0) {
        want = batch < 8 ? static_cast<long>(batch) : 8;
    }
    if (static_cast<std::size_t>(want) > batch) {
        want = static_cast<long>(batch);
    }
    return static_cast<int>(want);
}

int resolve_stream_count(std::size_t batch, int requested) {
    return try_resolve_stream_count(batch, requested).take_or_throw();
}

StreamFan::StreamFan(simt::Device& dev, int count, int base_stream) : dev_(&dev) {
    if (count < 1) count = 1;
    streams_.reserve(static_cast<std::size_t>(count));
    streams_.push_back(base_stream);
    // A lease_stream() throw mid-loop (injected fault, stream-table limit)
    // would skip the destructor: release the partial lease set before
    // rethrowing so the streams are not leaked for the device's lifetime.
    try {
        for (int i = 1; i < count; ++i) {
            streams_.push_back(dev.lease_stream());
        }
    } catch (...) {
        for (std::size_t i = 1; i < streams_.size(); ++i) {
            dev.release_stream(streams_[i]);
        }
        throw;
    }
}

StreamFan::~StreamFan() {
    // An exception (or early error return) between fork() and join() lands
    // here with lane work possibly pending; a released lease may be handed
    // to unrelated work immediately, so join first.  Best-effort: the
    // destructor must not throw, and the leases must be released even when
    // the join itself fails.
    if (!joined_) {
        try {
            join();
        } catch (...) {
        }
    }
    for (std::size_t i = 1; i < streams_.size(); ++i) {
        dev_->release_stream(streams_[i]);
    }
}

double StreamFan::fork() {
    fork_ns_ = dev_->record_event(streams_[0]);
    for (std::size_t i = 1; i < streams_.size(); ++i) {
        dev_->wait_event(streams_[i], fork_ns_);
    }
    joined_ = streams_.size() <= 1;  // a one-lane fan has nothing to join
    return fork_ns_;
}

void StreamFan::join() {
    for (std::size_t i = 1; i < streams_.size(); ++i) {
        dev_->wait_event(streams_[0], dev_->record_event(streams_[i]));
    }
    joined_ = true;
}

namespace {

/// One fused launch answering every coalesced problem of one lane: one
/// thread block per problem stages its numeric prefix into shared memory,
/// bitonic-sorts it (Sec. IV-D) and emits the requested rank.  Same kernel
/// name and per-block events as the classic batched_select fused launch,
/// just reading from per-problem staging buffers and enqueued on a lane
/// stream.
template <typename T>
void fused_lane_kernel(simt::Device& dev, const std::vector<std::span<const T>>& seqs,
                       const std::vector<std::size_t>& seq_rank, std::span<T> out,
                       int block_dim, int stream) {
    const int grid = static_cast<int>(seqs.size());
    dev.launch(
        "batched_select", {.grid_dim = grid, .block_dim = block_dim, .stream = stream},
        [&, out](simt::BlockCtx& blk) {
            const auto s = static_cast<std::size_t>(blk.block_idx());
            const std::span<const T> seq = seqs[s];
            const std::size_t len = seq.size();
            const std::size_t m = bitonic::next_pow2(len);
            auto sh = blk.shared_array<T>(m);

            blk.warp_tiles_local(len, [&](simt::WarpCtx& w, std::size_t base, std::size_t) {
                T regs[simt::kWarpSize];
                w.load(seq, base, regs);
                for (int l = 0; l < w.lanes(); ++l) {
                    blk.shared_st(sh, base + static_cast<std::size_t>(l), regs[l]);
                }
                w.touch_shared(static_cast<std::uint64_t>(w.lanes()) * sizeof(T));
            });
            bitonic::sort_in_shared(blk, sh, len);

            blk.st(out, s, blk.shared_ld(sh, seq_rank[s]));
            blk.charge_shared(sizeof(T));
            blk.charge_global_write(sizeof(T));
        });
}

}  // namespace

template <typename T>
Result<BatchExecResult<T>> BatchExecutor<T>::run(std::span<const BatchProblem<T>> problems) {
    simt::Device& dev = *dev_;
    const SampleSelectConfig& cfg = cfg_;
    try {
        cfg.validate(/*exact=*/true);
    } catch (const std::invalid_argument& e) {
        return Status::failure(SelectError::invalid_argument, e.what());
    }
    if (problems.empty()) {
        return Status::failure(SelectError::invalid_argument, "batch_executor: empty batch");
    }
    for (const BatchProblem<T>& p : problems) {
        if (p.data.empty()) {
            return Status::failure(SelectError::empty_input, "batch_executor: empty problem");
        }
        if (p.rank >= p.data.size()) {
            return Status::failure(SelectError::rank_out_of_range,
                                   "batch_executor: rank out of range");
        }
    }

    const std::size_t m = problems.size();
    const std::size_t threshold =
        opts_.coalesce_threshold > 0 ? opts_.coalesce_threshold : bitonic::kMaxSortSize;
    Result<int> fan_width = try_resolve_stream_count(m, opts_.streams);
    if (!fan_width.ok()) return fan_width.status();
    StreamFan fan(dev, fan_width.value(), cfg.stream);
    const auto lanes = static_cast<std::size_t>(fan.count());

    // One context per lane: pooled scratch and launches ordered on that
    // lane's stream (the per-stream arena of simt/pool.hpp).
    std::vector<PipelineContext> lane_ctx;
    lane_ctx.reserve(lanes);
    for (int l = 0; l < fan.count(); ++l) {
        lane_ctx.emplace_back(dev, cfg, fan.stream(l));
    }

    BatchExecResult<T> res;
    res.items.resize(m);
    res.streams_used = fan.count();

    // Stage every problem onto its lane (untimed host->device transfer, as
    // everywhere in this simulator) and run the NaN staging pre-pass.
    std::vector<DataHolder<T>> staged(m);
    std::vector<std::size_t> len_num(m);
    for (std::size_t i = 0; i < m; ++i) {
        const int lane = fan.lane_of(i);
        res.items[i].stream = fan.stream(lane);
        Status s = with_fault_retry(lane_ctx[static_cast<std::size_t>(lane)], [&] {
            staged[i] = DataHolder<T>::stage(lane_ctx[static_cast<std::size_t>(lane)],
                                             problems[i].data);
        });
        if (!s.ok()) return s;
        const std::size_t nan_c = partition_nans_to_back(staged[i].span());
        res.items[i].nan_count = nan_c;
        res.nan_count += nan_c;
        len_num[i] = problems[i].data.size() - nan_c;
    }
    if (res.nan_count > 0 && cfg.nan_policy == NanPolicy::reject) {
        return Status::failure(SelectError::nan_keys_rejected,
                               "batch_executor: input contains NaN keys");
    }

    const std::uint64_t l0 = dev.launch_count();
    const double fork_ns = fan.fork();

    // Classify: NaN-tail ranks answer at staging, short numeric prefixes
    // coalesce per lane, the rest run the full recursion on their lane.
    // A GPUSEL_BACKEND override other than bitonic disables coalescing
    // (the fused lane kernel *is* the bitonic backend, just many problems
    // per launch) and routes everything through the planned recursion.
    // A quarantined bitonic backend (server circuit breaker,
    // docs/service.md) likewise routes around the fused path.
    const std::optional<BackendKind> forced = backend_env_override();
    const bool allow_fused = (!forced || *forced == BackendKind::bitonic) &&
                             (dev.backend_quarantine() & backend_bit(BackendKind::bitonic)) == 0;
    std::vector<std::vector<std::size_t>> fused(lanes);
    std::vector<std::size_t> recursive;
    for (std::size_t i = 0; i < m; ++i) {
        if (problems[i].rank >= len_num[i]) {
            res.items[i].value = quiet_nan<T>();
        } else if (allow_fused && len_num[i] <= threshold) {
            fused[static_cast<std::size_t>(fan.lane_of(i))].push_back(i);
        } else {
            recursive.push_back(i);
        }
    }

    // Fused launches: one per lane that holds coalesced problems.  Launch
    // faults fire before any block runs, so retries re-launch the identical
    // grid with no partial writes to undo.
    for (std::size_t l = 0; l < lanes; ++l) {
        const std::vector<std::size_t>& group = fused[l];
        if (group.empty()) continue;
        std::vector<std::span<const T>> seqs;
        std::vector<std::size_t> seq_rank;
        seqs.reserve(group.size());
        seq_rank.reserve(group.size());
        for (const std::size_t i : group) {
            seqs.push_back(staged[i].span().first(len_num[i]));
            seq_rank.push_back(problems[i].rank);
            // Structural decision: the fused lane launch is the bitonic
            // backend applied per block, recorded so backend tallies and
            // the planner log cover coalesced problems too.
            record_planned_decision(
                dev,
                PlanDecision{BackendKind::bitonic,
                             forced ? "GPUSEL_BACKEND override" : "batch-coalesced bitonic lane",
                             forced.has_value()},
                len_num[i], problems[i].rank, fan.stream(static_cast<int>(l)));
        }
        simt::PooledBuffer<T> dout;
        const std::uint64_t before = dev.launch_count();
        Status s = with_fault_retry(lane_ctx[l], [&] {
            dout = lane_ctx[l].template scratch<T>(group.size());
            fused_lane_kernel<T>(dev, seqs, seq_rank, dout.span(), cfg.block_dim,
                                 fan.stream(static_cast<int>(l)));
        });
        if (!s.ok()) return s;
        const std::uint64_t after = dev.launch_count();
        for (std::size_t j = 0; j < group.size(); ++j) {
            BatchItemResult<T>& item = res.items[group[j]];
            item.value = dout[j];
            item.coalesced = true;
            item.first_launch = before;
            item.last_launch = after;
        }
        res.coalesced_problems += group.size();
        ++res.coalesced_launches;
    }

    // Full recursions, one per oversized problem, on that problem's lane.
    // The host issues them in problem order, so per-problem launch
    // subsequences are contiguous and byte-identical to serial runs.
    for (const std::size_t i : recursive) {
        res.items[i].first_launch = dev.launch_count();
        SampleSelectConfig pcfg = cfg;
        if (problems[i].deadline_ns > 0.0) pcfg.deadline_ns = problems[i].deadline_ns;
        auto sub = try_sample_select_staged<T>(dev, std::move(staged[i]), problems[i].rank, pcfg,
                                               res.items[i].stream);
        res.items[i].last_launch = dev.launch_count();
        if (!sub.ok()) {
            // A deadline overrun is a per-request outcome, not a batch
            // fault: record it on the item and keep the lane going.
            if (sub.error() == SelectError::deadline_exceeded) {
                res.items[i].status = sub.status();
                continue;
            }
            return sub.status();
        }
        res.items[i].value = sub.value().value;
    }
    res.recursive_problems = recursive.size();

    // Overlap accounting: lane busy time relative to the fork event; the
    // join makes the base stream (and elapsed_ns) reflect the wall time.
    double wall = 0.0;
    double serial = 0.0;
    for (int l = 0; l < fan.count(); ++l) {
        const double busy = dev.stream_clock(fan.stream(l)) - fork_ns;
        if (busy > 0.0) {
            serial += busy;
            wall = std::max(wall, busy);
        }
    }
    fan.join();
    res.wall_ns = wall;
    res.serial_ns = serial;
    res.launches = dev.launch_count() - l0;
    return res;
}

template class BatchExecutor<float>;
template class BatchExecutor<double>;
template class BatchExecutor<ArgPair>;

}  // namespace gpusel::core
