#include "core/topk.hpp"

#include <stdexcept>

#include "bitonic/bitonic.hpp"
#include "core/count_kernel.hpp"
#include "core/histogram.hpp"
#include "core/filter_kernel.hpp"
#include "core/reduce_kernel.hpp"
#include "core/sample_kernel.hpp"
#include "core/sample_select.hpp"
#include "simt/timing.hpp"

namespace gpusel::core {

namespace {

/// Copies src[src_base .. src_base+count) to dst[dst_base ..) (coalesced).
template <typename T>
void launch_copy(simt::Device& dev, std::span<const T> src, std::size_t src_base, std::span<T> dst,
                 std::size_t dst_base, std::size_t count, simt::LaunchOrigin origin,
                 int block_dim) {
    if (count == 0) return;
    const int grid = simt::suggest_grid(dev.arch(), count, block_dim);
    dev.launch("copy", {.grid_dim = grid, .block_dim = block_dim, .origin = origin},
               [=](simt::BlockCtx& blk) {
                   blk.warp_tiles(count, [&](simt::WarpCtx& w, std::size_t base, std::size_t) {
                       T regs[simt::kWarpSize];
                       w.load(src, src_base + base, regs);
                       w.store(dst, dst_base + base, regs);
                   });
               });
}

}  // namespace

template <typename T>
TopKResult<T> topk_largest(simt::Device& dev, std::span<const T> input, std::size_t k,
                           const SampleSelectConfig& cfg) {
    cfg.validate(/*exact=*/true);
    const std::size_t n0 = input.size();
    if (k == 0 || k > n0) throw std::out_of_range("k must be in [1, n]");

    auto buf = dev.alloc<T>(n0);
    std::copy(input.begin(), input.end(), buf.data());
    auto acc = dev.alloc<T>(k);

    TopKResult<T> res;
    const double t0 = dev.elapsed_ns();
    const std::uint64_t l0 = dev.launch_count();

    std::size_t remaining = k;  // top elements still to secure from buf
    std::size_t fill = 0;       // next free slot in acc
    const auto b = static_cast<std::size_t>(cfg.num_buckets);
    const bool shared_mode = cfg.atomic_space == simt::AtomicSpace::shared;

    for (std::size_t level = 0;; ++level) {
        const auto origin = level == 0 ? simt::LaunchOrigin::host : simt::LaunchOrigin::device;
        const std::size_t n = buf.size();
        const std::size_t threshold_rank = n - remaining;

        if (n <= cfg.base_case_size) {
            bitonic::sort_on_device<T>(dev, buf.span(), n, origin, cfg.block_dim);
            launch_copy<T>(dev, buf.span(), threshold_rank, acc.span(), fill, remaining, origin,
                           cfg.block_dim);
            res.threshold = buf[threshold_rank];
            fill += remaining;
            break;
        }

        const SearchTree<T> tree =
            sample_splitters<T>(dev, buf.span(), cfg, origin, level * 977);
        auto oracles = dev.alloc<std::uint8_t>(n);
        auto totals = dev.alloc<std::int32_t>(b);
        const int grid = simt::suggest_grid(dev.arch(), n, cfg.block_dim, cfg.unroll);
        simt::DeviceBuffer<std::int32_t> block_counts;
        if (shared_mode) {
            block_counts = dev.alloc<std::int32_t>(static_cast<std::size_t>(grid) * b);
        } else {
            launch_memset32(dev, totals.span(), origin);
        }
        count_kernel<T>(dev, buf.span(), tree, oracles.span(), totals.span(), block_counts.span(),
                        cfg, origin);
        if (shared_mode) {
            reduce_kernel(dev, block_counts.span(), grid, cfg.num_buckets, totals.span(),
                          /*keep_block_offsets=*/true, origin, cfg.block_dim);
        }
        auto prefix = dev.alloc<std::int32_t>(b + 1);
        const std::int32_t bucket =
            select_bucket_kernel(dev, totals.span(), prefix.span(), threshold_rank, origin);
        const auto ub = static_cast<std::size_t>(bucket);
        ++res.levels;

        const auto cnt_upper = n - static_cast<std::size_t>(prefix[ub + 1]);
        const std::size_t needed_from_bucket = remaining - cnt_upper;
        const auto bucket_size = static_cast<std::size_t>(totals[ub]);

        auto out = dev.alloc<T>(bucket_size);
        auto cursors = dev.alloc<std::int32_t>(2);
        // Cursor seeding is fused into the controller step in a real
        // implementation; the two scalar writes are not charged.
        cursors[0] = 0;
        cursors[1] = static_cast<std::int32_t>(fill);
        filter_fused_topk_kernel<T>(dev, buf.span(), oracles.span(), bucket, out.span(),
                                    acc.span(), block_counts.span(), cfg.num_buckets,
                                    cursors.span(), cfg, origin, grid);
        fill += cnt_upper;

        if (tree.equality[ub]) {
            // Every bucket element equals the splitter: take as many as
            // still needed and finish.
            const T v = tree.splitters[ub - 1];
            launch_copy<T>(dev, std::span<const T>(out.span()), 0, acc.span(), fill,
                           needed_from_bucket, origin, cfg.block_dim);
            fill += needed_from_bucket;
            res.threshold = v;
            break;
        }
        if (bucket_size == n) {
            throw std::runtime_error("topk_largest: no partition progress");
        }
        remaining = needed_from_bucket;
        buf = std::move(out);
    }

    if (fill != k) throw std::logic_error("topk_largest: accumulator fill mismatch");
    res.sim_ns = dev.elapsed_ns() - t0;
    res.launches = dev.launch_count() - l0;
    res.elements.assign(acc.data(), acc.data() + k);
    return res;
}

template <typename T>
TopKResult<T> topk_smallest(simt::Device& dev, std::span<const T> input, std::size_t k,
                            const SampleSelectConfig& cfg) {
    const std::size_t n = input.size();
    if (k == 0 || k > n) throw std::out_of_range("k must be in [1, n]");

    // Negate on the device (one streaming pass, charged).
    auto neg = dev.alloc<T>(n);
    std::copy(input.begin(), input.end(), neg.data());
    const double t0 = dev.elapsed_ns();
    const std::uint64_t l0 = dev.launch_count();
    const int grid = simt::suggest_grid(dev.arch(), n, cfg.block_dim);
    dev.launch("negate", {.grid_dim = grid, .block_dim = cfg.block_dim},
               [&neg, n](simt::BlockCtx& blk) {
                   blk.warp_tiles(n, [&](simt::WarpCtx& w, std::size_t base, std::size_t) {
                       T regs[simt::kWarpSize];
                       w.load(std::span<const T>(neg.span()), base, regs);
                       for (int l = 0; l < w.lanes(); ++l) regs[l] = -regs[l];
                       w.add_instr(static_cast<std::uint64_t>(w.lanes()));
                       w.store(neg.span(), base, regs);
                   });
               });
    auto res = topk_largest<T>(dev, std::span<const T>(neg.span()), k, cfg);
    for (auto& v : res.elements) v = -v;
    res.threshold = -res.threshold;
    res.sim_ns = dev.elapsed_ns() - t0;
    res.launches = dev.launch_count() - l0;
    return res;
}

template <typename T>
TopKIndexResult<T> topk_largest_with_indices(simt::Device& dev, std::span<const T> input,
                                             std::size_t k, const SampleSelectConfig& cfg) {
    const std::size_t n = input.size();
    if (k == 0 || k > n) throw std::out_of_range("k must be in [1, n]");

    auto data = dev.alloc<T>(n);
    std::copy(input.begin(), input.end(), data.data());
    const double t0 = dev.elapsed_ns();
    const std::uint64_t l0 = dev.launch_count();

    // 1. threshold = element of ascending rank n-k (the k-th largest);
    //    selection consumes a device-side copy so `data` stays intact for
    //    the gather pass.
    auto copy = dev.alloc<T>(n);
    launch_copy<T>(dev, std::span<const T>(data.span()), 0, copy.span(), 0, n,
                   simt::LaunchOrigin::host, cfg.block_dim);
    const T threshold =
        sample_select_device<T>(dev, std::move(copy), n - k, cfg).value;

    // 2. how many elements exceed the threshold / equal it.
    const auto rq = rank_of<T>(dev, std::span<const T>(data.span()), threshold, cfg);
    const std::size_t n_gt = n - rq.less - rq.equal;
    const std::size_t eq_needed = k - n_gt;

    // 3. gather pass: strictly-greater elements take slots [0, n_gt); the
    //    first eq_needed threshold-equal elements (extraction order) fill
    //    [n_gt, k).
    auto out_vals = dev.alloc<T>(k);
    auto out_idx = dev.alloc<std::int32_t>(k);
    auto cursors = dev.alloc<std::int32_t>(2);
    launch_memset32(dev, cursors.span(), simt::LaunchOrigin::device, cfg.stream);
    const int grid = simt::suggest_grid(dev.arch(), n, cfg.block_dim, cfg.unroll);
    dev.launch(
        "topk_gather",
        {.grid_dim = grid, .block_dim = cfg.block_dim, .origin = simt::LaunchOrigin::device,
         .unroll = cfg.unroll, .stream = cfg.stream},
        [&, n, threshold, n_gt, eq_needed](simt::BlockCtx& blk) {
            blk.warp_tiles(n, [&](simt::WarpCtx& w, std::size_t base, std::size_t) {
                T elems[simt::kWarpSize];
                bool gt[simt::kWarpSize];
                bool eq[simt::kWarpSize];
                const std::int32_t zeros[simt::kWarpSize] = {};
                std::int32_t off[simt::kWarpSize];
                w.load(std::span<const T>(data.span()), base, elems);
                for (int l = 0; l < w.lanes(); ++l) {
                    gt[l] = threshold < elems[l];
                    eq[l] = elems[l] == threshold;
                }
                w.add_instr(2 * static_cast<std::uint64_t>(w.lanes()));

                w.fetch_add(simt::AtomicSpace::global, cursors.span().subspan(0, 1), zeros, off,
                            /*aggregated=*/true, 1, gt);
                std::uint64_t written = 0;
                for (int l = 0; l < w.lanes(); ++l) {
                    if (gt[l]) {
                        const auto slot = static_cast<std::size_t>(off[l]);
                        out_vals[slot] = elems[l];
                        out_idx[slot] = static_cast<std::int32_t>(base +
                                                                  static_cast<std::size_t>(l));
                        ++written;
                    }
                }
                w.fetch_add(simt::AtomicSpace::global, cursors.span().subspan(1, 1), zeros, off,
                            /*aggregated=*/true, 1, eq);
                for (int l = 0; l < w.lanes(); ++l) {
                    if (eq[l] && static_cast<std::size_t>(off[l]) < eq_needed) {
                        const std::size_t slot = n_gt + static_cast<std::size_t>(off[l]);
                        out_vals[slot] = elems[l];
                        out_idx[slot] = static_cast<std::int32_t>(base +
                                                                  static_cast<std::size_t>(l));
                        ++written;
                    }
                }
                w.block().counters().scattered_bytes_read += written * sizeof(T);
                w.block().counters().global_bytes_written +=
                    written * (sizeof(T) + sizeof(std::int32_t));
            });
        });

    TopKIndexResult<T> res;
    res.threshold = threshold;
    res.values.assign(out_vals.data(), out_vals.data() + k);
    res.indices.resize(k);
    for (std::size_t i = 0; i < k; ++i) res.indices[i] = static_cast<std::size_t>(out_idx[i]);
    res.sim_ns = dev.elapsed_ns() - t0;
    res.launches = dev.launch_count() - l0;
    return res;
}

template TopKResult<float> topk_largest<float>(simt::Device&, std::span<const float>, std::size_t,
                                               const SampleSelectConfig&);
template TopKResult<double> topk_largest<double>(simt::Device&, std::span<const double>,
                                                 std::size_t, const SampleSelectConfig&);
template TopKResult<float> topk_smallest<float>(simt::Device&, std::span<const float>,
                                                std::size_t, const SampleSelectConfig&);
template TopKResult<double> topk_smallest<double>(simt::Device&, std::span<const double>,
                                                  std::size_t, const SampleSelectConfig&);
template TopKIndexResult<float> topk_largest_with_indices<float>(simt::Device&,
                                                                 std::span<const float>,
                                                                 std::size_t,
                                                                 const SampleSelectConfig&);
template TopKIndexResult<double> topk_largest_with_indices<double>(simt::Device&,
                                                                   std::span<const double>,
                                                                   std::size_t,
                                                                   const SampleSelectConfig&);

}  // namespace gpusel::core
