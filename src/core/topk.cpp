#include "core/topk.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <utility>

#include "core/backend.hpp"
#include "core/float_order.hpp"
#include "core/histogram.hpp"
#include "core/pipeline.hpp"
#include "core/planner.hpp"
#include "core/sample_select.hpp"

namespace gpusel::core {

namespace detail {

template <typename T>
Result<TopKResult<T>> sample_topk_descend(simt::Device& dev, DataHolder<T> data, std::size_t k,
                                          const SampleSelectConfig& cfg, int stream) {
    SelectionPipeline<T> pipe(dev, cfg, stream);
    const PipelineContext& ctx = pipe.context();
    pipe.reset(std::move(data));

    TopKResult<T> res;
    simt::PooledBuffer<T> acc;
    Status s = with_fault_retry(ctx, [&] { acc = ctx.template scratch<T>(k); });
    if (!s.ok()) return s;

    std::size_t remaining = k;  // top elements still to secure from the buffer
    std::size_t fill = 0;       // next free slot in acc
    std::size_t level = 0;      // productive levels (feeds the sample salt)
    std::size_t resample_tries = 0;
    std::size_t levels_run = 0;
    bool fallback = false;

    while (remaining > 0) {
        const auto origin = level == 0 ? simt::LaunchOrigin::host : simt::LaunchOrigin::device;
        const std::size_t n = pipe.size();
        const std::size_t threshold_rank = n - remaining;

        if (n <= cfg.base_case_size) {
            s = pipe.try_sort_base_case(origin);
            if (!s.ok()) return s;
            s = with_fault_retry(ctx, [&] {
                launch_copy<T>(dev, pipe.data(), threshold_rank, acc.span(), fill, remaining,
                               origin, cfg.block_dim, ctx.stream());
            });
            if (!s.ok()) return s;
            res.threshold = pipe.value_at(threshold_rank);
            fill += remaining;
            break;
        }

        if (levels_run >= static_cast<std::size_t>(cfg.max_levels)) {
            return Status::failure(SelectError::depth_exceeded,
                                   "topk_largest: max_levels bucketing levels exceeded");
        }
        ++levels_run;

        const bool use_fallback = fallback || cfg.force_fallback;
        auto lvres = use_fallback
                         ? pipe.try_run_fallback_level(threshold_rank, origin)
                         : pipe.try_run_level(threshold_rank, origin,
                                              level * 977 + resample_tries * 7919);
        if (!lvres.ok()) return lvres.status();
        const LevelOutcome<T> lv = lvres.take();
        if (use_fallback) {
            ++res.fallback_levels;
            ++dev.robustness().fallback_levels;
        }

        if (lv.bucket_size == n && !lv.equality) {
            // Stalled level: nothing was secured yet (no filtering has
            // run), so retry with a fresh sample before any copy.
            if (use_fallback) {
                return Status::failure(
                    SelectError::no_progress,
                    "topk_largest: deterministic fallback level failed to shrink the bucket");
            }
            ++res.resamples;
            ++dev.robustness().resamples;
            if (++resample_tries > static_cast<std::size_t>(cfg.max_stalled_levels)) {
                fallback = true;
                ++dev.robustness().fallbacks;
            }
            continue;
        }

        ++res.levels;
        const std::size_t cnt_upper = lv.rank_above;
        const std::size_t needed_from_bucket = remaining - cnt_upper;

        // Fused filter (Sec. IV-I): target bucket to the back buffer, all
        // higher buckets straight into the accumulator.
        s = pipe.try_descend_topk(lv, acc.span(), static_cast<std::int32_t>(fill), origin);
        if (!s.ok()) return s;
        fill += cnt_upper;

        if (lv.equality) {
            // Every bucket element equals the splitter: take as many as
            // still needed and finish.
            res.threshold = lv.equality_value(lv.bucket);
            s = with_fault_retry(ctx, [&] {
                launch_copy<T>(dev, pipe.data(), 0, acc.span(), fill, needed_from_bucket, origin,
                               cfg.block_dim, ctx.stream());
            });
            if (!s.ok()) return s;
            fill += needed_from_bucket;
            break;
        }
        remaining = needed_from_bucket;
        ++level;
        resample_tries = 0;
        if (!cfg.force_fallback) fallback = false;
    }

    if (fill != k) {
        return Status::failure(SelectError::internal, "topk_largest: accumulator fill mismatch");
    }
    res.elements.assign(acc.data(), acc.data() + k);
    return res;
}

template Result<TopKResult<float>> sample_topk_descend<float>(
    simt::Device&, DataHolder<float>, std::size_t, const SampleSelectConfig&, int);
template Result<TopKResult<double>> sample_topk_descend<double>(
    simt::Device&, DataHolder<double>, std::size_t, const SampleSelectConfig&, int);
template Result<TopKResult<ArgPair>> sample_topk_descend<ArgPair>(
    simt::Device&, DataHolder<ArgPair>, std::size_t, const SampleSelectConfig&, int);

}  // namespace detail

template <typename T>
Result<TopKResult<T>> try_topk_largest(simt::Device& dev, std::span<const T> input, std::size_t k,
                                       const SampleSelectConfig& cfg) {
    try {
        cfg.validate(/*exact=*/true);
    } catch (const std::invalid_argument& e) {
        return Status::failure(SelectError::invalid_argument, e.what());
    }
    const std::size_t n0 = input.size();
    if (k == 0 || k > n0) {
        return Status::failure(SelectError::rank_out_of_range, "k must be in [1, n]");
    }

    PipelineContext ctx(dev, cfg);
    DataHolder<T> staged;
    Status s = with_fault_retry(ctx, [&] { staged = DataHolder<T>::stage(ctx, input); });
    if (!s.ok()) return s;

    // NaN staging pre-pass: NaNs are the largest keys of the total order,
    // so min(k, nan_count) of them belong to the top-k set outright and
    // the device descent runs over the non-NaN prefix only.
    const std::size_t nan_count = partition_nans_to_back(staged.span());
    std::size_t nan_take = 0;
    if (nan_count > 0) {
        if (cfg.nan_policy == NanPolicy::reject) {
            return Status::failure(SelectError::nan_keys_rejected,
                                   "topk_largest: input contains NaN keys");
        }
        nan_take = nan_count < k ? nan_count : k;
        staged.view(n0 - nan_count);
    }
    const std::size_t kk = k - nan_take;  // non-NaN elements still wanted

    if (kk == 0) {
        // Every requested element falls in the NaN tail; answered at
        // staging without any device work (and without a planner decision,
        // since no backend runs).
        TopKResult<T> res;
        res.nan_count = nan_count;
        res.elements.assign(nan_take, quiet_nan<T>());
        res.threshold = quiet_nan<T>();
        return res;
    }

    PlanQuery q;
    q.n = staged.size();
    q.k = kk;
    q.topk = true;
    q.base_case_size = cfg.base_case_size;
    const PlanDecision plan =
        plan_selection<T>(dev, std::span<const T>(staged.span()), q, cfg.stream);

    const double t0 = dev.elapsed_ns();
    const std::uint64_t l0 = dev.launch_count();
    Result<TopKResult<T>> bres = selection_backend<T>(plan.backend)
                                     .topk_largest(dev, std::move(staged), kk, cfg,
                                                   PipelineContext::kConfigStream);
    if (!bres.ok()) return bres.status();
    TopKResult<T> res = bres.take();
    res.sim_ns = dev.elapsed_ns() - t0;
    res.launches = dev.launch_count() - l0;
    res.nan_count = nan_count;
    if (nan_take > 0) {
        res.elements.insert(res.elements.end(), nan_take, quiet_nan<T>());
    }
    return res;
}

template <typename T>
Result<TopKResult<T>> try_topk_smallest(simt::Device& dev, std::span<const T> input,
                                        std::size_t k, const SampleSelectConfig& cfg) {
    try {
        cfg.validate(/*exact=*/true);
    } catch (const std::invalid_argument& e) {
        return Status::failure(SelectError::invalid_argument, e.what());
    }
    const std::size_t n = input.size();
    if (k == 0 || k > n) {
        return Status::failure(SelectError::rank_out_of_range, "k must be in [1, n]");
    }

    PipelineContext ctx(dev, cfg);
    DataHolder<T> neg;
    Status s = with_fault_retry(ctx, [&] { neg = DataHolder<T>::stage(ctx, input); });
    if (!s.ok()) return s;

    // NaNs are the *largest* keys of the total order, so the k smallest
    // avoid them until the non-NaN keys run out.  They must be compacted
    // before negation: -NaN is still NaN, so negation cannot reposition
    // them the way it reverses every numeric comparison.
    const std::size_t nan_count = partition_nans_to_back(neg.span());
    if (nan_count > 0 && cfg.nan_policy == NanPolicy::reject) {
        return Status::failure(SelectError::nan_keys_rejected,
                               "topk_smallest: input contains NaN keys");
    }
    const std::size_t n_num = n - nan_count;
    const std::size_t nan_take = k > n_num ? k - n_num : 0;
    const std::size_t kk = k - nan_take;

    const double t0 = dev.elapsed_ns();
    const std::uint64_t l0 = dev.launch_count();

    TopKResult<T> res;
    if (kk > 0) {
        // Negate the numeric prefix on the device (one streaming pass,
        // charged); the launch faults before executing, so a retry never
        // sees half-negated data.
        auto span = neg.span().first(n_num);
        s = with_fault_retry(ctx, [&] {
            const int grid = simt::suggest_grid(dev.arch(), n_num, cfg.block_dim);
            dev.launch("negate",
                       {.grid_dim = grid, .block_dim = cfg.block_dim, .stream = cfg.stream},
                       [span, n_num](simt::BlockCtx& blk) {
                           blk.warp_tiles(n_num,
                                          [&](simt::WarpCtx& w, std::size_t base, std::size_t) {
                                              T regs[simt::kWarpSize];
                                              w.load(std::span<const T>(span), base, regs);
                                              for (int l = 0; l < w.lanes(); ++l) {
                                                  regs[l] = -regs[l];
                                              }
                                              w.add_instr(static_cast<std::uint64_t>(w.lanes()));
                                              w.store(span, base, regs);
                                          });
                       });
        });
        if (!s.ok()) return s;
        auto inner = try_topk_largest<T>(dev, std::span<const T>(span), kk, cfg);
        if (!inner.ok()) return inner.status();
        res = inner.take();
        for (auto& v : res.elements) v = -v;
        res.threshold = -res.threshold;
    }
    res.nan_count = nan_count;
    if (nan_take > 0) {
        res.elements.insert(res.elements.end(), nan_take, quiet_nan<T>());
        res.threshold = quiet_nan<T>();  // the k-th smallest falls in the NaN tail
    }
    res.sim_ns = dev.elapsed_ns() - t0;
    res.launches = dev.launch_count() - l0;
    return res;
}

template <typename T>
Result<TopKIndexResult<T>> try_topk_largest_with_indices(simt::Device& dev,
                                                         std::span<const T> input, std::size_t k,
                                                         const SampleSelectConfig& cfg) {
    try {
        cfg.validate(/*exact=*/true);
    } catch (const std::invalid_argument& e) {
        return Status::failure(SelectError::invalid_argument, e.what());
    }
    const std::size_t n = input.size();
    if (k == 0 || k > n) {
        return Status::failure(SelectError::rank_out_of_range, "k must be in [1, n]");
    }

    PipelineContext ctx(dev, cfg);
    DataHolder<T> data;
    Status s = with_fault_retry(ctx, [&] { data = DataHolder<T>::stage(ctx, input); });
    if (!s.ok()) return s;
    // `data` must keep the input order (indices are positions in it), so
    // NaNs stay in place here; the gather below uses the total order and
    // the threshold selection's own pre-pass handles its consumable copy.
    if (cfg.nan_policy == NanPolicy::reject &&
        count_nan_keys(std::span<const T>(data.span())) > 0) {
        return Status::failure(SelectError::nan_keys_rejected,
                               "topk_largest_with_indices: input contains NaN keys");
    }

    const double t0 = dev.elapsed_ns();
    const std::uint64_t l0 = dev.launch_count();

    // 1. threshold = element of ascending rank n-k (the k-th largest);
    //    selection consumes a device-side copy so `data` stays intact for
    //    the gather pass.
    DataHolder<T> copy;
    s = with_fault_retry(ctx, [&] {
        copy = DataHolder<T>::acquire(ctx, n);
        launch_copy<T>(dev, data.span(), 0, copy.span(), 0, n, simt::LaunchOrigin::host,
                       cfg.block_dim, cfg.stream);
    });
    if (!s.ok()) return s;
    auto sel = try_sample_select_staged<T>(dev, std::move(copy), n - k, cfg);
    if (!sel.ok()) return sel.status();
    const T threshold = sel.value().value;
    const std::size_t nan_count = sel.value().nan_count;

    // 2. how many elements exceed the threshold / equal it (total order:
    //    NaNs count as greater than any numeric threshold, and a NaN
    //    threshold equals exactly the NaN keys).
    auto rq = try_rank_of<T>(dev, std::span<const T>(data.span()), threshold, cfg);
    if (!rq.ok()) return rq.status();
    const std::size_t n_gt = n - rq.value().less - rq.value().equal;
    const std::size_t eq_needed = k - n_gt;

    // 3. gather pass: strictly-greater elements take slots [0, n_gt); the
    //    first eq_needed threshold-equal elements (extraction order) fill
    //    [n_gt, k).
    simt::PooledBuffer<T> out_vals;
    simt::PooledBuffer<std::int32_t> out_idx;
    s = with_fault_retry(ctx, [&] {
        out_vals = ctx.scratch<T>(k);
        out_idx = ctx.scratch<std::int32_t>(k);
        auto cursors = ctx.zeroed_i32(2, simt::LaunchOrigin::device);
        const int grid = simt::suggest_grid(dev.arch(), n, cfg.block_dim, cfg.unroll);
        const auto dspan = std::span<const T>(data.span());
        dev.launch(
            "topk_gather",
            {.grid_dim = grid, .block_dim = cfg.block_dim, .origin = simt::LaunchOrigin::device,
             .unroll = cfg.unroll, .stream = cfg.stream},
            [&, n, threshold, n_gt, eq_needed, dspan](simt::BlockCtx& blk) {
                blk.warp_tiles(n, [&](simt::WarpCtx& w, std::size_t base, std::size_t) {
                    T elems[simt::kWarpSize];
                    bool gt[simt::kWarpSize];
                    bool eq[simt::kWarpSize];
                    std::int32_t idx32[simt::kWarpSize];
                    const std::int32_t zeros[simt::kWarpSize] = {};
                    std::int32_t off[simt::kWarpSize];
                    w.load(dspan, base, elems);
                    std::uint32_t gt_mask = 0;
                    for (int l = 0; l < w.lanes(); ++l) {
                        gt[l] = total_less(threshold, elems[l]);
                        eq[l] = total_equal(elems[l], threshold);
                        if (gt[l]) gt_mask |= 1u << l;
                        idx32[l] = static_cast<std::int32_t>(base + static_cast<std::size_t>(l));
                    }
                    w.add_instr(2 * static_cast<std::uint64_t>(w.lanes()));

                    w.fetch_add(simt::AtomicSpace::global, cursors.span().subspan(0, 1), zeros,
                                off,
                                /*aggregated=*/true, 1, gt);
                    // Aggregated offsets are lane-ordered consecutive, so
                    // each (values, indices) scatter is a compress-store
                    // pair; the sparse in-tile element reads are charged
                    // as before.
                    if (gt_mask != 0) {
                        const auto slot =
                            static_cast<std::size_t>(off[std::countr_zero(gt_mask)]);
                        w.compress_store(out_vals.span(), slot, gt_mask, elems);
                        w.compress_store(out_idx.span(), slot, gt_mask, idx32);
                        w.block().counters().scattered_bytes_read +=
                            static_cast<std::uint64_t>(std::popcount(gt_mask)) * sizeof(T);
                    }
                    w.fetch_add(simt::AtomicSpace::global, cursors.span().subspan(1, 1), zeros,
                                off,
                                /*aggregated=*/true, 1, eq);
                    // The take set is the offset-capped prefix of the eq
                    // lanes (consecutive offsets again), so it compresses
                    // the same way.
                    std::uint32_t take = 0;
                    for (int l = 0; l < w.lanes(); ++l) {
                        if (eq[l] && static_cast<std::size_t>(off[l]) < eq_needed) {
                            take |= 1u << l;
                        }
                    }
                    if (take != 0) {
                        const std::size_t slot =
                            n_gt + static_cast<std::size_t>(off[std::countr_zero(take)]);
                        w.compress_store(out_vals.span(), slot, take, elems);
                        w.compress_store(out_idx.span(), slot, take, idx32);
                        w.block().counters().scattered_bytes_read +=
                            static_cast<std::uint64_t>(std::popcount(take)) * sizeof(T);
                    }
                });
            });
    });
    if (!s.ok()) return s;

    TopKIndexResult<T> res;
    res.threshold = threshold;
    res.nan_count = nan_count;
    res.values.assign(out_vals.data(), out_vals.data() + k);
    res.indices.resize(k);
    for (std::size_t i = 0; i < k; ++i) res.indices[i] = static_cast<std::size_t>(out_idx[i]);
    res.sim_ns = dev.elapsed_ns() - t0;
    res.launches = dev.launch_count() - l0;
    return res;
}

template <typename T>
Result<TopKBatchResult<T>> try_topk_largest_batch(simt::Device& dev,
                                                  std::span<const TopKBatchProblem<T>> problems,
                                                  const SampleSelectConfig& cfg,
                                                  const BatchOptions& opts) {
    if (problems.empty()) {
        return Status::failure(SelectError::invalid_argument, "topk_batch: empty batch");
    }
    Result<int> fan_width = try_resolve_stream_count(problems.size(), opts.streams);
    if (!fan_width.ok()) return fan_width.status();
    StreamFan fan(dev, fan_width.value(), cfg.stream);

    TopKBatchResult<T> res;
    res.items.reserve(problems.size());
    res.streams_used = fan.count();
    const std::uint64_t l0 = dev.launch_count();
    (void)fan.fork();

    // The host issues the problems in order; each runs the unchanged
    // serial top-k on its lane's stream (via a config copy), so launch
    // sequences per problem are byte-identical to serial calls.
    for (std::size_t i = 0; i < problems.size(); ++i) {
        SampleSelectConfig lane_cfg = cfg;
        lane_cfg.stream = fan.stream(fan.lane_of(i));
        auto sub = try_topk_largest<T>(dev, problems[i].data, problems[i].k, lane_cfg);
        if (!sub.ok()) return sub.status();
        res.items.push_back(sub.take());
    }

    double wall = 0.0;
    double serial = 0.0;
    for (int l = 0; l < fan.count(); ++l) {
        const double busy = dev.stream_clock(fan.stream(l)) - fan.fork_ns();
        if (busy > 0.0) {
            serial += busy;
            wall = std::max(wall, busy);
        }
    }
    fan.join();
    res.wall_ns = wall;
    res.serial_ns = serial;
    res.launches = dev.launch_count() - l0;
    return res;
}

template <typename T>
TopKResult<T> topk_largest(simt::Device& dev, std::span<const T> input, std::size_t k,
                           const SampleSelectConfig& cfg) {
    return try_topk_largest<T>(dev, input, k, cfg).take_or_throw();
}

template <typename T>
TopKResult<T> topk_smallest(simt::Device& dev, std::span<const T> input, std::size_t k,
                            const SampleSelectConfig& cfg) {
    return try_topk_smallest<T>(dev, input, k, cfg).take_or_throw();
}

template <typename T>
TopKIndexResult<T> topk_largest_with_indices(simt::Device& dev, std::span<const T> input,
                                             std::size_t k, const SampleSelectConfig& cfg) {
    return try_topk_largest_with_indices<T>(dev, input, k, cfg).take_or_throw();
}

template Result<TopKResult<float>> try_topk_largest<float>(simt::Device&, std::span<const float>,
                                                           std::size_t,
                                                           const SampleSelectConfig&);
template Result<TopKResult<double>> try_topk_largest<double>(simt::Device&,
                                                             std::span<const double>, std::size_t,
                                                             const SampleSelectConfig&);
template Result<TopKResult<float>> try_topk_smallest<float>(simt::Device&, std::span<const float>,
                                                            std::size_t,
                                                            const SampleSelectConfig&);
template Result<TopKResult<double>> try_topk_smallest<double>(simt::Device&,
                                                              std::span<const double>,
                                                              std::size_t,
                                                              const SampleSelectConfig&);
template Result<TopKIndexResult<float>> try_topk_largest_with_indices<float>(
    simt::Device&, std::span<const float>, std::size_t, const SampleSelectConfig&);
template Result<TopKIndexResult<double>> try_topk_largest_with_indices<double>(
    simt::Device&, std::span<const double>, std::size_t, const SampleSelectConfig&);
template Result<TopKBatchResult<float>> try_topk_largest_batch<float>(
    simt::Device&, std::span<const TopKBatchProblem<float>>, const SampleSelectConfig&,
    const BatchOptions&);
template Result<TopKBatchResult<double>> try_topk_largest_batch<double>(
    simt::Device&, std::span<const TopKBatchProblem<double>>, const SampleSelectConfig&,
    const BatchOptions&);
template TopKResult<float> topk_largest<float>(simt::Device&, std::span<const float>, std::size_t,
                                               const SampleSelectConfig&);
template TopKResult<double> topk_largest<double>(simt::Device&, std::span<const double>,
                                                 std::size_t, const SampleSelectConfig&);
template TopKResult<float> topk_smallest<float>(simt::Device&, std::span<const float>,
                                                std::size_t, const SampleSelectConfig&);
template TopKResult<double> topk_smallest<double>(simt::Device&, std::span<const double>,
                                                  std::size_t, const SampleSelectConfig&);
template TopKIndexResult<float> topk_largest_with_indices<float>(simt::Device&,
                                                                 std::span<const float>,
                                                                 std::size_t,
                                                                 const SampleSelectConfig&);
template TopKIndexResult<double> topk_largest_with_indices<double>(simt::Device&,
                                                                   std::span<const double>,
                                                                   std::size_t,
                                                                   const SampleSelectConfig&);

}  // namespace gpusel::core
