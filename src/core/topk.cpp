#include "core/topk.hpp"

#include <stdexcept>

#include "core/histogram.hpp"
#include "core/pipeline.hpp"
#include "core/sample_select.hpp"

namespace gpusel::core {

template <typename T>
TopKResult<T> topk_largest(simt::Device& dev, std::span<const T> input, std::size_t k,
                           const SampleSelectConfig& cfg) {
    cfg.validate(/*exact=*/true);
    const std::size_t n0 = input.size();
    if (k == 0 || k > n0) throw std::out_of_range("k must be in [1, n]");

    SelectionPipeline<T> pipe(dev, cfg);
    pipe.reset(DataHolder<T>::stage(pipe.context(), input));
    auto acc = pipe.context().template scratch<T>(k);

    TopKResult<T> res;
    const double t0 = dev.elapsed_ns();
    const std::uint64_t l0 = dev.launch_count();

    std::size_t remaining = k;  // top elements still to secure from the buffer
    std::size_t fill = 0;       // next free slot in acc

    for (std::size_t level = 0;; ++level) {
        const auto origin = level == 0 ? simt::LaunchOrigin::host : simt::LaunchOrigin::device;
        const std::size_t n = pipe.size();
        const std::size_t threshold_rank = n - remaining;

        if (n <= cfg.base_case_size) {
            pipe.sort_base_case(origin);
            launch_copy<T>(dev, pipe.data(), threshold_rank, acc.span(), fill, remaining, origin,
                           cfg.block_dim, cfg.stream);
            res.threshold = pipe.value_at(threshold_rank);
            fill += remaining;
            break;
        }

        const auto lv = pipe.run_level(threshold_rank, origin, level * 977);
        ++res.levels;

        const std::size_t cnt_upper = lv.rank_above;
        const std::size_t needed_from_bucket = remaining - cnt_upper;
        const std::size_t bucket_size = lv.bucket_size;

        // Fused filter (Sec. IV-I): target bucket to the back buffer, all
        // higher buckets straight into the accumulator.
        pipe.descend_topk(lv, acc.span(), static_cast<std::int32_t>(fill), origin);
        fill += cnt_upper;

        if (lv.equality) {
            // Every bucket element equals the splitter: take as many as
            // still needed and finish.
            res.threshold = lv.equality_value(lv.bucket);
            launch_copy<T>(dev, pipe.data(), 0, acc.span(), fill, needed_from_bucket, origin,
                           cfg.block_dim, cfg.stream);
            fill += needed_from_bucket;
            break;
        }
        if (bucket_size == n) {
            throw std::runtime_error("topk_largest: no partition progress");
        }
        remaining = needed_from_bucket;
    }

    if (fill != k) throw std::logic_error("topk_largest: accumulator fill mismatch");
    res.sim_ns = dev.elapsed_ns() - t0;
    res.launches = dev.launch_count() - l0;
    res.elements.assign(acc.data(), acc.data() + k);
    return res;
}

template <typename T>
TopKResult<T> topk_smallest(simt::Device& dev, std::span<const T> input, std::size_t k,
                            const SampleSelectConfig& cfg) {
    const std::size_t n = input.size();
    if (k == 0 || k > n) throw std::out_of_range("k must be in [1, n]");

    // Negate on the device (one streaming pass, charged).
    PipelineContext ctx(dev, cfg);
    auto neg = DataHolder<T>::stage(ctx, input);
    const double t0 = dev.elapsed_ns();
    const std::uint64_t l0 = dev.launch_count();
    const int grid = simt::suggest_grid(dev.arch(), n, cfg.block_dim);
    auto span = neg.span();
    dev.launch("negate", {.grid_dim = grid, .block_dim = cfg.block_dim},
               [span, n](simt::BlockCtx& blk) {
                   blk.warp_tiles(n, [&](simt::WarpCtx& w, std::size_t base, std::size_t) {
                       T regs[simt::kWarpSize];
                       w.load(std::span<const T>(span), base, regs);
                       for (int l = 0; l < w.lanes(); ++l) regs[l] = -regs[l];
                       w.add_instr(static_cast<std::uint64_t>(w.lanes()));
                       w.store(span, base, regs);
                   });
               });
    auto res = topk_largest<T>(dev, std::span<const T>(neg.span()), k, cfg);
    for (auto& v : res.elements) v = -v;
    res.threshold = -res.threshold;
    res.sim_ns = dev.elapsed_ns() - t0;
    res.launches = dev.launch_count() - l0;
    return res;
}

template <typename T>
TopKIndexResult<T> topk_largest_with_indices(simt::Device& dev, std::span<const T> input,
                                             std::size_t k, const SampleSelectConfig& cfg) {
    const std::size_t n = input.size();
    if (k == 0 || k > n) throw std::out_of_range("k must be in [1, n]");

    PipelineContext ctx(dev, cfg);
    auto data = DataHolder<T>::stage(ctx, input);
    const double t0 = dev.elapsed_ns();
    const std::uint64_t l0 = dev.launch_count();

    // 1. threshold = element of ascending rank n-k (the k-th largest);
    //    selection consumes a device-side copy so `data` stays intact for
    //    the gather pass.
    auto copy = DataHolder<T>::acquire(ctx, n);
    launch_copy<T>(dev, data.span(), 0, copy.span(), 0, n, simt::LaunchOrigin::host,
                   cfg.block_dim, cfg.stream);
    const T threshold = sample_select_staged<T>(dev, std::move(copy), n - k, cfg).value;

    // 2. how many elements exceed the threshold / equal it.
    const auto rq = rank_of<T>(dev, data.span(), threshold, cfg);
    const std::size_t n_gt = n - rq.less - rq.equal;
    const std::size_t eq_needed = k - n_gt;

    // 3. gather pass: strictly-greater elements take slots [0, n_gt); the
    //    first eq_needed threshold-equal elements (extraction order) fill
    //    [n_gt, k).
    auto out_vals = ctx.scratch<T>(k);
    auto out_idx = ctx.scratch<std::int32_t>(k);
    auto cursors = ctx.zeroed_i32(2, simt::LaunchOrigin::device);
    const int grid = simt::suggest_grid(dev.arch(), n, cfg.block_dim, cfg.unroll);
    const auto dspan = std::span<const T>(data.span());
    dev.launch(
        "topk_gather",
        {.grid_dim = grid, .block_dim = cfg.block_dim, .origin = simt::LaunchOrigin::device,
         .unroll = cfg.unroll, .stream = cfg.stream},
        [&, n, threshold, n_gt, eq_needed, dspan](simt::BlockCtx& blk) {
            blk.warp_tiles(n, [&](simt::WarpCtx& w, std::size_t base, std::size_t) {
                T elems[simt::kWarpSize];
                bool gt[simt::kWarpSize];
                bool eq[simt::kWarpSize];
                const std::int32_t zeros[simt::kWarpSize] = {};
                std::int32_t off[simt::kWarpSize];
                w.load(dspan, base, elems);
                for (int l = 0; l < w.lanes(); ++l) {
                    gt[l] = threshold < elems[l];
                    eq[l] = elems[l] == threshold;
                }
                w.add_instr(2 * static_cast<std::uint64_t>(w.lanes()));

                w.fetch_add(simt::AtomicSpace::global, cursors.span().subspan(0, 1), zeros, off,
                            /*aggregated=*/true, 1, gt);
                std::uint64_t written = 0;
                for (int l = 0; l < w.lanes(); ++l) {
                    if (gt[l]) {
                        const auto slot = static_cast<std::size_t>(off[l]);
                        out_vals[slot] = elems[l];
                        out_idx[slot] = static_cast<std::int32_t>(base +
                                                                  static_cast<std::size_t>(l));
                        ++written;
                    }
                }
                w.fetch_add(simt::AtomicSpace::global, cursors.span().subspan(1, 1), zeros, off,
                            /*aggregated=*/true, 1, eq);
                for (int l = 0; l < w.lanes(); ++l) {
                    if (eq[l] && static_cast<std::size_t>(off[l]) < eq_needed) {
                        const std::size_t slot = n_gt + static_cast<std::size_t>(off[l]);
                        out_vals[slot] = elems[l];
                        out_idx[slot] = static_cast<std::int32_t>(base +
                                                                  static_cast<std::size_t>(l));
                        ++written;
                    }
                }
                w.block().counters().scattered_bytes_read += written * sizeof(T);
                w.block().counters().global_bytes_written +=
                    written * (sizeof(T) + sizeof(std::int32_t));
            });
        });

    TopKIndexResult<T> res;
    res.threshold = threshold;
    res.values.assign(out_vals.data(), out_vals.data() + k);
    res.indices.resize(k);
    for (std::size_t i = 0; i < k; ++i) res.indices[i] = static_cast<std::size_t>(out_idx[i]);
    res.sim_ns = dev.elapsed_ns() - t0;
    res.launches = dev.launch_count() - l0;
    return res;
}

template TopKResult<float> topk_largest<float>(simt::Device&, std::span<const float>, std::size_t,
                                               const SampleSelectConfig&);
template TopKResult<double> topk_largest<double>(simt::Device&, std::span<const double>,
                                                 std::size_t, const SampleSelectConfig&);
template TopKResult<float> topk_smallest<float>(simt::Device&, std::span<const float>,
                                                std::size_t, const SampleSelectConfig&);
template TopKResult<double> topk_smallest<double>(simt::Device&, std::span<const double>,
                                                  std::size_t, const SampleSelectConfig&);
template TopKIndexResult<float> topk_largest_with_indices<float>(simt::Device&,
                                                                 std::span<const float>,
                                                                 std::size_t,
                                                                 const SampleSelectConfig&);
template TopKIndexResult<double> topk_largest_with_indices<double>(simt::Device&,
                                                                   std::span<const double>,
                                                                   std::size_t,
                                                                   const SampleSelectConfig&);

}  // namespace gpusel::core
