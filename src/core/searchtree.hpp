#pragma once
// Splitter search tree (Sec. IV-B b and Fig. 3/4 of the paper).
//
// The b-1 sorted splitters are stored as a complete binary search tree in
// implicit array (binary-heap) order: node i has children 2i+1 and 2i+2,
// leaves map to bucket indices.  Bucket identification is then a fixed
// `height = log2(b)` iteration loop without any of the index gymnastics of
// binary search on a sorted array -- the technique of Super Scalar Sample
// Sort (Sanders & Winkel 2004) that the paper adopts.
//
// Repeated elements (Sec. IV-C): if the sample yields identical splitters
// s_a = ... = s_e, the paper conceptually replaces s_e by s_e + eps so that
// the elements equal to the splitter land in an *equality bucket* of their
// own.  We implement the epsilon trick exactly, but without floating-point
// hacks: the tree node holding the last in-order occurrence of a duplicated
// splitter value compares with `<=` instead of `<`.  The bucket that
// collapses to the single value is flagged, and the selection driver can
// terminate early when the target rank falls into it.

#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

#include "core/float_order.hpp"
#include "core/key_payload.hpp"

namespace gpusel::core {

template <typename T>
struct SearchTree {
    /// Number of buckets b (power of two).
    std::int32_t num_buckets = 0;
    /// Tree height log2(b); the traversal loop length.
    std::int32_t height = 0;
    /// Internal nodes in implicit heap order; size b-1.
    std::vector<T> nodes;
    /// Per node: compare with `<=` instead of `<` (duplicate-splitter trick).
    std::vector<std::uint8_t> leq;
    /// `leq` widened to int32 for the vectorized traversal (32-bit gathers);
    /// host-side mirror, not part of device_bytes().
    std::vector<std::int32_t> leq32;
    /// The sorted splitters; size b-1.  splitters[i] separates bucket i
    /// from bucket i+1.
    std::vector<T> splitters;
    /// Per bucket: true if the bucket holds exactly one repeated value
    /// (equality bucket).  Its value is splitters[bucket-1].
    std::vector<std::uint8_t> equality;

    /// Builds the tree from sorted splitters (size must be 2^h - 1).
    [[nodiscard]] static SearchTree build(std::vector<T> sorted_splitters);

    /// Reference traversal (identical decisions to the kernels' inline
    /// loop); used by tests and host-side fallbacks.  NaN keys never reach
    /// the kernels (front-ends compact them at staging, see
    /// core/float_order.hpp), but a host-side caller may still probe one:
    /// NaN is the maximum of the key total order, so it deterministically
    /// lands in the last bucket instead of taking a comparison-dependent
    /// path through the tree.
    [[nodiscard]] std::int32_t find_bucket(T x) const noexcept {
        if (is_nan_key(x)) return num_buckets - 1;
        std::int32_t i = 0;
        for (std::int32_t l = 0; l < height; ++l) {
            const bool left = leq[static_cast<std::size_t>(i)]
                                  ? !(nodes[static_cast<std::size_t>(i)] < x)
                                  : (x < nodes[static_cast<std::size_t>(i)]);
            i = 2 * i + (left ? 1 : 2);
        }
        return i - (num_buckets - 1);
    }

    /// Bytes the kernels stage into shared memory (node values + leq flags).
    [[nodiscard]] std::size_t device_bytes() const noexcept {
        return nodes.size() * sizeof(T) + leq.size();
    }
};

extern template struct SearchTree<float>;
extern template struct SearchTree<double>;
extern template struct SearchTree<ArgPair>;

}  // namespace gpusel::core
