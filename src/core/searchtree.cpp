#include "core/searchtree.hpp"

#include <stdexcept>

namespace gpusel::core {

namespace {

/// Recursively fills heap-ordered `nodes` from the in-order splitter range
/// [lo, hi); the perfect-tree shape makes the midpoint split exact.
template <typename T>
void fill_heap(std::vector<T>& nodes, std::vector<std::int32_t>& in_order_idx,
               const std::vector<T>& sp, std::size_t node, std::size_t lo, std::size_t hi) {
    if (lo >= hi) return;
    const std::size_t mid = (lo + hi) / 2;
    nodes[node] = sp[mid];
    in_order_idx[node] = static_cast<std::int32_t>(mid);
    fill_heap(nodes, in_order_idx, sp, 2 * node + 1, lo, mid);
    fill_heap(nodes, in_order_idx, sp, 2 * node + 2, mid + 1, hi);
}

}  // namespace

template <typename T>
SearchTree<T> SearchTree<T>::build(std::vector<T> sorted_splitters) {
    const std::size_t m = sorted_splitters.size();
    // m must be 2^h - 1 for a perfect tree.
    std::int32_t h = 0;
    while ((std::size_t{1} << h) - 1 < m) ++h;
    if ((std::size_t{1} << h) - 1 != m) {
        throw std::invalid_argument("splitter count must be 2^h - 1 for a complete search tree");
    }
    for (std::size_t i = 1; i < m; ++i) {
        if (sorted_splitters[i] < sorted_splitters[i - 1]) {
            throw std::invalid_argument("splitters must be sorted ascending");
        }
    }

    SearchTree<T> t;
    t.num_buckets = static_cast<std::int32_t>(m + 1);
    t.height = h;
    t.splitters = std::move(sorted_splitters);
    t.nodes.resize(m);
    t.leq.assign(m, 0);
    t.equality.assign(static_cast<std::size_t>(t.num_buckets), 0);
    if (m == 0) return t;

    std::vector<std::int32_t> in_order_idx(m, -1);
    fill_heap(t.nodes, in_order_idx, t.splitters, 0, 0, m);

    // A node compares with `<=` iff it holds the last in-order occurrence
    // of a *duplicated* splitter value; the bucket left of that occurrence
    // becomes the equality bucket.
    auto is_last_dup = [&](std::size_t j) {
        const bool last = (j + 1 == m) || (t.splitters[j] < t.splitters[j + 1]);
        const bool dup = (j > 0) && !(t.splitters[j - 1] < t.splitters[j]);
        return last && dup;
    };
    for (std::size_t node = 0; node < m; ++node) {
        const auto j = static_cast<std::size_t>(in_order_idx[node]);
        if (is_last_dup(j)) t.leq[node] = 1;
    }
    for (std::size_t j = 0; j < m; ++j) {
        if (is_last_dup(j)) t.equality[j] = 1;  // bucket j sits left of splitter j
    }
    t.leq32.assign(t.leq.begin(), t.leq.end());
    return t;
}

template struct SearchTree<float>;
template struct SearchTree<double>;
template struct SearchTree<ArgPair>;

}  // namespace gpusel::core
