#include "core/radix_backend.hpp"

#include <algorithm>
#include <utility>

#include "core/count_kernel.hpp"
#include "core/radix_kernel.hpp"
#include "simt/timing.hpp"

namespace gpusel::core {

namespace {

/// Cursor slots appended to the totals scratch block: slot 0 is the filter
/// target cursor, slot 1 the top-k accumulator cursor.  Co-allocating them
/// with the totals lets the pass's single memset zero everything at once.
constexpr std::size_t kCursorSlots = 2;

RadixLaunchParams radix_params(const PipelineContext& ctx) {
    // The backend always histograms through *global* atomics with warp
    // aggregation, regardless of the configured space:
    //  * the planner routes duplicate-heavy inputs here, where aggregation
    //    collapses each warp's histogram update to about one atomic per
    //    fused level (plain same-bin atomics would serialize warp-wide);
    //  * shared mode would pay one reduce launch per fused level over the
    //    [block][bin] partials -- a memory-bound pass with one thread per
    //    bin column, far below the utilization knee -- and that reduce
    //    tower dominates the whole descent.
    // Global mode needs neither partials nor reduces: the count pass
    // produces device-wide totals directly and radix_walk consumes them.
    return {.block_dim = ctx.cfg().block_dim,
            .unroll = ctx.cfg().unroll,
            .atomic_space = simt::AtomicSpace::global,
            .warp_aggregation = true,
            .stream = ctx.stream()};
}

/// Origin sequencing for one selection: the first launch of the descent is
/// issued from the host; every later launch is a dynamic-parallelism
/// continuation (the same modelling the sample descent applies per pass,
/// here applied per launch).  Call next() once per launch *site*, outside
/// the fault-retry closure, so a retried launch keeps its origin.
class OriginChain {
public:
    simt::LaunchOrigin next() noexcept {
        const auto o = first_ ? simt::LaunchOrigin::host : simt::LaunchOrigin::device;
        first_ = false;
        return o;
    }

private:
    bool first_ = true;
};

/// One fused histogram pass over the active buffer: scratch checkout, the
/// combined totals+cursors zero-fill and the count launch, each under the
/// bounded fault-retry policy.  Returns the grid used, or the failure.
template <typename T>
Status run_count_pass(const PipelineContext& ctx, std::span<const T> data, int shift, int fuse,
                      simt::PooledBuffer<std::int32_t>& totals,
                      simt::PooledBuffer<std::int32_t>& prefix, const RadixLaunchParams& p,
                      OriginChain& origin, int& grid_out) {
    simt::Device& dev = ctx.dev();
    const std::size_t n = data.size();
    const int grid = simt::suggest_grid(dev.arch(), n, p.block_dim, p.unroll);
    const auto ufuse = static_cast<std::size_t>(fuse);
    const auto mo = origin.next();
    Status s = with_fault_retry(ctx, [&] {
        totals = ctx.scratch<std::int32_t>(ufuse * kRadixBins + kCursorSlots);
        prefix = ctx.scratch<std::int32_t>(kRadixBins + 1);
        launch_memset32(dev, totals.span(), mo, ctx.stream());
    });
    if (!s.ok()) return s;
    const auto co = origin.next();
    s = with_fault_retry(ctx, [&] {
        radix_count_fused<T>(dev, data, shift, fuse, totals.span().first(ufuse * kRadixBins),
                             std::span<std::int32_t>{}, p, co);
    });
    grid_out = grid;
    return s;
}

/// The fused-level walk launch under retry (pure: it re-derives the prefix
/// from the totals on every run, so a retried launch is idempotent).
Status run_walk(const PipelineContext& ctx, const simt::PooledBuffer<std::int32_t>& totals,
                simt::PooledBuffer<std::int32_t>& prefix, int fuse, std::size_t n,
                std::size_t rank, OriginChain& origin, RadixWalkResult& walk) {
    simt::Device& dev = ctx.dev();
    const auto ufuse = static_cast<std::size_t>(fuse);
    const auto wo = origin.next();
    return with_fault_retry(ctx, [&] {
        walk = radix_walk(dev, totals.span().first(ufuse * kRadixBins), prefix.span(), fuse, n,
                          rank, wo, ctx.stream());
    });
}

/// Between-pass deadline check, the radix analogue of the sample descent's
/// inter-level check (docs/service.md).  `level` 0 always runs: up-front
/// rejection is admission control's job, this is defence in depth.
Status check_deadline(const PipelineContext& ctx, std::size_t level) {
    const double deadline = ctx.cfg().deadline_ns;
    if (deadline > 0.0 && level > 0 &&
        ctx.dev().stream_clock(ctx.stream()) > deadline) {
        return Status::failure(SelectError::deadline_exceeded,
                               "radix_select: deadline exceeded between passes");
    }
    return Status::success();
}

}  // namespace

template <typename T>
Result<SelectResult<T>> try_radix_select_staged(simt::Device& dev, DataHolder<T> data,
                                                std::size_t rank, const SampleSelectConfig& cfg,
                                                int stream) {
    PipelineContext ctx(dev, cfg, stream);
    const RadixLaunchParams p = radix_params(ctx);
    PingPong<T> pp;
    pp.reset(std::move(data));

    SelectResult<T> res;
    int shift = radix_key_bits<T>() - kRadixDigitBits;
    OriginChain origin;

    for (;;) {
        const std::size_t n = pp.size();
        if (Status ds = check_deadline(ctx, res.levels); !ds.ok()) return ds;
        if (shift < 0) {
            // Every key bit has been consumed without isolating a smaller
            // bucket: all remaining elements are equal (the radix analogue
            // of the sample recursion's equality bucket).
            res.value = pp.data()[0];
            res.equality_exit = true;
            break;
        }
        if (n <= cfg.base_case_size) {
            const auto o = origin.next();
            Status s =
                with_fault_retry(ctx, [&] { sort_base_case<T>(ctx, pp.data(), o); });
            if (!s.ok()) return s;
            res.value = pp.data()[rank];
            break;
        }

        const int fuse = std::min(shift / kRadixDigitBits + 1, kRadixMaxFusedLevels);
        simt::PooledBuffer<std::int32_t> totals;
        simt::PooledBuffer<std::int32_t> prefix;
        int grid = 0;
        Status s =
            run_count_pass<T>(ctx, pp.data(), shift, fuse, totals, prefix, p, origin, grid);
        if (!s.ok()) return s;
        ++res.levels;

        // Walk the fused digit levels off this one pass in a single launch.
        // While the located bin still holds the whole buffer, the deeper
        // histograms (computed over exactly these elements) stay valid and
        // the filter is skipped; the first shrinking bin stops the walk and
        // invalidates the rest of the pass.
        RadixWalkResult walk;
        s = run_walk(ctx, totals, prefix, fuse, n, rank, origin, walk);
        if (!s.ok()) return s;
        rank = walk.rank;

        if (walk.bucket_size < n) {
            const int lv = walk.consumed - 1;
            const int lshift = shift - lv * kRadixDigitBits;
            const auto ufuse = static_cast<std::size_t>(fuse);
            const auto fo = origin.next();
            s = with_fault_retry(ctx, [&] {
                auto out = pp.back(ctx, walk.bucket_size);
                radix_filter<T>(dev, pp.data(), lshift, walk.digits[lv], out,
                                std::span<const std::int32_t>{},
                                totals.span().subspan(ufuse * kRadixBins, 1), p, fo, grid);
            });
            if (!s.ok()) return s;
            pp.flip(walk.bucket_size);
        }
        shift -= walk.consumed * kRadixDigitBits;
    }
    return res;
}

template <typename T>
Result<TopKResult<T>> try_radix_topk_staged(simt::Device& dev, DataHolder<T> data, std::size_t k,
                                            const SampleSelectConfig& cfg, int stream) {
    PipelineContext ctx(dev, cfg, stream);
    const RadixLaunchParams p = radix_params(ctx);
    PingPong<T> pp;
    pp.reset(std::move(data));

    TopKResult<T> res;
    simt::PooledBuffer<T> acc;
    Status s = with_fault_retry(ctx, [&] { acc = ctx.template scratch<T>(k); });
    if (!s.ok()) return s;

    std::size_t remaining = k;  // top elements still to secure from the buffer
    std::size_t fill = 0;       // next free slot in acc
    int shift = radix_key_bits<T>() - kRadixDigitBits;
    OriginChain origin;

    while (remaining > 0) {
        const std::size_t n = pp.size();
        const std::size_t threshold_rank = n - remaining;
        if (Status ds = check_deadline(ctx, res.levels); !ds.ok()) return ds;

        if (shift < 0) {
            // All remaining elements equal: take as many as still needed.
            res.threshold = pp.data()[0];
            const auto o = origin.next();
            s = with_fault_retry(ctx, [&] {
                launch_copy<T>(dev, pp.data(), 0, acc.span(), fill, remaining, o,
                               cfg.block_dim, ctx.stream());
            });
            if (!s.ok()) return s;
            fill += remaining;
            break;
        }
        if (n <= cfg.base_case_size) {
            const auto so = origin.next();
            s = with_fault_retry(ctx, [&] { sort_base_case<T>(ctx, pp.data(), so); });
            if (!s.ok()) return s;
            const auto co = origin.next();
            s = with_fault_retry(ctx, [&] {
                launch_copy<T>(dev, pp.data(), threshold_rank, acc.span(), fill, remaining,
                               co, cfg.block_dim, ctx.stream());
            });
            if (!s.ok()) return s;
            res.threshold = pp.data()[threshold_rank];
            fill += remaining;
            break;
        }

        const int fuse = std::min(shift / kRadixDigitBits + 1, kRadixMaxFusedLevels);
        simt::PooledBuffer<std::int32_t> totals;
        simt::PooledBuffer<std::int32_t> prefix;
        int grid = 0;
        s = run_count_pass<T>(ctx, pp.data(), shift, fuse, totals, prefix, p, origin, grid);
        if (!s.ok()) return s;
        ++res.levels;

        RadixWalkResult walk;
        s = run_walk(ctx, totals, prefix, fuse, n, threshold_rank, origin, walk);
        if (!s.ok()) return s;

        if (walk.bucket_size < n) {
            // Elements in greater-digit bins are guaranteed top-k members
            // (Sec. IV-I fusion): append them to acc while extracting the
            // threshold bin.
            const int lv = walk.consumed - 1;
            const int lshift = shift - lv * kRadixDigitBits;
            const auto ufuse = static_cast<std::size_t>(fuse);
            const auto fo = origin.next();
            s = with_fault_retry(ctx, [&] {
                auto out = pp.back(ctx, walk.bucket_size);
                radix_filter_topk<T>(dev, pp.data(), lshift, walk.digits[lv], out, acc.span(),
                                     static_cast<std::int32_t>(fill),
                                     std::span<const std::int32_t>{},
                                     totals.span().subspan(ufuse * kRadixBins, kCursorSlots),
                                     p, fo, grid);
            });
            if (!s.ok()) return s;
            pp.flip(walk.bucket_size);
            fill += walk.cnt_upper;
            remaining -= walk.cnt_upper;
        }
        shift -= walk.consumed * kRadixDigitBits;
    }

    if (fill != k) {
        return Status::failure(SelectError::internal,
                               "radix_topk: accumulator fill mismatch");
    }
    res.elements.assign(acc.data(), acc.data() + k);
    return res;
}

template Result<SelectResult<float>> try_radix_select_staged<float>(simt::Device&,
                                                                    DataHolder<float>,
                                                                    std::size_t,
                                                                    const SampleSelectConfig&,
                                                                    int);
template Result<SelectResult<double>> try_radix_select_staged<double>(simt::Device&,
                                                                      DataHolder<double>,
                                                                      std::size_t,
                                                                      const SampleSelectConfig&,
                                                                      int);
template Result<SelectResult<ArgPair>> try_radix_select_staged<ArgPair>(
    simt::Device&, DataHolder<ArgPair>, std::size_t, const SampleSelectConfig&, int);
template Result<TopKResult<float>> try_radix_topk_staged<float>(simt::Device&, DataHolder<float>,
                                                                std::size_t,
                                                                const SampleSelectConfig&, int);
template Result<TopKResult<double>> try_radix_topk_staged<double>(simt::Device&,
                                                                  DataHolder<double>,
                                                                  std::size_t,
                                                                  const SampleSelectConfig&, int);
template Result<TopKResult<ArgPair>> try_radix_topk_staged<ArgPair>(simt::Device&,
                                                                    DataHolder<ArgPair>,
                                                                    std::size_t,
                                                                    const SampleSelectConfig&,
                                                                    int);

}  // namespace gpusel::core
