#pragma once
// Top-k selection via kernel fusion (Sec. IV-I): the filter kernel copies
// not only the bucket containing the threshold rank, but also every element
// of the buckets above it -- those are guaranteed members of the top-k set,
// so they move straight to the result while the recursion descends only
// into the threshold bucket.

#include <cstdint>
#include <span>
#include <vector>

#include "core/batch_executor.hpp"
#include "core/config.hpp"
#include "core/pipeline.hpp"
#include "core/status.hpp"
#include "simt/device.hpp"

namespace gpusel::core {

template <typename T>
struct TopKResult {
    /// The k largest elements (unordered).
    std::vector<T> elements;
    /// The smallest of them: the k-th largest element (the threshold).
    T threshold{};
    std::size_t levels = 0;
    double sim_ns = 0.0;
    std::uint64_t launches = 0;
    /// Guaranteed-progress accounting (docs/robustness.md).
    std::size_t resamples = 0;
    std::size_t fallback_levels = 0;
    /// NaN keys found by the staging pre-pass; NaNs are the largest keys
    /// of the total order, so topk_largest returns min(k, nan_count) of
    /// them and topk_smallest avoids them until the numbers run out.
    std::size_t nan_count = 0;
};

/// Fault-hardened top-k entry points: same results as the throwing
/// variants, every failure mode as a typed Status.
template <typename T>
[[nodiscard]] Result<TopKResult<T>> try_topk_largest(simt::Device& dev, std::span<const T> input,
                                                     std::size_t k, const SampleSelectConfig& cfg);
template <typename T>
[[nodiscard]] Result<TopKResult<T>> try_topk_smallest(simt::Device& dev, std::span<const T> input,
                                                      std::size_t k,
                                                      const SampleSelectConfig& cfg);

/// Returns the k largest elements of `input` (0 < k <= n).
template <typename T>
[[nodiscard]] TopKResult<T> topk_largest(simt::Device& dev, std::span<const T> input,
                                         std::size_t k, const SampleSelectConfig& cfg);

/// One problem of a top-k batch.
template <typename T>
struct TopKBatchProblem {
    std::span<const T> data;
    std::size_t k = 0;
};

/// Batch-mode outcome with the stream-overlap accounting of
/// core/batch_executor.hpp: wall_ns is the latest lane completion,
/// serial_ns the back-to-back cost of the same launches on one stream.
template <typename T>
struct TopKBatchResult {
    /// items[i] is the full top-k result for problems[i].
    std::vector<TopKResult<T>> items;
    int streams_used = 1;
    double wall_ns = 0.0;
    double serial_ns = 0.0;
    std::uint64_t launches = 0;

    [[nodiscard]] double overlap_x() const noexcept {
        return wall_ns > 0.0 ? serial_ns / wall_ns : 1.0;
    }
};

/// Batch mode: runs each top-k problem on a lane of a StreamFan
/// (round-robin), so independent problems overlap in simulated time.
/// Per-problem launches are identical to serial try_topk_largest calls;
/// only the stream tags and the overlap differ.  `opts` sizes the fan
/// (default: GPUSEL_STREAMS, then min(batch, 8)).
template <typename T>
[[nodiscard]] Result<TopKBatchResult<T>> try_topk_largest_batch(
    simt::Device& dev, std::span<const TopKBatchProblem<T>> problems,
    const SampleSelectConfig& cfg, const BatchOptions& opts = {});

template <typename T>
struct TopKIndexResult {
    /// The k largest values (unordered) ...
    std::vector<T> values;
    /// ... and the original position of each (values[i] == input[indices[i]]).
    std::vector<std::size_t> indices;
    /// The k-th largest value.
    T threshold{};
    double sim_ns = 0.0;
    std::uint64_t launches = 0;
    /// NaN keys in the input (they rank above +inf, so they are claimed
    /// into the top-k set first; their original indices are reported).
    std::size_t nan_count = 0;
};

template <typename T>
[[nodiscard]] Result<TopKIndexResult<T>> try_topk_largest_with_indices(
    simt::Device& dev, std::span<const T> input, std::size_t k, const SampleSelectConfig& cfg);

/// Top-k with index payloads (what retrieval workloads need: document ids,
/// not just scores).  Finds the threshold with exact SampleSelect, then one
/// gather pass extracts (value, index) pairs: all elements above the
/// threshold plus enough threshold-equal elements to reach exactly k (ties
/// broken by position order of extraction).
template <typename T>
[[nodiscard]] TopKIndexResult<T> topk_largest_with_indices(simt::Device& dev,
                                                           std::span<const T> input,
                                                           std::size_t k,
                                                           const SampleSelectConfig& cfg);

/// Returns the k smallest elements; `threshold` is the k-th smallest.
/// Implemented by running the fused top-k machinery on the negated values
/// (one extra negation pass each way, charged to the simulated clock) --
/// selection is comparison-based, so negation is an order-reversing
/// bijection that costs exactly two streaming passes.
template <typename T>
[[nodiscard]] TopKResult<T> topk_smallest(simt::Device& dev, std::span<const T> input,
                                          std::size_t k, const SampleSelectConfig& cfg);

namespace detail {

/// The sample backend's fused top-k descent over staged NaN-free data
/// (k largest, unordered): the accumulation loop without planning,
/// measurement stamping, or the NaN tail append.  Called through the
/// backend interface (core/backend.hpp).
template <typename T>
[[nodiscard]] Result<TopKResult<T>> sample_topk_descend(simt::Device& dev, DataHolder<T> data,
                                                        std::size_t k,
                                                        const SampleSelectConfig& cfg,
                                                        int stream);

extern template Result<TopKResult<float>> sample_topk_descend<float>(
    simt::Device&, DataHolder<float>, std::size_t, const SampleSelectConfig&, int);
extern template Result<TopKResult<double>> sample_topk_descend<double>(
    simt::Device&, DataHolder<double>, std::size_t, const SampleSelectConfig&, int);
extern template Result<TopKResult<ArgPair>> sample_topk_descend<ArgPair>(
    simt::Device&, DataHolder<ArgPair>, std::size_t, const SampleSelectConfig&, int);

}  // namespace detail

extern template Result<TopKResult<float>> try_topk_largest<float>(simt::Device&,
                                                                  std::span<const float>,
                                                                  std::size_t,
                                                                  const SampleSelectConfig&);
extern template Result<TopKResult<double>> try_topk_largest<double>(simt::Device&,
                                                                    std::span<const double>,
                                                                    std::size_t,
                                                                    const SampleSelectConfig&);
extern template Result<TopKResult<float>> try_topk_smallest<float>(simt::Device&,
                                                                   std::span<const float>,
                                                                   std::size_t,
                                                                   const SampleSelectConfig&);
extern template Result<TopKResult<double>> try_topk_smallest<double>(simt::Device&,
                                                                     std::span<const double>,
                                                                     std::size_t,
                                                                     const SampleSelectConfig&);
extern template Result<TopKIndexResult<float>> try_topk_largest_with_indices<float>(
    simt::Device&, std::span<const float>, std::size_t, const SampleSelectConfig&);
extern template Result<TopKIndexResult<double>> try_topk_largest_with_indices<double>(
    simt::Device&, std::span<const double>, std::size_t, const SampleSelectConfig&);
extern template Result<TopKBatchResult<float>> try_topk_largest_batch<float>(
    simt::Device&, std::span<const TopKBatchProblem<float>>, const SampleSelectConfig&,
    const BatchOptions&);
extern template Result<TopKBatchResult<double>> try_topk_largest_batch<double>(
    simt::Device&, std::span<const TopKBatchProblem<double>>, const SampleSelectConfig&,
    const BatchOptions&);
extern template TopKResult<float> topk_largest<float>(simt::Device&, std::span<const float>,
                                                      std::size_t, const SampleSelectConfig&);
extern template TopKResult<double> topk_largest<double>(simt::Device&, std::span<const double>,
                                                        std::size_t, const SampleSelectConfig&);
extern template TopKResult<float> topk_smallest<float>(simt::Device&, std::span<const float>,
                                                       std::size_t, const SampleSelectConfig&);
extern template TopKResult<double> topk_smallest<double>(simt::Device&, std::span<const double>,
                                                         std::size_t, const SampleSelectConfig&);
extern template TopKIndexResult<float> topk_largest_with_indices<float>(
    simt::Device&, std::span<const float>, std::size_t, const SampleSelectConfig&);
extern template TopKIndexResult<double> topk_largest_with_indices<double>(
    simt::Device&, std::span<const double>, std::size_t, const SampleSelectConfig&);

}  // namespace gpusel::core
