#pragma once
// Equi-depth histograms and rank queries: the bucket machinery of
// SampleSelect exposed as standalone primitives.
//
// An equi-depth histogram (the classic database summary) is exactly what
// one SampleSelect level computes: sampled splitters approximating the
// i/b percentiles plus the exact element count of every bucket.  The
// histogram supports approximate CDF / rank-bound queries through the same
// implicit search tree the kernels traverse.
//
// rank_of answers the inverse of selection -- "what is the rank of value
// v?" -- with one tripartition counting pass ({< v, == v, > v}).

#include <cstdint>
#include <span>
#include <vector>

#include "core/config.hpp"
#include "core/searchtree.hpp"
#include "core/status.hpp"
#include "simt/device.hpp"

namespace gpusel::core {

template <typename T>
struct EquiDepthHistogram {
    /// Bucket boundaries (the b-1 sorted splitters).
    std::vector<T> boundaries;
    /// Exact element count per bucket (size b).
    std::vector<std::int64_t> counts;
    /// Exclusive prefix sums of counts (size b+1; cumulative[b] == n).
    std::vector<std::int64_t> cumulative;
    /// Total elements summarized.
    std::size_t n = 0;
    /// The search tree used for queries (duplicate boundaries collapse to
    /// equality buckets, exactly like selection).
    SearchTree<T> tree;
    double sim_ns = 0.0;
    std::uint64_t launches = 0;

    /// Bucket index of a value (tree traversal).
    [[nodiscard]] std::int32_t bucket_of(T v) const noexcept { return tree.find_bucket(v); }
    /// Rank bounds of v: every element of rank < lo is < its bucket's
    /// lower boundary, etc.  lo = cumulative[bucket], hi = cumulative[bucket+1].
    [[nodiscard]] std::pair<std::size_t, std::size_t> rank_bounds(T v) const noexcept {
        const auto b = static_cast<std::size_t>(bucket_of(v));
        return {static_cast<std::size_t>(cumulative[b]),
                static_cast<std::size_t>(cumulative[b + 1])};
    }
    /// Approximate CDF: midpoint of the rank bounds over n.
    [[nodiscard]] double cdf(T v) const noexcept {
        const auto [lo, hi] = rank_bounds(v);
        return n == 0 ? 0.0
                      : (static_cast<double>(lo) + static_cast<double>(hi)) /
                            (2.0 * static_cast<double>(n));
    }
};

/// Fault-hardened histogram: empty input and bad config come back as a
/// typed Status; NaN keys (float/double) land in the last bucket, exactly
/// where find_bucket sends a NaN probe, or fail under NanPolicy::reject.
template <typename T>
[[nodiscard]] Result<EquiDepthHistogram<T>> try_equi_depth_histogram(
    simt::Device& dev, std::span<const T> data, const SampleSelectConfig& cfg);

/// Builds an equi-depth histogram with cfg.num_buckets buckets (counting
/// pass + device scan for the cumulative sums).
template <typename T>
[[nodiscard]] EquiDepthHistogram<T> equi_depth_histogram(simt::Device& dev,
                                                         std::span<const T> data,
                                                         const SampleSelectConfig& cfg);

template <typename T>
struct RankQueryResult {
    /// Elements strictly smaller than the query value (the paper's min-rank).
    std::size_t less = 0;
    /// Elements equal to the query value.
    std::size_t equal = 0;
    double sim_ns = 0.0;
};

/// Fault-hardened rank query; `v` may be NaN (it equals exactly the NaN
/// keys and exceeds every numeric key, per the total order).
template <typename T>
[[nodiscard]] Result<RankQueryResult<T>> try_rank_of(simt::Device& dev, std::span<const T> data,
                                                     T v, const SampleSelectConfig& cfg = {});

/// Exact rank of `v` in `data` via one counting pass.
template <typename T>
[[nodiscard]] RankQueryResult<T> rank_of(simt::Device& dev, std::span<const T> data, T v,
                                         const SampleSelectConfig& cfg = {});

extern template Result<EquiDepthHistogram<float>> try_equi_depth_histogram<float>(
    simt::Device&, std::span<const float>, const SampleSelectConfig&);
extern template Result<EquiDepthHistogram<double>> try_equi_depth_histogram<double>(
    simt::Device&, std::span<const double>, const SampleSelectConfig&);
extern template Result<RankQueryResult<float>> try_rank_of<float>(simt::Device&,
                                                                  std::span<const float>, float,
                                                                  const SampleSelectConfig&);
extern template Result<RankQueryResult<double>> try_rank_of<double>(simt::Device&,
                                                                    std::span<const double>,
                                                                    double,
                                                                    const SampleSelectConfig&);
extern template EquiDepthHistogram<float> equi_depth_histogram<float>(simt::Device&,
                                                                      std::span<const float>,
                                                                      const SampleSelectConfig&);
extern template EquiDepthHistogram<double> equi_depth_histogram<double>(
    simt::Device&, std::span<const double>, const SampleSelectConfig&);
extern template RankQueryResult<float> rank_of<float>(simt::Device&, std::span<const float>,
                                                      float, const SampleSelectConfig&);
extern template RankQueryResult<double> rank_of<double>(simt::Device&, std::span<const double>,
                                                        double, const SampleSelectConfig&);

}  // namespace gpusel::core
