#pragma once
// The `sample` kernel (Sec. IV-B a): loads a random sample of the input
// into shared memory, sorts it with the bitonic sorting network, picks the
// i/b percentiles as splitters and publishes them (here: as a built
// SearchTree, including the duplicate-splitter equality buckets).

#include <span>

#include "core/config.hpp"
#include "core/searchtree.hpp"
#include "simt/device.hpp"

namespace gpusel::core {

/// Runs the single-block sample kernel on `dev` and returns the splitter
/// search tree.  `seed_salt` decorrelates the sample across recursion
/// levels and repetitions.  `stream` overrides the launch stream; the
/// default -1 keeps cfg.stream.
template <typename T>
[[nodiscard]] SearchTree<T> sample_splitters(simt::Device& dev, std::span<const T> data,
                                             const SampleSelectConfig& cfg,
                                             simt::LaunchOrigin origin,
                                             std::uint64_t seed_salt = 0, int stream = -1);

extern template SearchTree<float> sample_splitters<float>(simt::Device&, std::span<const float>,
                                                          const SampleSelectConfig&,
                                                          simt::LaunchOrigin, std::uint64_t, int);
extern template SearchTree<double> sample_splitters<double>(simt::Device&, std::span<const double>,
                                                            const SampleSelectConfig&,
                                                            simt::LaunchOrigin, std::uint64_t,
                                                            int);
extern template SearchTree<ArgPair> sample_splitters<ArgPair>(simt::Device&,
                                                              std::span<const ArgPair>,
                                                              const SampleSelectConfig&,
                                                              simt::LaunchOrigin, std::uint64_t,
                                                              int);

}  // namespace gpusel::core
