#pragma once
// Total key order for floating-point selection (docs/robustness.md).
//
// IEEE `<` is a partial order: NaN compares false against everything
// (including itself) and -0.0 == +0.0.  Fed raw into the bucketing kernels
// that breaks the SearchTree invariants -- a NaN takes a data-dependent
// path through the comparison tree and the "rank" of a NaN is undefined.
// The repo's contract instead defines one total order for selection,
// ranking, top-k and sorting:
//
//     -inf < ... < -0.0 == +0.0 < ... < +inf < NaN
//
// with all NaN payloads mutually equal (the IEEE-754 totalOrder direction
// for positive NaNs, collapsed to one equivalence class).  -0.0 and +0.0
// stay one equivalence class, exactly as under `<` -- selection never
// distinguishes them, and which representative a rank query returns is
// unspecified, matching std::nth_element.
//
// Enforcement strategy: the device kernels never see a NaN.  Every
// front-end runs a host-side staging pre-pass (partition_nans_to_back,
// untimed like all staging copies in this simulator) that moves NaNs to
// the tail; ranks inside the tail answer quiet NaN directly.  The
// comparators here are for host-side reference code (CPU baselines,
// SearchTree::find_bucket callers, tests) and for the few kernels that
// compare against a caller-provided needle (rank_of, top-k gather), where
// the needle may legitimately be NaN.  On NaN-free data total_less
// decides exactly like `<`, so fault-free event streams are unchanged.

#include <cmath>
#include <cstddef>
#include <limits>
#include <span>
#include <type_traits>
#include <utility>

namespace gpusel::core {

/// Detects key+payload element types (core/key_payload.hpp and structural
/// equivalents): anything with .key and .payload members.  Their total
/// order is the key total order with the payload as tie-break, so that
/// (key, index) pairs order strictly and argselect is deterministic.
template <typename T, typename = void>
inline constexpr bool is_key_payload_v = false;
template <typename T>
inline constexpr bool is_key_payload_v<
    T, std::void_t<decltype(std::declval<T>().key), decltype(std::declval<T>().payload)>> = true;

/// True if x is a NaN key (false for every non-floating-point type; for
/// key+payload elements, decided by the key).
template <typename T>
[[nodiscard]] constexpr bool is_nan_key(T x) noexcept {
    if constexpr (is_key_payload_v<T>) {
        return is_nan_key(x.key);
    } else if constexpr (std::is_floating_point_v<T>) {
        return x != x;
    } else {
        (void)x;
        return false;
    }
}

/// Strict weak order: `<` on non-NaN keys, NaN above everything, all NaNs
/// equal.  Key+payload elements order by the key's total order, then by
/// payload -- a *strict* total order when payloads are distinct, including
/// within the NaN tail.
template <typename T>
[[nodiscard]] constexpr bool total_less(T a, T b) noexcept {
    if constexpr (is_key_payload_v<T>) {
        if (total_less(a.key, b.key)) return true;
        if (total_less(b.key, a.key)) return false;
        return a.payload < b.payload;
    } else {
        if constexpr (std::is_floating_point_v<T>) {
            if (is_nan_key(a)) return false;   // NaN is the maximum: never less
            if (is_nan_key(b)) return true;    // non-NaN < NaN
        }
        return a < b;
    }
}

/// Equality of the total order: `==` on non-NaN keys, NaN == NaN.
/// Key+payload elements are equal only if both components are.
template <typename T>
[[nodiscard]] constexpr bool total_equal(T a, T b) noexcept {
    if constexpr (is_key_payload_v<T>) {
        return total_equal(a.key, b.key) && a.payload == b.payload;
    } else {
        if constexpr (std::is_floating_point_v<T>) {
            if (is_nan_key(a) || is_nan_key(b)) return is_nan_key(a) && is_nan_key(b);
        }
        return a == b;
    }
}

/// The representative NaN returned for ranks inside the NaN tail (for
/// key+payload elements: NaN key, value-initialized payload).
template <typename T>
[[nodiscard]] constexpr T quiet_nan() noexcept {
    if constexpr (is_key_payload_v<T>) {
        using K = std::remove_cvref_t<decltype(std::declval<T>().key)>;
        return T{quiet_nan<K>(), {}};
    } else {
        static_assert(std::is_floating_point_v<T>);
        return std::numeric_limits<T>::quiet_NaN();
    }
}

/// Staging pre-pass: moves every NaN key behind the non-NaN keys (order
/// within each group is unspecified) and returns the NaN count.  Host-side
/// and untimed, like the staging copies it piggybacks on.  No-op returning
/// 0 for non-floating-point types and NaN-free data.
template <typename T>
std::size_t partition_nans_to_back(std::span<T> data) noexcept {
    if constexpr (!std::is_floating_point_v<T> && !is_key_payload_v<T>) {
        (void)data;
        return 0;
    } else {
        // Two-pointer partition, branch-free on the common NaN-free path.
        std::size_t lo = 0;
        std::size_t hi = data.size();
        while (lo < hi) {
            if (!is_nan_key(data[lo])) {
                ++lo;
            } else {
                --hi;
                std::swap(data[lo], data[hi]);
            }
        }
        return data.size() - lo;
    }
}

/// Counts NaN keys without reordering (read-only inputs).
template <typename T>
[[nodiscard]] std::size_t count_nan_keys(std::span<const T> data) noexcept {
    if constexpr (!std::is_floating_point_v<T> && !is_key_payload_v<T>) {
        (void)data;
        return 0;
    } else {
        std::size_t m = 0;
        for (const T x : data) {
            if (is_nan_key(x)) ++m;
        }
        return m;
    }
}

}  // namespace gpusel::core
