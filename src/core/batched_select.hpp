#pragma once
// Batched selection over many independent sequences -- the "multiple
// sequence selection" extension the paper names as future work (Sec. VI).
//
// Typical callers hold thousands of short sequences (rows of a sparse
// factorization, per-query candidate lists, per-key telemetry windows) and
// need one order statistic from each.  Launching a full selection per
// sequence would drown in launch latency; instead the CSR batch is handed
// to the stream-parallel BatchExecutor (core/batch_executor.hpp): short
// sequences share one fused bitonic launch per stream (one thread block
// per sequence, Sec. IV-D), oversized sequences run the regular
// SampleSelect recursion on their stream, and independent streams overlap
// in simulated time.

#include <cstdint>
#include <span>
#include <vector>

#include "core/batch_executor.hpp"
#include "core/config.hpp"
#include "core/status.hpp"
#include "simt/device.hpp"

namespace gpusel::core {

template <typename T>
struct BatchedSelectResult {
    /// values[i] is the element of rank ranks[i] within sequence i.
    std::vector<T> values;
    /// Sequences handled by the fused batched kernel launches.
    std::size_t batched_sequences = 0;
    /// Sequences that fell back to the SampleSelect recursion.
    std::size_t recursive_sequences = 0;
    /// Simulated wall time of the batch (== wall_ns; the latest stream
    /// completion, what a host observes after synchronizing).
    double sim_ns = 0.0;
    std::uint64_t launches = 0;
    /// NaN keys across the whole batch (each sequence gets its own staging
    /// pre-pass; a rank inside a sequence's NaN tail answers quiet NaN).
    std::size_t nan_count = 0;
    /// Stream-overlap accounting (core/batch_executor.hpp): wall vs the
    /// back-to-back cost of the same launches on one stream.
    int streams_used = 1;
    double wall_ns = 0.0;
    double serial_ns = 0.0;
};

/// Fault-hardened batched selection: malformed batch shapes and
/// out-of-range ranks come back as a typed Status instead of exceptions.
/// `opts` sizes the stream fan (default: GPUSEL_STREAMS, then
/// min(batch, 8); see core/batch_executor.hpp).
template <typename T>
[[nodiscard]] Result<BatchedSelectResult<T>> try_batched_select(
    simt::Device& dev, std::span<const T> flat, std::span<const std::size_t> offsets,
    std::span<const std::size_t> ranks, const SampleSelectConfig& cfg,
    const BatchOptions& opts = {});

/// Selects ranks[i] from the i-th sequence of a CSR-style batch:
/// sequence i occupies flat[offsets[i] .. offsets[i+1]).
/// Requirements: offsets is non-decreasing with offsets.front() == 0 and
/// offsets.back() == flat.size(); ranks[i] < length of sequence i (in
/// particular no empty sequences); ranks.size() == offsets.size() - 1.
template <typename T>
[[nodiscard]] BatchedSelectResult<T> batched_select(simt::Device& dev, std::span<const T> flat,
                                                    std::span<const std::size_t> offsets,
                                                    std::span<const std::size_t> ranks,
                                                    const SampleSelectConfig& cfg,
                                                    const BatchOptions& opts = {});

extern template Result<BatchedSelectResult<float>> try_batched_select<float>(
    simt::Device&, std::span<const float>, std::span<const std::size_t>,
    std::span<const std::size_t>, const SampleSelectConfig&, const BatchOptions&);
extern template Result<BatchedSelectResult<double>> try_batched_select<double>(
    simt::Device&, std::span<const double>, std::span<const std::size_t>,
    std::span<const std::size_t>, const SampleSelectConfig&, const BatchOptions&);
extern template BatchedSelectResult<float> batched_select<float>(
    simt::Device&, std::span<const float>, std::span<const std::size_t>,
    std::span<const std::size_t>, const SampleSelectConfig&, const BatchOptions&);
extern template BatchedSelectResult<double> batched_select<double>(
    simt::Device&, std::span<const double>, std::span<const std::size_t>,
    std::span<const std::size_t>, const SampleSelectConfig&, const BatchOptions&);

}  // namespace gpusel::core
