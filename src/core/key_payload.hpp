#pragma once
// Key + payload element type for the selection pipeline (argselect /
// select-by-key; the avx512_argsort / avx512_qsort_kv shape).
//
// The pipeline's kernels are templated over the element type and only need
// `<` / `==` plus trivial copyability.  KeyPayload supplies a *strict*
// comparison -- key first, payload as tie-break -- so that selection over
// (key, index) pairs is fully deterministic: equal keys are ordered by
// payload, which for argselect is the element's original position.  This
// is the index stability policy: `argselect(keys, rank)` returns exactly
// the pair std::nth_element would place at `rank` under the same
// lexicographic order.
//
// NaN keys mirror raw float semantics under `operator<` (both directions
// false, so kernels must never see them -- the front-ends' staging
// pre-pass compacts them out, see core/float_order.hpp, which orders
// NaN-key pairs above everything and by payload among themselves).
//
// An 8-byte KeyPayload<float, uint32> is trivially copyable, so it moves
// through the masked compress-store engines (simt/simd.hpp) bit-for-bit
// like a double.

#include <cstdint>
#include <limits>
#include <type_traits>

namespace gpusel::core {

template <typename K, typename P>
struct KeyPayload {
    using key_type = K;
    using payload_type = P;

    K key;
    P payload;

    friend constexpr bool operator<(const KeyPayload& a, const KeyPayload& b) noexcept {
        if (a.key < b.key) return true;
        if (b.key < a.key) return false;
        // Keys tie (this includes -0.0 vs +0.0): order by payload.  NaN
        // keys compare unequal, so NaN pairs stay mutually unordered under
        // the raw `<`, exactly like raw float NaN.
        if (a.key == b.key) return a.payload < b.payload;
        return false;
    }
    friend constexpr bool operator==(const KeyPayload& a, const KeyPayload& b) noexcept {
        return a.key == b.key && a.payload == b.payload;
    }
};

/// The argselect element: float key + 32-bit original position.
using ArgPair = KeyPayload<float, std::uint32_t>;

static_assert(sizeof(ArgPair) == 8 && std::is_trivially_copyable_v<ArgPair>,
              "ArgPair must be an 8-byte trivially-copyable value for the "
              "compress-store fast path");

}  // namespace gpusel::core

/// Bitonic padding sentinel: the networks pad partial inputs with
/// numeric_limits<T>::infinity(), which must sort >= every real element.
/// {+inf key, max payload} is the maximum of the pair order.
template <typename K, typename P>
struct std::numeric_limits<gpusel::core::KeyPayload<K, P>> {
    static constexpr bool is_specialized = true;
    static constexpr gpusel::core::KeyPayload<K, P> infinity() noexcept {
        return {std::numeric_limits<K>::infinity(), std::numeric_limits<P>::max()};
    }
    static constexpr gpusel::core::KeyPayload<K, P> max() noexcept {
        return {std::numeric_limits<K>::max(), std::numeric_limits<P>::max()};
    }
    static constexpr gpusel::core::KeyPayload<K, P> lowest() noexcept {
        return {std::numeric_limits<K>::lowest(), std::numeric_limits<P>::lowest()};
    }
};
