#include "core/shard_select.hpp"

#include <algorithm>
#include <limits>
#include <optional>
#include <stdexcept>
#include <utility>

#include "core/count_kernel.hpp"
#include "core/filter_kernel.hpp"
#include "core/float_order.hpp"
#include "core/multiselect.hpp"
#include "core/pipeline.hpp"
#include "core/planner.hpp"
#include "core/reduce_kernel.hpp"
#include "core/sample_select.hpp"
#include "core/topk.hpp"

namespace gpusel::core {

namespace {

/// Distinct per-shard sampling seeds (golden-ratio stepping), so the
/// per-shard descents never share a splitter sample stream.
constexpr std::uint64_t kShardSeedStep = 0x9e3779b97f4a7c15ull;

Status validate_shard_config(const ShardSelectConfig& cfg) {
    try {
        cfg.select.validate(true);
    } catch (const std::invalid_argument& e) {
        return Status::failure(SelectError::invalid_argument, e.what());
    }
    const int b = cfg.splitter_buckets;
    if (b < 2 || b > kMaxExactBuckets || (b & (b - 1)) != 0) {
        return Status::failure(SelectError::invalid_argument,
                               "splitter_buckets must be a power of two in [2, 256]");
    }
    if (cfg.merge_fanin < 2) {
        return Status::failure(SelectError::invalid_argument, "merge_fanin must be >= 2");
    }
    return Status::success();
}

/// Per-call working state of a sharded selection: the NaN-free host chunks,
/// the shard -> device placement, one leased compute stream per used device,
/// and the deltas (clock, launches, link bytes, per-device aux peaks) that
/// become the ShardAccounting.  The destructor joins and returns every
/// leased stream, so error paths unwind cleanly.
template <typename T>
struct ShardEnv {
    simt::DeviceGroup& group;
    const ShardSelectConfig& cfg;
    SampleSelectConfig sel;  ///< per-shard pipeline config; stream overridden per use

    std::vector<std::vector<T>> chunks;  ///< NaN-free host slices, one per shard
    std::vector<int> shard_dev;          ///< owning device per shard (j % devices_used)
    std::vector<std::size_t> stride;     ///< candidate rank stride w_j per shard
    int devices_used = 0;
    std::vector<int> stream;  ///< leased compute stream per used device
    std::size_t total_n = 0;  ///< non-NaN elements over all shards
    std::size_t nan = 0;

    double t0 = 0.0;
    std::uint64_t bytes0 = 0;
    std::vector<std::uint64_t> launches0;  ///< per device, all of them
    std::vector<std::size_t> peak_start;   ///< per used device
    std::vector<std::size_t> peak_seen;
    bool released = false;

    ShardEnv(simt::DeviceGroup& g, const ShardSelectConfig& c) : group(g), cfg(c), sel(c.select) {}
    ShardEnv(const ShardEnv&) = delete;
    ShardEnv& operator=(const ShardEnv&) = delete;
    ~ShardEnv() { release(); }

    void release() noexcept {
        if (released) return;
        released = true;
        for (int d = 0; d < devices_used; ++d) {
            simt::Device& dev = group.device(d);
            dev.synchronize();  // leased streams must be joined before return
            dev.release_stream(stream[static_cast<std::size_t>(d)]);
        }
    }

    /// Folds each used device's tracker peak into the running maximum.
    /// Nested front-ends reset the tracker baseline, so the peak must be
    /// sampled right after every nested call / phase step to be preserved.
    void sample_peaks() {
        for (int d = 0; d < devices_used; ++d) {
            auto& s = peak_seen[static_cast<std::size_t>(d)];
            s = std::max(s, group.device(d).tracker().peak());
        }
    }

    void finish(ShardAccounting& a) {
        group.synchronize_all();
        sample_peaks();
        a.shards = chunks.size();
        a.devices_used = devices_used;
        for (const auto& c : chunks) a.max_shard_elems = std::max(a.max_shard_elems, c.size());
        for (int d = 0; d < devices_used; ++d) {
            const auto i = static_cast<std::size_t>(d);
            const std::size_t aux =
                peak_seen[i] > peak_start[i] ? peak_seen[i] - peak_start[i] : 0;
            a.max_shard_aux_bytes = std::max(a.max_shard_aux_bytes, aux);
        }
        a.link_bytes = group.total_link_bytes() - bytes0;
        a.sim_ns = group.elapsed_ns() - t0;
        for (int d = 0; d < group.size(); ++d) {
            a.launches += group.device(d).launch_count() - launches0[static_cast<std::size_t>(d)];
        }
        a.nan_count = nan;
    }
};

/// Leases streams, marks the measurement baselines, and cuts the non-NaN
/// elements of `input` into near-equal contiguous chunks placed round-robin
/// over the used devices.
template <typename T>
void prepare_env(ShardEnv<T>& env, std::span<const T> input, const ShardPlan& plan) {
    const std::size_t shards = plan.shards;
    env.devices_used = static_cast<int>(
        std::min<std::size_t>(shards, static_cast<std::size_t>(env.group.size())));
    env.t0 = env.group.elapsed_ns();
    env.bytes0 = env.group.total_link_bytes();
    for (int d = 0; d < env.group.size(); ++d) {
        env.launches0.push_back(env.group.device(d).launch_count());
    }
    for (int d = 0; d < env.devices_used; ++d) {
        simt::Device& dev = env.group.device(d);
        env.stream.push_back(dev.lease_stream());
        dev.tracker().set_baseline();
        env.peak_start.push_back(dev.tracker().current());
        env.peak_seen.push_back(dev.tracker().current());
    }
    env.chunks.resize(shards);
    env.shard_dev.resize(shards);
    env.stride.assign(shards, 1);
    const std::size_t base = env.total_n / shards;
    const std::size_t rem = env.total_n % shards;
    std::size_t src = 0;
    for (std::size_t j = 0; j < shards; ++j) {
        const std::size_t want = base + (j < rem ? 1 : 0);
        auto& c = env.chunks[j];
        c.reserve(want);
        while (c.size() < want && src < input.size()) {
            const T x = input[src++];
            if (!is_nan_key(x)) c.push_back(x);
        }
        env.shard_dev[j] = static_cast<int>(j % static_cast<std::size_t>(env.devices_used));
    }
}

/// Phase A: every shard contributes s_j exact order statistics at regular
/// rank strides (a deterministic regular sample, not a random one) via a
/// multi-rank selection on its own device and stream.
template <typename T>
Status phase_candidates(ShardEnv<T>& env, std::vector<std::vector<T>>& cand) {
    cand.resize(env.chunks.size());
    for (std::size_t j = 0; j < env.chunks.size(); ++j) {
        const auto& chunk = env.chunks[j];
        const std::size_t nj = chunk.size();
        if (nj == 0) continue;
        const auto want = static_cast<std::size_t>(env.cfg.effective_splitters_per_shard());
        const std::size_t sj = std::min(want, nj);
        const std::size_t wj = (nj + sj) / (sj + 1);  // ceil(nj / (sj + 1)) >= 1
        env.stride[j] = wj;
        std::vector<std::size_t> ranks;
        ranks.reserve(sj);
        for (std::size_t i = 0; i < sj; ++i) {
            ranks.push_back(std::min(nj - 1, (i + 1) * wj - 1));
        }
        ranks.erase(std::unique(ranks.begin(), ranks.end()), ranks.end());
        const int d = env.shard_dev[j];
        SampleSelectConfig cfgA = env.sel;
        cfgA.stream = env.stream[static_cast<std::size_t>(d)];
        cfgA.seed = env.sel.seed + (static_cast<std::uint64_t>(j) + 1) * kShardSeedStep;
        auto r = try_multi_select<T>(env.group.device(d), std::span<const T>(chunk), ranks, cfgA);
        if (!r.ok()) return r.status();
        cand[j] = std::move(r.value().values);
        env.sample_peaks();
    }
    return Status::success();
}

/// What the deterministic splitter merge produced.
template <typename T>
struct MergeState {
    std::vector<T> candidates;  ///< merged sorted candidate set C
    std::vector<T> splitters;   ///< b_eff - 1 global splitters
    int b_eff = 0;              ///< effective global bucket count
    std::size_t gap = 0;        ///< candidate gap g = ceil(|C| / b_eff)
    std::size_t skew_bound = 0;
    std::vector<SearchTree<T>> device_tree;  ///< per used device
};

/// Phase B0: hierarchical candidate gather.  Per-device candidate lists are
/// staged once, then merged toward device 0 in rounds of `merge_fanin`;
/// every hop is a real DeviceGroup::transfer whose ready/src-done events
/// order the gather writes and the source releases.  The merged set is
/// sorted on the host (|C| is tiny next to n) and cut into b_eff - 1 global
/// splitters at regular candidate gaps, which the root then broadcasts over
/// the links so every device builds the same SearchTree.
template <typename T>
Status merge_candidates(ShardEnv<T>& env, const std::vector<std::vector<T>>& cand,
                        MergeState<T>& ms) {
    struct Node {
        int dev = 0;
        std::optional<simt::PooledBuffer<T>> buf;
        std::size_t count = 0;
    };
    // Host-side concatenation per device (shards on one device share its
    // memory; only cross-device hops cost link traffic).
    std::vector<std::vector<T>> host(static_cast<std::size_t>(env.devices_used));
    for (std::size_t j = 0; j < cand.size(); ++j) {
        auto& h = host[static_cast<std::size_t>(env.shard_dev[j])];
        h.insert(h.end(), cand[j].begin(), cand[j].end());
    }
    std::vector<Node> active;
    for (int d = 0; d < env.devices_used; ++d) {
        const auto& h = host[static_cast<std::size_t>(d)];
        if (h.empty()) continue;
        Node nd;
        nd.dev = d;
        nd.count = h.size();
        nd.buf.emplace(
            env.group.device(d).template pooled<T>(h.size(), env.stream[static_cast<std::size_t>(d)]));
        std::copy(h.begin(), h.end(), nd.buf->span().begin());
        active.push_back(std::move(nd));
    }
    env.sample_peaks();
    if (active.empty()) {
        return Status::failure(SelectError::internal, "sharded merge produced no candidates");
    }
    const auto fanin = static_cast<std::size_t>(env.cfg.merge_fanin);
    while (active.size() > 1) {
        std::vector<Node> next;
        for (std::size_t g = 0; g < active.size(); g += fanin) {
            const std::size_t end = std::min(active.size(), g + fanin);
            if (end - g == 1) {
                next.push_back(std::move(active[g]));
                continue;
            }
            Node& leader = active[g];
            std::size_t total = 0;
            for (std::size_t m = g; m < end; ++m) total += active[m].count;
            simt::Device& ldev = env.group.device(leader.dev);
            const int lstream = env.stream[static_cast<std::size_t>(leader.dev)];
            auto gather = ldev.pooled<T>(total, lstream);
            launch_copy<T>(ldev, std::span<const T>(leader.buf->span()), 0, gather.span(), 0,
                           leader.count, simt::LaunchOrigin::host, env.sel.block_dim, lstream);
            std::size_t off = leader.count;
            for (std::size_t m = g + 1; m < end; ++m) {
                Node& mem = active[m];
                const int mstream = env.stream[static_cast<std::size_t>(mem.dev)];
                const auto rec =
                    env.group.template transfer<T>(mem.dev, std::span<const T>(mem.buf->span()), 0,
                                          leader.dev, gather.span(), off, mem.count, mstream);
                // Leader-side consumers read after the landing write; the
                // member's buffer is released only after the send finished.
                ldev.wait_event(lstream, rec.ready_ns);
                env.group.device(mem.dev).wait_event(mstream, rec.src_done_ns);
                mem.buf.reset();
                off += mem.count;
            }
            env.sample_peaks();
            Node merged;
            merged.dev = leader.dev;
            merged.count = total;
            leader.buf.reset();
            merged.buf.emplace(std::move(gather));
            next.push_back(std::move(merged));
        }
        active = std::move(next);
    }
    Node& root = active.front();
    if (root.dev != 0) {
        return Status::failure(SelectError::internal,
                               "candidate merge did not land on the root device");
    }
    ms.candidates.assign(root.buf->span().begin(), root.buf->span().end());
    std::sort(ms.candidates.begin(), ms.candidates.end(),
              [](T a, T b) { return total_less(a, b); });
    const std::size_t csize = ms.candidates.size();
    int b = env.cfg.splitter_buckets;
    while (b > 2 && static_cast<std::size_t>(b) > csize + 1) b /= 2;
    ms.b_eff = b;
    ms.gap = (csize + static_cast<std::size_t>(b) - 1) / static_cast<std::size_t>(b);
    ms.splitters.reserve(static_cast<std::size_t>(b - 1));
    for (int t = 0; t + 1 < b; ++t) {
        std::size_t idx = (static_cast<std::size_t>(t + 1) * csize) / static_cast<std::size_t>(b);
        if (idx > 0) --idx;
        if (idx >= csize) idx = csize - 1;
        ms.splitters.push_back(ms.candidates[idx]);
    }
    std::size_t wmax = 0;
    for (const auto w : env.stride) wmax = std::max(wmax, w);
    ms.skew_bound = (ms.gap + env.chunks.size()) * wmax;

    // Broadcast: the root builds its tree locally, every other used device
    // receives the splitters over the link before building the same tree.
    ms.device_tree.resize(static_cast<std::size_t>(env.devices_used));
    ms.device_tree[0] = SearchTree<T>::build(ms.splitters);
    simt::Device& rdev = env.group.device(0);
    const int rstream = env.stream[0];
    if (env.devices_used > 1) {
        auto staged = rdev.pooled<T>(ms.splitters.size(), rstream);
        std::copy(ms.splitters.begin(), ms.splitters.end(), staged.span().begin());
        double last_src_done = 0.0;
        for (int d = 1; d < env.devices_used; ++d) {
            simt::Device& ddev = env.group.device(d);
            const int dstream = env.stream[static_cast<std::size_t>(d)];
            auto landing = ddev.pooled<T>(ms.splitters.size(), dstream);
            const auto rec = env.group.template transfer<T>(0, std::span<const T>(staged.span()), 0, d,
                                                   landing.span(), 0, ms.splitters.size(),
                                                   rstream);
            ddev.wait_event(dstream, rec.ready_ns);
            last_src_done = rec.src_done_ns;
            std::vector<T> got(landing.span().begin(), landing.span().end());
            ms.device_tree[static_cast<std::size_t>(d)] = SearchTree<T>::build(std::move(got));
        }
        rdev.wait_event(rstream, last_src_done);
    }
    root.buf.reset();
    env.sample_peaks();
    return Status::success();
}

/// Global bucket counts against the merged splitter tree.
struct CountOutcome {
    std::vector<std::vector<std::int64_t>> shard_totals;  ///< S x b_eff
    std::vector<std::int64_t> totals;                     ///< global per-bucket counts
    std::vector<std::int64_t> prefix;                     ///< exclusive prefix, size b_eff + 1
    std::int32_t bucket = -1;
    bool equality = false;
    std::size_t bucket_size = 0;
    std::size_t rank_offset = 0;
    std::size_t max_bucket = 0;  ///< largest non-equality bucket
};

/// Phase B1: out-of-core count.  Every shard is re-staged, counted against
/// its device's copy of the merged tree, and released before the next shard
/// touches the device; per-shard int32 counts travel to the root over the
/// link and accumulate in int64 (the global n may exceed int32).
template <typename T>
Status phase_count(ShardEnv<T>& env, const MergeState<T>& ms, std::size_t rank,
                   CountOutcome& out) {
    const std::size_t shards = env.chunks.size();
    const auto b = static_cast<std::size_t>(ms.b_eff);
    out.shard_totals.assign(shards, std::vector<std::int64_t>(b, 0));
    out.totals.assign(b, 0);
    SampleSelectConfig cfgB = env.sel;
    cfgB.num_buckets = ms.b_eff;
    simt::Device& rdev = env.group.device(0);
    const int rstream = env.stream[0];
    std::optional<simt::PooledBuffer<std::int32_t>> landing;

    for (std::size_t j = 0; j < shards; ++j) {
        const auto& chunk = env.chunks[j];
        const std::size_t nj = chunk.size();
        if (nj == 0) continue;
        const int d = env.shard_dev[j];
        simt::Device& dev = env.group.device(d);
        const int sd = env.stream[static_cast<std::size_t>(d)];
        cfgB.stream = sd;
        PipelineContext ctx(dev, cfgB, sd);
        std::optional<simt::PooledBuffer<std::int32_t>> totals_keep;
        std::vector<std::int32_t> host_totals(b, 0);
        Status st = with_fault_retry(ctx, [&] {
            totals_keep.reset();
            auto staged = DataHolder<T>::stage(ctx, chunk);
            const PipelinePlan pl = PipelinePlan::make(dev, nj, cfgB, false);
            auto totals = ctx.scratch<std::int32_t>(b);
            std::optional<simt::PooledBuffer<std::int32_t>> bc;
            std::span<std::int32_t> bcs{};
            if (pl.shared_mode) {
                bc.emplace(ctx.scratch<std::int32_t>(pl.block_counts_len()));
                bcs = bc->span();
            } else {
                launch_memset32(dev, totals.span(), simt::LaunchOrigin::host, sd);
            }
            const int grid =
                count_kernel<T>(dev, std::span<const T>(staged.span()),
                                ms.device_tree[static_cast<std::size_t>(d)], {}, totals.span(),
                                bcs, cfgB, simt::LaunchOrigin::host, sd);
            if (pl.shared_mode) {
                reduce_kernel(dev, bcs, grid, ms.b_eff, totals.span(), false,
                              simt::LaunchOrigin::host, cfgB.block_dim, sd);
            }
            std::copy(totals.span().begin(), totals.span().end(), host_totals.begin());
            totals_keep.emplace(std::move(totals));
        });
        if (!st.ok()) return st;
        env.sample_peaks();
        for (std::size_t i = 0; i < b; ++i) {
            out.shard_totals[j][i] = host_totals[i];
            out.totals[i] += host_totals[i];
        }
        if (d != 0) {
            // The counts travel to the root like any other payload, so the
            // merge's link cost is modeled even though the values are
            // already host-visible.
            if (!landing) landing.emplace(rdev.pooled<std::int32_t>(b, rstream));
            const auto rec = env.group.template transfer<std::int32_t>(
                d, std::span<const std::int32_t>(totals_keep->span()), 0, 0, landing->span(), 0,
                b, sd);
            rdev.wait_event(rstream, rec.ready_ns);
            dev.wait_event(sd, rec.src_done_ns);
        }
        totals_keep.reset();
    }

    out.prefix.assign(b + 1, 0);
    for (std::size_t i = 0; i < b; ++i) out.prefix[i + 1] = out.prefix[i] + out.totals[i];
    if (out.prefix[b] != static_cast<std::int64_t>(env.total_n)) {
        return Status::failure(SelectError::internal, "sharded count lost elements");
    }
    if (out.prefix[b] <= std::numeric_limits<std::int32_t>::max()) {
        // The tiny device kernel locates the bucket, as in the single-device
        // pipeline (Sec. IV-E).
        std::vector<std::int32_t> t32(b);
        for (std::size_t i = 0; i < b; ++i) t32[i] = static_cast<std::int32_t>(out.totals[i]);
        auto dtot = rdev.pooled<std::int32_t>(b, rstream);
        std::copy(t32.begin(), t32.end(), dtot.span().begin());
        auto dpre = rdev.pooled<std::int32_t>(b + 1, rstream);
        out.bucket = select_bucket_kernel(rdev, std::span<const std::int32_t>(dtot.span()),
                                          dpre.span(), rank, simt::LaunchOrigin::host, rstream);
        env.sample_peaks();
    } else {
        // Beyond int32 the prefix scan stays on the host (the kernel's
        // counters are 32-bit).
        std::int32_t bkt = ms.b_eff - 1;
        for (std::size_t i = 0; i < b; ++i) {
            if (static_cast<std::int64_t>(rank) < out.prefix[i + 1]) {
                bkt = static_cast<std::int32_t>(i);
                break;
            }
        }
        out.bucket = bkt;
    }
    const auto& eq = ms.device_tree[0].equality;
    out.equality = eq[static_cast<std::size_t>(out.bucket)] != 0;
    out.bucket_size = static_cast<std::size_t>(out.totals[static_cast<std::size_t>(out.bucket)]);
    out.rank_offset = static_cast<std::size_t>(out.prefix[static_cast<std::size_t>(out.bucket)]);
    for (std::size_t i = 0; i < b; ++i) {
        if (eq[i]) continue;
        out.max_bucket = std::max(out.max_bucket, static_cast<std::size_t>(out.totals[i]));
    }
    return Status::success();
}

/// Phase B2: out-of-core filter.  Re-stages each shard, extracts its slice
/// of the located global bucket, and gathers the fragments into one merged
/// buffer on the root device (transfer-ordered; same-device fragments move
/// with a plain device copy so no phantom link bytes are charged).
template <typename T>
Status phase_filter_merge(ShardEnv<T>& env, const MergeState<T>& ms, const CountOutcome& co,
                          std::optional<simt::PooledBuffer<T>>& merged) {
    SampleSelectConfig cfgB = env.sel;
    cfgB.num_buckets = ms.b_eff;
    simt::Device& rdev = env.group.device(0);
    const int rstream = env.stream[0];
    merged.emplace(rdev.pooled<T>(co.bucket_size, rstream));
    std::size_t off = 0;
    for (std::size_t j = 0; j < env.chunks.size(); ++j) {
        const auto fj = static_cast<std::size_t>(
            co.shard_totals[j][static_cast<std::size_t>(co.bucket)]);
        if (fj == 0) continue;
        const auto& chunk = env.chunks[j];
        const std::size_t nj = chunk.size();
        const int d = env.shard_dev[j];
        simt::Device& dev = env.group.device(d);
        const int sd = env.stream[static_cast<std::size_t>(d)];
        cfgB.stream = sd;
        PipelineContext ctx(dev, cfgB, sd);
        std::optional<simt::PooledBuffer<T>> frag_keep;
        Status st = with_fault_retry(ctx, [&] {
            frag_keep.reset();
            auto staged = DataHolder<T>::stage(ctx, chunk);
            const PipelinePlan pl = PipelinePlan::make(dev, nj, cfgB, true);
            auto oracles = ctx.scratch<std::uint8_t>(nj);
            auto totals = ctx.scratch<std::int32_t>(static_cast<std::size_t>(ms.b_eff));
            std::optional<simt::PooledBuffer<std::int32_t>> bc;
            std::span<std::int32_t> bcs{};
            if (pl.shared_mode) {
                bc.emplace(ctx.scratch<std::int32_t>(pl.block_counts_len()));
                bcs = bc->span();
            } else {
                launch_memset32(dev, totals.span(), simt::LaunchOrigin::host, sd);
            }
            const int grid =
                count_kernel<T>(dev, std::span<const T>(staged.span()),
                                ms.device_tree[static_cast<std::size_t>(d)], oracles.span(),
                                totals.span(), bcs, cfgB, simt::LaunchOrigin::host, sd);
            std::optional<simt::PooledBuffer<std::int32_t>> gctr;
            if (pl.shared_mode) {
                reduce_kernel(dev, bcs, grid, ms.b_eff, totals.span(), true,
                              simt::LaunchOrigin::host, cfgB.block_dim, sd);
            } else {
                gctr.emplace(ctx.zeroed_i32(1, simt::LaunchOrigin::host));
            }
            auto frag = dev.pooled<T>(fj, sd);
            filter_kernel<T>(dev, std::span<const T>(staged.span()), oracles.span(), co.bucket,
                             frag.span(), bcs, ms.b_eff,
                             gctr ? gctr->span() : std::span<std::int32_t>{}, cfgB,
                             simt::LaunchOrigin::host, grid, sd);
            frag_keep.emplace(std::move(frag));
        });
        if (!st.ok()) return st;
        env.sample_peaks();
        if (d == 0) {
            launch_copy<T>(rdev, std::span<const T>(frag_keep->span()), 0, merged->span(), off,
                           fj, simt::LaunchOrigin::host, env.sel.block_dim, rstream);
        } else {
            const auto rec = env.group.template transfer<T>(d, std::span<const T>(frag_keep->span()), 0, 0,
                                                   merged->span(), off, fj, sd);
            rdev.wait_event(rstream, rec.ready_ns);
            dev.wait_event(sd, rec.src_done_ns);
        }
        frag_keep.reset();
        off += fj;
    }
    if (off != co.bucket_size) {
        return Status::failure(SelectError::internal,
                               "sharded filter gathered a mis-sized bucket");
    }
    return Status::success();
}

/// What the exact multi-shard machinery reports beyond the value.
template <typename T>
struct ExactOutcome {
    T value{};
    bool equality_exit = false;
    std::size_t merge_candidates = 0;
    std::size_t skew_bound = 0;
    std::size_t max_bucket = 0;
};

/// The exact selection over a prepared env: single-shard inputs take the
/// existing single-device front-end on the leased stream; multi-shard
/// inputs run candidates -> merge -> count -> filter -> root descent.
template <typename T>
Status run_exact(ShardEnv<T>& env, std::size_t rank, ExactOutcome<T>& out) {
    if (env.chunks.size() == 1) {
        SampleSelectConfig one = env.sel;
        one.stream = env.stream[0];
        auto r = try_sample_select<T>(env.group.device(0), std::span<const T>(env.chunks[0]),
                                      rank, one);
        if (!r.ok()) return r.status();
        out.value = r.value().value;
        out.equality_exit = r.value().equality_exit;
        env.sample_peaks();
        return Status::success();
    }
    std::vector<std::vector<T>> cand;
    if (Status st = phase_candidates(env, cand); !st.ok()) return st;
    MergeState<T> ms;
    if (Status st = merge_candidates(env, cand, ms); !st.ok()) return st;
    CountOutcome co;
    if (Status st = phase_count(env, ms, rank, co); !st.ok()) return st;
    out.merge_candidates = ms.candidates.size();
    out.skew_bound = ms.skew_bound;
    out.max_bucket = co.max_bucket;
    if (co.equality) {
        // The rank fell into a bucket that holds one repeated value.
        out.value = ms.splitters[static_cast<std::size_t>(co.bucket) - 1];
        out.equality_exit = true;
        return Status::success();
    }
    std::optional<simt::PooledBuffer<T>> merged;
    if (Status st = phase_filter_merge(env, ms, co, merged); !st.ok()) return st;
    SampleSelectConfig rsel = env.sel;
    rsel.stream = env.stream[0];
    auto r = try_sample_select_staged<T>(env.group.device(0),
                                         DataHolder<T>::from_pooled(std::move(*merged)),
                                         rank - co.rank_offset, rsel, env.stream[0]);
    if (!r.ok()) return r.status();
    env.sample_peaks();
    out.value = r.value().value;
    return Status::success();
}

}  // namespace

template <typename T>
Result<ShardedSelectResult<T>> try_sharded_select(simt::DeviceGroup& group,
                                                  std::span<const T> input, std::size_t rank,
                                                  const ShardSelectConfig& cfg) {
    if (Status v = validate_shard_config(cfg); !v.ok()) return v;
    const std::size_t n = input.size();
    if (n == 0) {
        return Status::failure(SelectError::empty_input, "sharded select of an empty input");
    }
    if (rank >= n) {
        return Status::failure(SelectError::rank_out_of_range, "rank exceeds the input size");
    }
    const std::size_t nan = count_nan_keys(input);
    if (nan > 0 && cfg.select.nan_policy == NanPolicy::reject) {
        return Status::failure(SelectError::nan_keys_rejected,
                               "NaN keys present with NanPolicy::reject");
    }
    ShardedSelectResult<T> res;
    const std::size_t clean_n = n - nan;
    if (rank >= clean_n) {
        // The rank falls inside the NaN tail: NaNs are the largest keys.
        res.value = quiet_nan<T>();
        res.acct.nan_count = nan;
        return res;
    }
    const ShardPlan plan = plan_shard_count(clean_n, sizeof(T), group.mem_capacity_bytes(),
                                            group.size(), cfg.max_shard_elems);
    ShardEnv<T> env(group, cfg);
    env.total_n = clean_n;
    env.nan = nan;
    prepare_env(env, input, plan);
    record_planned_decision(group.device(0), {BackendKind::sample, plan.reason, false}, clean_n,
                            rank, env.stream[0]);
    ExactOutcome<T> ex;
    if (Status st = run_exact(env, rank, ex); !st.ok()) return st;
    res.value = ex.value;
    res.equality_exit = ex.equality_exit;
    env.finish(res.acct);
    res.acct.merge_candidates = ex.merge_candidates;
    res.acct.skew_bound = ex.skew_bound;
    res.acct.max_bucket = ex.max_bucket;
    return res;
}

template <typename T>
Result<ShardedApproxSelectResult<T>> try_sharded_approx_select(simt::DeviceGroup& group,
                                                               std::span<const T> input,
                                                               std::size_t rank,
                                                               const ShardSelectConfig& cfg) {
    if (Status v = validate_shard_config(cfg); !v.ok()) return v;
    const std::size_t n = input.size();
    if (n == 0) {
        return Status::failure(SelectError::empty_input, "sharded select of an empty input");
    }
    if (rank >= n) {
        return Status::failure(SelectError::rank_out_of_range, "rank exceeds the input size");
    }
    const std::size_t nan = count_nan_keys(input);
    if (nan > 0 && cfg.select.nan_policy == NanPolicy::reject) {
        return Status::failure(SelectError::nan_keys_rejected,
                               "NaN keys present with NanPolicy::reject");
    }
    ShardedApproxSelectResult<T> res;
    const std::size_t clean_n = n - nan;
    if (rank >= clean_n) {
        res.value = quiet_nan<T>();
        res.acct.nan_count = nan;
        return res;
    }
    const ShardPlan plan = plan_shard_count(clean_n, sizeof(T), group.mem_capacity_bytes(),
                                            group.size(), cfg.max_shard_elems);
    ShardEnv<T> env(group, cfg);
    env.total_n = clean_n;
    env.nan = nan;
    prepare_env(env, input, plan);
    record_planned_decision(group.device(0), {BackendKind::sample, plan.reason, false}, clean_n,
                            rank, env.stream[0]);
    // The approximate path always runs the merge machinery (even for one
    // shard): the splitter edges ARE the answer, and the exact per-shard
    // counts make the residual rank error exact.
    std::vector<std::vector<T>> cand;
    if (Status st = phase_candidates(env, cand); !st.ok()) return st;
    MergeState<T> ms;
    if (Status st = merge_candidates(env, cand, ms); !st.ok()) return st;
    CountOutcome co;
    if (Status st = phase_count(env, ms, rank, co); !st.ok()) return st;
    const auto bkt = static_cast<std::size_t>(co.bucket);
    if (co.equality) {
        res.value = ms.splitters[bkt - 1];
        res.rank_error_bound = 0;
    } else if (co.bucket > 0) {
        // Elements below splitters[bucket-1] number at most prefix[bucket]
        // (exactly, for a non-duplicated splitter); +1 absorbs the
        // duplicated-splitter `<=` tie at the edge.
        res.value = ms.splitters[bkt - 1];
        res.rank_error_bound = (rank - static_cast<std::size_t>(co.prefix[bkt])) + 1;
    } else {
        res.value = ms.splitters[0];
        res.rank_error_bound = (static_cast<std::size_t>(co.prefix[1]) - rank) + 1;
    }
    env.finish(res.acct);
    res.acct.merge_candidates = ms.candidates.size();
    res.acct.skew_bound = ms.skew_bound;
    res.acct.max_bucket = co.max_bucket;
    return res;
}

template <typename T>
Result<ShardedTopKResult<T>> try_sharded_topk(simt::DeviceGroup& group, std::span<const T> input,
                                              std::size_t k, const ShardSelectConfig& cfg) {
    if (Status v = validate_shard_config(cfg); !v.ok()) return v;
    const std::size_t n = input.size();
    if (k == 0 || k > n) {
        return Status::failure(SelectError::rank_out_of_range, "top-k k must be in [1, n]");
    }
    const std::size_t nan = count_nan_keys(input);
    if (nan > 0 && cfg.select.nan_policy == NanPolicy::reject) {
        return Status::failure(SelectError::nan_keys_rejected,
                               "NaN keys present with NanPolicy::reject");
    }
    ShardedTopKResult<T> res;
    if (k <= nan) {
        // NaNs are the largest keys: the whole top-k set is NaN.
        res.elements.assign(k, quiet_nan<T>());
        res.threshold = quiet_nan<T>();
        res.acct.nan_count = nan;
        return res;
    }
    const std::size_t kp = k - nan;  // non-NaN winners needed
    const std::size_t clean_n = n - nan;
    const ShardPlan plan = plan_shard_count(clean_n, sizeof(T), group.mem_capacity_bytes(),
                                            group.size(), cfg.max_shard_elems);
    if (plan.shards > 1 && kp > plan.shard_elems) {
        return Status::failure(SelectError::invalid_argument,
                               "sharded top-k: k exceeds the per-shard staging budget (the "
                               "gathered result must fit the root device)");
    }
    ShardEnv<T> env(group, cfg);
    env.total_n = clean_n;
    env.nan = nan;
    prepare_env(env, input, plan);
    record_planned_decision(group.device(0), {BackendKind::sample, plan.reason, false}, clean_n,
                            kp, env.stream[0]);
    if (plan.shards == 1) {
        SampleSelectConfig one = env.sel;
        one.stream = env.stream[0];
        auto r = try_topk_largest<T>(group.device(0), std::span<const T>(env.chunks[0]), kp, one);
        if (!r.ok()) return r.status();
        res.elements = std::move(r.value().elements);
        res.threshold = r.value().threshold;
        env.sample_peaks();
        for (std::size_t i = 0; i < nan; ++i) res.elements.push_back(quiet_nan<T>());
        env.finish(res.acct);
        return res;
    }
    // Exact threshold: the kp-th largest non-NaN element.
    ExactOutcome<T> ex;
    if (Status st = run_exact(env, clean_n - kp, ex); !st.ok()) return st;
    const T t = ex.value;

    // Broadcast the threshold and build per-device tripartition trees
    // {t, t, t}: buckets 0-1 hold < t, bucket 2 is the equality bucket
    // == t, bucket 3 holds > t (exactly run_pivot_level's layout).
    std::vector<SearchTree<T>> tri(static_cast<std::size_t>(env.devices_used));
    tri[0] = SearchTree<T>::build({t, t, t});
    simt::Device& rdev = env.group.device(0);
    const int rstream = env.stream[0];
    if (env.devices_used > 1) {
        auto staged = rdev.pooled<T>(1, rstream);
        staged[0] = t;
        double last_src_done = 0.0;
        for (int d = 1; d < env.devices_used; ++d) {
            simt::Device& ddev = env.group.device(d);
            const int ds = env.stream[static_cast<std::size_t>(d)];
            auto landing = ddev.pooled<T>(1, ds);
            const auto rec = env.group.template transfer<T>(0, std::span<const T>(staged.span()), 0, d,
                                                   landing.span(), 0, 1, rstream);
            ddev.wait_event(ds, rec.ready_ns);
            last_src_done = rec.src_done_ns;
            const T got = landing[0];
            tri[static_cast<std::size_t>(d)] = SearchTree<T>::build({got, got, got});
        }
        rdev.wait_event(rstream, last_src_done);
    }

    // One tripartition count+filter pass per shard: elements strictly above
    // the threshold (bucket 3, at most kp - 1 of them globally) gather into
    // a root buffer; threshold copies pad the set to exactly kp.
    SampleSelectConfig cfg3 = env.sel;
    cfg3.num_buckets = 4;
    auto merged = rdev.pooled<T>(kp, rstream);
    std::size_t off = 0;
    for (std::size_t j = 0; j < env.chunks.size(); ++j) {
        const auto& chunk = env.chunks[j];
        const std::size_t nj = chunk.size();
        if (nj == 0) continue;
        const int d = env.shard_dev[j];
        simt::Device& dev = env.group.device(d);
        const int sd = env.stream[static_cast<std::size_t>(d)];
        cfg3.stream = sd;
        PipelineContext ctx(dev, cfg3, sd);
        std::optional<simt::PooledBuffer<T>> frag_keep;
        std::size_t qj = 0;
        Status st = with_fault_retry(ctx, [&] {
            frag_keep.reset();
            qj = 0;
            auto staged = DataHolder<T>::stage(ctx, chunk);
            const PipelinePlan pl = PipelinePlan::make(dev, nj, cfg3, true);
            auto oracles = ctx.scratch<std::uint8_t>(nj);
            auto totals = ctx.scratch<std::int32_t>(4);
            std::optional<simt::PooledBuffer<std::int32_t>> bc;
            std::span<std::int32_t> bcs{};
            if (pl.shared_mode) {
                bc.emplace(ctx.scratch<std::int32_t>(pl.block_counts_len()));
                bcs = bc->span();
            } else {
                launch_memset32(dev, totals.span(), simt::LaunchOrigin::host, sd);
            }
            const int grid = count_kernel<T>(dev, std::span<const T>(staged.span()),
                                             tri[static_cast<std::size_t>(d)], oracles.span(),
                                             totals.span(), bcs, cfg3, simt::LaunchOrigin::host,
                                             sd);
            std::optional<simt::PooledBuffer<std::int32_t>> gctr;
            if (pl.shared_mode) {
                reduce_kernel(dev, bcs, grid, 4, totals.span(), true, simt::LaunchOrigin::host,
                              cfg3.block_dim, sd);
            } else {
                gctr.emplace(ctx.zeroed_i32(1, simt::LaunchOrigin::host));
            }
            qj = static_cast<std::size_t>(totals[3]);
            if (qj == 0) return;
            auto frag = dev.pooled<T>(qj, sd);
            filter_kernel<T>(dev, std::span<const T>(staged.span()), oracles.span(), 3,
                             frag.span(), bcs, 4, gctr ? gctr->span() : std::span<std::int32_t>{},
                             cfg3, simt::LaunchOrigin::host, grid, sd);
            frag_keep.emplace(std::move(frag));
        });
        if (!st.ok()) return st;
        env.sample_peaks();
        if (qj == 0) continue;
        if (off + qj > kp) {
            return Status::failure(SelectError::internal,
                                   "sharded top-k gathered more than k winners");
        }
        if (d == 0) {
            launch_copy<T>(rdev, std::span<const T>(frag_keep->span()), 0, merged.span(), off, qj,
                           simt::LaunchOrigin::host, env.sel.block_dim, rstream);
        } else {
            const auto rec = env.group.template transfer<T>(d, std::span<const T>(frag_keep->span()), 0, 0,
                                                   merged.span(), off, qj, sd);
            rdev.wait_event(rstream, rec.ready_ns);
            dev.wait_event(sd, rec.src_done_ns);
        }
        frag_keep.reset();
        off += qj;
    }
    res.elements.assign(merged.span().begin(),
                        merged.span().begin() + static_cast<std::ptrdiff_t>(off));
    res.elements.resize(kp, t);  // pad with threshold copies (ties)
    for (std::size_t i = 0; i < nan; ++i) res.elements.push_back(quiet_nan<T>());
    res.threshold = t;
    env.finish(res.acct);
    res.acct.merge_candidates = ex.merge_candidates;
    res.acct.skew_bound = ex.skew_bound;
    res.acct.max_bucket = ex.max_bucket;
    return res;
}

template <typename T>
StreamingQuantile<T>::StreamingQuantile(simt::Device& dev, ShardSelectConfig cfg)
    : dev_(&dev), cfg_(std::move(cfg)) {}

template <typename T>
Status StreamingQuantile<T>::observe(std::span<const T> chunk) {
    if (Status v = validate_shard_config(cfg_); !v.ok()) return v;
    std::vector<T> clean;
    clean.reserve(chunk.size());
    for (const T x : chunk) {
        if (is_nan_key(x)) {
            ++nan_;
        } else {
            clean.push_back(x);
        }
    }
    if (clean.empty()) return Status::success();
    const std::uint64_t l0 = dev_->launch_count();
    if (!have_tree_) {
        // First chunk: its exact order statistics at regular ranks become
        // the fixed splitter tree every later chunk is counted against.
        const std::size_t nc = clean.size();
        int be = cfg_.splitter_buckets;
        while (be > 2 && static_cast<std::size_t>(be) > nc + 1) be /= 2;
        std::vector<std::size_t> ranks;
        ranks.reserve(static_cast<std::size_t>(be - 1));
        for (int t = 0; t + 1 < be; ++t) {
            std::size_t idx = (static_cast<std::size_t>(t + 1) * nc) /
                              static_cast<std::size_t>(be);
            if (idx > 0) --idx;
            if (idx >= nc) idx = nc - 1;
            ranks.push_back(idx);
        }
        std::vector<std::size_t> uniq = ranks;
        uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
        auto r = try_multi_select<T>(*dev_, std::span<const T>(clean), uniq, cfg_.select);
        if (!r.ok()) return r.status();
        const auto& vals = r.value().values;
        std::vector<T> spl;
        spl.reserve(ranks.size());
        for (const std::size_t rk : ranks) {
            const auto it = std::lower_bound(uniq.begin(), uniq.end(), rk);
            spl.push_back(vals[static_cast<std::size_t>(it - uniq.begin())]);
        }
        tree_ = SearchTree<T>::build(std::move(spl));
        have_tree_ = true;
        totals_.assign(static_cast<std::size_t>(tree_.num_buckets), 0);
    }
    // Every chunk (the first included) is one count pass against the tree.
    SampleSelectConfig cfgB = cfg_.select;
    cfgB.num_buckets = tree_.num_buckets;
    PipelineContext ctx(*dev_, cfgB);
    const auto b = static_cast<std::size_t>(tree_.num_buckets);
    std::vector<std::int32_t> host_totals(b, 0);
    Status st = with_fault_retry(ctx, [&] {
        auto staged = DataHolder<T>::stage(ctx, clean);
        const PipelinePlan pl = PipelinePlan::make(*dev_, clean.size(), cfgB, false);
        auto totals = ctx.scratch<std::int32_t>(b);
        std::optional<simt::PooledBuffer<std::int32_t>> bc;
        std::span<std::int32_t> bcs{};
        if (pl.shared_mode) {
            bc.emplace(ctx.scratch<std::int32_t>(pl.block_counts_len()));
            bcs = bc->span();
        } else {
            launch_memset32(*dev_, totals.span(), simt::LaunchOrigin::host, ctx.stream());
        }
        const int grid = count_kernel<T>(*dev_, std::span<const T>(staged.span()), tree_, {},
                                         totals.span(), bcs, cfgB, simt::LaunchOrigin::host,
                                         ctx.stream());
        if (pl.shared_mode) {
            reduce_kernel(*dev_, bcs, grid, tree_.num_buckets, totals.span(), false,
                          simt::LaunchOrigin::host, cfgB.block_dim, ctx.stream());
        }
        std::copy(totals.span().begin(), totals.span().end(), host_totals.begin());
    });
    if (!st.ok()) return st;
    for (std::size_t i = 0; i < b; ++i) totals_[i] += host_totals[i];
    n_ += clean.size();
    launches_ += dev_->launch_count() - l0;
    return Status::success();
}

template <typename T>
Result<typename StreamingQuantile<T>::Estimate> StreamingQuantile<T>::quantile(double q) const {
    if (!(q >= 0.0 && q <= 1.0)) {
        return Status::failure(SelectError::invalid_argument, "quantile q must be in [0, 1]");
    }
    if (n_ == 0) {
        return Status::failure(SelectError::empty_input, "no non-NaN elements observed");
    }
    Estimate e;
    e.n = n_;
    e.rank = static_cast<std::size_t>(q * static_cast<double>(n_ - 1));
    if (e.rank >= n_) e.rank = n_ - 1;
    const std::size_t b = totals_.size();
    std::vector<std::int64_t> prefix(b + 1, 0);
    for (std::size_t i = 0; i < b; ++i) prefix[i + 1] = prefix[i] + totals_[i];
    std::size_t bkt = b - 1;
    for (std::size_t i = 0; i < b; ++i) {
        if (static_cast<std::int64_t>(e.rank) < prefix[i + 1]) {
            bkt = i;
            break;
        }
    }
    if (tree_.equality[bkt]) {
        e.value = tree_.splitters[bkt - 1];
        e.rank_error_bound = 0;
    } else if (bkt > 0) {
        e.value = tree_.splitters[bkt - 1];
        e.rank_error_bound = (e.rank - static_cast<std::size_t>(prefix[bkt])) + 1;
    } else {
        e.value = tree_.splitters[0];
        e.rank_error_bound = (static_cast<std::size_t>(prefix[1]) - e.rank) + 1;
    }
    return e;
}

template Result<ShardedSelectResult<float>> try_sharded_select<float>(
    simt::DeviceGroup&, std::span<const float>, std::size_t, const ShardSelectConfig&);
template Result<ShardedSelectResult<double>> try_sharded_select<double>(
    simt::DeviceGroup&, std::span<const double>, std::size_t, const ShardSelectConfig&);
template Result<ShardedTopKResult<float>> try_sharded_topk<float>(
    simt::DeviceGroup&, std::span<const float>, std::size_t, const ShardSelectConfig&);
template Result<ShardedTopKResult<double>> try_sharded_topk<double>(
    simt::DeviceGroup&, std::span<const double>, std::size_t, const ShardSelectConfig&);
template Result<ShardedApproxSelectResult<float>> try_sharded_approx_select<float>(
    simt::DeviceGroup&, std::span<const float>, std::size_t, const ShardSelectConfig&);
template Result<ShardedApproxSelectResult<double>> try_sharded_approx_select<double>(
    simt::DeviceGroup&, std::span<const double>, std::size_t, const ShardSelectConfig&);
template class StreamingQuantile<float>;
template class StreamingQuantile<double>;

}  // namespace gpusel::core
