#pragma once
// Exact SampleSelect (Sec. IV-B/IV-E): the recursive driver tying together
// the sample, count, reduce and filter kernels.  Recursion control stays on
// the device through the simulator's dynamic-parallelism queue, mirroring
// the paper's CUDA Dynamic Parallelism tail recursion: each level's
// controller inspects the bucket counts, optionally terminates early in an
// equality bucket, and launches the next level with device-launch latency.

#include <cstdint>
#include <span>

#include "core/config.hpp"
#include "core/pipeline.hpp"
#include "core/status.hpp"
#include "simt/device.hpp"
#include "simt/memory.hpp"

namespace gpusel::core {

template <typename T>
struct SelectResult {
    /// The element of the requested rank.
    T value{};
    /// Recursion levels executed (sample/count/filter rounds; 0 if the
    /// input went straight to the base case).
    std::size_t levels = 0;
    /// True if selection terminated early in an equality bucket
    /// (repeated-element fast path, Sec. IV-C).
    bool equality_exit = false;
    /// Simulated duration of the whole selection [ns].
    double sim_ns = 0.0;
    /// Kernel launches performed.
    std::uint64_t launches = 0;
    /// Peak auxiliary device memory above the input buffer [bytes].
    std::size_t aux_bytes = 0;
    /// Stalled levels retried with a fresh splitter sample
    /// (guaranteed-progress policy, docs/robustness.md).
    std::size_t resamples = 0;
    /// Deterministic median-of-9 tripartition levels executed after the
    /// resampling budget ran out (or under force_fallback).
    std::size_t fallback_levels = 0;
    /// NaN keys moved to the tail of the total order by the staging
    /// pre-pass (float/double only; see core/float_order.hpp).
    std::size_t nan_count = 0;
};

/// Fault-hardened entry points (docs/robustness.md): identical semantics
/// to the throwing variants below, but every failure mode -- bad
/// argument, rank out of range, rejected NaN keys, exhausted fault
/// retries, exhausted progress policy, depth cap -- comes back as a typed
/// Status instead of an exception.  Float/double inputs run the NaN
/// staging pre-pass: NaNs sort above +inf (NanPolicy::propagate_largest)
/// and a rank inside the NaN tail yields quiet NaN without touching the
/// device.
template <typename T>
[[nodiscard]] Result<SelectResult<T>> try_sample_select(simt::Device& dev,
                                                        std::span<const T> input, std::size_t rank,
                                                        const SampleSelectConfig& cfg);

template <typename T>
[[nodiscard]] Result<SelectResult<T>> try_sample_select_device(simt::Device& dev,
                                                               simt::DeviceBuffer<T> data,
                                                               std::size_t rank,
                                                               const SampleSelectConfig& cfg);

/// `stream` overrides the selection's stream (every launch and pooled
/// checkout); the default -1 keeps cfg.stream.  Used by the batch executor
/// to run many staged selections concurrently on leased streams.
template <typename T>
[[nodiscard]] Result<SelectResult<T>> try_sample_select_staged(simt::Device& dev,
                                                               DataHolder<T> data,
                                                               std::size_t rank,
                                                               const SampleSelectConfig& cfg,
                                                               int stream = -1);

/// Selects the element of the given 0-based rank from `input`.
/// The input is copied to a device buffer before timing starts (the paper
/// measures the selection, not the transfer).  Thin wrapper over
/// try_sample_select that rethrows the Status (std::invalid_argument /
/// std::out_of_range for precondition codes, SelectException otherwise).
template <typename T>
[[nodiscard]] SelectResult<T> sample_select(simt::Device& dev, std::span<const T> input,
                                            std::size_t rank, const SampleSelectConfig& cfg);

/// Device-resident variant: consumes `data` (the buffer is recycled as a
/// ping-pong scratch target from level 2 on, so its contents are not
/// preserved).
template <typename T>
[[nodiscard]] SelectResult<T> sample_select_device(simt::Device& dev, simt::DeviceBuffer<T> data,
                                                   std::size_t rank,
                                                   const SampleSelectConfig& cfg);

/// Lowest-level entry: selects from an already-staged pipeline data holder
/// (adopted device buffer or pooled block).  Used by the batched and top-k
/// front-ends to feed pooled buffers into the same descent.
template <typename T>
[[nodiscard]] SelectResult<T> sample_select_staged(simt::Device& dev, DataHolder<T> data,
                                                   std::size_t rank,
                                                   const SampleSelectConfig& cfg,
                                                   int stream = -1);

namespace detail {

/// The sample backend's descent over staged NaN-free data: the recursive
/// level driver without planning, measurement stamping, or NaN handling
/// (the dispatching front-end owns those).  Called through the backend
/// interface (core/backend.hpp); front-ends should not call it directly.
template <typename T>
[[nodiscard]] Result<SelectResult<T>> sample_select_descend(simt::Device& dev, DataHolder<T> data,
                                                            std::size_t rank,
                                                            const SampleSelectConfig& cfg,
                                                            int stream);

extern template Result<SelectResult<float>> sample_select_descend<float>(
    simt::Device&, DataHolder<float>, std::size_t, const SampleSelectConfig&, int);
extern template Result<SelectResult<double>> sample_select_descend<double>(
    simt::Device&, DataHolder<double>, std::size_t, const SampleSelectConfig&, int);
extern template Result<SelectResult<ArgPair>> sample_select_descend<ArgPair>(
    simt::Device&, DataHolder<ArgPair>, std::size_t, const SampleSelectConfig&, int);

}  // namespace detail

extern template Result<SelectResult<float>> try_sample_select<float>(simt::Device&,
                                                                     std::span<const float>,
                                                                     std::size_t,
                                                                     const SampleSelectConfig&);
extern template Result<SelectResult<double>> try_sample_select<double>(simt::Device&,
                                                                       std::span<const double>,
                                                                       std::size_t,
                                                                       const SampleSelectConfig&);
extern template Result<SelectResult<float>> try_sample_select_device<float>(
    simt::Device&, simt::DeviceBuffer<float>, std::size_t, const SampleSelectConfig&);
extern template Result<SelectResult<double>> try_sample_select_device<double>(
    simt::Device&, simt::DeviceBuffer<double>, std::size_t, const SampleSelectConfig&);
extern template Result<SelectResult<float>> try_sample_select_staged<float>(
    simt::Device&, DataHolder<float>, std::size_t, const SampleSelectConfig&, int);
extern template Result<SelectResult<double>> try_sample_select_staged<double>(
    simt::Device&, DataHolder<double>, std::size_t, const SampleSelectConfig&, int);
extern template SelectResult<float> sample_select<float>(simt::Device&, std::span<const float>,
                                                         std::size_t, const SampleSelectConfig&);
extern template SelectResult<double> sample_select<double>(simt::Device&, std::span<const double>,
                                                           std::size_t, const SampleSelectConfig&);
extern template SelectResult<float> sample_select_device<float>(simt::Device&,
                                                                simt::DeviceBuffer<float>,
                                                                std::size_t,
                                                                const SampleSelectConfig&);
extern template SelectResult<double> sample_select_device<double>(simt::Device&,
                                                                  simt::DeviceBuffer<double>,
                                                                  std::size_t,
                                                                  const SampleSelectConfig&);
extern template SelectResult<float> sample_select_staged<float>(simt::Device&, DataHolder<float>,
                                                                std::size_t,
                                                                const SampleSelectConfig&, int);
extern template SelectResult<double> sample_select_staged<double>(simt::Device&,
                                                                  DataHolder<double>, std::size_t,
                                                                  const SampleSelectConfig&, int);
extern template Result<SelectResult<ArgPair>> try_sample_select<ArgPair>(
    simt::Device&, std::span<const ArgPair>, std::size_t, const SampleSelectConfig&);
extern template Result<SelectResult<ArgPair>> try_sample_select_staged<ArgPair>(
    simt::Device&, DataHolder<ArgPair>, std::size_t, const SampleSelectConfig&, int);
extern template SelectResult<ArgPair> sample_select<ArgPair>(simt::Device&,
                                                             std::span<const ArgPair>,
                                                             std::size_t,
                                                             const SampleSelectConfig&);
extern template SelectResult<ArgPair> sample_select_staged<ArgPair>(simt::Device&,
                                                                    DataHolder<ArgPair>,
                                                                    std::size_t,
                                                                    const SampleSelectConfig&,
                                                                    int);

}  // namespace gpusel::core
