#pragma once
// Multi-rank selection (the "multiple sequence selection" extension the
// paper names as future work in Sec. VI): select several order statistics
// k_1 < ... < k_m in one recursion tree.  One bucketing level serves all
// target ranks; the recursion then descends into *every* bucket containing
// at least one target, so the count/filter work over the full input is
// shared between all ranks instead of repeated m times.
//
// After the first partition level the per-bucket subtrees are independent
// sub-problems: they are fanned over a StreamFan of leased streams
// (core/batch_executor.hpp), so their kernel timelines overlap in
// simulated time.  The host still recurses depth-first, so the launch
// sequence (names, grids, origins, counters) is byte-identical to the
// serial path; only the stream tags -- and the overlap -- differ.

#include <cstdint>
#include <span>
#include <vector>

#include "core/config.hpp"
#include "core/status.hpp"
#include "simt/device.hpp"

namespace gpusel::core {

template <typename T>
struct MultiSelectResult {
    /// values[i] is the element of rank ranks[i] (same order as the input
    /// ranks, which need not be sorted).
    std::vector<T> values;
    double sim_ns = 0.0;
    std::uint64_t launches = 0;
    /// Deepest recursion level reached.
    std::size_t max_depth = 0;
    /// Guaranteed-progress accounting (docs/robustness.md).
    std::size_t resamples = 0;
    std::size_t fallback_levels = 0;
    /// NaN keys found by the staging pre-pass; ranks inside the NaN tail
    /// answer quiet NaN.
    std::size_t nan_count = 0;
    /// Streams the first-level bucket subtrees were fanned over (1 =
    /// serial; see core/batch_executor.hpp for the sizing policy).
    int streams_used = 1;
};

/// Fault-hardened multi-rank selection: every failure mode as a typed
/// Status instead of an exception.
template <typename T>
[[nodiscard]] Result<MultiSelectResult<T>> try_multi_select(simt::Device& dev,
                                                            std::span<const T> input,
                                                            std::span<const std::size_t> ranks,
                                                            const SampleSelectConfig& cfg);

/// Selects all requested order statistics of `input`.
template <typename T>
[[nodiscard]] MultiSelectResult<T> multi_select(simt::Device& dev, std::span<const T> input,
                                                std::span<const std::size_t> ranks,
                                                const SampleSelectConfig& cfg);

extern template Result<MultiSelectResult<float>> try_multi_select<float>(
    simt::Device&, std::span<const float>, std::span<const std::size_t>,
    const SampleSelectConfig&);
extern template Result<MultiSelectResult<double>> try_multi_select<double>(
    simt::Device&, std::span<const double>, std::span<const std::size_t>,
    const SampleSelectConfig&);
extern template MultiSelectResult<float> multi_select<float>(simt::Device&,
                                                             std::span<const float>,
                                                             std::span<const std::size_t>,
                                                             const SampleSelectConfig&);
extern template MultiSelectResult<double> multi_select<double>(simt::Device&,
                                                               std::span<const double>,
                                                               std::span<const std::size_t>,
                                                               const SampleSelectConfig&);

}  // namespace gpusel::core
