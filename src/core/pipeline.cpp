#include "core/pipeline.hpp"

#include <stdexcept>

#include "bitonic/bitonic.hpp"
#include "core/count_kernel.hpp"
#include "core/filter_kernel.hpp"
#include "core/reduce_kernel.hpp"
#include "core/sample_kernel.hpp"
#include "simt/timing.hpp"

namespace gpusel::core {

PipelinePlan PipelinePlan::make(const simt::Device& dev, std::size_t n,
                                const SampleSelectConfig& cfg, bool write_oracles) {
    PipelinePlan p;
    p.n = n;
    p.num_buckets = static_cast<std::size_t>(cfg.num_buckets);
    p.grid = simt::suggest_grid(dev.arch(), n, cfg.block_dim, cfg.unroll);
    p.shared_mode = cfg.atomic_space == simt::AtomicSpace::shared;
    p.write_oracles = write_oracles;
    return p;
}

simt::PooledBuffer<std::int32_t> PipelineContext::zeroed_i32(std::size_t n,
                                                             simt::LaunchOrigin origin) const {
    auto buf = scratch<std::int32_t>(n);
    launch_memset32(dev(), buf.span(), origin, cfg().stream);
    return buf;
}

template <typename T>
T LevelOutcome<T>::equality_value(std::int32_t b) const {
    const auto ub = static_cast<std::size_t>(b);
    if (b <= 0 || ub >= tree.equality.size() || tree.equality[ub] == 0) {
        throw std::logic_error(
            "equality_value: bucket has no left splitter or is not an equality bucket");
    }
    return tree.splitters[ub - 1];
}

template <typename T>
LevelOutcome<T> run_bucket_level(const PipelineContext& ctx, std::span<const T> data,
                                 std::size_t rank, simt::LaunchOrigin origin, std::uint64_t salt,
                                 const LevelOptions& opt) {
    simt::Device& dev = ctx.dev();
    const SampleSelectConfig& cfg = ctx.cfg();
    const std::size_t n = data.size();
    const PipelinePlan plan = PipelinePlan::make(dev, n, cfg, opt.write_oracles);

    LevelOutcome<T> lv;
    lv.grid = plan.grid;
    lv.tree = sample_splitters<T>(dev, data, cfg, origin, salt);

    if (opt.write_oracles) lv.oracles = ctx.scratch<std::uint8_t>(n);
    lv.totals = ctx.scratch<std::int32_t>(plan.num_buckets);
    if (plan.shared_mode) {
        lv.block_counts = ctx.scratch<std::int32_t>(plan.block_counts_len());
    } else {
        launch_memset32(dev, lv.totals.span(), origin, cfg.stream);
    }

    const int used_grid = count_kernel<T>(dev, data, lv.tree, lv.oracles.span(),
                                          lv.totals.span(), lv.block_counts.span(), cfg, origin);
    if (used_grid != plan.grid) throw std::logic_error("pipeline: grid sizing mismatch");

    if (plan.shared_mode) {
        reduce_kernel(dev, lv.block_counts.span(), plan.grid, cfg.num_buckets, lv.totals.span(),
                      opt.keep_block_offsets, origin, cfg.block_dim, cfg.stream);
    }

    if (opt.locate) {
        lv.prefix = ctx.scratch<std::int32_t>(plan.num_buckets + 1);
        lv.bucket = select_bucket_kernel(dev, lv.totals.span(), lv.prefix.span(), rank, origin,
                                         cfg.stream);
        const auto ub = static_cast<std::size_t>(lv.bucket);
        lv.equality = lv.tree.equality[ub] != 0;
        lv.bucket_size = static_cast<std::size_t>(lv.totals[ub]);
        lv.rank_offset = static_cast<std::size_t>(lv.prefix[ub]);
        lv.rank_above = n - static_cast<std::size_t>(lv.prefix[ub + 1]);
    }
    return lv;
}

template <typename T>
void filter_bucket(const PipelineContext& ctx, std::span<const T> data, const LevelOutcome<T>& lv,
                   std::int32_t bucket, std::span<T> out, simt::LaunchOrigin origin) {
    simt::Device& dev = ctx.dev();
    const SampleSelectConfig& cfg = ctx.cfg();
    simt::PooledBuffer<std::int32_t> cursor;
    if (!ctx.shared_mode()) cursor = ctx.zeroed_i32(1, origin);
    filter_kernel<T>(dev, data, lv.oracles.span(), bucket, out, lv.block_counts.span(),
                     cfg.num_buckets, cursor.span(), cfg, origin, lv.grid);
}

template <typename T>
void filter_topk(const PipelineContext& ctx, std::span<const T> data, const LevelOutcome<T>& lv,
                 std::span<T> out, std::span<T> acc, std::int32_t acc_fill,
                 simt::LaunchOrigin origin) {
    simt::Device& dev = ctx.dev();
    const SampleSelectConfig& cfg = ctx.cfg();
    auto cursors = ctx.scratch<std::int32_t>(2);
    // Cursor seeding is fused into the controller step in a real
    // implementation; the two scalar writes are not charged.
    cursors[0] = 0;
    cursors[1] = acc_fill;
    filter_fused_topk_kernel<T>(dev, data, lv.oracles.span(), lv.bucket, out, acc,
                                lv.block_counts.span(), cfg.num_buckets, cursors.span(), cfg,
                                origin, lv.grid);
}

template <typename T>
void launch_copy(simt::Device& dev, std::span<const T> src, std::size_t src_base,
                 std::span<T> dst, std::size_t dst_base, std::size_t count,
                 simt::LaunchOrigin origin, int block_dim, int stream) {
    if (count == 0) return;
    const int grid = simt::suggest_grid(dev.arch(), count, block_dim);
    dev.launch("copy",
               {.grid_dim = grid, .block_dim = block_dim, .origin = origin, .stream = stream},
               [=](simt::BlockCtx& blk) {
                   blk.warp_tiles(count, [&](simt::WarpCtx& w, std::size_t base, std::size_t) {
                       T regs[simt::kWarpSize];
                       w.load(src, src_base + base, regs);
                       w.store(dst, dst_base + base, regs);
                   });
               });
}

template <typename T>
void sort_base_case(const PipelineContext& ctx, std::span<T> data, simt::LaunchOrigin origin) {
    bitonic::sort_on_device<T>(ctx.dev(), data, data.size(), origin, ctx.cfg().block_dim,
                               ctx.cfg().stream);
}

template struct LevelOutcome<float>;
template struct LevelOutcome<double>;
template LevelOutcome<float> run_bucket_level<float>(const PipelineContext&,
                                                     std::span<const float>, std::size_t,
                                                     simt::LaunchOrigin, std::uint64_t,
                                                     const LevelOptions&);
template LevelOutcome<double> run_bucket_level<double>(const PipelineContext&,
                                                       std::span<const double>, std::size_t,
                                                       simt::LaunchOrigin, std::uint64_t,
                                                       const LevelOptions&);
template void filter_bucket<float>(const PipelineContext&, std::span<const float>,
                                   const LevelOutcome<float>&, std::int32_t, std::span<float>,
                                   simt::LaunchOrigin);
template void filter_bucket<double>(const PipelineContext&, std::span<const double>,
                                    const LevelOutcome<double>&, std::int32_t, std::span<double>,
                                    simt::LaunchOrigin);
template void filter_topk<float>(const PipelineContext&, std::span<const float>,
                                 const LevelOutcome<float>&, std::span<float>, std::span<float>,
                                 std::int32_t, simt::LaunchOrigin);
template void filter_topk<double>(const PipelineContext&, std::span<const double>,
                                  const LevelOutcome<double>&, std::span<double>,
                                  std::span<double>, std::int32_t, simt::LaunchOrigin);
template void launch_copy<float>(simt::Device&, std::span<const float>, std::size_t,
                                 std::span<float>, std::size_t, std::size_t, simt::LaunchOrigin,
                                 int, int);
template void launch_copy<double>(simt::Device&, std::span<const double>, std::size_t,
                                  std::span<double>, std::size_t, std::size_t, simt::LaunchOrigin,
                                  int, int);
template void sort_base_case<float>(const PipelineContext&, std::span<float>, simt::LaunchOrigin);
template void sort_base_case<double>(const PipelineContext&, std::span<double>,
                                     simt::LaunchOrigin);

}  // namespace gpusel::core
