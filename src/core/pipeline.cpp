#include "core/pipeline.hpp"

#include <algorithm>
#include <stdexcept>

#include "bitonic/bitonic.hpp"
#include "core/count_kernel.hpp"
#include "core/float_order.hpp"
#include "core/filter_kernel.hpp"
#include "core/reduce_kernel.hpp"
#include "core/sample_kernel.hpp"
#include "simt/timing.hpp"

namespace gpusel::core {

PipelinePlan PipelinePlan::make(const simt::Device& dev, std::size_t n,
                                const SampleSelectConfig& cfg, bool write_oracles) {
    PipelinePlan p;
    p.n = n;
    p.num_buckets = static_cast<std::size_t>(cfg.num_buckets);
    p.grid = simt::suggest_grid(dev.arch(), n, cfg.block_dim, cfg.unroll);
    p.shared_mode = cfg.atomic_space == simt::AtomicSpace::shared;
    p.write_oracles = write_oracles;
    return p;
}

simt::PooledBuffer<std::int32_t> PipelineContext::zeroed_i32(std::size_t n,
                                                             simt::LaunchOrigin origin) const {
    auto buf = scratch<std::int32_t>(n);
    launch_memset32(dev(), buf.span(), origin, stream());
    return buf;
}

template <typename T>
T LevelOutcome<T>::equality_value(std::int32_t b) const {
    const auto ub = static_cast<std::size_t>(b);
    if (b <= 0 || ub >= tree.equality.size() || tree.equality[ub] == 0) {
        throw std::logic_error(
            "equality_value: bucket has no left splitter or is not an equality bucket");
    }
    return tree.splitters[ub - 1];
}

namespace {

/// The count -> (reduce) -> select-bucket tail of a level, shared by the
/// sampled level (b = cfg.num_buckets splitters) and the deterministic
/// fallback level (a 4-bucket tripartition tree).  Buffer lengths follow
/// the *tree's* bucket count -- identical to cfg.num_buckets on the
/// sampled path, so its event stream and pool traffic are unchanged.
template <typename T>
LevelOutcome<T> finish_level(const PipelineContext& ctx, std::span<const T> data,
                             std::size_t rank, simt::LaunchOrigin origin, SearchTree<T> tree,
                             const LevelOptions& opt) {
    simt::Device& dev = ctx.dev();
    const SampleSelectConfig& cfg = ctx.cfg();
    const std::size_t n = data.size();
    const auto num_buckets = static_cast<std::size_t>(tree.num_buckets);
    const bool shared_mode = ctx.shared_mode();
    const int grid = simt::suggest_grid(dev.arch(), n, cfg.block_dim, cfg.unroll);

    LevelOutcome<T> lv;
    lv.grid = grid;
    lv.tree = std::move(tree);

    if (opt.write_oracles) lv.oracles = ctx.scratch<std::uint8_t>(n);
    lv.totals = ctx.scratch<std::int32_t>(num_buckets);
    if (shared_mode) {
        lv.block_counts = ctx.scratch<std::int32_t>(static_cast<std::size_t>(grid) * num_buckets);
    } else {
        launch_memset32(dev, lv.totals.span(), origin, ctx.stream());
    }

    const int used_grid = count_kernel<T>(dev, data, lv.tree, lv.oracles.span(),
                                          lv.totals.span(), lv.block_counts.span(), cfg, origin,
                                          ctx.stream());
    if (used_grid != grid) throw std::logic_error("pipeline: grid sizing mismatch");

    if (shared_mode) {
        reduce_kernel(dev, lv.block_counts.span(), grid, static_cast<int>(num_buckets),
                      lv.totals.span(), opt.keep_block_offsets, origin, cfg.block_dim,
                      ctx.stream());
    }

    if (opt.locate) {
        lv.prefix = ctx.scratch<std::int32_t>(num_buckets + 1);
        lv.bucket = select_bucket_kernel(dev, lv.totals.span(), lv.prefix.span(), rank, origin,
                                         ctx.stream());
        const auto ub = static_cast<std::size_t>(lv.bucket);
        lv.equality = lv.tree.equality[ub] != 0;
        lv.bucket_size = static_cast<std::size_t>(lv.totals[ub]);
        lv.rank_offset = static_cast<std::size_t>(lv.prefix[ub]);
        lv.rank_above = n - static_cast<std::size_t>(lv.prefix[ub + 1]);
    }
    return lv;
}

/// Deterministic pivot for the guaranteed-progress fallback: the median of
/// 9 elements at fixed strided positions, fetched by a tiny single-block
/// kernel (charged like the sampler's gather, Sec. IV-D pivot selection).
/// No randomness: the same buffer always yields the same pivot.
template <typename T>
T deterministic_pivot(simt::Device& dev, std::span<const T> data, const SampleSelectConfig& cfg,
                      simt::LaunchOrigin origin, int stream) {
    const std::size_t n = data.size();
    constexpr std::size_t kProbes = 9;
    T pivot{};
    dev.launch("pivot_sample",
               {.grid_dim = 1, .block_dim = cfg.block_dim, .origin = origin, .unroll = 1,
                .stream = stream},
               [&, n](simt::BlockCtx& blk) {
                   T probes[kProbes];
                   for (std::size_t i = 0; i < kProbes; ++i) {
                       // Odd-numerator strides cover the whole range without
                       // touching the (possibly adversarial) extremes.
                       probes[i] = blk.ld(data, (2 * i + 1) * n / (2 * kProbes));
                   }
                   // Total order: identical to `<` on the NaN-free data the
                   // front-ends stage, but safe if a host caller skips the
                   // NaN pre-pass.
                   std::sort(std::begin(probes), std::end(probes),
                             [](T a, T b) { return total_less(a, b); });
                   pivot = probes[kProbes / 2];
                   // 9 scattered reads, a fixed sorting network, one publish.
                   blk.counters().scattered_bytes_read += kProbes * sizeof(T);
                   blk.charge_instr(kProbes * kProbes);
                   blk.charge_global_write(sizeof(T));
               });
    return pivot;
}

}  // namespace

template <typename T>
LevelOutcome<T> run_bucket_level(const PipelineContext& ctx, std::span<const T> data,
                                 std::size_t rank, simt::LaunchOrigin origin, std::uint64_t salt,
                                 const LevelOptions& opt) {
    auto tree = sample_splitters<T>(ctx.dev(), data, ctx.cfg(), origin, salt, ctx.stream());
    return finish_level<T>(ctx, data, rank, origin, std::move(tree), opt);
}

template <typename T>
LevelOutcome<T> run_pivot_level(const PipelineContext& ctx, std::span<const T> data,
                                std::size_t rank, simt::LaunchOrigin origin,
                                const LevelOptions& opt) {
    const T p = deterministic_pivot<T>(ctx.dev(), data, ctx.cfg(), origin, ctx.stream());
    // Three equal splitters -> 4 buckets: {< p} split in two, the equality
    // bucket {== p} (non-empty: the pivot came from the data), and {> p}.
    auto tree = SearchTree<T>::build({p, p, p});
    return finish_level<T>(ctx, data, rank, origin, std::move(tree), opt);
}

namespace {

/// Shared retry loop of the try_ level executors.  `attempt_salt(a)` gives
/// the sample salt for attempt `a` (0-based); attempt 0 must be the
/// caller's salt so fault-free runs are byte-identical.
template <typename T, typename RunFn>
Result<LevelOutcome<T>> retry_level(const PipelineContext& ctx, RunFn&& run) {
    for (int attempt = 0;; ++attempt) {
        try {
            return run(attempt);
        } catch (const simt::SanError& e) {
            // SimTSan violations are kernel bugs: a rerun would trip the
            // same contract again, so surface the typed error immediately.
            return Status::failure(SelectError::sanitizer_violation, e.what());
        } catch (const simt::AllocFault& e) {
            if (attempt + 1 >= kFaultRetryAttempts) {
                return Status::failure(SelectError::allocation_failed, e.what());
            }
            ctx.dev().pool().trim();
            ++ctx.dev().robustness().alloc_retries;
        } catch (const simt::LaunchFault& e) {
            if (attempt + 1 >= kFaultRetryAttempts) {
                return Status::failure(SelectError::launch_failed, e.what());
            }
            ++ctx.dev().robustness().launch_retries;
        }
    }
}

}  // namespace

template <typename T>
Result<LevelOutcome<T>> try_run_bucket_level(const PipelineContext& ctx, std::span<const T> data,
                                             std::size_t rank, simt::LaunchOrigin origin,
                                             std::uint64_t salt, const LevelOptions& opt) {
    return retry_level<T>(ctx, [&](int attempt) {
        // Retries re-sample with a fresh salt: if the fault hit mid-level
        // the partial work is discarded and the level reruns end to end.
        const std::uint64_t attempt_salt =
            salt + static_cast<std::uint64_t>(attempt) * std::uint64_t{0x9e3779b9};
        return run_bucket_level<T>(ctx, data, rank, origin, attempt_salt, opt);
    });
}

template <typename T>
Result<LevelOutcome<T>> try_run_pivot_level(const PipelineContext& ctx, std::span<const T> data,
                                            std::size_t rank, simt::LaunchOrigin origin,
                                            const LevelOptions& opt) {
    return retry_level<T>(
        ctx, [&](int) { return run_pivot_level<T>(ctx, data, rank, origin, opt); });
}

template <typename T>
void filter_bucket(const PipelineContext& ctx, std::span<const T> data, const LevelOutcome<T>& lv,
                   std::int32_t bucket, std::span<T> out, simt::LaunchOrigin origin) {
    simt::Device& dev = ctx.dev();
    const SampleSelectConfig& cfg = ctx.cfg();
    simt::PooledBuffer<std::int32_t> cursor;
    if (!ctx.shared_mode()) cursor = ctx.zeroed_i32(1, origin);
    // Bucket count comes from the level's own tree: cfg.num_buckets for a
    // sampled level, 4 for the deterministic fallback tripartition.
    filter_kernel<T>(dev, data, lv.oracles.span(), bucket, out, lv.block_counts.span(),
                     lv.tree.num_buckets, cursor.span(), cfg, origin, lv.grid, ctx.stream());
}

template <typename T>
void filter_topk(const PipelineContext& ctx, std::span<const T> data, const LevelOutcome<T>& lv,
                 std::span<T> out, std::span<T> acc, std::int32_t acc_fill,
                 simt::LaunchOrigin origin) {
    simt::Device& dev = ctx.dev();
    const SampleSelectConfig& cfg = ctx.cfg();
    auto cursors = ctx.scratch<std::int32_t>(2);
    // Cursor seeding is fused into the controller step in a real
    // implementation; the two scalar writes are not charged.
    cursors[0] = 0;
    cursors[1] = acc_fill;
    filter_fused_topk_kernel<T>(dev, data, lv.oracles.span(), lv.bucket, out, acc,
                                lv.block_counts.span(), lv.tree.num_buckets, cursors.span(), cfg,
                                origin, lv.grid, ctx.stream());
}

template <typename T>
void launch_copy(simt::Device& dev, std::span<const T> src, std::size_t src_base,
                 std::span<T> dst, std::size_t dst_base, std::size_t count,
                 simt::LaunchOrigin origin, int block_dim, int stream) {
    if (count == 0) return;
    const int grid = simt::suggest_grid(dev.arch(), count, block_dim);
    dev.launch("copy",
               {.grid_dim = grid, .block_dim = block_dim, .origin = origin, .stream = stream},
               [=](simt::BlockCtx& blk) {
                   blk.warp_tiles(count, [&](simt::WarpCtx& w, std::size_t base, std::size_t) {
                       T regs[simt::kWarpSize];
                       w.load(src, src_base + base, regs);
                       w.store(dst, dst_base + base, regs);
                   });
               });
}

template <typename T>
void sort_base_case(const PipelineContext& ctx, std::span<T> data, simt::LaunchOrigin origin) {
    bitonic::sort_on_device<T>(ctx.dev(), data, data.size(), origin, ctx.cfg().block_dim,
                               ctx.stream());
}

template struct LevelOutcome<float>;
template struct LevelOutcome<double>;
template LevelOutcome<float> run_bucket_level<float>(const PipelineContext&,
                                                     std::span<const float>, std::size_t,
                                                     simt::LaunchOrigin, std::uint64_t,
                                                     const LevelOptions&);
template LevelOutcome<double> run_bucket_level<double>(const PipelineContext&,
                                                       std::span<const double>, std::size_t,
                                                       simt::LaunchOrigin, std::uint64_t,
                                                       const LevelOptions&);
template LevelOutcome<float> run_pivot_level<float>(const PipelineContext&,
                                                    std::span<const float>, std::size_t,
                                                    simt::LaunchOrigin, const LevelOptions&);
template LevelOutcome<double> run_pivot_level<double>(const PipelineContext&,
                                                      std::span<const double>, std::size_t,
                                                      simt::LaunchOrigin, const LevelOptions&);
template Result<LevelOutcome<float>> try_run_bucket_level<float>(const PipelineContext&,
                                                                 std::span<const float>,
                                                                 std::size_t, simt::LaunchOrigin,
                                                                 std::uint64_t,
                                                                 const LevelOptions&);
template Result<LevelOutcome<double>> try_run_bucket_level<double>(const PipelineContext&,
                                                                   std::span<const double>,
                                                                   std::size_t, simt::LaunchOrigin,
                                                                   std::uint64_t,
                                                                   const LevelOptions&);
template Result<LevelOutcome<float>> try_run_pivot_level<float>(const PipelineContext&,
                                                                std::span<const float>,
                                                                std::size_t, simt::LaunchOrigin,
                                                                const LevelOptions&);
template Result<LevelOutcome<double>> try_run_pivot_level<double>(const PipelineContext&,
                                                                  std::span<const double>,
                                                                  std::size_t, simt::LaunchOrigin,
                                                                  const LevelOptions&);
template void filter_bucket<float>(const PipelineContext&, std::span<const float>,
                                   const LevelOutcome<float>&, std::int32_t, std::span<float>,
                                   simt::LaunchOrigin);
template void filter_bucket<double>(const PipelineContext&, std::span<const double>,
                                    const LevelOutcome<double>&, std::int32_t, std::span<double>,
                                    simt::LaunchOrigin);
template void filter_topk<float>(const PipelineContext&, std::span<const float>,
                                 const LevelOutcome<float>&, std::span<float>, std::span<float>,
                                 std::int32_t, simt::LaunchOrigin);
template void filter_topk<double>(const PipelineContext&, std::span<const double>,
                                  const LevelOutcome<double>&, std::span<double>,
                                  std::span<double>, std::int32_t, simt::LaunchOrigin);
template void launch_copy<float>(simt::Device&, std::span<const float>, std::size_t,
                                 std::span<float>, std::size_t, std::size_t, simt::LaunchOrigin,
                                 int, int);
template void launch_copy<double>(simt::Device&, std::span<const double>, std::size_t,
                                  std::span<double>, std::size_t, std::size_t, simt::LaunchOrigin,
                                  int, int);
template void sort_base_case<float>(const PipelineContext&, std::span<float>, simt::LaunchOrigin);
template void sort_base_case<double>(const PipelineContext&, std::span<double>,
                                     simt::LaunchOrigin);
template struct LevelOutcome<ArgPair>;
template LevelOutcome<ArgPair> run_bucket_level<ArgPair>(const PipelineContext&,
                                                         std::span<const ArgPair>, std::size_t,
                                                         simt::LaunchOrigin, std::uint64_t,
                                                         const LevelOptions&);
template LevelOutcome<ArgPair> run_pivot_level<ArgPair>(const PipelineContext&,
                                                        std::span<const ArgPair>, std::size_t,
                                                        simt::LaunchOrigin, const LevelOptions&);
template Result<LevelOutcome<ArgPair>> try_run_bucket_level<ArgPair>(const PipelineContext&,
                                                                     std::span<const ArgPair>,
                                                                     std::size_t,
                                                                     simt::LaunchOrigin,
                                                                     std::uint64_t,
                                                                     const LevelOptions&);
template Result<LevelOutcome<ArgPair>> try_run_pivot_level<ArgPair>(const PipelineContext&,
                                                                    std::span<const ArgPair>,
                                                                    std::size_t,
                                                                    simt::LaunchOrigin,
                                                                    const LevelOptions&);
template void filter_bucket<ArgPair>(const PipelineContext&, std::span<const ArgPair>,
                                     const LevelOutcome<ArgPair>&, std::int32_t,
                                     std::span<ArgPair>, simt::LaunchOrigin);
template void filter_topk<ArgPair>(const PipelineContext&, std::span<const ArgPair>,
                                   const LevelOutcome<ArgPair>&, std::span<ArgPair>,
                                   std::span<ArgPair>, std::int32_t, simt::LaunchOrigin);
template void launch_copy<ArgPair>(simt::Device&, std::span<const ArgPair>, std::size_t,
                                   std::span<ArgPair>, std::size_t, std::size_t,
                                   simt::LaunchOrigin, int, int);
template void sort_base_case<ArgPair>(const PipelineContext&, std::span<ArgPair>,
                                      simt::LaunchOrigin);

}  // namespace gpusel::core
