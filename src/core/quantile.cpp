#include "core/quantile.hpp"

#include <cmath>
#include <stdexcept>

namespace gpusel::core {

Result<std::size_t> try_quantile_rank(std::size_t n, double q, QuantileMethod method) {
    if (n == 0) {
        return Status::failure(SelectError::empty_input, "quantile of an empty dataset");
    }
    // The negated comparison also rejects NaN quantile positions.
    if (!(q >= 0.0 && q <= 1.0)) {
        return Status::failure(SelectError::invalid_argument, "quantile must be in [0, 1]");
    }
    const double pos = q * static_cast<double>(n - 1);
    double r = 0.0;
    switch (method) {
        case QuantileMethod::lower: r = std::floor(pos); break;
        case QuantileMethod::nearest: r = std::round(pos); break;
        case QuantileMethod::higher: r = std::ceil(pos); break;
    }
    return static_cast<std::size_t>(r);
}

std::size_t quantile_rank(std::size_t n, double q, QuantileMethod method) {
    return try_quantile_rank(n, q, method).take_or_throw();
}

}  // namespace gpusel::core
