#include "core/radix_kernel.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "simt/timing.hpp"

namespace gpusel::core {

template <typename T>
int radix_count_fused(simt::Device& dev, std::span<const T> data, int shift0, int levels,
                      std::span<std::int32_t> totals, std::span<std::int32_t> block_counts,
                      const RadixLaunchParams& p, simt::LaunchOrigin origin) {
    using key_type = typename RadixTraits<T>::key_type;
    const std::size_t n = data.size();
    const bool shared_mode = p.atomic_space == simt::AtomicSpace::shared;
    const int grid = simt::suggest_grid(dev.arch(), n, p.block_dim, p.unroll);
    dev.launch(
        "radix_count",
        {.grid_dim = grid, .block_dim = p.block_dim, .origin = origin, .unroll = p.unroll,
         .stream = p.stream},
        [&, n, shift0, levels, grid, shared_mode](simt::BlockCtx& blk) {
            const auto nbins = static_cast<std::size_t>(levels) * kRadixBins;
            std::span<std::int32_t> counters;
            std::span<std::int32_t> sh;
            if (shared_mode) {
                sh = blk.shared_array<std::int32_t>(nbins);
                std::fill(sh.begin(), sh.end(), 0);
                blk.charge_shared(nbins * sizeof(std::int32_t));
                blk.sync();
                counters = sh;
            } else {
                counters = totals;
            }
            const auto space = shared_mode ? simt::AtomicSpace::shared : simt::AtomicSpace::global;
            blk.warp_tiles(n, [&](simt::WarpCtx& w, std::size_t base, std::size_t) {
                T elems[simt::kWarpSize];
                key_type keys[simt::kWarpSize];
                std::int32_t digit[simt::kWarpSize];
                w.load(data, base, elems);
                for (int l = 0; l < w.lanes(); ++l) keys[l] = RadixTraits<T>::key(elems[l]);
                for (int lv = 0; lv < levels; ++lv) {
                    const int shift = shift0 - lv * kRadixDigitBits;
                    for (int l = 0; l < w.lanes(); ++l) {
                        digit[l] = static_cast<std::int32_t>((keys[l] >> shift) &
                                                             (kRadixBins - 1));
                    }
                    // Key extraction amortizes over the fused levels; the
                    // per-level cost (shift+mask, histogram index) matches
                    // the classic one-digit pass, so level 1 of a fused
                    // launch charges exactly what the baseline kernel did.
                    w.add_instr(2 * static_cast<std::uint64_t>(w.lanes()));
                    auto ctr = counters.subspan(static_cast<std::size_t>(lv) * kRadixBins,
                                                kRadixBins);
                    if (p.warp_aggregation) {
                        w.atomic_add_aggregated(space, ctr, digit, kRadixDigitBits);
                    } else {
                        w.atomic_add(space, ctr, digit);
                    }
                }
            });
            if (shared_mode) {
                blk.sync();
                // [level][block][bin]: each level's slice is a contiguous
                // grid x kRadixBins matrix, fed to reduce_kernel unchanged.
                for (int lv = 0; lv < levels; ++lv) {
                    const auto out_base =
                        (static_cast<std::size_t>(lv) * static_cast<std::size_t>(grid) +
                         static_cast<std::size_t>(blk.block_idx())) *
                        kRadixBins;
                    const auto sh_base = static_cast<std::size_t>(lv) * kRadixBins;
                    for (std::size_t i = 0; i < kRadixBins; ++i) {
                        blk.st(block_counts, out_base + i, blk.shared_ld(sh, sh_base + i));
                    }
                }
                blk.charge_shared(nbins * sizeof(std::int32_t));
                blk.charge_global_write(nbins * sizeof(std::int32_t));
            }
        });
    return grid;
}

template <typename T>
void radix_filter(simt::Device& dev, std::span<const T> data, int shift, std::int32_t digit,
                  std::span<T> out, std::span<const std::int32_t> block_offsets,
                  std::span<std::int32_t> cursor, const RadixLaunchParams& p,
                  simt::LaunchOrigin origin, int grid_dim) {
    const std::size_t n = data.size();
    const bool shared_mode = p.atomic_space == simt::AtomicSpace::shared;
    dev.launch(
        "radix_filter",
        {.grid_dim = grid_dim, .block_dim = p.block_dim, .origin = origin, .unroll = p.unroll,
         .stream = p.stream},
        [&, n, shift, digit, shared_mode](simt::BlockCtx& blk) {
            std::int32_t sh_cursor = 0;
            std::span<std::int32_t> ctr;
            simt::AtomicSpace space;
            if (shared_mode) {
                const auto idx = static_cast<std::size_t>(blk.block_idx()) * kRadixBins +
                                 static_cast<std::size_t>(digit);
                sh_cursor = blk.ld(block_offsets, idx);
                blk.charge_global_read(sizeof(std::int32_t));
                ctr = std::span<std::int32_t>(&sh_cursor, 1);
                space = simt::AtomicSpace::shared;
            } else {
                ctr = cursor.subspan(0, 1);
                space = simt::AtomicSpace::global;
            }
            blk.warp_tiles(n, [&](simt::WarpCtx& w, std::size_t base, std::size_t) {
                T elems[simt::kWarpSize];
                bool pred[simt::kWarpSize];
                const std::int32_t zeros[simt::kWarpSize] = {};
                std::int32_t off[simt::kWarpSize];
                w.load(data, base, elems);
                std::uint32_t mask = 0;
                for (int l = 0; l < w.lanes(); ++l) {
                    pred[l] = radix_digit_of(elems[l], shift) == digit;
                    if (pred[l]) mask |= 1u << l;
                }
                w.add_instr(2 * static_cast<std::uint64_t>(w.lanes()));
                // Compaction offsets are always ballot-aggregated, so each
                // warp's matches land on consecutive slots: one masked
                // compress-store tile instead of a per-lane scatter loop.
                w.fetch_add(space, ctr, zeros, off, /*aggregated=*/true, 1, pred);
                if (mask != 0) {
                    w.compress_store(out, static_cast<std::size_t>(off[std::countr_zero(mask)]),
                                     mask, elems);
                }
            });
        });
}

RadixWalkResult radix_walk(simt::Device& dev, std::span<const std::int32_t> totals,
                           std::span<std::int32_t> prefix, int levels, std::size_t n,
                           std::size_t rank, simt::LaunchOrigin origin, int stream) {
    if (totals.size() < static_cast<std::size_t>(levels) * kRadixBins) {
        throw std::invalid_argument("totals too small for the fused levels");
    }
    if (prefix.size() != kRadixBins + 1) throw std::invalid_argument("prefix size mismatch");
    RadixWalkResult res;
    dev.launch("radix_walk",
               {.grid_dim = 1, .block_dim = 32, .origin = origin, .stream = stream},
               [&, levels, n, rank](simt::BlockCtx& blk) {
                   std::size_t r = rank;
                   for (int lv = 0; lv < levels; ++lv) {
                       const auto base = static_cast<std::size_t>(lv) * kRadixBins;
                       std::int32_t running = 0;
                       std::size_t digit = 0;
                       for (std::size_t i = 0; i < kRadixBins; ++i) {
                           blk.st(prefix, i, running);
                           if (static_cast<std::size_t>(running) <= r) digit = i;
                           running += blk.ld(totals, base + i);
                       }
                       blk.st(prefix, kRadixBins, running);
                       blk.charge_global_read(kRadixBins * sizeof(std::int32_t));
                       blk.charge_global_write((kRadixBins + 1) * sizeof(std::int32_t));
                       blk.charge_instr(2 * kRadixBins);
                       const auto size =
                           static_cast<std::size_t>(blk.ld(totals, base + digit));
                       const auto below = static_cast<std::size_t>(blk.ld(prefix, digit));
                       r -= below;
                       res.digits[res.consumed] = static_cast<std::int32_t>(digit);
                       ++res.consumed;
                       res.bucket_size = size;
                       res.cnt_upper =
                           n - static_cast<std::size_t>(blk.ld(prefix, digit + 1));
                       if (size < n) break;
                   }
                   res.rank = r;
               });
    return res;
}

template <typename T>
void radix_filter_topk(simt::Device& dev, std::span<const T> data, int shift, std::int32_t digit,
                       std::span<T> out, std::span<T> acc, std::int32_t acc_fill,
                       std::span<const std::int32_t> block_offsets,
                       std::span<std::int32_t> cursors, const RadixLaunchParams& p,
                       simt::LaunchOrigin origin, int grid_dim) {
    const std::size_t n = data.size();
    const bool shared_mode = p.atomic_space == simt::AtomicSpace::shared;
    dev.launch(
        "radix_filter_topk",
        {.grid_dim = grid_dim, .block_dim = p.block_dim, .origin = origin, .unroll = p.unroll,
         .stream = p.stream},
        [&, n, shift, digit, acc_fill, shared_mode](simt::BlockCtx& blk) {
            std::int32_t sh_cursor = 0;
            std::span<std::int32_t> tctr;
            simt::AtomicSpace tspace;
            if (shared_mode) {
                const auto idx = static_cast<std::size_t>(blk.block_idx()) * kRadixBins +
                                 static_cast<std::size_t>(digit);
                sh_cursor = blk.ld(block_offsets, idx);
                blk.charge_global_read(sizeof(std::int32_t));
                tctr = std::span<std::int32_t>(&sh_cursor, 1);
                tspace = simt::AtomicSpace::shared;
            } else {
                tctr = cursors.subspan(0, 1);
                tspace = simt::AtomicSpace::global;
            }
            // Upper-digit elements have no per-block offsets (the reduce
            // only prefix-sums the target bucket's bins), so the
            // accumulator cursor is global in both modes.
            auto uctr = cursors.subspan(1, 1);
            blk.warp_tiles(n, [&](simt::WarpCtx& w, std::size_t base, std::size_t) {
                T elems[simt::kWarpSize];
                bool eq[simt::kWarpSize];
                bool gt[simt::kWarpSize];
                const std::int32_t zeros[simt::kWarpSize] = {};
                std::int32_t off[simt::kWarpSize];
                w.load(data, base, elems);
                std::uint32_t eq_mask = 0;
                std::uint32_t gt_mask = 0;
                for (int l = 0; l < w.lanes(); ++l) {
                    const std::int32_t d = radix_digit_of(elems[l], shift);
                    eq[l] = d == digit;
                    gt[l] = d > digit;
                    if (eq[l]) eq_mask |= 1u << l;
                    if (gt[l]) gt_mask |= 1u << l;
                }
                w.add_instr(3 * static_cast<std::uint64_t>(w.lanes()));
                w.fetch_add(tspace, tctr, zeros, off, /*aggregated=*/true, 1, eq);
                if (eq_mask != 0) {
                    w.compress_store(out,
                                     static_cast<std::size_t>(off[std::countr_zero(eq_mask)]),
                                     eq_mask, elems);
                }
                w.fetch_add(simt::AtomicSpace::global, uctr, zeros, off, /*aggregated=*/true, 1,
                            gt);
                if (gt_mask != 0) {
                    const auto slot = static_cast<std::size_t>(acc_fill) +
                                      static_cast<std::size_t>(off[std::countr_zero(gt_mask)]);
                    w.compress_store(acc, slot, gt_mask, elems);
                }
            });
        });
}

#define GPUSEL_RADIX_KERNEL_INST(T)                                                             \
    template int radix_count_fused<T>(simt::Device&, std::span<const T>, int, int,              \
                                      std::span<std::int32_t>, std::span<std::int32_t>,         \
                                      const RadixLaunchParams&, simt::LaunchOrigin);            \
    template void radix_filter<T>(simt::Device&, std::span<const T>, int, std::int32_t,         \
                                  std::span<T>, std::span<const std::int32_t>,                  \
                                  std::span<std::int32_t>, const RadixLaunchParams&,            \
                                  simt::LaunchOrigin, int);                                     \
    template void radix_filter_topk<T>(simt::Device&, std::span<const T>, int, std::int32_t,    \
                                       std::span<T>, std::span<T>, std::int32_t,                \
                                       std::span<const std::int32_t>, std::span<std::int32_t>,  \
                                       const RadixLaunchParams&, simt::LaunchOrigin, int);

GPUSEL_RADIX_KERNEL_INST(float)
GPUSEL_RADIX_KERNEL_INST(double)
GPUSEL_RADIX_KERNEL_INST(ArgPair)
#undef GPUSEL_RADIX_KERNEL_INST

}  // namespace gpusel::core
