#pragma once
// The adaptive backend planner (docs/planner.md): chooses which selection
// backend (core/backend.hpp) runs a given problem, from the problem shape
// (n, k, element width), a cheap host-side distribution probe, the
// GPUSEL_BACKEND environment override, and the device's RobustnessCounters
// feedback (a sampler that just thrashed -- resamples/fallbacks grew since
// the previous decision -- is evidence the distribution defeats sampling).
//
// Planning is pure host-side bookkeeping: the probe reads a handful of
// staged elements (host reads are untimed in this simulator, like every
// host-side driver decision), no kernel is launched, and when the planner
// picks the sample backend the subsequent launch sequence is byte-identical
// to the pre-planner code -- golden event streams are unchanged.
//
// Every decision is recorded as a simt::PlannerEvent on the device (the
// chrome-trace export renders them as instant events) and tallied into
// RobustnessCounters::backend_* so bench JSON shows which algorithm
// actually ran.

#include <cstdint>
#include <optional>
#include <span>

#include "core/backend.hpp"
#include "simt/device.hpp"

namespace gpusel::core {

/// Elements the distribution probe reads (evenly strided over the staged
/// buffer; host-side, untimed).
inline constexpr std::size_t kPlannerProbeSize = 64;
/// Probes whose dominant key reaches this share classify the input as
/// duplicate-heavy -> radix (its skip-filter descent resolves shared
/// digit prefixes without re-reading the data).
inline constexpr double kPlannerDominantFrac = 0.25;

/// What the planner learned from probing the staged data.
struct DistributionHints {
    /// Share of the probe held by its most frequent key, in [0, 1].
    double dominant_frac = 0.0;
    /// Distinct keys among the probed elements.
    std::size_t probe_distinct = 0;
    /// Elements actually probed (min(n, kPlannerProbeSize)).
    std::size_t probe_size = 0;
};

/// Probes `data` with kPlannerProbeSize evenly strided host reads.
/// For key/payload pairs the key alone is probed -- payloads are unique
/// indices, so including them would hide every duplicate.
template <typename T>
[[nodiscard]] DistributionHints probe_distribution(std::span<const T> data);

/// The problem shape a decision is made for.
struct PlanQuery {
    std::size_t n = 0;          ///< staged, NaN-free element count
    std::size_t k = 0;          ///< rank (selection) or k (top-k)
    bool topk = false;          ///< top-k accumulation vs single-rank
    bool multi = false;         ///< multi-rank bucket tree (sample only)
    std::size_t elem_size = 0;  ///< sizeof(T)
    std::size_t base_case_size = 0;
    /// resamples+fallbacks growth since the previous planned decision on
    /// this device (sampler-thrash feedback; 0 = healthy).  plan_selection
    /// zeroes the delta when the previous decision was for a problem of a
    /// dissimilar shape (different element width, or n outside 4x either
    /// way), so one workload's thrash never biases an unrelated one.
    std::uint64_t thrash_delta = 0;
    /// Quarantine bitmask (backend_bit per BackendKind): backends a
    /// supervisor's circuit breaker has taken out of rotation.  plan()
    /// treats them as infeasible and routes to the healthiest fallback;
    /// 0 (the default) changes nothing.
    std::uint32_t quarantined = 0;
};

struct PlanDecision {
    BackendKind backend = BackendKind::sample;
    /// One-line rationale, stable across runs (golden-tested).
    const char* reason = "";
    /// True when GPUSEL_BACKEND forced the choice.
    bool env_forced = false;
};

/// The pure decision function (the docs/planner.md decision table).
/// `forced` is the parsed environment override, applied when feasible.
[[nodiscard]] PlanDecision plan(const PlanQuery& q, const DistributionHints& h,
                                std::optional<BackendKind> forced);

/// Full planning step for one selection about to run on `stream`: probes
/// `data`, reads GPUSEL_BACKEND, consumes the device's thrash feedback,
/// records the PlannerEvent and tallies RobustnessCounters::backend_*.
template <typename T>
[[nodiscard]] PlanDecision plan_selection(simt::Device& dev, std::span<const T> data,
                                          PlanQuery q, int stream);

/// Records a decision made structurally by a front-end (the batch
/// executor's fused-bitonic groups, multiselect's bucket tree) so the
/// planner log and backend tallies still cover every selection.
void record_planned_decision(simt::Device& dev, const PlanDecision& d, std::uint64_t n,
                             std::uint64_t k, int stream);

/// Fraction of a device's modeled memory one shard's staged input may
/// occupy.  The rest is headroom for the pipeline's oracles (1 byte/elem),
/// int32 scratch and the ping-pong bucket buffers, so a shard sized
/// against this budget keeps the whole per-shard descent within the
/// device's capacity.
inline constexpr double kShardStagingFraction = 0.25;

/// The shard-count decision for an out-of-core sharded selection
/// (core/shard_select.hpp): how many chunks to cut n into so every chunk's
/// staged data plus pipeline scratch fits one device's modeled memory.
struct ShardPlan {
    /// Number of shards (>= 1; 1 means the input fits one device).
    std::size_t shards = 1;
    /// Maximum staged elements per shard.
    std::size_t shard_elems = 0;
    /// Stable one-line rationale (mirrors PlanDecision::reason).
    const char* reason = "";
};

/// Pure decision function: chunks n elements of elem_size bytes against a
/// device's modeled capacity.  `max_shard_elems` overrides the derived
/// per-shard budget when nonzero (tests use tiny overrides); num_devices
/// only rounds small multi-shard counts up so every device gets work.
[[nodiscard]] ShardPlan plan_shard_count(std::size_t n, std::size_t elem_size,
                                         std::size_t device_capacity_bytes, int num_devices,
                                         std::size_t max_shard_elems = 0);

extern template DistributionHints probe_distribution<float>(std::span<const float>);
extern template DistributionHints probe_distribution<double>(std::span<const double>);
extern template DistributionHints probe_distribution<ArgPair>(std::span<const ArgPair>);
extern template PlanDecision plan_selection<float>(simt::Device&, std::span<const float>,
                                                   PlanQuery, int);
extern template PlanDecision plan_selection<double>(simt::Device&, std::span<const double>,
                                                    PlanQuery, int);
extern template PlanDecision plan_selection<ArgPair>(simt::Device&, std::span<const ArgPair>,
                                                     PlanQuery, int);

}  // namespace gpusel::core
