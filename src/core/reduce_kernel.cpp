#include "core/reduce_kernel.hpp"

#include <stdexcept>

#include "simt/timing.hpp"

namespace gpusel::core {

void reduce_kernel(simt::Device& dev, std::span<std::int32_t> block_counts, int grid_dim,
                   int num_buckets, std::span<std::int32_t> totals, bool keep_block_offsets,
                   simt::LaunchOrigin origin, int block_dim, int stream) {
    const auto g = static_cast<std::size_t>(grid_dim);
    const auto b = static_cast<std::size_t>(num_buckets);
    if (block_counts.size() < g * b) throw std::invalid_argument("block_counts too small");
    if (totals.size() != b) throw std::invalid_argument("totals size mismatch");

    // One thread per bucket column; each scans its column over all blocks.
    const int grid = simt::suggest_grid(dev.arch(), b, block_dim);
    dev.launch(keep_block_offsets ? "reduce_offsets" : "reduce",
               {.grid_dim = grid, .block_dim = block_dim, .origin = origin, .stream = stream},
               [&, g, b, keep_block_offsets](simt::BlockCtx& blk) {
                   blk.warp_tiles(b, [&](simt::WarpCtx& w, std::size_t base, std::size_t) {
                       for (int l = 0; l < w.lanes(); ++l) {
                           const std::size_t i = base + static_cast<std::size_t>(l);
                           std::int32_t running = 0;
                           for (std::size_t row = 0; row < g; ++row) {
                               const std::int32_t c = blk.ld(block_counts, row * b + i);
                               if (keep_block_offsets) blk.st(block_counts, row * b + i, running);
                               running += c;
                           }
                           blk.st(totals, i, running);
                       }
                       const auto lanes = static_cast<std::uint64_t>(w.lanes());
                       // adjacent lanes read adjacent buckets of the same
                       // block row: coalesced row-major traversal
                       w.block().counters().global_bytes_read +=
                           lanes * g * sizeof(std::int32_t);
                       if (keep_block_offsets) {
                           w.block().counters().global_bytes_written +=
                               lanes * g * sizeof(std::int32_t);
                       }
                       w.add_instr(lanes * g);
                       // coalesced totals write
                       w.block().counters().global_bytes_written +=
                           lanes * sizeof(std::int32_t);
                   });
               });
}

std::int32_t select_bucket_kernel(simt::Device& dev, std::span<const std::int32_t> totals,
                                  std::span<std::int32_t> prefix, std::size_t rank,
                                  simt::LaunchOrigin origin, int stream) {
    const auto b = totals.size();
    if (prefix.size() != b + 1) throw std::invalid_argument("prefix size mismatch");
    std::int32_t bucket = -1;
    dev.launch("select_bucket",
               {.grid_dim = 1, .block_dim = 32, .origin = origin, .stream = stream},
               [&, b, rank](simt::BlockCtx& blk) {
                   std::int32_t running = 0;
                   for (std::size_t i = 0; i < b; ++i) {
                       blk.st(prefix, i, running);
                       running += blk.ld(totals, i);
                   }
                   blk.st(prefix, b, running);
                   blk.charge_global_read(b * sizeof(std::int32_t));
                   blk.charge_global_write((b + 1) * sizeof(std::int32_t));
                   blk.charge_instr(b);
                   // lower_bound over the prefix sums
                   std::size_t lo = 0;
                   for (std::size_t i = 0; i < b; ++i) {
                       if (static_cast<std::size_t>(blk.ld(prefix, i)) <= rank) lo = i;
                   }
                   blk.charge_instr(b);
                   bucket = static_cast<std::int32_t>(lo);
               });
    return bucket;
}

}  // namespace gpusel::core
