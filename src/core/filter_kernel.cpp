#include "core/filter_kernel.hpp"

#include <bit>
#include <stdexcept>

#include "simt/simd.hpp"
#include "simt/timing.hpp"

namespace gpusel::core {

namespace {

/// Shared implementation: predicate = (oracle == bucket) extraction into
/// `out`; when `upper` is non-empty, (oracle > bucket) elements go to
/// `upper` through the global cursor counters[1] (top-k fusion).
template <typename T>
void run_filter(simt::Device& dev, std::span<const T> data, std::span<const std::uint8_t> oracles,
                std::int32_t bucket, std::span<T> out, std::span<T> upper,
                std::span<const std::int32_t> block_offsets, int num_buckets,
                std::span<std::int32_t> counters, const SampleSelectConfig& cfg,
                simt::LaunchOrigin origin, int grid_dim, int stream, const char* name) {
    const std::size_t n = data.size();
    if (oracles.size() != n) throw std::invalid_argument("oracle buffer size mismatch");
    const bool shared_mode = cfg.atomic_space == simt::AtomicSpace::shared;
    const bool fused = !upper.empty() || counters.size() > 1;
    if (shared_mode && block_offsets.size() <
                           static_cast<std::size_t>(grid_dim) * static_cast<std::size_t>(num_buckets)) {
        throw std::invalid_argument("block_offsets too small");
    }
    if (!shared_mode && counters.empty()) {
        throw std::invalid_argument("global mode needs a cursor counter");
    }

    dev.launch(
        name,
        {.grid_dim = grid_dim, .block_dim = cfg.block_dim, .origin = origin,
         .unroll = cfg.unroll, .stream = stream < 0 ? cfg.stream : stream},
        [&, n, bucket, num_buckets, shared_mode, fused](simt::BlockCtx& blk) {
            // Target-bucket cursor: shared counter seeded with the block's
            // base offset (merged hierarchy step 3), or the global cursor.
            std::int32_t sh_cursor = 0;
            std::span<std::int32_t> target_ctr;
            simt::AtomicSpace target_space;
            if (shared_mode) {
                const auto idx = static_cast<std::size_t>(blk.block_idx()) *
                                     static_cast<std::size_t>(num_buckets) +
                                 static_cast<std::size_t>(bucket);
                sh_cursor = blk.ld(block_offsets, idx);
                blk.charge_global_read(sizeof(std::int32_t));
                blk.charge_shared(sizeof(std::int32_t));
                target_ctr = std::span<std::int32_t>(&sh_cursor, 1);
                target_space = simt::AtomicSpace::shared;
            } else {
                target_ctr = counters.subspan(0, 1);
                target_space = simt::AtomicSpace::global;
            }

            blk.warp_tiles(n, [&](simt::WarpCtx& w, std::size_t base, std::size_t) {
                std::uint8_t orc[simt::kWarpSize];
                w.load(oracles, base, orc);
                // Predicate masks come straight from the oracle bytes the
                // count pass cached -- one byte-compare tile op, no
                // per-element bucket recomputation.  The instr charge
                // models the per-lane compare as before.
                const auto b8 = static_cast<std::uint8_t>(bucket);
                const std::uint32_t mask = simt::simd::byte_eq_mask(orc, b8, w.lanes());
                bool pred[simt::kWarpSize];
                simt::simd::mask_to_pred(mask, w.lanes(), pred);
                const std::int32_t zeros[simt::kWarpSize] = {};
                w.add_instr(static_cast<std::uint64_t>(w.lanes()));

                std::int32_t off[simt::kWarpSize];
                // Stream-compaction offsets always use the ballot+popcount
                // aggregation of Bakunas-Milanowski et al. (one atomic per
                // warp); cfg.warp_aggregation only governs the count
                // kernel's histogram (Fig. 6).  All matched lanes share one
                // cursor, so the aggregated fetch_add hands them
                // lane-ordered consecutive offsets: the scatter is a
                // contiguous run starting at the first matched lane's slot
                // and compiles to one masked compress-store tile.
                w.fetch_add(target_space, target_ctr, zeros, off, /*aggregated=*/true,
                            /*index_bits=*/1, pred);
                if (mask != 0) {
                    const int lead = std::countr_zero(mask);
                    w.compress_gather_store(out, static_cast<std::size_t>(off[lead]), data, base,
                                            mask);
                }

                if (fused) {
                    const std::uint32_t umask = simt::simd::byte_gt_mask(orc, b8, w.lanes());
                    bool pred_upper[simt::kWarpSize];
                    simt::simd::mask_to_pred(umask, w.lanes(), pred_upper);
                    std::int32_t uoff[simt::kWarpSize];
                    w.fetch_add(simt::AtomicSpace::global, counters.subspan(1, 1), zeros, uoff,
                                /*aggregated=*/true, /*index_bits=*/1, pred_upper);
                    if (umask != 0) {
                        const int ulead = std::countr_zero(umask);
                        w.compress_gather_store(upper, static_cast<std::size_t>(uoff[ulead]),
                                                data, base, umask);
                    }
                }
            });
        });
}

}  // namespace

template <typename T>
void filter_kernel(simt::Device& dev, std::span<const T> data,
                   std::span<const std::uint8_t> oracles, std::int32_t bucket, std::span<T> out,
                   std::span<const std::int32_t> block_offsets, int num_buckets,
                   std::span<std::int32_t> global_counter, const SampleSelectConfig& cfg,
                   simt::LaunchOrigin origin, int grid_dim, int stream) {
    run_filter<T>(dev, data, oracles, bucket, out, {}, block_offsets, num_buckets, global_counter,
                  cfg, origin, grid_dim, stream, "filter");
}

template <typename T>
void filter_fused_topk_kernel(simt::Device& dev, std::span<const T> data,
                              std::span<const std::uint8_t> oracles, std::int32_t bucket,
                              std::span<T> out, std::span<T> upper,
                              std::span<const std::int32_t> block_offsets, int num_buckets,
                              std::span<std::int32_t> counters, const SampleSelectConfig& cfg,
                              simt::LaunchOrigin origin, int grid_dim, int stream) {
    if (counters.size() < 2) throw std::invalid_argument("fused filter needs two cursors");
    run_filter<T>(dev, data, oracles, bucket, out, upper, block_offsets, num_buckets, counters,
                  cfg, origin, grid_dim, stream, "filter_topk");
}

template void filter_kernel<float>(simt::Device&, std::span<const float>,
                                   std::span<const std::uint8_t>, std::int32_t, std::span<float>,
                                   std::span<const std::int32_t>, int, std::span<std::int32_t>,
                                   const SampleSelectConfig&, simt::LaunchOrigin, int, int);
template void filter_kernel<double>(simt::Device&, std::span<const double>,
                                    std::span<const std::uint8_t>, std::int32_t, std::span<double>,
                                    std::span<const std::int32_t>, int, std::span<std::int32_t>,
                                    const SampleSelectConfig&, simt::LaunchOrigin, int, int);
template void filter_fused_topk_kernel<float>(simt::Device&, std::span<const float>,
                                              std::span<const std::uint8_t>, std::int32_t,
                                              std::span<float>, std::span<float>,
                                              std::span<const std::int32_t>, int,
                                              std::span<std::int32_t>, const SampleSelectConfig&,
                                              simt::LaunchOrigin, int, int);
template void filter_fused_topk_kernel<double>(simt::Device&, std::span<const double>,
                                               std::span<const std::uint8_t>, std::int32_t,
                                               std::span<double>, std::span<double>,
                                               std::span<const std::int32_t>, int,
                                               std::span<std::int32_t>, const SampleSelectConfig&,
                                               simt::LaunchOrigin, int, int);
template void filter_kernel<ArgPair>(simt::Device&, std::span<const ArgPair>,
                                     std::span<const std::uint8_t>, std::int32_t,
                                     std::span<ArgPair>, std::span<const std::int32_t>, int,
                                     std::span<std::int32_t>, const SampleSelectConfig&,
                                     simt::LaunchOrigin, int, int);
template void filter_fused_topk_kernel<ArgPair>(simt::Device&, std::span<const ArgPair>,
                                                std::span<const std::uint8_t>, std::int32_t,
                                                std::span<ArgPair>, std::span<ArgPair>,
                                                std::span<const std::int32_t>, int,
                                                std::span<std::int32_t>, const SampleSelectConfig&,
                                                simt::LaunchOrigin, int, int);

}  // namespace gpusel::core
