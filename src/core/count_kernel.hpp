#pragma once
// The `count` kernel (Sec. IV-B b, Fig. 4): every element traverses the
// implicit splitter search tree to find its bucket, the bucket index is
// memoized in a one-byte oracle, and a per-bucket counter is incremented
// atomically -- in block shared memory (followed by the reduce step of the
// Sec. IV-G hierarchy) or directly in global memory.  Optional
// warp-aggregation (Fig. 6) coalesces same-bucket atomics within a warp.

#include <cstdint>
#include <span>

#include "core/config.hpp"
#include "core/searchtree.hpp"
#include "simt/device.hpp"

namespace gpusel::core {

/// Fills a global int32 array with `value` using a tiny kernel (the
/// simulator's cudaMemset; needed before global-atomic counting and to
/// seed cursor counters).
void launch_fill32(simt::Device& dev, std::span<std::int32_t> buf, std::int32_t value,
                   simt::LaunchOrigin origin, int stream = 0);

/// Zeroes a global int32 counter array.
inline void launch_memset32(simt::Device& dev, std::span<std::int32_t> buf,
                            simt::LaunchOrigin origin, int stream = 0) {
    launch_fill32(dev, buf, 0, origin, stream);
}

/// Launches the count kernel.
///
/// * `oracles`: per-element bucket bytes; pass an empty span to skip the
///   oracle write (approximate selection and the Fig. 9 "count w/o write"
///   configuration).
/// * Shared-atomic mode: per-block partial counts go to `block_counts`
///   (size grid_dim * num_buckets, fully overwritten); `totals` is not
///   touched (the reduce kernel fills it).
/// * Global-atomic mode: counts are atomically accumulated in `totals`
///   (which must be zeroed, see launch_memset32); `block_counts` unused.
///
/// Returns the grid size used (needed by reduce/filter).  `stream`
/// overrides the launch stream; the default -1 keeps cfg.stream.
template <typename T>
int count_kernel(simt::Device& dev, std::span<const T> data, const SearchTree<T>& tree,
                 std::span<std::uint8_t> oracles, std::span<std::int32_t> totals,
                 std::span<std::int32_t> block_counts, const SampleSelectConfig& cfg,
                 simt::LaunchOrigin origin, int stream = -1);

extern template int count_kernel<float>(simt::Device&, std::span<const float>,
                                        const SearchTree<float>&, std::span<std::uint8_t>,
                                        std::span<std::int32_t>, std::span<std::int32_t>,
                                        const SampleSelectConfig&, simt::LaunchOrigin, int);
extern template int count_kernel<double>(simt::Device&, std::span<const double>,
                                         const SearchTree<double>&, std::span<std::uint8_t>,
                                         std::span<std::int32_t>, std::span<std::int32_t>,
                                         const SampleSelectConfig&, simt::LaunchOrigin, int);
extern template int count_kernel<ArgPair>(simt::Device&, std::span<const ArgPair>,
                                          const SearchTree<ArgPair>&, std::span<std::uint8_t>,
                                          std::span<std::int32_t>, std::span<std::int32_t>,
                                          const SampleSelectConfig&, simt::LaunchOrigin, int);

}  // namespace gpusel::core
