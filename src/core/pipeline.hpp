#pragma once
// The SelectionPipeline layer: shared orchestration for every selection
// front-end (exact, approximate, multi-rank, batched fallback, top-k,
// quantile dispatch and sample-sort).
//
// The paper's algorithms all run the same bucketing level -- sample
// splitters -> count -> (reduce) -> select-bucket -> filter (Sec. IV-B,
// Fig. 3) -- and differ only in how they descend through buckets: exact
// selection follows one bucket, multiselect a whole tree of them, top-k
// keeps the upper buckets, approximate selection and histograms stop after
// the count.  This header factors the level into one executor so front-ends
// express only their descent policy:
//
//   * PipelinePlan      -- static shape of one level (grid size, buffer
//                          lengths) for an input size and config.
//   * PipelineContext   -- a device + config pair handing out *pooled*
//                          scratch buffers on the selection's stream (see
//                          simt/pool.hpp).  Zero-on-acquire goes through
//                          zeroed_i32(), which still launches the simulated
//                          memset so event counts are unchanged.
//   * run_bucket_level  -- the level executor; returns a LevelOutcome
//                          owning the level's pooled buffers.
//   * filter_bucket / filter_topk -- bucket extraction on top of an
//                          outcome.
//   * DataHolder/PingPong -- the two data buffers ping-ponged across
//                          recursion levels instead of a fresh `out`
//                          allocation per level (Sec. IV-A: auxiliary
//                          storage stays <= n/4 bytes for float).
//   * SelectionPipeline -- the linear-descent driver (one bucket per
//                          level) used by sample_select and top-k.
//
// Event-count contract: for a given front-end and config the kernel launch
// sequence (names, grids, origins, counters) is byte-identical to the
// pre-pipeline code, so golden event counts and simulated timings are
// unchanged; only host-side allocation behavior differs.  A context bound
// to an explicit stream (batched execution) launches the identical
// sequence on that stream: per-problem event streams match the serial
// path byte for byte, only the stream ids -- and therefore the overlap in
// simulated time -- differ.

// Robustness (docs/robustness.md): injected faults surface here as
// simt::AllocFault / simt::LaunchFault.  Both are thrown *before* any side
// effect (no clock advance, no counter merge, no reservation), so every
// step of a level is safe to retry verbatim.  The try_* level executors
// and the with_fault_retry wrapper implement the bounded-retry policy --
// alloc failure: pool trim + retry; launch failure: rerun (the level
// executors rerun the whole level with a fresh sample salt) -- and convert
// exhaustion into a typed Status instead of an escaping exception.

#include <cstdint>
#include <span>
#include <utility>

#include "core/config.hpp"
#include "core/searchtree.hpp"
#include "core/status.hpp"
#include "simt/device.hpp"
#include "simt/fault.hpp"
#include "simt/pool.hpp"

namespace gpusel::core {

/// Attempts per step under injected faults (initial try + retries).  Covers
/// the default transient-burst lengths; longer bursts are treated as
/// permanent and surface as allocation_failed / launch_failed.
inline constexpr int kFaultRetryAttempts = 4;

/// Static shape of one bucketing level.
struct PipelinePlan {
    std::size_t n = 0;
    std::size_t num_buckets = 0;
    int grid = 0;
    bool shared_mode = false;
    bool write_oracles = true;

    [[nodiscard]] static PipelinePlan make(const simt::Device& dev, std::size_t n,
                                           const SampleSelectConfig& cfg,
                                           bool write_oracles = true);

    /// Length of the per-block partial-counts buffer (0 in global mode).
    [[nodiscard]] std::size_t block_counts_len() const {
        return shared_mode ? static_cast<std::size_t>(grid) * num_buckets : 0;
    }
    /// Auxiliary bytes one level keeps live at its filter step (oracles +
    /// totals + block counts + prefix), excluding the output bucket whose
    /// size is data-dependent.  Used by the Sec. IV-A bound test.
    [[nodiscard]] std::size_t scratch_bytes() const {
        return (write_oracles ? n : 0) +
               (num_buckets + block_counts_len() + num_buckets + 1) * sizeof(std::int32_t);
    }
};

/// A device + config pair that hands out pooled scratch on the selection's
/// stream.  Cheap to construct; one per selection invocation.  The stream
/// is explicit so a batch executor can run many selections with one shared
/// config, each on its own stream; the default (-1) keeps cfg.stream, so
/// single-problem front-ends are unchanged.
class PipelineContext {
public:
    /// Sentinel for "use cfg.stream".
    static constexpr int kConfigStream = -1;

    PipelineContext(simt::Device& dev, const SampleSelectConfig& cfg,
                    int stream = kConfigStream)
        : dev_(&dev), cfg_(&cfg), stream_(stream < 0 ? cfg.stream : stream) {}

    [[nodiscard]] simt::Device& dev() const noexcept { return *dev_; }
    [[nodiscard]] const SampleSelectConfig& cfg() const noexcept { return *cfg_; }
    /// The stream every launch and pooled checkout of this selection uses.
    [[nodiscard]] int stream() const noexcept { return stream_; }
    [[nodiscard]] bool shared_mode() const noexcept {
        return cfg_->atomic_space == simt::AtomicSpace::shared;
    }

    /// Pooled scratch ordered on the selection's stream.
    template <typename U>
    [[nodiscard]] simt::PooledBuffer<U> scratch(std::size_t n) const {
        return dev_->pooled<U>(n, stream_);
    }
    /// Zero-on-acquire: pooled int32 scratch zeroed by the simulated memset
    /// kernel (the launch is kept so event counts match hand-zeroed code).
    [[nodiscard]] simt::PooledBuffer<std::int32_t> zeroed_i32(std::size_t n,
                                                              simt::LaunchOrigin origin) const;

private:
    simt::Device* dev_;
    const SampleSelectConfig* cfg_;
    int stream_ = 0;
};

/// Knobs of the level executor (defaults = exact selection).
struct LevelOptions {
    /// Write per-element bucket oracles (needed by any later filter).
    bool write_oracles = true;
    /// Keep per-block exclusive prefix sums in block_counts (shared mode;
    /// needed by filter/scatter, skipped by count-only variants).
    bool keep_block_offsets = true;
    /// Run select_bucket to locate `rank` and fill prefix/bucket metadata.
    bool locate = true;
};

/// Everything one bucketing level produced; owns the level's pooled
/// buffers (they return to the pool on destruction).
template <typename T>
struct LevelOutcome {
    SearchTree<T> tree;
    int grid = 0;
    /// Bucket containing the requested rank (locate only).
    std::int32_t bucket = -1;
    bool equality = false;          ///< located bucket is an equality bucket
    std::size_t bucket_size = 0;    ///< totals[bucket]
    std::size_t rank_offset = 0;    ///< prefix[bucket]: rank rebase for descent
    std::size_t rank_above = 0;     ///< n - prefix[bucket+1]: elements in higher buckets

    simt::PooledBuffer<std::uint8_t> oracles;
    simt::PooledBuffer<std::int32_t> totals;
    simt::PooledBuffer<std::int32_t> block_counts;
    simt::PooledBuffer<std::int32_t> prefix;

    [[nodiscard]] std::span<const std::int32_t> totals_span() const { return totals.span(); }
    [[nodiscard]] std::span<const std::int32_t> prefix_span() const { return prefix.span(); }

    /// The value every element of equality bucket `b` holds (Sec. IV-C
    /// early exit).  Bucket 0 has no left splitter -- by construction
    /// SearchTree::build never marks it as an equality bucket, so hitting
    /// it here means corrupted metadata and throws instead of underflowing
    /// splitters[b - 1].
    [[nodiscard]] T equality_value(std::int32_t b) const;
};

/// Runs one bucketing level over `data`: sample splitters -> count ->
/// (reduce in shared mode) -> select-bucket (when opt.locate).
template <typename T>
[[nodiscard]] LevelOutcome<T> run_bucket_level(const PipelineContext& ctx,
                                               std::span<const T> data, std::size_t rank,
                                               simt::LaunchOrigin origin, std::uint64_t salt = 0,
                                               const LevelOptions& opt = {});

/// Deterministic guaranteed-progress level: pivot = median of 9
/// deterministically strided elements, splitters {p, p, p} -> a 4-bucket
/// tripartition tree whose equality bucket (all elements == p, at least
/// the sampled occurrences) guarantees the non-equality buckets shrink.
/// Used after the resampling budget is exhausted; no randomness involved,
/// so it cannot stall twice the same way.
template <typename T>
[[nodiscard]] LevelOutcome<T> run_pivot_level(const PipelineContext& ctx, std::span<const T> data,
                                              std::size_t rank, simt::LaunchOrigin origin,
                                              const LevelOptions& opt = {});

/// Fault-hardened run_bucket_level: retries the whole level (with a fresh
/// sample salt) on injected launch faults and after a pool trim on
/// injected allocation faults, at most kFaultRetryAttempts times; the
/// first attempt uses `salt` verbatim, so fault-free event streams are
/// unchanged.  Exhaustion returns launch_failed / allocation_failed.
template <typename T>
[[nodiscard]] Result<LevelOutcome<T>> try_run_bucket_level(const PipelineContext& ctx,
                                                           std::span<const T> data,
                                                           std::size_t rank,
                                                           simt::LaunchOrigin origin,
                                                           std::uint64_t salt = 0,
                                                           const LevelOptions& opt = {});

/// Fault-hardened run_pivot_level (the pivot is deterministic, so retries
/// rerun it verbatim).
template <typename T>
[[nodiscard]] Result<LevelOutcome<T>> try_run_pivot_level(const PipelineContext& ctx,
                                                          std::span<const T> data,
                                                          std::size_t rank,
                                                          simt::LaunchOrigin origin,
                                                          const LevelOptions& opt = {});

/// Runs `step` under the bounded-retry fault policy: injected allocation
/// faults trigger a pool trim + retry, injected launch faults a plain
/// retry (every launch faults before any side effect, so reruns are safe),
/// each up to kFaultRetryAttempts attempts.  Returns success, or the typed
/// error the exhausted fault maps to.  Recovered retries are tallied into
/// Device::robustness().
template <typename F>
[[nodiscard]] Status with_fault_retry(const PipelineContext& ctx, F&& step) {
    const std::uint64_t uf_before = ctx.dev().tracker().underflow_count();
    for (int attempt = 1;; ++attempt) {
        try {
            step();
            // Epilogue invariant check: a tracker underflow recorded during
            // the step means paired charge/credit bookkeeping broke -- a
            // bug, reported through the typed channel instead of the bare
            // assert the tracker used to carry.
            if (ctx.dev().tracker().underflow_count() != uf_before) {
                return Status::failure(SelectError::internal,
                                       ctx.dev().tracker().underflow_note());
            }
            return Status::success();
        } catch (const simt::SanError& e) {
            // A sanitizer violation is a kernel bug, not bad luck: never
            // retried (a rerun would just trip the same contract again).
            return Status::failure(SelectError::sanitizer_violation, e.what());
        } catch (const simt::StreamSanError& e) {
            // Same policy for stream-ordering hazards: a missing event edge
            // is deterministic, a rerun would report it again.
            return Status::failure(SelectError::sanitizer_violation, e.what());
        } catch (const simt::AllocFault& e) {
            if (attempt >= kFaultRetryAttempts) {
                return Status::failure(SelectError::allocation_failed, e.what());
            }
            ctx.dev().pool().trim();  // give fragmented idle blocks back
            ++ctx.dev().robustness().alloc_retries;
        } catch (const simt::LaunchFault& e) {
            if (attempt >= kFaultRetryAttempts) {
                return Status::failure(SelectError::launch_failed, e.what());
            }
            ++ctx.dev().robustness().launch_retries;
        }
    }
}

/// Extracts `bucket`'s elements into `out` (sized to the bucket).
template <typename T>
void filter_bucket(const PipelineContext& ctx, std::span<const T> data,
                   const LevelOutcome<T>& lv, std::int32_t bucket, std::span<T> out,
                   simt::LaunchOrigin origin);

/// Fused top-k extraction (Sec. IV-I): target bucket into `out`, all
/// higher-bucket elements appended to `acc` starting at slot `acc_fill`.
template <typename T>
void filter_topk(const PipelineContext& ctx, std::span<const T> data, const LevelOutcome<T>& lv,
                 std::span<T> out, std::span<T> acc, std::int32_t acc_fill,
                 simt::LaunchOrigin origin);

/// Coalesced device copy: dst[dst_base + i] = src[src_base + i].
template <typename T>
void launch_copy(simt::Device& dev, std::span<const T> src, std::size_t src_base,
                 std::span<T> dst, std::size_t dst_base, std::size_t count,
                 simt::LaunchOrigin origin, int block_dim, int stream = 0);

/// Base case (Sec. IV-D): bitonic-sorts `data` in place on the selection's
/// stream.
template <typename T>
void sort_base_case(const PipelineContext& ctx, std::span<T> data, simt::LaunchOrigin origin);

/// A data buffer for pipeline descent: either an adopted DeviceBuffer (the
/// caller's input) or a pooled block, viewed at a logical length that can
/// shrink as the recursion descends while the backing checkout is reused.
template <typename T>
class DataHolder {
public:
    DataHolder() = default;

    /// Takes ownership of a caller-provided device buffer.
    [[nodiscard]] static DataHolder adopt(simt::DeviceBuffer<T> buf) {
        DataHolder h;
        h.len_ = buf.size();
        h.owned_ = std::move(buf);
        return h;
    }
    /// Wraps an existing pooled checkout at logical length n.
    [[nodiscard]] static DataHolder from_pooled(simt::PooledBuffer<T> buf) {
        DataHolder h;
        h.len_ = buf.size();
        h.pooled_ = std::move(buf);
        return h;
    }
    /// Acquires a pooled buffer of n elements.
    [[nodiscard]] static DataHolder acquire(const PipelineContext& ctx, std::size_t n) {
        return from_pooled(ctx.scratch<T>(n));
    }
    /// Stages host input into a pooled buffer (an untimed host->device
    /// transfer, as everywhere in this simulator).
    [[nodiscard]] static DataHolder stage(const PipelineContext& ctx, std::span<const T> input) {
        auto h = acquire(ctx, input.size());
        std::copy(input.begin(), input.end(), h.span().begin());
        return h;
    }

    [[nodiscard]] std::span<T> span() noexcept {
        return owned_.empty() && pooled_.empty() ? std::span<T>{}
               : owned_.empty() ? std::span<T>{pooled_.data(), len_}
                                : std::span<T>{owned_.data(), len_};
    }
    [[nodiscard]] std::span<const T> span() const noexcept {
        return const_cast<DataHolder*>(this)->span();
    }
    [[nodiscard]] std::size_t size() const noexcept { return len_; }
    [[nodiscard]] bool empty() const noexcept { return len_ == 0; }
    /// Elements the backing storage can hold (>= size()).
    [[nodiscard]] std::size_t capacity() const noexcept {
        return !owned_.empty() ? owned_.size() : pooled_.capacity();
    }
    /// Shrinks the logical length without touching the backing storage.
    void view(std::size_t n) noexcept { len_ = n <= capacity() ? n : capacity(); }

private:
    simt::DeviceBuffer<T> owned_;
    simt::PooledBuffer<T> pooled_;
    std::size_t len_ = 0;
};

/// The two data buffers of a linear bucket descent.  Level L filters its
/// bucket from the active buffer into the inactive one, then flips; the
/// adopted input buffer itself becomes a write target from level 2 on, so
/// a whole selection touches at most two data allocations.
template <typename T>
class PingPong {
public:
    void reset(DataHolder<T> input) {
        slot_[0] = std::move(input);
        slot_[1] = DataHolder<T>{};
        active_ = 0;
    }
    [[nodiscard]] std::span<T> data() noexcept { return slot_[active_].span(); }
    [[nodiscard]] std::span<const T> data() const noexcept { return slot_[active_].span(); }
    [[nodiscard]] std::size_t size() const noexcept { return slot_[active_].size(); }

    /// The inactive slot viewed at n elements, (re)acquired only if its
    /// backing is too small -- after the first level it never is, because
    /// buckets shrink strictly.
    [[nodiscard]] std::span<T> back(const PipelineContext& ctx, std::size_t n) {
        DataHolder<T>& s = slot_[1 - active_];
        if (s.capacity() < n) {
            s = DataHolder<T>{};  // release before acquiring: the pool may hand the block back
            s = DataHolder<T>::acquire(ctx, n);
        }
        s.view(n);
        return s.span();
    }
    /// Makes the inactive slot (filled to n elements) the active buffer.
    void flip(std::size_t n) {
        slot_[1 - active_].view(n);
        active_ = 1 - active_;
    }

private:
    DataHolder<T> slot_[2];
    int active_ = 0;
};

/// Linear-descent driver: one located bucket per level, ping-pong data
/// buffers.  sample_select and top-k are thin policies over this; variants
/// with other descent shapes (multiselect's bucket tree, approximate
/// selection's count-only level) use run_bucket_level/filter_bucket
/// directly with their own buffer management.
template <typename T>
class SelectionPipeline {
public:
    SelectionPipeline(simt::Device& dev, const SampleSelectConfig& cfg,
                      int stream = PipelineContext::kConfigStream)
        : ctx_(dev, cfg, stream) {}

    [[nodiscard]] const PipelineContext& context() const noexcept { return ctx_; }
    void reset(DataHolder<T> input) { data_.reset(std::move(input)); }
    [[nodiscard]] std::span<const T> data() const noexcept { return data_.data(); }
    [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
    [[nodiscard]] T value_at(std::size_t i) const noexcept { return data_.data()[i]; }

    /// Runs one bucketing level over the current data buffer.
    [[nodiscard]] LevelOutcome<T> run_level(std::size_t rank, simt::LaunchOrigin origin,
                                            std::uint64_t salt, const LevelOptions& opt = {}) {
        return run_bucket_level<T>(ctx_, data_.data(), rank, origin, salt, opt);
    }
    /// Fault-hardened run_level (see try_run_bucket_level).
    [[nodiscard]] Result<LevelOutcome<T>> try_run_level(std::size_t rank,
                                                        simt::LaunchOrigin origin,
                                                        std::uint64_t salt,
                                                        const LevelOptions& opt = {}) {
        return try_run_bucket_level<T>(ctx_, data_.data(), rank, origin, salt, opt);
    }
    /// Deterministic guaranteed-progress level over the current buffer.
    [[nodiscard]] Result<LevelOutcome<T>> try_run_fallback_level(std::size_t rank,
                                                                 simt::LaunchOrigin origin,
                                                                 const LevelOptions& opt = {}) {
        return try_run_pivot_level<T>(ctx_, data_.data(), rank, origin, opt);
    }
    /// Filters the located bucket into the back buffer and descends.
    void descend(const LevelOutcome<T>& lv, simt::LaunchOrigin origin) {
        auto out = data_.back(ctx_, lv.bucket_size);
        filter_bucket<T>(ctx_, data_.data(), lv, lv.bucket, out, origin);
        data_.flip(lv.bucket_size);
    }
    /// Fault-hardened descend: the back-buffer acquisition and filter
    /// launch retry under the bounded policy; the flip happens only after
    /// the filter succeeded, so a failed descent leaves the pipeline on
    /// its current (intact) buffer.
    [[nodiscard]] Status try_descend(const LevelOutcome<T>& lv, simt::LaunchOrigin origin) {
        Status s = with_fault_retry(ctx_, [&] {
            auto out = data_.back(ctx_, lv.bucket_size);
            filter_bucket<T>(ctx_, data_.data(), lv, lv.bucket, out, origin);
        });
        if (s.ok()) data_.flip(lv.bucket_size);
        return s;
    }
    /// Top-k descent: fused filter into the back buffer + accumulator.
    void descend_topk(const LevelOutcome<T>& lv, std::span<T> acc, std::int32_t acc_fill,
                      simt::LaunchOrigin origin) {
        auto out = data_.back(ctx_, lv.bucket_size);
        filter_topk<T>(ctx_, data_.data(), lv, out, acc, acc_fill, origin);
        data_.flip(lv.bucket_size);
    }
    /// Fault-hardened descend_topk.  Safe to retry: the fused filter
    /// rewrites out and the accumulator range above acc_fill from scratch
    /// on every run (fresh cursors per attempt).
    [[nodiscard]] Status try_descend_topk(const LevelOutcome<T>& lv, std::span<T> acc,
                                          std::int32_t acc_fill, simt::LaunchOrigin origin) {
        Status s = with_fault_retry(ctx_, [&] {
            auto out = data_.back(ctx_, lv.bucket_size);
            filter_topk<T>(ctx_, data_.data(), lv, out, acc, acc_fill, origin);
        });
        if (s.ok()) data_.flip(lv.bucket_size);
        return s;
    }
    /// Bitonic-sorts the current buffer in place (the recursion base case).
    void sort_base_case(simt::LaunchOrigin origin) {
        core::sort_base_case<T>(ctx_, data_.data(), origin);
    }
    /// Fault-hardened base case (the sort launch faults before touching
    /// the data, so retries see the unsorted input).
    [[nodiscard]] Status try_sort_base_case(simt::LaunchOrigin origin) {
        return with_fault_retry(ctx_,
                                [&] { core::sort_base_case<T>(ctx_, data_.data(), origin); });
    }

private:
    PipelineContext ctx_;
    PingPong<T> data_;
};

extern template struct LevelOutcome<float>;
extern template struct LevelOutcome<double>;
extern template LevelOutcome<float> run_bucket_level<float>(const PipelineContext&,
                                                            std::span<const float>, std::size_t,
                                                            simt::LaunchOrigin, std::uint64_t,
                                                            const LevelOptions&);
extern template LevelOutcome<double> run_bucket_level<double>(const PipelineContext&,
                                                              std::span<const double>,
                                                              std::size_t, simt::LaunchOrigin,
                                                              std::uint64_t, const LevelOptions&);
extern template LevelOutcome<float> run_pivot_level<float>(const PipelineContext&,
                                                           std::span<const float>, std::size_t,
                                                           simt::LaunchOrigin,
                                                           const LevelOptions&);
extern template LevelOutcome<double> run_pivot_level<double>(const PipelineContext&,
                                                             std::span<const double>, std::size_t,
                                                             simt::LaunchOrigin,
                                                             const LevelOptions&);
extern template Result<LevelOutcome<float>> try_run_bucket_level<float>(
    const PipelineContext&, std::span<const float>, std::size_t, simt::LaunchOrigin,
    std::uint64_t, const LevelOptions&);
extern template Result<LevelOutcome<double>> try_run_bucket_level<double>(
    const PipelineContext&, std::span<const double>, std::size_t, simt::LaunchOrigin,
    std::uint64_t, const LevelOptions&);
extern template Result<LevelOutcome<float>> try_run_pivot_level<float>(const PipelineContext&,
                                                                       std::span<const float>,
                                                                       std::size_t,
                                                                       simt::LaunchOrigin,
                                                                       const LevelOptions&);
extern template Result<LevelOutcome<double>> try_run_pivot_level<double>(const PipelineContext&,
                                                                         std::span<const double>,
                                                                         std::size_t,
                                                                         simt::LaunchOrigin,
                                                                         const LevelOptions&);
extern template void filter_bucket<float>(const PipelineContext&, std::span<const float>,
                                          const LevelOutcome<float>&, std::int32_t,
                                          std::span<float>, simt::LaunchOrigin);
extern template void filter_bucket<double>(const PipelineContext&, std::span<const double>,
                                           const LevelOutcome<double>&, std::int32_t,
                                           std::span<double>, simt::LaunchOrigin);
extern template void filter_topk<float>(const PipelineContext&, std::span<const float>,
                                        const LevelOutcome<float>&, std::span<float>,
                                        std::span<float>, std::int32_t, simt::LaunchOrigin);
extern template void filter_topk<double>(const PipelineContext&, std::span<const double>,
                                         const LevelOutcome<double>&, std::span<double>,
                                         std::span<double>, std::int32_t, simt::LaunchOrigin);
extern template void launch_copy<float>(simt::Device&, std::span<const float>, std::size_t,
                                        std::span<float>, std::size_t, std::size_t,
                                        simt::LaunchOrigin, int, int);
extern template void launch_copy<double>(simt::Device&, std::span<const double>, std::size_t,
                                         std::span<double>, std::size_t, std::size_t,
                                         simt::LaunchOrigin, int, int);
extern template void sort_base_case<float>(const PipelineContext&, std::span<float>,
                                           simt::LaunchOrigin);
extern template void sort_base_case<double>(const PipelineContext&, std::span<double>,
                                            simt::LaunchOrigin);
extern template struct LevelOutcome<ArgPair>;
extern template LevelOutcome<ArgPair> run_bucket_level<ArgPair>(const PipelineContext&,
                                                                std::span<const ArgPair>,
                                                                std::size_t, simt::LaunchOrigin,
                                                                std::uint64_t,
                                                                const LevelOptions&);
extern template LevelOutcome<ArgPair> run_pivot_level<ArgPair>(const PipelineContext&,
                                                               std::span<const ArgPair>,
                                                               std::size_t, simt::LaunchOrigin,
                                                               const LevelOptions&);
extern template Result<LevelOutcome<ArgPair>> try_run_bucket_level<ArgPair>(
    const PipelineContext&, std::span<const ArgPair>, std::size_t, simt::LaunchOrigin,
    std::uint64_t, const LevelOptions&);
extern template Result<LevelOutcome<ArgPair>> try_run_pivot_level<ArgPair>(
    const PipelineContext&, std::span<const ArgPair>, std::size_t, simt::LaunchOrigin,
    const LevelOptions&);
extern template void filter_bucket<ArgPair>(const PipelineContext&, std::span<const ArgPair>,
                                            const LevelOutcome<ArgPair>&, std::int32_t,
                                            std::span<ArgPair>, simt::LaunchOrigin);
extern template void filter_topk<ArgPair>(const PipelineContext&, std::span<const ArgPair>,
                                          const LevelOutcome<ArgPair>&, std::span<ArgPair>,
                                          std::span<ArgPair>, std::int32_t, simt::LaunchOrigin);
extern template void launch_copy<ArgPair>(simt::Device&, std::span<const ArgPair>, std::size_t,
                                          std::span<ArgPair>, std::size_t, std::size_t,
                                          simt::LaunchOrigin, int, int);
extern template void sort_base_case<ArgPair>(const PipelineContext&, std::span<ArgPair>,
                                             simt::LaunchOrigin);

}  // namespace gpusel::core
