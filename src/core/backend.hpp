#pragma once
// Pluggable selection backends (docs/planner.md): "which algorithm runs"
// is a first-class decision rather than an accident of which front-end the
// caller picked.  Every single-rank front-end (sample_select, topk,
// argselect, quantile, the batch executor's recursive lanes) stages its
// input, runs the NaN pre-pass, asks the planner (core/planner.hpp) for a
// BackendKind, and dispatches through the SelectionBackend interface:
//
//   * sample  -- the paper's sampled bucket recursion (core/sample_select);
//                distribution-adaptive, equality-bucket early exit.
//   * radix   -- MSD radix digit descent (core/radix_backend) with fused
//                multi-level histograms; distribution-independent, immune
//                to duplicate-heavy inputs that make sampling degenerate.
//   * bitonic -- single-block bitonic sort (the recursion base case run as
//                a whole-problem backend for small n).
//
// Backends consume an already-staged, NaN-free DataHolder; staging, NaN
// policy, planning, and result post-processing (timing, NaN tail append)
// stay in the front-ends so every backend sees the same contract.  The
// GPUSEL_BACKEND environment variable ("auto" / "sample" / "radix" /
// "bitonic") overrides the planner where the forced backend is feasible.

#include <cstdint>
#include <optional>
#include <string_view>

#include "core/config.hpp"
#include "core/pipeline.hpp"
#include "core/sample_select.hpp"
#include "core/status.hpp"
#include "core/topk.hpp"

namespace gpusel::core {

/// The selection algorithms the planner can route a problem to.
enum class BackendKind : std::uint8_t { sample, radix, bitonic };

/// Stable lowercase name ("sample" / "radix" / "bitonic"): the value the
/// GPUSEL_BACKEND override accepts and the planner log / bench JSON report.
[[nodiscard]] constexpr const char* backend_name(BackendKind k) noexcept {
    switch (k) {
        case BackendKind::sample: return "sample";
        case BackendKind::radix: return "radix";
        case BackendKind::bitonic: return "bitonic";
    }
    return "?";
}

/// Bit of one backend inside a quarantine mask (simt::Device::
/// backend_quarantine, PlanQuery::quarantined): the server's per-backend
/// circuit breaker sets bits to route the planner around faulting backends.
[[nodiscard]] constexpr std::uint32_t backend_bit(BackendKind k) noexcept {
    return 1u << static_cast<std::uint32_t>(k);
}

/// Parses a backend name; "auto" (and anything unknown) maps to nullopt,
/// i.e. "let the planner decide".
[[nodiscard]] std::optional<BackendKind> parse_backend(std::string_view name) noexcept;

/// The GPUSEL_BACKEND environment override, re-read on every call so tests
/// can flip it between selections.  Unset / "auto" / unknown -> nullopt.
[[nodiscard]] std::optional<BackendKind> backend_env_override();

/// One selection algorithm behind a uniform contract.  `data` is staged
/// and NaN-free (the front-ends' pre-pass guarantees it); `stream`
/// overrides the selection's stream as in try_sample_select_staged
/// (-1 keeps cfg.stream).  Implementations fill the algorithmic result
/// fields (value/threshold/elements, levels, equality_exit, resamples,
/// fallback_levels); the dispatching front-end stamps timing, launches,
/// aux_bytes and the NaN tail.
template <typename T>
class SelectionBackend {
public:
    virtual ~SelectionBackend() = default;
    [[nodiscard]] virtual BackendKind kind() const noexcept = 0;

    /// Rank selection: the element of ascending `rank` in `data`.
    [[nodiscard]] virtual Result<SelectResult<T>> select(simt::Device& dev, DataHolder<T> data,
                                                         std::size_t rank,
                                                         const SampleSelectConfig& cfg,
                                                         int stream) const = 0;

    /// The k largest elements of `data` (unordered) plus the threshold.
    [[nodiscard]] virtual Result<TopKResult<T>> topk_largest(simt::Device& dev,
                                                             DataHolder<T> data, std::size_t k,
                                                             const SampleSelectConfig& cfg,
                                                             int stream) const = 0;
};

/// The process-wide instance of one backend kind (backends are stateless;
/// all state lives in the per-call pipeline context and pooled scratch).
template <typename T>
[[nodiscard]] const SelectionBackend<T>& selection_backend(BackendKind kind);

extern template const SelectionBackend<float>& selection_backend<float>(BackendKind);
extern template const SelectionBackend<double>& selection_backend<double>(BackendKind);
extern template const SelectionBackend<ArgPair>& selection_backend<ArgPair>(BackendKind);

}  // namespace gpusel::core
