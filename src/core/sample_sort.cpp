#include "core/sample_sort.hpp"

#include <stdexcept>

#include "bitonic/bitonic.hpp"
#include "core/count_kernel.hpp"
#include "core/reduce_kernel.hpp"
#include "core/sample_kernel.hpp"
#include "simt/timing.hpp"

namespace gpusel::core {

namespace {

/// Scatters every element into its bucket's contiguous output range:
/// out[prefix[bucket] + block_base + local] = element.  Per-block shared
/// cursors are seeded from the reduce_offsets result; this is the filter
/// kernel generalized to all buckets at once (classic sample-sort scatter).
template <typename T>
void scatter_all_kernel(simt::Device& dev, std::span<const T> data,
                        std::span<const std::uint8_t> oracles,
                        std::span<const std::int32_t> block_offsets,
                        std::span<const std::int32_t> prefix, std::span<T> out,
                        const SearchTree<T>& tree, const SampleSelectConfig& cfg,
                        simt::LaunchOrigin origin, int grid_dim) {
    const std::size_t n = data.size();
    const auto b = static_cast<std::size_t>(tree.num_buckets);
    dev.launch(
        "scatter_all",
        {.grid_dim = grid_dim, .block_dim = cfg.block_dim, .origin = origin,
         .unroll = cfg.unroll},
        [&, n, b](simt::BlockCtx& blk) {
            auto cursors = blk.shared_array<std::int32_t>(b);
            const auto base_row =
                static_cast<std::size_t>(blk.block_idx()) * b;
            for (std::size_t i = 0; i < b; ++i) {
                cursors[i] = prefix[i] + block_offsets[base_row + i];
            }
            blk.charge_global_read(2 * b * sizeof(std::int32_t));
            blk.charge_shared(b * sizeof(std::int32_t));
            blk.sync();

            blk.warp_tiles(n, [&](simt::WarpCtx& w, std::size_t base, std::size_t) {
                std::uint8_t orc[simt::kWarpSize];
                T elems[simt::kWarpSize];
                std::int32_t which[simt::kWarpSize];
                std::int32_t off[simt::kWarpSize];
                w.load(oracles, base, orc);
                w.load(data, base, elems);
                for (int l = 0; l < w.lanes(); ++l) which[l] = orc[l];
                w.fetch_add(simt::AtomicSpace::shared, cursors, which, off,
                            cfg.warp_aggregation, tree.height);
                for (int l = 0; l < w.lanes(); ++l) {
                    out[static_cast<std::size_t>(off[l])] = elems[l];
                }
                // bucket-scattered writes
                w.block().counters().scattered_bytes_written +=
                    static_cast<std::uint64_t>(w.lanes()) * sizeof(T);
            });
        });
}

/// Copies src -> dst (same size) with a grid-stride copy kernel.
template <typename T>
void copy_back(simt::Device& dev, std::span<const T> src, std::span<T> dst,
               simt::LaunchOrigin origin, int block_dim) {
    const std::size_t n = src.size();
    if (n == 0) return;
    const int grid = simt::suggest_grid(dev.arch(), n, block_dim);
    dev.launch("copy", {.grid_dim = grid, .block_dim = block_dim, .origin = origin},
               [=](simt::BlockCtx& blk) {
                   blk.warp_tiles(n, [&](simt::WarpCtx& w, std::size_t base, std::size_t) {
                       T regs[simt::kWarpSize];
                       w.load(src, base, regs);
                       w.store(dst, base, regs);
                   });
               });
}

/// Sorts `data` ascending in place, using `scratch` (same size) as the
/// scatter target of each level.
template <typename T>
void sort_segment(simt::Device& dev, std::span<T> data, std::span<T> scratch,
                  const SampleSelectConfig& cfg, std::size_t depth, SortResult<T>& res) {
    const std::size_t n = data.size();
    res.max_depth = std::max(res.max_depth, depth);
    if (depth > 64) throw std::runtime_error("sample_sort: recursion depth cap hit");
    const auto origin = depth == 0 ? simt::LaunchOrigin::host : simt::LaunchOrigin::device;

    if (n <= cfg.base_case_size) {
        bitonic::sort_on_device<T>(dev, data, n, origin, cfg.block_dim);
        return;
    }

    const auto b = static_cast<std::size_t>(cfg.num_buckets);
    const SearchTree<T> tree =
        sample_splitters<T>(dev, std::span<const T>(data), cfg, origin, depth * 977);
    auto oracles = dev.alloc<std::uint8_t>(n);
    auto totals = dev.alloc<std::int32_t>(b);
    const int grid = simt::suggest_grid(dev.arch(), n, cfg.block_dim, cfg.unroll);
    auto block_counts = dev.alloc<std::int32_t>(static_cast<std::size_t>(grid) * b);
    count_kernel<T>(dev, std::span<const T>(data), tree, oracles.span(), totals.span(),
                    block_counts.span(), cfg, origin);
    reduce_kernel(dev, block_counts.span(), grid, cfg.num_buckets, totals.span(),
                  /*keep_block_offsets=*/true, origin, cfg.block_dim);
    auto prefix = dev.alloc<std::int32_t>(b + 1);
    (void)select_bucket_kernel(dev, totals.span(), prefix.span(), 0, origin);

    scatter_all_kernel<T>(dev, std::span<const T>(data), oracles.span(), block_counts.span(),
                          prefix.span(), scratch, tree, cfg, origin, grid);

    // Small child buckets are sorted by ONE batched bitonic launch (one
    // block per bucket); only oversized buckets recurse.
    std::vector<bitonic::Segment> small;
    small.reserve(b);
    for (std::size_t i = 0; i < b; ++i) {
        const auto lo = static_cast<std::size_t>(prefix[i]);
        const auto hi = static_cast<std::size_t>(prefix[i + 1]);
        const std::size_t len = hi - lo;
        if (len <= 1 || tree.equality[i]) continue;  // equality buckets are sorted
        if (len == n) {
            // Degenerate sample: retry the whole segment with a new salt.
            sort_segment(dev, scratch, data, cfg, depth + 1, res);
            copy_back<T>(dev, std::span<const T>(scratch), data, origin, cfg.block_dim);
            return;
        }
        if (len <= bitonic::kMaxSortSize) {
            small.push_back({lo, len});
        } else {
            sort_segment(dev, scratch.subspan(lo, len), data.subspan(lo, len), cfg, depth + 1,
                         res);
        }
    }
    if (!small.empty()) {
        res.max_depth = std::max(res.max_depth, depth + 1);
        bitonic::batched_sort_on_device<T>(dev, scratch, small, origin, cfg.block_dim,
                                           cfg.stream);
    }
    copy_back<T>(dev, std::span<const T>(scratch), data, origin, cfg.block_dim);
}

}  // namespace

template <typename T>
SortResult<T> sample_sort(simt::Device& dev, std::span<const T> input,
                          const SampleSelectConfig& cfg) {
    // The scatter needs per-block offsets, so sorting uses the
    // shared-atomic hierarchy regardless of cfg.atomic_space.
    SampleSelectConfig sort_cfg = cfg;
    sort_cfg.atomic_space = simt::AtomicSpace::shared;
    sort_cfg.validate(/*exact=*/true);

    const std::size_t n = input.size();
    auto buf = dev.alloc<T>(n);
    auto scratch = dev.alloc<T>(n);
    std::copy(input.begin(), input.end(), buf.data());

    SortResult<T> res;
    const double t0 = dev.elapsed_ns();
    const std::uint64_t l0 = dev.launch_count();
    if (n > 0) sort_segment<T>(dev, buf.span(), scratch.span(), sort_cfg, 0, res);
    res.sim_ns = dev.elapsed_ns() - t0;
    res.launches = dev.launch_count() - l0;
    res.sorted.assign(buf.data(), buf.data() + n);
    return res;
}

template SortResult<float> sample_sort<float>(simt::Device&, std::span<const float>,
                                              const SampleSelectConfig&);
template SortResult<double> sample_sort<double>(simt::Device&, std::span<const double>,
                                                const SampleSelectConfig&);

}  // namespace gpusel::core
