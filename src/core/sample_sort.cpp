#include "core/sample_sort.hpp"

#include <stdexcept>

#include "bitonic/bitonic.hpp"
#include "core/float_order.hpp"
#include "core/pipeline.hpp"
#include "simt/timing.hpp"

namespace gpusel::core {

namespace {

/// Scatters every element into its bucket's contiguous output range:
/// out[prefix[bucket] + block_base + local] = element.  Per-block shared
/// cursors are seeded from the reduce_offsets result; this is the filter
/// kernel generalized to all buckets at once (classic sample-sort scatter).
template <typename T>
void scatter_all_kernel(simt::Device& dev, std::span<const T> data,
                        std::span<const std::uint8_t> oracles,
                        std::span<const std::int32_t> block_offsets,
                        std::span<const std::int32_t> prefix, std::span<T> out,
                        const SearchTree<T>& tree, const SampleSelectConfig& cfg,
                        simt::LaunchOrigin origin, int grid_dim) {
    const std::size_t n = data.size();
    const auto b = static_cast<std::size_t>(tree.num_buckets);
    dev.launch(
        "scatter_all",
        {.grid_dim = grid_dim, .block_dim = cfg.block_dim, .origin = origin,
         .unroll = cfg.unroll, .stream = cfg.stream},
        [&, n, b](simt::BlockCtx& blk) {
            auto cursors = blk.shared_array<std::int32_t>(b);
            const auto base_row =
                static_cast<std::size_t>(blk.block_idx()) * b;
            for (std::size_t i = 0; i < b; ++i) {
                blk.shared_st(cursors, i,
                              blk.ld(prefix, i) + blk.ld(block_offsets, base_row + i));
            }
            blk.charge_global_read(2 * b * sizeof(std::int32_t));
            blk.charge_shared(b * sizeof(std::int32_t));
            blk.sync();

            blk.warp_tiles(n, [&](simt::WarpCtx& w, std::size_t base, std::size_t) {
                std::uint8_t orc[simt::kWarpSize];
                T elems[simt::kWarpSize];
                std::int32_t which[simt::kWarpSize];
                std::int32_t off[simt::kWarpSize];
                w.load(oracles, base, orc);
                w.load(data, base, elems);
                for (int l = 0; l < w.lanes(); ++l) which[l] = orc[l];
                w.fetch_add(simt::AtomicSpace::shared, cursors, which, off,
                            cfg.warp_aggregation, tree.height);
                for (int l = 0; l < w.lanes(); ++l) {
                    blk.st(out, static_cast<std::size_t>(off[l]), elems[l]);
                }
                // bucket-scattered writes
                w.block().counters().scattered_bytes_written +=
                    static_cast<std::uint64_t>(w.lanes()) * sizeof(T);
            });
        });
}

/// Sorts `data` ascending in place, using `scratch` (same size) as the
/// scatter target of each level.  `stalls` counts consecutive no-progress
/// levels on this path; past cfg.max_stalled_levels the segment switches to
/// the deterministic tripartition level (docs/robustness.md).
template <typename T>
Status sort_segment(const PipelineContext& ctx, std::span<T> data, std::span<T> scratch,
                    std::size_t depth, std::size_t stalls, SortResult<T>& res) {
    simt::Device& dev = ctx.dev();
    const SampleSelectConfig& cfg = ctx.cfg();
    const std::size_t n = data.size();
    res.max_depth = std::max(res.max_depth, depth);
    if (depth >= static_cast<std::size_t>(cfg.max_levels)) {
        return Status::failure(SelectError::depth_exceeded,
                               "sample_sort: max_levels recursion depth exceeded");
    }
    const auto origin = depth == 0 ? simt::LaunchOrigin::host : simt::LaunchOrigin::device;

    if (n <= cfg.base_case_size) {
        return with_fault_retry(ctx, [&] { sort_base_case<T>(ctx, data, origin); });
    }

    // Every-bucket level: rank 0 is located only for its prefix table.
    const bool use_fallback =
        cfg.force_fallback || stalls > static_cast<std::size_t>(cfg.max_stalled_levels);
    auto lvres = use_fallback
                     ? try_run_pivot_level<T>(ctx, std::span<const T>(data), /*rank=*/0, origin)
                     : try_run_bucket_level<T>(ctx, std::span<const T>(data), /*rank=*/0, origin,
                                               depth * 977);
    if (!lvres.ok()) return lvres.status();
    const LevelOutcome<T> lv = lvres.take();
    if (use_fallback) {
        ++res.fallback_levels;
        ++ctx.dev().robustness().fallback_levels;
    }
    const auto b = static_cast<std::size_t>(lv.tree.num_buckets);
    const auto prefix = lv.prefix_span();

    Status s = with_fault_retry(ctx, [&] {
        scatter_all_kernel<T>(dev, std::span<const T>(data), lv.oracles.span(),
                              lv.block_counts.span(), prefix, scratch, lv.tree, cfg, origin,
                              lv.grid);
    });
    if (!s.ok()) return s;

    // Small child buckets are sorted by ONE batched bitonic launch (one
    // block per bucket); only oversized buckets recurse.
    std::vector<bitonic::Segment> small;
    small.reserve(b);
    for (std::size_t i = 0; i < b; ++i) {
        const auto lo = static_cast<std::size_t>(prefix[i]);
        const auto hi = static_cast<std::size_t>(prefix[i + 1]);
        const std::size_t len = hi - lo;
        if (len <= 1 || lv.tree.equality[i]) continue;  // equality buckets are sorted
        if (len == n) {
            if (use_fallback) {
                // The tripartition tree's equality bucket is non-empty by
                // construction, so this means broken invariants.
                return Status::failure(
                    SelectError::no_progress,
                    "sample_sort: deterministic fallback level failed to shrink the bucket");
            }
            // Degenerate sample: retry the whole segment with a new salt
            // (the depth term); past the stall budget the child level runs
            // the deterministic fallback.
            ++res.resamples;
            ++ctx.dev().robustness().resamples;
            const std::size_t child_stalls = stalls + 1;
            if (child_stalls == static_cast<std::size_t>(cfg.max_stalled_levels) + 1) {
                ++ctx.dev().robustness().fallbacks;
            }
            s = sort_segment(ctx, scratch, data, depth + 1, child_stalls, res);
            if (!s.ok()) return s;
            return with_fault_retry(ctx, [&] {
                launch_copy<T>(dev, std::span<const T>(scratch), 0, data, 0, n, origin,
                               cfg.block_dim, cfg.stream);
            });
        }
        if (len <= bitonic::kMaxSortSize) {
            small.push_back({lo, len});
        } else {
            s = sort_segment(ctx, scratch.subspan(lo, len), data.subspan(lo, len), depth + 1,
                             /*stalls=*/0, res);
            if (!s.ok()) return s;
        }
    }
    if (!small.empty()) {
        res.max_depth = std::max(res.max_depth, depth + 1);
        s = with_fault_retry(ctx, [&] {
            bitonic::batched_sort_on_device<T>(dev, scratch, small, origin, cfg.block_dim,
                                               cfg.stream);
        });
        if (!s.ok()) return s;
    }
    return with_fault_retry(ctx, [&] {
        launch_copy<T>(dev, std::span<const T>(scratch), 0, data, 0, n, origin, cfg.block_dim,
                       cfg.stream);
    });
}

}  // namespace

template <typename T>
Result<SortResult<T>> try_sample_sort(simt::Device& dev, std::span<const T> input,
                                      const SampleSelectConfig& cfg) {
    // The scatter needs per-block offsets, so sorting uses the
    // shared-atomic hierarchy regardless of cfg.atomic_space.
    SampleSelectConfig sort_cfg = cfg;
    sort_cfg.atomic_space = simt::AtomicSpace::shared;
    try {
        sort_cfg.validate(/*exact=*/true);
    } catch (const std::invalid_argument& e) {
        return Status::failure(SelectError::invalid_argument, e.what());
    }

    const std::size_t n = input.size();
    PipelineContext ctx(dev, sort_cfg);
    DataHolder<T> buf;
    DataHolder<T> scratch;
    Status s = with_fault_retry(ctx, [&] {
        buf = DataHolder<T>::stage(ctx, input);
        scratch = DataHolder<T>::acquire(ctx, n);
    });
    if (!s.ok()) return s;

    SortResult<T> res;
    // NaN staging pre-pass: NaN keys are the largest in the total order, so
    // the sorted output is the sorted numeric prefix followed by the NaN
    // tail the partition already formed.
    res.nan_count = partition_nans_to_back(buf.span());
    if (res.nan_count > 0 && sort_cfg.nan_policy == NanPolicy::reject) {
        return Status::failure(SelectError::nan_keys_rejected,
                               "sample_sort: input contains NaN keys");
    }
    const std::size_t n_num = n - res.nan_count;

    const double t0 = dev.elapsed_ns();
    const std::uint64_t l0 = dev.launch_count();
    if (n_num > 0) {
        s = sort_segment<T>(ctx, buf.span().subspan(0, n_num), scratch.span().subspan(0, n_num),
                            0, 0, res);
        if (!s.ok()) return s;
    }
    res.sim_ns = dev.elapsed_ns() - t0;
    res.launches = dev.launch_count() - l0;
    const auto sorted = buf.span();
    res.sorted.assign(sorted.begin(), sorted.end());
    return res;
}

template <typename T>
SortResult<T> sample_sort(simt::Device& dev, std::span<const T> input,
                          const SampleSelectConfig& cfg) {
    return try_sample_sort<T>(dev, input, cfg).take_or_throw();
}

template Result<SortResult<float>> try_sample_sort<float>(simt::Device&, std::span<const float>,
                                                          const SampleSelectConfig&);
template Result<SortResult<double>> try_sample_sort<double>(simt::Device&,
                                                            std::span<const double>,
                                                            const SampleSelectConfig&);
template SortResult<float> sample_sort<float>(simt::Device&, std::span<const float>,
                                              const SampleSelectConfig&);
template SortResult<double> sample_sort<double>(simt::Device&, std::span<const double>,
                                                const SampleSelectConfig&);

}  // namespace gpusel::core
