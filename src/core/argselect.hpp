#pragma once
// Index-returning selection front-ends (docs/argselect.md): the
// avx512_argsort / avx512_qsort_kv shape on top of the generic selection
// pipeline.  Each key is paired with its original position into an ArgPair
// (core/key_payload.hpp) and the unmodified kernels select over the pairs;
// the payload tie-break makes every answer deterministic, including on
// all-equal inputs.
//
//  * argselect(keys, rank): the (key, index) pair std::nth_element would
//    place at `rank` under (key total order, then index) -- the index
//    stability policy.
//  * topk_largest_indices(keys, k): the k largest keys with their original
//    positions, sorted descending; equal keys by ascending index.  Runs on
//    negated-key pairs so the tie-break still prefers smaller indices.
//  * partial_sort_by_key(keys, payloads, k): the k smallest (key, payload)
//    records in ascending key order -- select the k-th smallest pair as a
//    threshold, extract exactly k pairs in one compress-store pass, sort
//    only those (device bitonic when they fit the network).
//
// NaN keys rank above +inf (NanPolicy::propagate_largest) and among
// themselves by ascending index; NanPolicy::reject fails with
// SelectError::nan_keys_rejected.  NaN-tail answers come straight from the
// host-side staging pre-pass without touching the device.

#include <cstdint>
#include <span>
#include <vector>

#include "core/config.hpp"
#include "core/key_payload.hpp"
#include "core/status.hpp"
#include "simt/device.hpp"

namespace gpusel::core {

struct ArgSelectResult {
    /// The key of the requested rank ...
    float key = 0.0f;
    /// ... and its original position in the input.
    std::uint32_t index = 0;
    /// Pipeline accounting, as in SelectResult (core/sample_select.hpp).
    std::size_t levels = 0;
    bool equality_exit = false;
    double sim_ns = 0.0;
    std::uint64_t launches = 0;
    std::size_t resamples = 0;
    std::size_t fallback_levels = 0;
    std::size_t nan_count = 0;
};

/// Fault-hardened argselect: the (key, original index) pair of the given
/// 0-based ascending rank under the total order (key, then index).
[[nodiscard]] Result<ArgSelectResult> try_argselect(simt::Device& dev,
                                                    std::span<const float> keys, std::size_t rank,
                                                    const SampleSelectConfig& cfg);

/// Throwing wrapper over try_argselect.
[[nodiscard]] ArgSelectResult argselect(simt::Device& dev, std::span<const float> keys,
                                        std::size_t rank, const SampleSelectConfig& cfg);

struct ArgTopKResult {
    /// The k largest keys, sorted descending (ties: ascending index).
    std::vector<float> values;
    /// indices[i] is the original position of values[i].
    std::vector<std::uint32_t> indices;
    /// The k-th largest key (== values.back()).
    float threshold = 0.0f;
    double sim_ns = 0.0;
    std::uint64_t launches = 0;
    std::size_t nan_count = 0;
};

/// Fault-hardened top-k-with-indices: the k largest keys and their
/// original positions, fully ordered (descending key, ascending index on
/// ties) -- what a retrieval workload consumes directly.
[[nodiscard]] Result<ArgTopKResult> try_topk_largest_indices(simt::Device& dev,
                                                             std::span<const float> keys,
                                                             std::size_t k,
                                                             const SampleSelectConfig& cfg);

/// Throwing wrapper over try_topk_largest_indices.
[[nodiscard]] ArgTopKResult topk_largest_indices(simt::Device& dev, std::span<const float> keys,
                                                 std::size_t k, const SampleSelectConfig& cfg);

struct KeyValueSortResult {
    /// The k smallest keys in ascending order (ties: ascending original
    /// index, so the sort is stable with respect to the input).
    std::vector<float> keys;
    /// The caller's payload carried along under the same permutation.
    std::vector<std::uint32_t> payloads;
    double sim_ns = 0.0;
    std::uint64_t launches = 0;
    std::size_t nan_count = 0;
};

/// Fault-hardened key/value partial sort (the avx512_qsort_kv shape):
/// returns the k smallest (key, payload) records in ascending key order.
/// `payloads.size()` must equal `keys.size()`.
[[nodiscard]] Result<KeyValueSortResult> try_partial_sort_by_key(
    simt::Device& dev, std::span<const float> keys, std::span<const std::uint32_t> payloads,
    std::size_t k, const SampleSelectConfig& cfg);

/// Throwing wrapper over try_partial_sort_by_key.
[[nodiscard]] KeyValueSortResult partial_sort_by_key(simt::Device& dev,
                                                     std::span<const float> keys,
                                                     std::span<const std::uint32_t> payloads,
                                                     std::size_t k,
                                                     const SampleSelectConfig& cfg);

}  // namespace gpusel::core
