#pragma once
// Complete sample sort (the paper's second future-work item in Sec. VI:
// "extension to a complete sorting algorithm").  Reuses SampleSelect's
// sample/count/reduce machinery, but the filter step becomes a scatter of
// *all* buckets into their contiguous output ranges (classic GPU
// super-scalar sample sort); each bucket is then sorted recursively, with
// the bitonic network as the base case and equality buckets finishing
// immediately.

#include <span>
#include <vector>

#include "core/config.hpp"
#include "core/status.hpp"
#include "simt/device.hpp"

namespace gpusel::core {

template <typename T>
struct SortResult {
    std::vector<T> sorted;
    double sim_ns = 0.0;
    std::uint64_t launches = 0;
    std::size_t max_depth = 0;
    /// Guaranteed-progress accounting (docs/robustness.md).
    std::size_t resamples = 0;
    std::size_t fallback_levels = 0;
    /// NaN keys moved to the tail of the sorted output by the staging
    /// pre-pass (NaN is the largest key in the total order).
    std::size_t nan_count = 0;
};

/// Fault-hardened sample sort: injected faults, rejected NaN keys and
/// exhausted recursion depth come back as a typed Status.
template <typename T>
[[nodiscard]] Result<SortResult<T>> try_sample_sort(simt::Device& dev, std::span<const T> input,
                                                    const SampleSelectConfig& cfg);

/// Fully sorts `input` ascending.
template <typename T>
[[nodiscard]] SortResult<T> sample_sort(simt::Device& dev, std::span<const T> input,
                                        const SampleSelectConfig& cfg);

extern template Result<SortResult<float>> try_sample_sort<float>(simt::Device&,
                                                                 std::span<const float>,
                                                                 const SampleSelectConfig&);
extern template Result<SortResult<double>> try_sample_sort<double>(simt::Device&,
                                                                   std::span<const double>,
                                                                   const SampleSelectConfig&);
extern template SortResult<float> sample_sort<float>(simt::Device&, std::span<const float>,
                                                     const SampleSelectConfig&);
extern template SortResult<double> sample_sort<double>(simt::Device&, std::span<const double>,
                                                       const SampleSelectConfig&);

}  // namespace gpusel::core
