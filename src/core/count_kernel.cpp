#include "core/count_kernel.hpp"

#include <stdexcept>

#include "simt/simd.hpp"
#include "simt/timing.hpp"

namespace gpusel::core {

void launch_fill32(simt::Device& dev, std::span<std::int32_t> buf, std::int32_t value,
                   simt::LaunchOrigin origin, int stream) {
    const int grid = simt::suggest_grid(dev.arch(), buf.size(), 256);
    dev.launch("memset", {.grid_dim = grid, .block_dim = 256, .origin = origin, .stream = stream},
               [buf, value](simt::BlockCtx& blk) {
                   blk.warp_tiles(buf.size(), [&](simt::WarpCtx& w, std::size_t base, std::size_t) {
                       std::int32_t vals[simt::kWarpSize];
                       for (int l = 0; l < w.lanes(); ++l) vals[l] = value;
                       w.store(buf, base, vals);
                   });
               });
}

namespace {

/// Stages the search tree (node values + comparison flags) into block
/// shared memory, charging the per-block global read.
template <typename T>
struct SharedTree {
    std::span<const T> nodes;
    std::span<const std::uint8_t> leq;
    /// Host-side int32 mirror of `leq` for the vectorized traversal
    /// (uncharged scratch: the simulated shared reads stay the uint8 ones).
    const std::int32_t* leq32;
    std::int32_t height;
    std::int32_t num_buckets;
};

template <typename T>
SharedTree<T> stage_tree(simt::BlockCtx& blk, const SearchTree<T>& tree) {
    const std::size_t m = tree.nodes.size();
    auto sh_nodes = blk.shared_array<T>(m);
    auto sh_leq = blk.shared_array<std::uint8_t>(m);
    std::copy(tree.nodes.begin(), tree.nodes.end(), sh_nodes.begin());
    std::copy(tree.leq.begin(), tree.leq.end(), sh_leq.begin());
    blk.charge_global_read(tree.device_bytes());
    blk.charge_shared(tree.device_bytes());
    blk.sync();
    return {sh_nodes, sh_leq, tree.leq32.data(), tree.height, tree.num_buckets};
}

/// Search-tree traversal for one warp tile (the Fig. 4 loop), all lanes
/// advanced level by level through the simd lane-vector layer.  Charges
/// `height` instruction-equivalents and the shared-memory node reads per
/// lane -- per tile, identically for every execution tier.
template <typename T>
void traverse_tile(simt::WarpCtx& w, const SharedTree<T>& t, const T* elems,
                   std::int32_t* bucket) {
    simt::simd::traverse_tree(t.nodes.data(), t.leq32, t.height, elems, w.lanes(), bucket);
    const auto lanes = static_cast<std::uint64_t>(w.lanes());
    const auto h = static_cast<std::uint64_t>(t.height);
    w.add_instr(lanes * h);
    w.touch_shared(lanes * h * (sizeof(T) + 1));
}

}  // namespace

template <typename T>
int count_kernel(simt::Device& dev, std::span<const T> data, const SearchTree<T>& tree,
                 std::span<std::uint8_t> oracles, std::span<std::int32_t> totals,
                 std::span<std::int32_t> block_counts, const SampleSelectConfig& cfg,
                 simt::LaunchOrigin origin, int stream) {
    const std::size_t n = data.size();
    const auto b = static_cast<std::size_t>(tree.num_buckets);
    const bool shared_mode = cfg.atomic_space == simt::AtomicSpace::shared;
    const bool write_oracles = !oracles.empty();
    if (write_oracles && oracles.size() != n) {
        throw std::invalid_argument("oracle buffer size mismatch");
    }
    const int grid = simt::suggest_grid(dev.arch(), n, cfg.block_dim, cfg.unroll);
    if (shared_mode &&
        block_counts.size() < static_cast<std::size_t>(grid) * b) {
        throw std::invalid_argument("block_counts too small for grid");
    }
    if (!shared_mode && totals.size() != b) {
        throw std::invalid_argument("totals buffer size mismatch");
    }

    dev.launch(
        write_oracles ? "count" : "count_nowrite",
        {.grid_dim = grid, .block_dim = cfg.block_dim, .origin = origin, .unroll = cfg.unroll,
         .stream = stream < 0 ? cfg.stream : stream},
        [&, n, b](simt::BlockCtx& blk) {
            const SharedTree<T> t = stage_tree(blk, tree);

            std::span<std::int32_t> counters;
            std::span<std::int32_t> sh_counters;
            if (shared_mode) {
                sh_counters = blk.shared_array<std::int32_t>(b);
                std::fill(sh_counters.begin(), sh_counters.end(), 0);
                blk.charge_shared(b * sizeof(std::int32_t));
                blk.sync();
                counters = sh_counters;
            } else {
                counters = totals;
            }
            const auto space =
                shared_mode ? simt::AtomicSpace::shared : simt::AtomicSpace::global;

            // One warp revisits the array every `stride` elements; with the
            // grid capped at 2 blocks/SM that stride is far beyond any
            // prefetcher's reach, so hint the next tile explicitly (pure
            // host-side latency hiding, no simulated events involved).
            const std::size_t stride = static_cast<std::size_t>(grid) *
                                       static_cast<std::size_t>(cfg.block_dim) *
                                       static_cast<std::size_t>(std::max(1, cfg.unroll));
            blk.warp_tiles(n, [&](simt::WarpCtx& w, std::size_t base, std::size_t) {
                T elems[simt::kWarpSize];
                std::int32_t bucket[simt::kWarpSize];
                if (base + stride < n) {
                    __builtin_prefetch(data.data() + base + stride);
                    __builtin_prefetch(data.data() + base + stride + 16);
                    if (write_oracles) __builtin_prefetch(oracles.data() + base + stride, 1);
                }
                w.load(data, base, elems);
                traverse_tile(w, t, elems, bucket);
                if (write_oracles) {
                    std::uint8_t by[simt::kWarpSize];
                    simt::simd::pack_low_bytes(bucket, w.lanes(), by);
                    w.store(oracles, base, by);
                }
                if (cfg.warp_aggregation) {
                    w.atomic_add_aggregated(space, counters, bucket, tree.height);
                } else {
                    w.atomic_add(space, counters, bucket);
                }
            });

            if (shared_mode) {
                // Publish the block-local partial counts (step 1 of the
                // Sec. IV-G hierarchy).
                blk.sync();
                const auto base = static_cast<std::size_t>(blk.block_idx()) * b;
                for (std::size_t i = 0; i < b; ++i) {
                    blk.st(block_counts, base + i, blk.shared_ld(sh_counters, i));
                }
                blk.charge_shared(b * sizeof(std::int32_t));
                blk.charge_global_write(b * sizeof(std::int32_t));
            }
        });
    return grid;
}

template int count_kernel<float>(simt::Device&, std::span<const float>, const SearchTree<float>&,
                                 std::span<std::uint8_t>, std::span<std::int32_t>,
                                 std::span<std::int32_t>, const SampleSelectConfig&,
                                 simt::LaunchOrigin, int);
template int count_kernel<double>(simt::Device&, std::span<const double>,
                                  const SearchTree<double>&, std::span<std::uint8_t>,
                                  std::span<std::int32_t>, std::span<std::int32_t>,
                                  const SampleSelectConfig&, simt::LaunchOrigin, int);
template int count_kernel<ArgPair>(simt::Device&, std::span<const ArgPair>,
                                   const SearchTree<ArgPair>&, std::span<std::uint8_t>,
                                   std::span<std::int32_t>, std::span<std::int32_t>,
                                   const SampleSelectConfig&, simt::LaunchOrigin, int);

}  // namespace gpusel::core
