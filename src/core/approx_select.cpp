#include "core/approx_select.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/pipeline.hpp"

namespace gpusel::core {

template <typename T>
ApproxMultiResult<T> approx_multi_select(simt::Device& dev, std::span<const T> input,
                                         std::span<const std::size_t> ranks,
                                         const SampleSelectConfig& cfg) {
    cfg.validate(/*exact=*/false);
    const std::size_t n = input.size();
    if (ranks.empty()) return {};
    for (const std::size_t r : ranks) {
        if (n == 0 || r >= n) throw std::out_of_range("rank out of range");
    }
    const auto b = static_cast<std::size_t>(cfg.num_buckets);
    const auto origin = simt::LaunchOrigin::host;

    const double t0 = dev.elapsed_ns();
    const std::uint64_t l0 = dev.launch_count();

    // Single count-only level: no oracle write (this variant never
    // filters), no per-block offsets kept.
    PipelineContext ctx(dev, cfg);
    const auto lv = run_bucket_level<T>(
        ctx, input, ranks.front(), origin, /*salt=*/0,
        {.write_oracles = false, .keep_block_offsets = false, .locate = true});
    const auto totals = lv.totals_span();
    const auto prefix = lv.prefix_span();

    std::size_t max_bucket = 0;
    for (std::size_t i = 0; i < b; ++i) {
        max_bucket = std::max(max_bucket, static_cast<std::size_t>(totals[i]));
    }

    // Splitter ranks are r_i = prefix[i] for i = 1..b-1; answer every target
    // rank from the same prefix table.
    ApproxMultiResult<T> res;
    res.points.resize(ranks.size());
    for (std::size_t q = 0; q < ranks.size(); ++q) {
        const std::size_t rank = ranks[q];
        std::size_t best = 1;
        std::size_t best_err = static_cast<std::size_t>(-1);
        for (std::size_t i = 1; i < b; ++i) {
            const auto r = static_cast<std::size_t>(prefix[i]);
            const std::size_t err = r > rank ? r - rank : rank - r;
            if (err < best_err) {
                best_err = err;
                best = i;
            }
        }
        auto& p = res.points[q];
        p.value = lv.tree.splitters[best - 1];
        p.splitter_rank = static_cast<std::size_t>(prefix[best]);
        p.rank_error = best_err;
        p.max_bucket = max_bucket;
    }
    res.sim_ns = dev.elapsed_ns() - t0;
    res.launches = dev.launch_count() - l0;
    for (auto& p : res.points) {
        p.sim_ns = res.sim_ns;
        p.launches = res.launches;
    }
    return res;
}

template <typename T>
ApproxResult<T> approx_select_device(simt::Device& dev, std::span<const T> data, std::size_t rank,
                                     const SampleSelectConfig& cfg) {
    const std::size_t ranks[] = {rank};
    auto multi = approx_multi_select<T>(dev, data, ranks, cfg);
    return multi.points.front();
}

template <typename T>
ApproxResult<T> approx_select(simt::Device& dev, std::span<const T> input, std::size_t rank,
                              const SampleSelectConfig& cfg) {
    PipelineContext ctx(dev, cfg);
    auto buf = DataHolder<T>::stage(ctx, input);
    return approx_select_device<T>(dev, buf.span(), rank, cfg);
}

template ApproxMultiResult<float> approx_multi_select<float>(simt::Device&,
                                                             std::span<const float>,
                                                             std::span<const std::size_t>,
                                                             const SampleSelectConfig&);
template ApproxMultiResult<double> approx_multi_select<double>(simt::Device&,
                                                               std::span<const double>,
                                                               std::span<const std::size_t>,
                                                               const SampleSelectConfig&);
template ApproxResult<float> approx_select<float>(simt::Device&, std::span<const float>,
                                                  std::size_t, const SampleSelectConfig&);
template ApproxResult<double> approx_select<double>(simt::Device&, std::span<const double>,
                                                    std::size_t, const SampleSelectConfig&);
template ApproxResult<float> approx_select_device<float>(simt::Device&, std::span<const float>,
                                                         std::size_t, const SampleSelectConfig&);
template ApproxResult<double> approx_select_device<double>(simt::Device&,
                                                           std::span<const double>, std::size_t,
                                                           const SampleSelectConfig&);

}  // namespace gpusel::core
