#include "core/approx_select.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/count_kernel.hpp"
#include "core/reduce_kernel.hpp"
#include "core/sample_kernel.hpp"
#include "simt/timing.hpp"

namespace gpusel::core {

template <typename T>
ApproxMultiResult<T> approx_multi_select(simt::Device& dev, std::span<const T> input,
                                         std::span<const std::size_t> ranks,
                                         const SampleSelectConfig& cfg) {
    cfg.validate(/*exact=*/false);
    const std::size_t n = input.size();
    if (ranks.empty()) return {};
    for (const std::size_t r : ranks) {
        if (n == 0 || r >= n) throw std::out_of_range("rank out of range");
    }
    const auto b = static_cast<std::size_t>(cfg.num_buckets);
    const bool shared_mode = cfg.atomic_space == simt::AtomicSpace::shared;
    const auto origin = simt::LaunchOrigin::host;

    const double t0 = dev.elapsed_ns();
    const std::uint64_t l0 = dev.launch_count();

    const SearchTree<T> tree = sample_splitters<T>(dev, input, cfg, origin);

    auto totals = dev.alloc<std::int32_t>(b);
    const int grid = simt::suggest_grid(dev.arch(), n, cfg.block_dim, cfg.unroll);
    simt::DeviceBuffer<std::int32_t> block_counts;
    if (shared_mode) {
        block_counts = dev.alloc<std::int32_t>(static_cast<std::size_t>(grid) * b);
    } else {
        launch_memset32(dev, totals.span(), origin, cfg.stream);
    }
    // No oracle write: the single-level variant never filters.
    count_kernel<T>(dev, input, tree, /*oracles=*/{}, totals.span(), block_counts.span(), cfg,
                    origin);
    if (shared_mode) {
        reduce_kernel(dev, block_counts.span(), grid, cfg.num_buckets, totals.span(),
                      /*keep_block_offsets=*/false, origin, cfg.block_dim, cfg.stream);
    }
    auto prefix = dev.alloc<std::int32_t>(b + 1);
    (void)select_bucket_kernel(dev, totals.span(), prefix.span(), ranks.front(), origin,
                               cfg.stream);

    std::size_t max_bucket = 0;
    for (std::size_t i = 0; i < b; ++i) {
        max_bucket = std::max(max_bucket, static_cast<std::size_t>(totals[i]));
    }

    // Splitter ranks are r_i = prefix[i] for i = 1..b-1; answer every target
    // rank from the same prefix table.
    ApproxMultiResult<T> res;
    res.points.resize(ranks.size());
    for (std::size_t q = 0; q < ranks.size(); ++q) {
        const std::size_t rank = ranks[q];
        std::size_t best = 1;
        std::size_t best_err = static_cast<std::size_t>(-1);
        for (std::size_t i = 1; i < b; ++i) {
            const auto r = static_cast<std::size_t>(prefix[i]);
            const std::size_t err = r > rank ? r - rank : rank - r;
            if (err < best_err) {
                best_err = err;
                best = i;
            }
        }
        auto& p = res.points[q];
        p.value = tree.splitters[best - 1];
        p.splitter_rank = static_cast<std::size_t>(prefix[best]);
        p.rank_error = best_err;
        p.max_bucket = max_bucket;
    }
    res.sim_ns = dev.elapsed_ns() - t0;
    res.launches = dev.launch_count() - l0;
    for (auto& p : res.points) {
        p.sim_ns = res.sim_ns;
        p.launches = res.launches;
    }
    return res;
}

template <typename T>
ApproxResult<T> approx_select_device(simt::Device& dev, std::span<const T> data, std::size_t rank,
                                     const SampleSelectConfig& cfg) {
    const std::size_t ranks[] = {rank};
    auto multi = approx_multi_select<T>(dev, data, ranks, cfg);
    return multi.points.front();
}

template <typename T>
ApproxResult<T> approx_select(simt::Device& dev, std::span<const T> input, std::size_t rank,
                              const SampleSelectConfig& cfg) {
    auto buf = dev.alloc<T>(input.size());
    std::copy(input.begin(), input.end(), buf.data());
    return approx_select_device<T>(dev, buf.span(), rank, cfg);
}

template ApproxMultiResult<float> approx_multi_select<float>(simt::Device&,
                                                             std::span<const float>,
                                                             std::span<const std::size_t>,
                                                             const SampleSelectConfig&);
template ApproxMultiResult<double> approx_multi_select<double>(simt::Device&,
                                                               std::span<const double>,
                                                               std::span<const std::size_t>,
                                                               const SampleSelectConfig&);
template ApproxResult<float> approx_select<float>(simt::Device&, std::span<const float>,
                                                  std::size_t, const SampleSelectConfig&);
template ApproxResult<double> approx_select<double>(simt::Device&, std::span<const double>,
                                                    std::size_t, const SampleSelectConfig&);
template ApproxResult<float> approx_select_device<float>(simt::Device&, std::span<const float>,
                                                         std::size_t, const SampleSelectConfig&);
template ApproxResult<double> approx_select_device<double>(simt::Device&,
                                                           std::span<const double>, std::size_t,
                                                           const SampleSelectConfig&);

}  // namespace gpusel::core
