#include "core/approx_select.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/float_order.hpp"
#include "core/pipeline.hpp"

namespace gpusel::core {

template <typename T>
Result<ApproxMultiResult<T>> try_approx_multi_select(simt::Device& dev, std::span<const T> input,
                                                     std::span<const std::size_t> ranks,
                                                     const SampleSelectConfig& cfg) {
    try {
        cfg.validate(/*exact=*/false);
    } catch (const std::invalid_argument& e) {
        return Status::failure(SelectError::invalid_argument, e.what());
    }
    const std::size_t n = input.size();
    if (ranks.empty()) return ApproxMultiResult<T>{};
    for (const std::size_t r : ranks) {
        if (n == 0 || r >= n) {
            return Status::failure(SelectError::rank_out_of_range, "rank out of range");
        }
    }
    const auto origin = simt::LaunchOrigin::host;
    PipelineContext ctx(dev, cfg);

    // NaN staging pre-pass: the counting level must not see NaN keys, so
    // when any exist the level runs over a compacted copy (staged only in
    // that case -- clean inputs keep the zero-copy path).  Ranks inside
    // the NaN tail answer quiet NaN with zero rank error.
    const std::size_t nan_count = count_nan_keys(input);
    DataHolder<T> compacted;
    std::span<const T> level_data = input;
    if (nan_count > 0) {
        if (cfg.nan_policy == NanPolicy::reject) {
            return Status::failure(SelectError::nan_keys_rejected,
                                   "approx_select: input contains NaN keys");
        }
        Status staged =
            with_fault_retry(ctx, [&] { compacted = DataHolder<T>::stage(ctx, input); });
        if (!staged.ok()) return staged;
        (void)partition_nans_to_back(compacted.span());
        compacted.view(n - nan_count);
        level_data = compacted.span();
    }
    const std::size_t n_num = n - nan_count;

    ApproxMultiResult<T> res;
    res.points.resize(ranks.size());
    const double t0 = dev.elapsed_ns();
    const std::uint64_t l0 = dev.launch_count();

    if (n_num > 0) {
        const auto b = static_cast<std::size_t>(cfg.num_buckets);
        // The locate rank only picks lv.bucket (unused here); clamp it into
        // the numeric prefix so the select-bucket kernel stays in range.
        const std::size_t locate_rank = ranks.front() < n_num ? ranks.front() : n_num - 1;

        // Single count-only level: no oracle write (this variant never
        // filters), no per-block offsets kept.
        auto lvres = try_run_bucket_level<T>(
            ctx, level_data, locate_rank, origin, /*salt=*/0,
            {.write_oracles = false, .keep_block_offsets = false, .locate = true});
        if (!lvres.ok()) return lvres.status();
        const LevelOutcome<T> lv = lvres.take();
        const auto totals = lv.totals_span();
        const auto prefix = lv.prefix_span();

        std::size_t max_bucket = 0;
        for (std::size_t i = 0; i < b; ++i) {
            max_bucket = std::max(max_bucket, static_cast<std::size_t>(totals[i]));
        }

        // Splitter ranks are r_i = prefix[i] for i = 1..b-1; answer every
        // target rank from the same prefix table.
        for (std::size_t q = 0; q < ranks.size(); ++q) {
            const std::size_t rank = ranks[q];
            auto& p = res.points[q];
            if (rank >= n_num) {
                p.value = quiet_nan<T>();
                p.splitter_rank = rank;
                p.rank_error = 0;
                p.max_bucket = max_bucket;
                continue;
            }
            std::size_t best = 1;
            std::size_t best_err = static_cast<std::size_t>(-1);
            for (std::size_t i = 1; i < b; ++i) {
                const auto r = static_cast<std::size_t>(prefix[i]);
                const std::size_t err = r > rank ? r - rank : rank - r;
                if (err < best_err) {
                    best_err = err;
                    best = i;
                }
            }
            p.value = lv.tree.splitters[best - 1];
            p.splitter_rank = static_cast<std::size_t>(prefix[best]);
            p.rank_error = best_err;
            p.max_bucket = max_bucket;
        }
    } else {
        // All keys are NaN: every rank answers the NaN representative.
        for (std::size_t q = 0; q < ranks.size(); ++q) {
            auto& p = res.points[q];
            p.value = quiet_nan<T>();
            p.splitter_rank = ranks[q];
            p.rank_error = 0;
        }
    }
    res.sim_ns = dev.elapsed_ns() - t0;
    res.launches = dev.launch_count() - l0;
    for (auto& p : res.points) {
        p.sim_ns = res.sim_ns;
        p.launches = res.launches;
    }
    return res;
}

template <typename T>
ApproxMultiResult<T> approx_multi_select(simt::Device& dev, std::span<const T> input,
                                         std::span<const std::size_t> ranks,
                                         const SampleSelectConfig& cfg) {
    return try_approx_multi_select<T>(dev, input, ranks, cfg).take_or_throw();
}

template <typename T>
Result<ApproxResult<T>> try_approx_select(simt::Device& dev, std::span<const T> input,
                                          std::size_t rank, const SampleSelectConfig& cfg) {
    PipelineContext ctx(dev, cfg);
    DataHolder<T> buf;
    Status s = with_fault_retry(ctx, [&] { buf = DataHolder<T>::stage(ctx, input); });
    if (!s.ok()) return s;
    const std::size_t ranks[] = {rank};
    auto multi = try_approx_multi_select<T>(dev, std::span<const T>(buf.span()), ranks, cfg);
    if (!multi.ok()) return multi.status();
    return multi.value().points.front();
}

template <typename T>
ApproxResult<T> approx_select_device(simt::Device& dev, std::span<const T> data, std::size_t rank,
                                     const SampleSelectConfig& cfg) {
    const std::size_t ranks[] = {rank};
    auto multi = approx_multi_select<T>(dev, data, ranks, cfg);
    return multi.points.front();
}

template <typename T>
ApproxResult<T> approx_select(simt::Device& dev, std::span<const T> input, std::size_t rank,
                              const SampleSelectConfig& cfg) {
    return try_approx_select<T>(dev, input, rank, cfg).take_or_throw();
}

template Result<ApproxMultiResult<float>> try_approx_multi_select<float>(
    simt::Device&, std::span<const float>, std::span<const std::size_t>,
    const SampleSelectConfig&);
template Result<ApproxMultiResult<double>> try_approx_multi_select<double>(
    simt::Device&, std::span<const double>, std::span<const std::size_t>,
    const SampleSelectConfig&);
template Result<ApproxResult<float>> try_approx_select<float>(simt::Device&,
                                                              std::span<const float>, std::size_t,
                                                              const SampleSelectConfig&);
template Result<ApproxResult<double>> try_approx_select<double>(simt::Device&,
                                                                std::span<const double>,
                                                                std::size_t,
                                                                const SampleSelectConfig&);
template ApproxMultiResult<float> approx_multi_select<float>(simt::Device&,
                                                             std::span<const float>,
                                                             std::span<const std::size_t>,
                                                             const SampleSelectConfig&);
template ApproxMultiResult<double> approx_multi_select<double>(simt::Device&,
                                                               std::span<const double>,
                                                               std::span<const std::size_t>,
                                                               const SampleSelectConfig&);
template ApproxResult<float> approx_select<float>(simt::Device&, std::span<const float>,
                                                  std::size_t, const SampleSelectConfig&);
template ApproxResult<double> approx_select<double>(simt::Device&, std::span<const double>,
                                                    std::size_t, const SampleSelectConfig&);
template ApproxResult<float> approx_select_device<float>(simt::Device&, std::span<const float>,
                                                         std::size_t, const SampleSelectConfig&);
template ApproxResult<double> approx_select_device<double>(simt::Device&,
                                                           std::span<const double>, std::size_t,
                                                           const SampleSelectConfig&);

}  // namespace gpusel::core
