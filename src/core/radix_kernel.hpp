#pragma once
// Pipeline-grade radix digit kernels (promoted out of baselines/ for the
// radix selection backend, docs/planner.md).  MSD radix selection works on
// the order-preserving unsigned image of the element (RadixTraits): digit
// histograms replace sampled splitters, so the descent depth is bounded by
// the key width regardless of the distribution.
//
// Two upgrades over the baseline kernels they replace (the baseline driver
// now shims onto these):
//
//   * Fused multi-level histograms: one data pass accumulates up to
//     kRadixMaxFusedLevels digit histograms (consecutive shifts) at once.
//     While the selected bin keeps the whole buffer (all-equal prefixes,
//     heavy duplicates), the host walks deeper digits from the same pass
//     without re-reading the data -- the skip-filter descent that makes
//     radix beat sampling on adversarial duplicate distributions.
//   * Compress-store extraction: the filter scatters through the masked
//     compress-store engine (lint rule R5) instead of per-lane stores,
//     charging the same coalesced bytes with SimTSan-checked writes.
//
// Launch parameters are carried in RadixLaunchParams so the kernels are
// stream-taggable and reusable by both the backend driver (pooled scratch,
// fault retry) and the baseline shim (fresh allocations, level = 1).

#include <bit>
#include <cstdint>
#include <span>

#include "core/key_payload.hpp"
#include "simt/device.hpp"

namespace gpusel::core {

/// Radix digit width; 8 bits = 256 histogram bins per level.
inline constexpr int kRadixDigitBits = 8;
inline constexpr std::size_t kRadixBins = std::size_t{1} << kRadixDigitBits;
/// Most digit levels one count pass histograms at once (shared budget:
/// kRadixMaxFusedLevels * kRadixBins int32 bins per block).
inline constexpr int kRadixMaxFusedLevels = 4;

/// Order-preserving bijection to an unsigned key: x < y (total order over
/// the NaN-free inputs the kernels see)  <=>  key(x) < key(y).
template <typename T>
struct RadixTraits;

template <>
struct RadixTraits<float> {
    using key_type = std::uint32_t;
    [[nodiscard]] static constexpr key_type key(float x) noexcept {
        const auto u = std::bit_cast<std::uint32_t>(x);
        // Positive floats: set the sign bit; negatives: flip all bits.
        return (u & 0x80000000u) != 0 ? ~u : (u | 0x80000000u);
    }
};

template <>
struct RadixTraits<double> {
    using key_type = std::uint64_t;
    [[nodiscard]] static constexpr key_type key(double x) noexcept {
        const auto u = std::bit_cast<std::uint64_t>(x);
        return (u & 0x8000000000000000ULL) != 0 ? ~u : (u | 0x8000000000000000ULL);
    }
};

template <>
struct RadixTraits<ArgPair> {
    using key_type = std::uint64_t;
    /// Composed key: float key image in the high 32 bits, payload below.
    /// KeyPayload orders (key, payload) lexicographically with -0.0 == +0.0
    /// at the key comparison, so -0.0 is canonicalized to +0.0 first --
    /// otherwise the radix image would order {-0, p} below every {+0, q}
    /// instead of tie-breaking by payload.
    [[nodiscard]] static constexpr key_type key(ArgPair x) noexcept {
        const float k = x.key == 0.0f ? 0.0f : x.key;
        return (static_cast<std::uint64_t>(RadixTraits<float>::key(k)) << 32) |
               static_cast<std::uint64_t>(x.payload);
    }
};

template <typename T>
[[nodiscard]] constexpr int radix_key_bits() noexcept {
    return static_cast<int>(sizeof(typename RadixTraits<T>::key_type) * 8);
}

/// The radix digit of `x` at bit offset `shift`.
template <typename T>
[[nodiscard]] constexpr std::int32_t radix_digit_of(T x, int shift) noexcept {
    return static_cast<std::int32_t>((RadixTraits<T>::key(x) >> shift) & (kRadixBins - 1));
}

/// Launch-shape knobs shared by the radix kernels (subset of
/// SampleSelectConfig plus the resolved stream).
struct RadixLaunchParams {
    int block_dim = 256;
    int unroll = 1;
    simt::AtomicSpace atomic_space = simt::AtomicSpace::shared;
    /// Warp-aggregated histogram atomics (Fig. 6).  The radix backend
    /// forces this on: duplicate-heavy inputs -- exactly what the planner
    /// routes here -- serialize plain same-bin atomics warp-wide.
    bool warp_aggregation = false;
    int stream = 0;
};

/// Fused digit-histogram pass: accumulates `levels` histograms over the
/// digits at shifts shift0, shift0 - 8, ..., in one read of `data`.
///
/// * Shared mode: per-block partials go to `block_counts`, laid out
///   [level][block][bin] so the level-l slice (grid * kRadixBins int32s at
///   offset l * grid * kRadixBins) feeds reduce_kernel unchanged; `totals`
///   is not touched.
/// * Global mode: counts accumulate atomically into `totals`
///   (levels * kRadixBins int32s, level-major; must be pre-zeroed).
///
/// With levels == 1 the pass is event-identical to the classic single-digit
/// count kernel (the baseline shims onto this).  Returns the grid size.
template <typename T>
int radix_count_fused(simt::Device& dev, std::span<const T> data, int shift0, int levels,
                      std::span<std::int32_t> totals, std::span<std::int32_t> block_counts,
                      const RadixLaunchParams& p, simt::LaunchOrigin origin);

/// Extraction of the elements whose digit at `shift` equals `digit` into
/// `out` (sized to the bucket), via aggregated cursor offsets + masked
/// compress-store.  Shared mode consumes the reduce kernel's per-block
/// offsets (`block_offsets`, the level's slice); global mode a zeroed
/// one-slot `cursor`.  `grid_dim` must match the count pass.
template <typename T>
void radix_filter(simt::Device& dev, std::span<const T> data, int shift, std::int32_t digit,
                  std::span<T> out, std::span<const std::int32_t> block_offsets,
                  std::span<std::int32_t> cursor, const RadixLaunchParams& p,
                  simt::LaunchOrigin origin, int grid_dim);

/// Outcome of one radix_walk launch over a fused histogram pass.
struct RadixWalkResult {
    /// Digit located at each consumed level (level-major, `consumed` valid).
    std::int32_t digits[kRadixMaxFusedLevels] = {};
    /// Fused levels consumed: the walk stops at (and includes) the first
    /// level whose located bin is smaller than the buffer.
    int consumed = 0;
    /// The rank rebased into the located bucket.
    std::size_t rank = 0;
    /// Size of the located bin at the last consumed level.
    std::size_t bucket_size = 0;
    /// Elements in strictly greater bins at the last consumed level (the
    /// guaranteed top-k members of the Sec. IV-I fusion).
    std::size_t cnt_upper = 0;
};

/// Single-launch walk over the fused digit levels of a *global-mode* totals
/// array (levels * kRadixBins, level-major, as produced by
/// radix_count_fused): per level, prefix-sum the 256 bins into `prefix`,
/// locate the bin holding `rank`, rebase the rank, and descend while the
/// bin still holds the whole buffer.  Replaces one reduce + select_bucket
/// launch pair per level with a single launch -- on duplicate-heavy inputs
/// (every bin holds everything) the entire fused pass is walked in one go.
/// `prefix` holds the last consumed level's exclusive prefix on return.
RadixWalkResult radix_walk(simt::Device& dev, std::span<const std::int32_t> totals,
                           std::span<std::int32_t> prefix, int levels, std::size_t n,
                           std::size_t rank, simt::LaunchOrigin origin, int stream);

/// Fused top-k extraction (the Sec. IV-I fusion applied to radix): the
/// `digit` bucket goes to `out` while every element with a *greater* digit
/// -- a guaranteed top-k member -- is appended to `acc` starting at slot
/// `acc_fill`.  `cursors` is a zeroed two-slot global buffer: slot 0 is
/// the target-bucket cursor (global mode only), slot 1 the accumulator
/// cursor (both modes; upper elements have no per-block offsets).
template <typename T>
void radix_filter_topk(simt::Device& dev, std::span<const T> data, int shift, std::int32_t digit,
                       std::span<T> out, std::span<T> acc, std::int32_t acc_fill,
                       std::span<const std::int32_t> block_offsets,
                       std::span<std::int32_t> cursors, const RadixLaunchParams& p,
                       simt::LaunchOrigin origin, int grid_dim);

#define GPUSEL_RADIX_KERNEL_EXTERN(T)                                                           \
    extern template int radix_count_fused<T>(simt::Device&, std::span<const T>, int, int,       \
                                             std::span<std::int32_t>, std::span<std::int32_t>,  \
                                             const RadixLaunchParams&, simt::LaunchOrigin);     \
    extern template void radix_filter<T>(simt::Device&, std::span<const T>, int, std::int32_t,  \
                                         std::span<T>, std::span<const std::int32_t>,           \
                                         std::span<std::int32_t>, const RadixLaunchParams&,     \
                                         simt::LaunchOrigin, int);                              \
    extern template void radix_filter_topk<T>(                                                  \
        simt::Device&, std::span<const T>, int, std::int32_t, std::span<T>, std::span<T>,       \
        std::int32_t, std::span<const std::int32_t>, std::span<std::int32_t>,                   \
        const RadixLaunchParams&, simt::LaunchOrigin, int);

GPUSEL_RADIX_KERNEL_EXTERN(float)
GPUSEL_RADIX_KERNEL_EXTERN(double)
GPUSEL_RADIX_KERNEL_EXTERN(ArgPair)
#undef GPUSEL_RADIX_KERNEL_EXTERN

}  // namespace gpusel::core
