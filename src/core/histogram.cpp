#include "core/histogram.hpp"

#include <stdexcept>
#include <utility>

#include "core/float_order.hpp"
#include "core/pipeline.hpp"
#include "simt/scan.hpp"
#include "simt/timing.hpp"

namespace gpusel::core {

template <typename T>
Result<EquiDepthHistogram<T>> try_equi_depth_histogram(simt::Device& dev, std::span<const T> data,
                                                       const SampleSelectConfig& cfg) {
    try {
        cfg.validate(/*exact=*/false);
    } catch (const std::invalid_argument& e) {
        return Status::failure(SelectError::invalid_argument, e.what());
    }
    const std::size_t n = data.size();
    if (n == 0) {
        return Status::failure(SelectError::empty_input, "histogram of an empty dataset");
    }
    const auto b = static_cast<std::size_t>(cfg.num_buckets);
    const auto origin = simt::LaunchOrigin::host;
    PipelineContext ctx(dev, cfg);

    // NaN keys cannot enter the count kernel (its tree traversal assumes
    // the total order).  They belong in the last bucket -- where
    // find_bucket sends a NaN probe -- so the level runs over a compacted
    // copy and the NaN count is added to that bucket afterwards.  The copy
    // is staged only when NaNs exist, so clean inputs keep the zero-copy
    // path and its event stream.
    const std::size_t nan_count = count_nan_keys(data);
    DataHolder<T> compacted;
    if (nan_count > 0) {
        if (cfg.nan_policy == NanPolicy::reject) {
            return Status::failure(SelectError::nan_keys_rejected,
                                   "equi_depth_histogram: input contains NaN keys");
        }
        Status staged = with_fault_retry(ctx, [&] {
            compacted = DataHolder<T>::stage(ctx, data);
        });
        if (!staged.ok()) return staged;
        (void)partition_nans_to_back(compacted.span());
        compacted.view(n - nan_count);
        data = compacted.span();
    }

    EquiDepthHistogram<T> h;
    h.n = n;
    const double t0 = dev.elapsed_ns();
    const std::uint64_t l0 = dev.launch_count();

    // Count-only pipeline level: no oracles, no per-block offsets, and no
    // select-bucket (there is no rank to locate).
    auto lvres = try_run_bucket_level<T>(
        ctx, data, /*rank=*/0, origin, /*salt=*/0,
        {.write_oracles = false, .keep_block_offsets = false, .locate = false});
    if (!lvres.ok()) return lvres.status();
    const LevelOutcome<T> lv = lvres.take();
    h.tree = lv.tree;
    h.boundaries = h.tree.splitters;
    const auto totals = lv.totals_span();

    // Cumulative counts via the device scan substrate.
    simt::PooledBuffer<std::int32_t> prefix;
    Status s = with_fault_retry(ctx, [&] {
        prefix = ctx.scratch<std::int32_t>(b);
        simt::exclusive_scan_i32(dev, totals, prefix.span(), origin, cfg.block_dim, cfg.stream);
    });
    if (!s.ok()) return s;

    h.counts.resize(b);
    h.cumulative.resize(b + 1);
    for (std::size_t i = 0; i < b; ++i) {
        h.counts[i] = totals[i];
        h.cumulative[i] = prefix[i];
    }
    h.counts[b - 1] += static_cast<std::int64_t>(nan_count);
    h.cumulative[b] = static_cast<std::int64_t>(n);

    h.sim_ns = dev.elapsed_ns() - t0;
    h.launches = dev.launch_count() - l0;
    return h;
}

template <typename T>
EquiDepthHistogram<T> equi_depth_histogram(simt::Device& dev, std::span<const T> data,
                                           const SampleSelectConfig& cfg) {
    return try_equi_depth_histogram<T>(dev, data, cfg).take_or_throw();
}

template <typename T>
Result<RankQueryResult<T>> try_rank_of(simt::Device& dev, std::span<const T> data, T v,
                                       const SampleSelectConfig& cfg) {
    const std::size_t n = data.size();
    RankQueryResult<T> res;
    const double t0 = dev.elapsed_ns();
    if (n == 0) return res;

    PipelineContext ctx(dev, cfg);
    Status s = with_fault_retry(ctx, [&] {
        // Tripartition histogram {smaller, equal, larger(, pad)} under the
        // total order: NaN keys compare greater than any numeric v, and a
        // NaN v equals exactly the NaN keys (identical decisions to plain
        // </== on NaN-free data).
        auto totals = ctx.zeroed_i32(4, simt::LaunchOrigin::host);
        const int grid = simt::suggest_grid(dev.arch(), n, cfg.block_dim, cfg.unroll);
        dev.launch("rank_count",
                   {.grid_dim = grid, .block_dim = cfg.block_dim,
                    .origin = simt::LaunchOrigin::host, .unroll = cfg.unroll,
                    .stream = cfg.stream},
                   [&, n, v](simt::BlockCtx& blk) {
                       blk.warp_tiles(n, [&](simt::WarpCtx& w, std::size_t base, std::size_t) {
                           T elems[simt::kWarpSize];
                           std::int32_t side[simt::kWarpSize];
                           w.load(data, base, elems);
                           for (int l = 0; l < w.lanes(); ++l) {
                               side[l] = total_less(elems[l], v)
                                             ? 0
                                             : (total_equal(elems[l], v) ? 1 : 2);
                           }
                           w.add_instr(2 * static_cast<std::uint64_t>(w.lanes()));
                           // 2-bit aggregation: three possible targets
                           w.atomic_add_aggregated(simt::AtomicSpace::global, totals.span(), side,
                                                   2);
                       });
                   });
        res.less = static_cast<std::size_t>(totals[0]);
        res.equal = static_cast<std::size_t>(totals[1]);
    });
    if (!s.ok()) return s;
    res.sim_ns = dev.elapsed_ns() - t0;
    return res;
}

template <typename T>
RankQueryResult<T> rank_of(simt::Device& dev, std::span<const T> data, T v,
                           const SampleSelectConfig& cfg) {
    return try_rank_of<T>(dev, data, v, cfg).take_or_throw();
}

template Result<EquiDepthHistogram<float>> try_equi_depth_histogram<float>(
    simt::Device&, std::span<const float>, const SampleSelectConfig&);
template Result<EquiDepthHistogram<double>> try_equi_depth_histogram<double>(
    simt::Device&, std::span<const double>, const SampleSelectConfig&);
template Result<RankQueryResult<float>> try_rank_of<float>(simt::Device&, std::span<const float>,
                                                           float, const SampleSelectConfig&);
template Result<RankQueryResult<double>> try_rank_of<double>(simt::Device&,
                                                             std::span<const double>, double,
                                                             const SampleSelectConfig&);
template EquiDepthHistogram<float> equi_depth_histogram<float>(simt::Device&,
                                                               std::span<const float>,
                                                               const SampleSelectConfig&);
template EquiDepthHistogram<double> equi_depth_histogram<double>(simt::Device&,
                                                                 std::span<const double>,
                                                                 const SampleSelectConfig&);
template RankQueryResult<float> rank_of<float>(simt::Device&, std::span<const float>, float,
                                               const SampleSelectConfig&);
template RankQueryResult<double> rank_of<double>(simt::Device&, std::span<const double>, double,
                                                 const SampleSelectConfig&);

}  // namespace gpusel::core
