#include "core/histogram.hpp"

#include <stdexcept>

#include "core/pipeline.hpp"
#include "simt/scan.hpp"
#include "simt/timing.hpp"

namespace gpusel::core {

template <typename T>
EquiDepthHistogram<T> equi_depth_histogram(simt::Device& dev, std::span<const T> data,
                                           const SampleSelectConfig& cfg) {
    cfg.validate(/*exact=*/false);
    const std::size_t n = data.size();
    if (n == 0) throw std::invalid_argument("histogram of an empty dataset");
    const auto b = static_cast<std::size_t>(cfg.num_buckets);
    const auto origin = simt::LaunchOrigin::host;

    EquiDepthHistogram<T> h;
    h.n = n;
    const double t0 = dev.elapsed_ns();
    const std::uint64_t l0 = dev.launch_count();

    // Count-only pipeline level: no oracles, no per-block offsets, and no
    // select-bucket (there is no rank to locate).
    PipelineContext ctx(dev, cfg);
    const auto lv = run_bucket_level<T>(
        ctx, data, /*rank=*/0, origin, /*salt=*/0,
        {.write_oracles = false, .keep_block_offsets = false, .locate = false});
    h.tree = lv.tree;
    h.boundaries = h.tree.splitters;
    const auto totals = lv.totals_span();

    // Cumulative counts via the device scan substrate.
    auto prefix = ctx.scratch<std::int32_t>(b);
    simt::exclusive_scan_i32(dev, totals, prefix.span(), origin, cfg.block_dim, cfg.stream);

    h.counts.resize(b);
    h.cumulative.resize(b + 1);
    for (std::size_t i = 0; i < b; ++i) {
        h.counts[i] = totals[i];
        h.cumulative[i] = prefix[i];
    }
    h.cumulative[b] = static_cast<std::int64_t>(n);

    h.sim_ns = dev.elapsed_ns() - t0;
    h.launches = dev.launch_count() - l0;
    return h;
}

template <typename T>
RankQueryResult<T> rank_of(simt::Device& dev, std::span<const T> data, T v,
                           const SampleSelectConfig& cfg) {
    const std::size_t n = data.size();
    RankQueryResult<T> res;
    const double t0 = dev.elapsed_ns();
    if (n == 0) return res;

    // Tripartition histogram {smaller, equal, larger(, pad)}.
    PipelineContext ctx(dev, cfg);
    auto totals = ctx.zeroed_i32(4, simt::LaunchOrigin::host);
    const int grid = simt::suggest_grid(dev.arch(), n, cfg.block_dim, cfg.unroll);
    dev.launch("rank_count",
               {.grid_dim = grid, .block_dim = cfg.block_dim,
                .origin = simt::LaunchOrigin::host, .unroll = cfg.unroll,
                .stream = cfg.stream},
               [&, n, v](simt::BlockCtx& blk) {
                   blk.warp_tiles(n, [&](simt::WarpCtx& w, std::size_t base, std::size_t) {
                       T elems[simt::kWarpSize];
                       std::int32_t side[simt::kWarpSize];
                       w.load(data, base, elems);
                       for (int l = 0; l < w.lanes(); ++l) {
                           side[l] = elems[l] < v ? 0 : (elems[l] == v ? 1 : 2);
                       }
                       w.add_instr(2 * static_cast<std::uint64_t>(w.lanes()));
                       // 2-bit aggregation: three possible targets
                       w.atomic_add_aggregated(simt::AtomicSpace::global, totals.span(), side,
                                               2);
                   });
               });
    res.less = static_cast<std::size_t>(totals[0]);
    res.equal = static_cast<std::size_t>(totals[1]);
    res.sim_ns = dev.elapsed_ns() - t0;
    return res;
}

template EquiDepthHistogram<float> equi_depth_histogram<float>(simt::Device&,
                                                               std::span<const float>,
                                                               const SampleSelectConfig&);
template EquiDepthHistogram<double> equi_depth_histogram<double>(simt::Device&,
                                                                 std::span<const double>,
                                                                 const SampleSelectConfig&);
template RankQueryResult<float> rank_of<float>(simt::Device&, std::span<const float>, float,
                                               const SampleSelectConfig&);
template RankQueryResult<double> rank_of<double>(simt::Device&, std::span<const double>, double,
                                                 const SampleSelectConfig&);

}  // namespace gpusel::core
