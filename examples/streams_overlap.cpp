// Stream overlap: two independent selections sharing the device.
//
// The paper stresses preserving the GPU's asynchronous execution model;
// the simulator exposes CUDA-style streams for exactly that.  A selection
// pinned to its own stream overlaps with work on other streams, so two
// median queries on different datasets finish in roughly the time of one.

#include <iostream>

#include "core/sample_select.hpp"
#include "data/distributions.hpp"

int main() {
    using namespace gpusel;
    simt::Device dev(simt::arch_v100());
    const int s1 = dev.create_stream();
    const int s2 = dev.create_stream();

    const std::size_t n = 1 << 22;
    const auto a = data::generate<float>(
        {.n = n, .dist = data::Distribution::uniform_real, .seed = 1});
    const auto b = data::generate<float>(
        {.n = n, .dist = data::Distribution::lognormal, .seed = 2});

    core::SampleSelectConfig cfg1;
    cfg1.stream = s1;
    core::SampleSelectConfig cfg2;
    cfg2.stream = s2;

    const auto r1 = core::sample_select<float>(dev, a, n / 2, cfg1);
    const auto r2 = core::sample_select<float>(dev, b, n / 2, cfg2);

    const double busy1 = dev.stream_clock(s1);
    const double busy2 = dev.stream_clock(s2);
    std::cout << "median(A) = " << r1.value << ",  median(B) = " << r2.value << "\n"
              << "stream 1 busy : " << busy1 / 1e6 << " ms\n"
              << "stream 2 busy : " << busy2 / 1e6 << " ms\n"
              << "wall clock    : " << dev.elapsed_ns() / 1e6 << " ms  (vs "
              << (busy1 + busy2) / 1e6 << " ms serialized -> "
              << (busy1 + busy2) / dev.elapsed_ns() << "x overlap speedup)\n";
    return 0;
}
